// Text in, decision out: the paper's §2.3 prompt pattern end to end.
//
// Builds the recommendation prompt from actual text with the hash
// tokenizer, restricts the output to the "yes"/"no" token ids, and scores
// several candidate articles for one user. The shared profile text becomes
// a shared token prefix, so every article after the first hits the cache.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/tokenizer.h"

int main() {
  using namespace prefillonly;

  EngineOptions options;
  options.model = ModelConfig::Small();
  options.block_size = 16;
  options.cache_budget_tokens = 4096;
  Engine engine(options);
  HashTokenizer tokenizer(static_cast<int32_t>(options.model.vocab_size));

  const std::string profile =
      "You are a recommendation assistant. Here is the user profile: "
      "enjoys long form journalism , systems research papers , cycling "
      "routes , sourdough baking experiments and vintage synthesizers . "
      "Browsing history : read twelve articles about operating systems , "
      "saved three gravel bike reviews , shared one sourdough starter "
      "guide , skipped every celebrity gossip item . ";

  const std::vector<std::string> articles = {
      "A deep dive into GPU memory management for ML serving systems",
      "Celebrity chef opens fourth restaurant in downtown",
      "Touring the Alps on gravel: a 900 km ride report",
      "Why your sourdough starter died and how to revive it",
      "Market recap: bonds edge higher on rate expectations",
  };

  const int32_t yes = tokenizer.TokenFor("yes");
  const int32_t no = tokenizer.TokenFor("no");

  std::printf("%-62s %8s %8s %s\n", "article", "P(yes)", "cached", "time");
  for (const auto& article : articles) {
    const std::string prompt = profile +
                               "If we recommend the following article , will the "
                               "user be interested ? Please respond yes or no . " +
                               article + " . Your answer is :";
    ScoringRequest request;
    request.tokens = tokenizer.Encode(prompt);
    request.allowed_tokens = {yes, no};
    auto response = engine.ScoreSync(std::move(request));
    if (!response.ok()) {
      std::printf("%-62s failed: %s\n", article.c_str(),
                  response.status().ToString().c_str());
      continue;
    }
    std::printf("%-62s %8.4f %5ld/%-3ld %5.1fms\n", article.c_str(),
                response.value().score, static_cast<long>(response.value().n_cached),
                static_cast<long>(response.value().n_input),
                response.value().execute_time_s * 1e3);
  }
  std::printf("\n(random weights, so the scores are arbitrary - the point is the\n"
              "API shape: text -> tokens -> one prefill -> constrained P(yes).)\n");
  return 0;
}
