// Capacity planner: "which engine should serve my workload?"
//
// Uses the analytic memory/cost models plus the cluster simulator to assess
// every engine kind on a hardware setup against a workload, and prints a
// recommendation — the operational question the paper's evaluation answers.
#include <cstdio>

#include "src/core/capacity_planner.h"
#include "src/gpu/memory_model.h"

int main() {
  using namespace prefillonly;

  CreditVerificationConfig workload_config;
  workload_config.n_users = 20;
  const Dataset dataset = MakeCreditVerificationDataset(workload_config);

  for (const auto& hw :
       {HardwareSetup::H100_Llama70B(), HardwareSetup::A100_Qwen32B()}) {
    std::printf("\n=== %s (%s, 2 GPUs, %s) ===\n", hw.name.c_str(),
                hw.gpu.name.c_str(), hw.llm.name.c_str());
    std::printf("workload: %zu requests, longest %ld tokens\n",
                dataset.requests.size(), static_cast<long>(dataset.MaxTokens()));

    const CapacityPlan plan = PlanCapacity(hw, dataset);
    std::printf("\n%-18s %12s %6s %14s %12s %10s\n", "engine", "max input", "fits",
                "sat. tput", "mean lat.", "P99 lat.");
    for (const auto& a : plan.assessments) {
      if (!a.fits_workload) {
        std::printf("%-18s %12ld %6s %14s %12s %10s\n",
                    std::string(EngineKindName(a.kind)).c_str(),
                    static_cast<long>(a.max_input_length), "no", "-", "-", "-");
      } else {
        std::printf("%-18s %12ld %6s %11.4f/s %10.1fs %8.1fs\n",
                    std::string(EngineKindName(a.kind)).c_str(),
                    static_cast<long>(a.max_input_length), "yes",
                    a.saturated_throughput, a.mean_latency_s, a.p99_latency_s);
      }
    }
    std::printf("\nrecommended: %s (%s)\n",
                std::string(EngineKindName(plan.recommended)).c_str(),
                plan.rationale.c_str());
  }
  return 0;
}
