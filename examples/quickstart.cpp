// Quickstart: score a yes/no question with the PrefillOnly engine, through
// the stable embedding facade (include/prefillonly/client.h — ISSUE 5).
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/example_quickstart
//
// The client loads a small deterministic Llama-style model, prefills the
// prompt with hybrid prefilling, and returns the constrained probability
// over the two allowed answer tokens — one forward pass, no decoding.
#include <cstdio>
#include <vector>

#include "prefillonly/client.h"

int main() {
  using namespace prefillonly;

  // 1. Configure the client. Defaults enable everything the paper
  //    describes: hybrid prefilling, suffix KV discarding, SRJF scheduling
  //    with continuous JCT calibration.
  ClientOptions options;
  options.model = "small";  // 4 layers, hidden 128, deterministic weights
  options.cache_budget_tokens = 2048;
  // Transient failures (overload sheds, exhausted budgets — the 429 class)
  // retry transparently: up to 3 attempts, exponential backoff with
  // deterministic jitter, floored at the server's Retry-After hint.
  options.retry.max_retries = 3;
  options.retry.initial_backoff_ms = 25;
  Client client(options);
  std::printf("client up: model '%s', cache budget %ld tokens\n",
              options.model.c_str(), static_cast<long>(options.cache_budget_tokens));

  // 2. Build a request. In a real deployment the tokens come from your
  //    tokenizer; ids 7 and 9 stand in for "Yes" and "No".
  std::vector<int32_t> prompt;
  for (int i = 0; i < 400; ++i) {
    prompt.push_back((i * 37 + 11) % 512);
  }

  // 3. Score it.
  ScoreOptions score_options;
  score_options.user_id = 1;
  ScoreResult result = client.Score(prompt, /*allowed=*/{7, 9}, score_options);
  if (!result.ok) {
    std::printf("request failed: %s: %s\n", result.error_code.c_str(),
                result.error_message.c_str());
    return 1;
  }
  std::printf("P(yes) = %.4f   P(no) = %.4f\n", result.probabilities[0].probability,
              result.probabilities[1].probability);
  std::printf("input %ld tokens, %ld from cache, executed in %.1f ms\n",
              static_cast<long>(result.n_input), static_cast<long>(result.n_cached),
              result.execute_time_s * 1e3);

  // 4. Score a follow-up sharing the same prefix: the profile KV is reused.
  std::vector<int32_t> follow_up = prompt;
  follow_up.back() = 123;  // change the tail only
  ScoreResult second = client.Score(follow_up, {7, 9}, score_options);
  if (second.ok) {
    std::printf("follow-up: %ld of %ld tokens served from the prefix cache\n",
                static_cast<long>(second.n_cached),
                static_cast<long>(second.n_input));
  }

  // 5. The same client serves the async lifecycle: submit, poll, cancel.
  RequestHandle handle = client.Submit(prompt, {7, 9});
  ScoreResult async_result = handle.Wait();
  std::printf("async request %ld: P(yes) = %.4f (cached %ld tokens)\n",
              static_cast<long>(handle.id()), async_result.score,
              static_cast<long>(async_result.n_cached));
  return 0;
}
