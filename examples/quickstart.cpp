// Quickstart: score a yes/no question with the PrefillOnly engine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The engine loads a small deterministic Llama-style model, prefills the
// prompt with hybrid prefilling, and returns the constrained probability
// over the two allowed answer tokens — one forward pass, no decoding.
#include <cstdio>

#include "src/core/engine.h"

int main() {
  using namespace prefillonly;

  // 1. Configure the engine. EngineOptions defaults enable everything the
  //    paper describes: hybrid prefilling, suffix KV discarding, SRJF
  //    scheduling with continuous JCT calibration.
  EngineOptions options;
  options.model = ModelConfig::Small();  // 4 layers, hidden 128, determinstic weights
  options.cache_budget_tokens = 2048;
  Engine engine(options);
  std::printf("engine up: model '%s', %zu weight bytes, cache budget %ld tokens\n",
              options.model.name.c_str(), engine.model().weight_bytes(),
              static_cast<long>(options.cache_budget_tokens));

  // 2. Build a request. In a real deployment the tokens come from your
  //    tokenizer; ids 7 and 9 stand in for "Yes" and "No".
  ScoringRequest request;
  request.user_id = 1;
  for (int i = 0; i < 400; ++i) {
    request.tokens.push_back((i * 37 + 11) % options.model.vocab_size);
  }
  request.allowed_tokens = {7, 9};

  // 3. Score it.
  auto response = engine.ScoreSync(std::move(request));
  if (!response.ok()) {
    std::printf("request failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("P(yes) = %.4f   P(no) = %.4f\n", response.value().probabilities[0].probability,
              response.value().probabilities[1].probability);
  std::printf("input %ld tokens, %ld from cache, executed in %.1f ms\n",
              static_cast<long>(response.value().n_input),
              static_cast<long>(response.value().n_cached),
              response.value().execute_time_s * 1e3);

  // 4. Score a follow-up sharing the same prefix: the profile KV is reused.
  ScoringRequest follow_up;
  follow_up.user_id = 1;
  for (int i = 0; i < 400; ++i) {
    follow_up.tokens.push_back((i * 37 + 11) % options.model.vocab_size);
  }
  follow_up.tokens.back() = 123;  // change the tail only
  follow_up.allowed_tokens = {7, 9};
  auto second = engine.ScoreSync(std::move(follow_up));
  if (second.ok()) {
    std::printf("follow-up: %ld of %ld tokens served from the prefix cache\n",
                static_cast<long>(second.value().n_cached),
                static_cast<long>(second.value().n_input));
  }
  return 0;
}
