// The paper's deployment shape (§3.1): an HTTP frontend over the engine.
//
// Starts the scoring service on loopback, exercises the v1 API through a
// real socket — a blocking score (the second hits the prefix cache), a
// multi-item score, and the async lifecycle (submit, poll, cancel) — then
// shuts down. Run it with no arguments; pass a port via PO_PORT to poke it
// with curl while it serves (PO_SERVE_SECONDS, default 30), and a replica
// count via PO_REPLICAS (default 1) to serve from a fault-tolerant
// multi-replica set — then /v1/replicas and the drain/rejoin admin routes
// become interesting:
//
//   PO_PORT=8080 ./build/example_scoring_server &
//   curl -s localhost:8080/v1/score -d \
//     '{"text":"user profile: likes systems papers. article: cache design. yes or no?",
//       "allowed":["yes","no"]}'
//   curl -s localhost:8080/v1/requests -d '{"tokens":[1,2,3],"allowed_tokens":[7,9]}'
//   curl -s localhost:8080/v1/requests/req-1
//   curl -s localhost:8080/v1/replicas
//   curl -s -X POST localhost:8080/v1/replicas/0/drain
//
// Full route reference: docs/API.md.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/server/scoring_service.h"

namespace {

std::string RoundTrip(uint16_t port, const std::string& method,
                      const std::string& path, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return "(connect failed)";
  }
  const std::string request = method + " " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? response : response.substr(split + 4);
}

}  // namespace

int main() {
  using namespace prefillonly;

  EngineOptions options;
  options.model = ModelConfig::Small();
  options.block_size = 8;  // text prompts are short; small blocks still share
  options.max_batch_size = 4;  // multi-item calls co-batch
  ScoringServiceOptions service_options;
  if (const char* env = std::getenv("PO_REPLICAS"); env != nullptr) {
    if (const int n = std::atoi(env); n >= 1) {
      service_options.cluster.n_replicas = n;
    }
  }
  ScoringService service(std::move(options), service_options);
  if (service_options.cluster.n_replicas > 1) {
    std::printf("serving from %d replicas (prefix-affinity routed)\n",
                service_options.cluster.n_replicas);
  }

  uint16_t port = 0;
  if (const char* env = std::getenv("PO_PORT"); env != nullptr) {
    port = static_cast<uint16_t>(std::atoi(env));
  }
  if (auto status = service.Start(port); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("scoring service on http://127.0.0.1:%u\n\n", service.port());

  const std::string profile =
      "user profile : reads long systems papers , bakes sourdough , rides "
      "gravel routes and collects synthesizers . history : twelve articles "
      "on schedulers and caches . ";
  const std::string q1 = R"({"text":")" + profile +
                         R"(article : gpu memory management", "allowed":["yes","no"]})";
  const std::string q2 = R"({"text":")" + profile +
                         R"(article : celebrity gossip weekly", "allowed":["yes","no"]})";

  std::printf("score 1 -> %s\n", RoundTrip(service.port(), "POST", "/v1/score", q1).c_str());
  std::printf("score 2 -> %s\n", RoundTrip(service.port(), "POST", "/v1/score", q2).c_str());
  std::printf("(score 2's n_cached shows the shared profile prefix being "
              "reused across HTTP requests.)\n\n");

  // Multi-item scoring: one call, per-item results in input order, the
  // items co-scheduled into shared prefill batches.
  const std::string multi =
      R"({"items":[)"
      R"({"text":")" + profile + R"(article : raft consensus", "allowed":["yes","no"]},)"
      R"({"text":")" + profile + R"(article : sourdough hydration", "allowed":["yes","no"]},)"
      R"({"text":")" + profile + R"(article : bikepacking bags", "allowed":["yes","no"]}],)"
      R"("options":{"priority":1}})";
  std::printf("multi-item -> %s\n\n",
              RoundTrip(service.port(), "POST", "/v1/score", multi).c_str());

  // Async lifecycle: submit, poll, cancel.
  const std::string submitted = RoundTrip(
      service.port(), "POST", "/v1/requests",
      R"({"text":")" + profile + R"(article : lsm compaction", "allowed":["yes","no"],)"
      R"( "options":{"request_id":"demo-1"}})");
  std::printf("submit -> %s\n", submitted.c_str());
  std::printf("poll   -> %s\n",
              RoundTrip(service.port(), "GET", "/v1/requests/demo-1", "").c_str());
  std::printf("cancel -> %s\n",
              RoundTrip(service.port(), "DELETE", "/v1/requests/demo-1", "").c_str());

  if (std::getenv("PO_PORT") != nullptr) {
    int serve_seconds = 30;
    if (const char* env = std::getenv("PO_SERVE_SECONDS"); env != nullptr) {
      serve_seconds = std::atoi(env);
    }
    std::printf("\nserving for %ds; try curl now...\n", serve_seconds);
    std::fflush(stdout);
    ::sleep(static_cast<unsigned>(serve_seconds));
  }
  service.Stop();
  return 0;
}
