// The paper's deployment shape (§3.1): an HTTP frontend over the engine.
//
// Starts the scoring service on loopback, issues two requests against it
// through a real socket (the second hits the prefix cache), prints the
// JSON responses, and shuts down. Run it with no arguments; pass a port
// via PO_PORT if you want to poke it with curl while it sleeps briefly:
//
//   PO_PORT=8080 ./build/examples/scoring_server &
//   curl -s localhost:8080/v1/score -d \
//     '{"text":"user profile: likes systems papers. article: cache design. yes or no?",
//       "allowed":["yes","no"]}'
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/server/scoring_service.h"

namespace {

std::string RoundTrip(uint16_t port, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return "(connect failed)";
  }
  const std::string request = "POST /v1/score HTTP/1.1\r\nHost: localhost\r\n"
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? response : response.substr(split + 4);
}

}  // namespace

int main() {
  using namespace prefillonly;

  EngineOptions options;
  options.model = ModelConfig::Small();
  options.block_size = 8;  // text prompts are short; small blocks still share
  ScoringService service(std::move(options));

  uint16_t port = 0;
  if (const char* env = std::getenv("PO_PORT"); env != nullptr) {
    port = static_cast<uint16_t>(std::atoi(env));
  }
  if (auto status = service.Start(port); !status.ok()) {
    std::printf("failed to start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("scoring service on http://127.0.0.1:%u\n\n", service.port());

  const std::string profile =
      "user profile : reads long systems papers , bakes sourdough , rides "
      "gravel routes and collects synthesizers . history : twelve articles "
      "on schedulers and caches . ";
  const std::string q1 = R"({"text":")" + profile +
                         R"(article : gpu memory management", "allowed":["yes","no"]})";
  const std::string q2 = R"({"text":")" + profile +
                         R"(article : celebrity gossip weekly", "allowed":["yes","no"]})";

  std::printf("request 1 -> %s\n", RoundTrip(service.port(), q1).c_str());
  std::printf("request 2 -> %s\n", RoundTrip(service.port(), q2).c_str());
  std::printf("\n(request 2's n_cached shows the shared profile prefix being "
              "reused across HTTP requests.)\n");

  if (std::getenv("PO_PORT") != nullptr) {
    std::printf("\nserving for 30s; try curl now...\n");
    ::sleep(30);
  }
  service.Stop();
  return 0;
}
