// Post recommendation: the paper's motivating application (§2.3), end to
// end through the stable embedding facade (ISSUE 5).
//
// Each user has a browsing-history profile; the system scores 10 candidate
// posts per user by P(Yes) and ranks them. All of a user's requests share
// the profile prefix, so after the first request the remaining nine hit the
// prefix cache — with SRJF + continuous JCT calibration the engine drains
// those cheap cache-hit requests first, which is what keeps throughput up
// under load (Figs. 5 and 9). The candidates are submitted with ONE
// SubmitBatch call, so the scheduler co-stacks them into shared prefill
// batches deliberately (multi-item lifecycle) instead of probabilistically.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "prefillonly/client.h"

namespace {

std::vector<int32_t> RandomTokens(uint64_t& state, int64_t count, int64_t vocab) {
  std::vector<int32_t> tokens(static_cast<size_t>(count));
  for (auto& t : tokens) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    t = static_cast<int32_t>((state >> 33) % static_cast<uint64_t>(vocab));
  }
  return tokens;
}

}  // namespace

int main() {
  using namespace prefillonly;
  constexpr int kUsers = 3;
  constexpr int kPosts = 10;
  constexpr int64_t kProfileLen = 256;
  constexpr int64_t kPostLen = 16;
  constexpr int64_t kVocab = 512;

  ClientOptions options;
  options.model = "small";
  options.block_size = 32;
  options.cache_budget_tokens = 2048;
  options.max_batch_size = 4;  // let candidate posts share prefill batches
  options.retry.max_retries = 2;  // ride out transient overload sheds
  Client client(options);

  const std::vector<int32_t> kYesNo = {7, 9};
  uint64_t rng = 2024;

  std::printf("scoring %d posts for each of %d users (profile %ld tokens)\n\n",
              kPosts, kUsers, static_cast<long>(kProfileLen));
  for (int user = 0; user < kUsers; ++user) {
    const auto profile = RandomTokens(rng, kProfileLen, kVocab);

    // One batch submission per user: all candidates enter the queue
    // atomically as co-batch group-mates.
    std::vector<std::vector<int32_t>> candidates;
    for (int post = 0; post < kPosts; ++post) {
      std::vector<int32_t> tokens = profile;
      const auto post_tokens = RandomTokens(rng, kPostLen, kVocab);
      tokens.insert(tokens.end(), post_tokens.begin(), post_tokens.end());
      candidates.push_back(std::move(tokens));
    }
    ScoreOptions score_options;
    score_options.user_id = user;
    std::vector<RequestHandle> handles =
        client.SubmitBatch(std::move(candidates), kYesNo, score_options);

    // Rank by P(Yes).
    struct Ranked {
      long id;
      ScoreResult result;
    };
    std::vector<Ranked> ranked;
    for (RequestHandle& handle : handles) {
      Ranked r;
      r.id = static_cast<long>(handle.id());
      r.result = handle.Wait();
      if (r.result.ok) {
        ranked.push_back(std::move(r));
      }
    }
    std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
      return a.result.score > b.result.score;
    });
    std::printf("user %d - top 3 of %zu posts by P(Yes):\n", user, ranked.size());
    for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      std::printf(
          "  #%zu: request %ld  P(Yes)=%.4f  (cached %ld/%ld tokens, batch %ld, %.1f ms)\n",
          i + 1, ranked[i].id, ranked[i].result.score,
          static_cast<long>(ranked[i].result.n_cached),
          static_cast<long>(ranked[i].result.n_input),
          static_cast<long>(ranked[i].result.batch_size),
          ranked[i].result.execute_time_s * 1e3);
    }
  }

  const ClientStats stats = client.Stats();
  std::printf(
      "\nclient stats: %ld completed, prefix-cache hit rate %.0f%%, cache %llu "
      "bytes, peak activations %llu bytes, %.2f requests per prefill batch\n",
      static_cast<long>(stats.completed), stats.cache_hit_rate * 100.0,
      static_cast<unsigned long long>(stats.cache_bytes),
      static_cast<unsigned long long>(stats.peak_activation_bytes),
      stats.batches_dispatched > 0
          ? static_cast<double>(stats.batched_requests) /
                static_cast<double>(stats.batches_dispatched)
          : 0.0);
  return 0;
}
