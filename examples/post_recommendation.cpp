// Post recommendation: the paper's motivating application (§2.3), end to
// end on the real engine.
//
// Each user has a browsing-history profile; the system scores 10 candidate
// posts per user by P(Yes) and ranks them. All of a user's requests share
// the profile prefix, so after the first request the remaining nine hit
// the prefix cache — with SRJF + continuous JCT calibration the engine
// drains those cheap cache-hit requests first, which is what keeps
// throughput up under load (Figs. 5 and 9).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"

namespace {

using namespace prefillonly;

std::vector<int32_t> RandomTokens(Rng& rng, int64_t count, int64_t vocab) {
  std::vector<int32_t> tokens(static_cast<size_t>(count));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return tokens;
}

}  // namespace

int main() {
  using namespace prefillonly;
  constexpr int kUsers = 3;
  constexpr int kPosts = 10;
  constexpr int64_t kProfileLen = 256;
  constexpr int64_t kPostLen = 16;

  EngineOptions options;
  options.model = ModelConfig::Small();
  options.block_size = 32;
  options.cache_budget_tokens = 2048;
  Engine engine(options);

  const int32_t kYes = 7;
  const int32_t kNo = 9;
  Rng rng(2024);

  std::printf("scoring %d posts for each of %d users (profile %ld tokens)\n\n",
              kPosts, kUsers, static_cast<long>(kProfileLen));
  for (int user = 0; user < kUsers; ++user) {
    Rng user_rng = rng.Fork();
    const auto profile = RandomTokens(user_rng, kProfileLen, options.model.vocab_size);

    // Submit all candidate posts at once; the scheduler orders execution.
    std::vector<int64_t> ids;
    for (int post = 0; post < kPosts; ++post) {
      ScoringRequest request;
      request.user_id = user;
      request.tokens = profile;
      const auto post_tokens =
          RandomTokens(user_rng, kPostLen, options.model.vocab_size);
      request.tokens.insert(request.tokens.end(), post_tokens.begin(),
                            post_tokens.end());
      request.allowed_tokens = {kYes, kNo};
      auto id = engine.Submit(std::move(request));
      if (id.ok()) {
        ids.push_back(id.value());
      }
    }
    auto responses = engine.RunPending().take();

    // Rank by P(Yes).
    std::sort(responses.begin(), responses.end(),
              [](const auto& a, const auto& b) { return a.score > b.score; });
    std::printf("user %d - top 3 of %zu posts by P(Yes):\n", user, responses.size());
    for (size_t i = 0; i < 3 && i < responses.size(); ++i) {
      std::printf("  #%zu: request %ld  P(Yes)=%.4f  (cached %ld/%ld tokens, %.1f ms)\n",
                  i + 1, static_cast<long>(responses[i].request_id), responses[i].score,
                  static_cast<long>(responses[i].n_cached),
                  static_cast<long>(responses[i].n_input),
                  responses[i].execute_time_s * 1e3);
    }
  }

  const auto stats = engine.stats();
  std::printf("\nengine stats: %ld completed, prefix-cache hit rate %.0f%%, "
              "cache %zu bytes, peak activations %zu bytes\n",
              static_cast<long>(stats.completed), stats.cache.HitRate() * 100.0,
              stats.cache_bytes, stats.peak_activation_bytes);
  return 0;
}
