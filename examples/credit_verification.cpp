// Credit verification: the paper's long-context application (§2.4), under a
// hard memory budget.
//
// A bank scores a customer's multi-month credit history — a single long
// request, no prefix sharing. This is where hybrid prefilling earns its
// keep: under the same activation budget the standard pass runs out of
// memory while the hybrid pass completes, because the MLP intermediates are
// materialized chunk-by-chunk and the per-layer KV is discarded after use
// (the request generates one token; the KV has no future).
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/model/llama.h"

int main() {
  using namespace prefillonly;
  const ModelConfig model_config = ModelConfig::Small();
  constexpr int64_t kHistoryTokens = 1024;  // scaled stand-in for 40k-60k

  Rng rng(7);
  std::vector<int32_t> history(kHistoryTokens);
  for (auto& t : history) {
    t = static_cast<int32_t>(rng.NextBounded(
        static_cast<uint64_t>(model_config.vocab_size)));
  }

  // First, find the budget between the two execution strategies' peaks.
  LlamaModel model(model_config, 42);
  TrackingAllocator probe;
  PrefillOptions standard;
  standard.mode = PrefillMode::kStandard;
  if (auto r = model.Prefill(history, nullptr, standard, probe); !r.ok()) {
    std::printf("probe failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const size_t standard_peak = probe.peak_bytes();
  const size_t budget = standard_peak / 2;
  std::printf("standard prefill of %ld tokens peaks at %.2f MB\n",
              static_cast<long>(kHistoryTokens),
              static_cast<double>(standard_peak) / 1e6);
  std::printf("imposing a %.2f MB activation budget ('the GPU')\n\n",
              static_cast<double>(budget) / 1e6);

  // Engine A: standard prefill under the budget -> out of memory.
  {
    EngineOptions options;
    options.model = model_config;
    options.mode = PrefillMode::kStandard;
    options.activation_budget_bytes = budget;
    options.cache_budget_tokens = 0;
    Engine engine(options);
    ScoringRequest request;
    request.tokens = history;
    request.allowed_tokens = {3, 4};  // approve / deny
    auto response = engine.ScoreSync(std::move(request));
    std::printf("[standard engine]  %s\n",
                response.ok() ? "completed (unexpected!)"
                              : response.status().ToString().c_str());
  }

  // Engine B: hybrid prefilling under the SAME budget -> completes.
  {
    EngineOptions options;
    options.model = model_config;
    options.mode = PrefillMode::kHybrid;
    options.chunk_size = 64;
    options.activation_budget_bytes = budget;
    options.cache_budget_tokens = 0;
    Engine engine(options);
    ScoringRequest request;
    request.tokens = history;
    request.allowed_tokens = {3, 4};
    auto response = engine.ScoreSync(std::move(request));
    if (!response.ok()) {
      std::printf("[hybrid engine]    failed: %s\n",
                  response.status().ToString().c_str());
      return 1;
    }
    std::printf("[hybrid engine]    P(approve) = %.4f in %.1f ms, peak %.2f MB\n",
                response.value().score, response.value().execute_time_s * 1e3,
                static_cast<double>(engine.stats().peak_activation_bytes) / 1e6);
  }

  std::printf(
      "\nsame model, same budget: only the hybrid engine can serve the long\n"
      "request - the max-input-length expansion of Table 2 in miniature.\n");
  return 0;
}
