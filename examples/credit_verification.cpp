// Credit verification: the paper's long-context application (§2.4), under a
// hard memory budget, through the stable embedding facade (ISSUE 5).
//
// A bank scores a customer's multi-month credit history — a single long
// request, no prefix sharing. This is where hybrid prefilling earns its
// keep: under the same activation budget the standard pass runs out of
// memory while the hybrid pass completes, because the MLP intermediates are
// materialized chunk-by-chunk and the per-layer KV is discarded after use
// (the request generates one token; the KV has no future).
#include <cstdio>
#include <vector>

#include "prefillonly/client.h"

namespace {

std::vector<int32_t> FakeHistory(int64_t n_tokens) {
  // Deterministic stand-in tokens (scaled stand-in for a 40k-60k history).
  std::vector<int32_t> history(static_cast<size_t>(n_tokens));
  uint64_t state = 7;
  for (auto& t : history) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    t = static_cast<int32_t>((state >> 33) % 512);
  }
  return history;
}

}  // namespace

int main() {
  using namespace prefillonly;
  constexpr int64_t kHistoryTokens = 1024;
  const std::vector<int32_t> history = FakeHistory(kHistoryTokens);
  const std::vector<int32_t> kApproveDeny = {3, 4};

  // First, measure the standard pass's activation peak with no budget: that
  // peak is "the GPU" we will then shrink.
  uint64_t standard_peak = 0;
  {
    ClientOptions options;
    options.prefill_mode = "standard";
    options.cache_budget_tokens = 0;
    Client probe(options);
    if (ScoreResult r = probe.Score(history, kApproveDeny); !r.ok) {
      std::printf("probe failed: %s\n", r.error_message.c_str());
      return 1;
    }
    standard_peak = probe.Stats().peak_activation_bytes;
  }
  const uint64_t budget = standard_peak / 2;
  std::printf("standard prefill of %ld tokens peaks at %.2f MB\n",
              static_cast<long>(kHistoryTokens),
              static_cast<double>(standard_peak) / 1e6);
  std::printf("imposing a %.2f MB activation budget ('the GPU')\n\n",
              static_cast<double>(budget) / 1e6);

  // Client A: standard prefill under the budget -> out of memory.
  {
    ClientOptions options;
    options.prefill_mode = "standard";
    options.activation_budget_bytes = budget;
    options.cache_budget_tokens = 0;
    Client standard(options);
    ScoreResult result = standard.Score(history, kApproveDeny);
    std::printf("[standard client]  %s\n",
                result.ok ? "completed (unexpected!)"
                          : (result.error_code + ": " + result.error_message).c_str());
  }

  // Client B: hybrid prefilling under the SAME budget -> completes.
  {
    ClientOptions options;
    options.prefill_mode = "hybrid";
    options.chunk_size = 64;
    options.activation_budget_bytes = budget;
    options.cache_budget_tokens = 0;
    Client hybrid(options);
    ScoreResult result = hybrid.Score(history, kApproveDeny);
    if (!result.ok) {
      std::printf("[hybrid client]    failed: %s\n", result.error_message.c_str());
      return 1;
    }
    std::printf("[hybrid client]    P(approve) = %.4f in %.1f ms, peak %.2f MB\n",
                result.score, result.execute_time_s * 1e3,
                static_cast<double>(hybrid.Stats().peak_activation_bytes) / 1e6);
  }

  std::printf(
      "\nsame model, same budget: only the hybrid client can serve the long\n"
      "request - the max-input-length expansion of Table 2 in miniature.\n");
  return 0;
}
