// PrefillOnly — stable in-process client facade (ISSUE 5).
//
// This header is the supported way to embed the engine: it exposes the
// request lifecycle (scoring, async submission, cancellation, deadlines,
// priorities) through plain standard-library types and keeps every internal
// header (src/...) out of the include graph, so embedders — including the
// in-repo examples — compile against a surface that can stay stable while
// the engine underneath keeps moving.
//
//   #include "prefillonly/client.h"
//
//   prefillonly::ClientOptions options;
//   options.model = "small";
//   prefillonly::Client client(options);
//
//   auto result = client.Score({1, 2, 3, 4}, /*allowed=*/{7, 9});
//   if (result.ok) std::printf("P(yes) = %f\n", result.score);
//
//   // Async: submit, poll/wait, cancel.
//   auto handle = client.Submit({1, 2, 3, 4}, {7, 9});
//   handle.Cancel();                 // or handle.Wait()
//
//   // Multi-item: one call, one co-scheduled batch, results in order.
//   auto handles = client.SubmitBatch(items, {7, 9});
//
// Error handling is value-based: ScoreResult carries ok/error_code/
// error_message instead of exceptions. Error codes are the engine's status
// codes in lowercase ("invalid_argument", "deadline_exceeded",
// "cancelled", "resource_exhausted", ...), matching the HTTP API's
// error.code field (docs/API.md).
#ifndef PREFILLONLY_CLIENT_H_
#define PREFILLONLY_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace prefillonly {

// Automatic retry for transient failures (ISSUE 6; extended for the cluster
// in ISSUE 8), applied by the blocking Score/ScoreText calls. Two result
// codes are considered transient and retried up to max_retries times with
// exponential backoff plus deterministic jitter:
//   * "resource_exhausted" — the in-process analogue of HTTP 429, produced
//     by overload shedding or an exhausted allocation budget;
//   * "unavailable" — the in-process analogue of HTTP 503, produced when no
//     replica would take the request (breakers open, draining, failed
//     hand-offs) — the cluster typically recovers on the breaker-probe
//     timescale, so asking again is exactly right.
// The backoff never drops below retry_after_floor_ms once the engine has
// shed the request or the cluster reported unavailable, mirroring the
// Retry-After hint the HTTP layer sends with its 429s and 503s: asked again
// immediately, a shed engine only sheds again. Permanent failures
// (invalid_argument, cancelled, deadline_exceeded, ...) never retry.
struct RetryPolicy {
  int max_retries = 0;  // 0 = fail fast (no retries)
  int64_t initial_backoff_ms = 25;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 2000;
  // Floor applied when the failure was an overload shed ("engine
  // overloaded" — the 429 + Retry-After path) or a cluster "unavailable"
  // (the 503 + Retry-After path); matches the server's Retry-After of 1
  // second.
  int64_t retry_after_floor_ms = 1000;
  // Seed of the deterministic jitter stream; each attempt adds
  // [0, backoff/2] ms derived from it. Same seed = same delays.
  uint64_t jitter_seed = 1;
};

// Engine configuration, restricted to stable knobs with string-named
// presets; defaults reproduce EngineOptions defaults.
struct ClientOptions {
  // Remote mode (ISSUE 10): when non-empty ("host:port", e.g.
  // "127.0.0.1:8080"), the client builds NO local engine. Every call is
  // carried over a keep-alive HTTP/1.1 connection to that server's v1 API
  // (src/client/http_client.h), the api_error status<->HTTP table applied
  // in reverse, so error_code values are identical to in-process mode and
  // RetryPolicy retries the same transient classes. The engine knobs below
  // are then ignored (the server owns its engine configuration) EXCEPT
  // `model`, which still selects the tokenizer vocabulary for ScoreText /
  // TokenForWord and must match the server's preset for sensible ids.
  // Cancel() is a no-op on remote handles, and SubmitBatch items are
  // submitted individually (server-side co-batching applies only to items
  // that share one HTTP call).
  std::string endpoint;
  // Model preset: "tiny" or "small" (deterministic synthetic weights).
  std::string model = "small";
  // Prefill execution strategy: "hybrid" (the paper's engine), "standard",
  // or "chunked".
  std::string prefill_mode = "hybrid";
  int64_t chunk_size = 64;
  // 0 = hardware concurrency; 1 = serial.
  int num_threads = 0;
  // Concurrent executor lanes (requests in flight at once).
  int max_concurrent_requests = 1;
  // Max requests stacked into one prefill batch; 1 = always solo.
  int max_batch_size = 1;
  // Per-lane activation budget in bytes; 0 = unlimited. Exceeding it fails
  // the request with "resource_exhausted" (the CPU analogue of GPU OOM).
  uint64_t activation_budget_bytes = 0;
  // Prefix-cache budget in tokens (0 disables caching) and KV block size.
  int64_t cache_budget_tokens = 4096;
  int64_t cpu_offload_budget_tokens = 0;
  int block_size = 32;
  // Engine replicas behind the facade (ISSUE 8). Every replica is built
  // from this same configuration (identical deterministic weights), and
  // requests route by prefix affinity with health-gated failover — so
  // results are bitwise identical for any n_replicas >= 1.
  int n_replicas = 1;
  // Transient-failure retry for blocking calls (defaults: disabled).
  RetryPolicy retry;
};

// Per-request options; defaults mean "no deadline, default class".
struct ScoreOptions {
  int64_t user_id = 0;
  // Strict scheduling class: higher runs first; SRJF order applies within
  // a class.
  int32_t priority = 0;
  // Time budget in ms from submission to execution start; < 0 = none,
  // 0 = already expired (rejected with "deadline_exceeded"), lapsing while
  // queued fails the request before any prefill work is spent.
  int64_t deadline_ms = -1;
};

// Facade-local name: the internal engine has its own TokenProbability type
// with the same shape, and this header must not collide with it.
struct TokenScore {
  int32_t token = 0;
  double probability = 0.0;
};

struct ScoreResult {
  // False: the request failed; error_code/error_message say why and the
  // scoring fields below are meaningless.
  bool ok = false;
  std::string error_code;
  std::string error_message;

  // Probability of allowed[0] (e.g. P(Yes)); probabilities[i] corresponds
  // to allowed[i].
  double score = 0.0;
  std::vector<TokenScore> probabilities;
  int64_t n_input = 0;
  int64_t n_cached = 0;          // prefix tokens served from any cache tier
  int64_t n_cached_offload = 0;  // subset reloaded from the CPU offload tier
  int64_t batch_size = 1;        // requests co-executed in the same prefill
  double queue_time_s = 0.0;
  double execute_time_s = 0.0;
};

// Aggregate engine counters (a stable subset of the engine's stats).
struct ClientStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;           // cancelled while queued; never executed
  int64_t cancelled_in_flight = 0; // result discarded after execution began
  int64_t deadline_expired = 0;    // failed pre-dispatch by a lapsed deadline
  int64_t deadline_expired_in_flight = 0;  // aborted between prefill chunks
  int64_t shed = 0;                // rejected by overload shedding (429 path)
  int64_t client_retries = 0;      // transparent RetryPolicy re-submissions
  int64_t batches_dispatched = 0;
  int64_t batched_requests = 0;
  double cache_hit_rate = 0.0;
  uint64_t cache_bytes = 0;
  uint64_t peak_activation_bytes = 0;
};

class Client;

// One in-flight asynchronous request. Move-only; destroying an unfinished
// handle abandons the result (the request still runs to completion unless
// cancelled).
class RequestHandle {
 public:
  RequestHandle();
  ~RequestHandle();
  RequestHandle(RequestHandle&&) noexcept;
  RequestHandle& operator=(RequestHandle&&) noexcept;
  RequestHandle(const RequestHandle&) = delete;
  RequestHandle& operator=(const RequestHandle&) = delete;

  // Cluster-assigned request id (stable across replica failover); -1 if the
  // submission itself failed (then Wait() returns the submission error
  // immediately).
  int64_t id() const;
  // True once a result (success, failure, or cancellation) is available;
  // never blocks.
  bool Done() const;
  // Blocks until the request finishes; repeat calls return the same result.
  ScoreResult Wait();
  // Cancels: dequeues a still-queued request (it never executes), marks an
  // in-flight one so its result is discarded. Returns false if the request
  // already finished. Wait() then reports error_code "cancelled".
  bool Cancel();

 private:
  friend class Client;
  struct State;
  std::unique_ptr<State> state_;
};

class Client {
 public:
  explicit Client(const ClientOptions& options = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Blocking scoring ------------------------------------------------
  // Scores `tokens` against the `allowed` output token ids on the calling
  // thread.
  ScoreResult Score(const std::vector<int32_t>& tokens,
                    const std::vector<int32_t>& allowed,
                    const ScoreOptions& options = {});
  // Text front door: `text` through the deterministic built-in tokenizer,
  // `allowed_words` (e.g. {"yes", "no"}) to their token ids.
  ScoreResult ScoreText(const std::string& text,
                        const std::vector<std::string>& allowed_words,
                        const ScoreOptions& options = {});

  // --- Asynchronous lifecycle ------------------------------------------
  // Submits without blocking; the request runs under the engine's SRJF
  // dispatcher alongside everything else.
  RequestHandle Submit(std::vector<int32_t> tokens, std::vector<int32_t> allowed,
                       const ScoreOptions& options = {});
  // Submits every item as ONE co-batch group: the scheduler deliberately
  // stacks them into the same prefill batch when a lane frees (they share
  // `allowed` and `options`). Handles are index-aligned with `items`.
  std::vector<RequestHandle> SubmitBatch(std::vector<std::vector<int32_t>> items,
                                         const std::vector<int32_t>& allowed,
                                         const ScoreOptions& options = {});

  // Stable id for one word under the built-in tokenizer (to build allowed
  // lists that match ScoreText inputs).
  int32_t TokenForWord(const std::string& word) const;

  ClientStats Stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prefillonly

#endif  // PREFILLONLY_CLIENT_H_
