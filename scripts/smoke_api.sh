#!/usr/bin/env bash
# End-to-end smoke test of the v1 serving API (ISSUE 5 satellite).
#
# Boots the built example_scoring_server on a real port and exercises every
# route family over real sockets with curl: blocking score (single +
# multi-item), the async lifecycle (submit, poll to done, cancel,
# idempotent cancel-after-done), the structured error model (400/404/405/
# 504 + Allow header), health (ISSUE 6), and keep-alive. Then boots a
# second server with PO_REPLICAS=2 and exercises the cluster admin surface
# (ISSUE 8): /v1/replicas, drain -> degraded, drain-all -> 503 +
# Retry-After on both /v1/health and /v1/score, rejoin -> ok, and the
# aggregated /v1/stats shape. Finally (ISSUE 10) drives the same cluster
# server with a ~2-second po_loadgen open-loop smoke sweep and checks the
# gate, sweep JSON, and server-side counters. Asserts JSON shapes with
# python3.
#
# Usage: scripts/smoke_api.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="${BUILD_DIR}/example_scoring_server"
PORT="${SMOKE_PORT:-18472}"
BASE="http://127.0.0.1:${PORT}"

if [[ ! -x "${SERVER}" ]]; then
  echo "error: ${SERVER} not built (cmake --build ${BUILD_DIR} --target example_scoring_server)" >&2
  exit 1
fi

PO_PORT="${PORT}" PO_SERVE_SECONDS=120 "${SERVER}" >/dev/null 2>&1 &
SERVER_PID=$!
trap 'kill "${SERVER_PID}" 2>/dev/null || true' EXIT

# Wait for the port.
for _ in $(seq 1 100); do
  if curl -sf "${BASE}/v1/stats" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

# jexpr <json> <python-expr over d> — evaluates an expression on parsed JSON.
jexpr() {
  python3 -c 'import json,sys; d=json.loads(sys.argv[1]); print(eval(sys.argv[2]))' "$1" "$2"
}

echo "== single-item score =="
BODY='{"tokens":[3,1,4,1,5,9,2,6,5,3,5,9],"allowed_tokens":[10,20],"user_id":7}'
CODE=$(curl -s -o /tmp/smoke_score.json -w '%{http_code}' -d "${BODY}" "${BASE}/v1/score")
[[ "${CODE}" == 200 ]] || fail "score expected 200, got ${CODE}"
RESP=$(cat /tmp/smoke_score.json)
[[ $(jexpr "${RESP}" '0.0 < d["score"] < 1.0') == True ]] || fail "score out of range: ${RESP}"
[[ $(jexpr "${RESP}" 'd["n_input"]') == 12 ]] || fail "n_input mismatch: ${RESP}"

echo "== multi-item score: per-item results in input order =="
BODY='{"items":[{"tokens":[1,2,3,4],"allowed_tokens":[10,20]},{"tokens":[5,6,7,8],"allowed_tokens":[10,20]},{"tokens":[9,10,11,12],"allowed_tokens":[10,20]}]}'
CODE=$(curl -s -o /tmp/smoke_multi.json -w '%{http_code}' -d "${BODY}" "${BASE}/v1/score")
[[ "${CODE}" == 200 ]] || fail "multi-item expected 200, got ${CODE}"
RESP=$(cat /tmp/smoke_multi.json)
[[ $(jexpr "${RESP}" 'd["n_items"]') == 3 ]] || fail "n_items != 3: ${RESP}"
[[ $(jexpr "${RESP}" 'len(d["results"])') == 3 ]] || fail "results != 3: ${RESP}"
[[ $(jexpr "${RESP}" 'all("score" in r for r in d["results"])') == True ]] || fail "missing per-item score: ${RESP}"

echo "== expired deadline: 504 before dispatch =="
BODY='{"tokens":[1,2,3],"allowed_tokens":[10,20],"options":{"deadline_ms":0}}'
CODE=$(curl -s -o /tmp/smoke_dl.json -w '%{http_code}' -d "${BODY}" "${BASE}/v1/score")
[[ "${CODE}" == 504 ]] || fail "deadline_ms=0 expected 504, got ${CODE}"
RESP=$(cat /tmp/smoke_dl.json)
[[ $(jexpr "${RESP}" 'd["error"]["code"]') == deadline_exceeded ]] || fail "bad error code: ${RESP}"
[[ $(jexpr "${RESP}" 'd["error"]["type"]') == timeout_error ]] || fail "bad error type: ${RESP}"

echo "== malformed allowed_tokens: 400, structured error =="
CODE=$(curl -s -o /tmp/smoke_bad.json -w '%{http_code}' -d '{"tokens":[1,2],"allowed_tokens":["x"]}' "${BASE}/v1/score")
[[ "${CODE}" == 400 ]] || fail "malformed allowed_tokens expected 400, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_bad.json)" 'd["error"]["code"]') == invalid_argument ]] || fail "bad 400 shape"

echo "== async lifecycle: submit -> poll to done -> results =="
BODY='{"tokens":[2,7,1,8,2,8,1,8,2,8],"allowed_tokens":[10,20],"options":{"request_id":"smoke-1"}}'
CODE=$(curl -s -o /tmp/smoke_sub.json -w '%{http_code}' -d "${BODY}" "${BASE}/v1/requests")
[[ "${CODE}" == 202 ]] || fail "submit expected 202, got ${CODE}"
RESP=$(cat /tmp/smoke_sub.json)
[[ $(jexpr "${RESP}" 'd["id"]') == smoke-1 ]] || fail "bad submit id: ${RESP}"
[[ $(jexpr "${RESP}" 'd["status"]') == queued ]] || fail "bad submit status: ${RESP}"
STATUS=""
for _ in $(seq 1 100); do
  RESP=$(curl -s "${BASE}/v1/requests/smoke-1")
  STATUS=$(jexpr "${RESP}" 'd["status"]')
  [[ "${STATUS}" == done ]] && break
  sleep 0.05
done
[[ "${STATUS}" == done ]] || fail "request never reached done: ${RESP}"
[[ $(jexpr "${RESP}" '0.0 < d["results"][0]["score"] < 1.0') == True ]] || fail "bad done results: ${RESP}"

echo "== cancel: DELETE resolves, repeat is idempotent =="
CODE=$(curl -s -o /tmp/smoke_c1.json -w '%{http_code}' -X DELETE "${BASE}/v1/requests/smoke-1")
[[ "${CODE}" == 200 ]] || fail "cancel-after-done expected 200, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_c1.json)" 'd["status"]') == done ]] || fail "cancel-after-done must stay done"
CODE=$(curl -s -o /tmp/smoke_c2.json -w '%{http_code}' -X DELETE "${BASE}/v1/requests/smoke-1")
[[ "${CODE}" == 200 ]] || fail "second cancel expected 200, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_c2.json)" 'd["status"]') == done ]] || fail "second cancel must stay done"

BODY='{"tokens":[4,4,4,4,4,4,4,4],"allowed_tokens":[10,20],"options":{"request_id":"smoke-2"}}'
curl -s -d "${BODY}" "${BASE}/v1/requests" >/dev/null
CODE=$(curl -s -o /tmp/smoke_c3.json -w '%{http_code}' -X DELETE "${BASE}/v1/requests/smoke-2")
[[ "${CODE}" == 200 ]] || fail "cancel expected 200, got ${CODE}"
STATUS=$(jexpr "$(cat /tmp/smoke_c3.json)" 'd["status"]')
[[ "${STATUS}" == cancelled || "${STATUS}" == running || "${STATUS}" == done ]] \
  || fail "cancel returned unexpected state ${STATUS}"

echo "== unknown id: 404 =="
CODE=$(curl -s -o /dev/null -w '%{http_code}' "${BASE}/v1/requests/never-was")
[[ "${CODE}" == 404 ]] || fail "unknown id expected 404, got ${CODE}"

echo "== wrong method on known path: 405 + Allow =="
CODE=$(curl -s -o /dev/null -w '%{http_code}' "${BASE}/v1/score")
[[ "${CODE}" == 405 ]] || fail "GET /v1/score expected 405, got ${CODE}"
ALLOW=$(curl -s -D - -o /dev/null "${BASE}/v1/score" | tr -d '\r' | awk -F': ' 'tolower($1)=="allow"{print $2}')
[[ "${ALLOW}" == POST ]] || fail "405 missing Allow: POST (got '${ALLOW}')"

echo "== keep-alive: two polls on one connection =="
# curl reuses the connection for multiple URLs on one command line.
OUT=$(curl -sv -H 'Connection: keep-alive' "${BASE}/v1/stats" "${BASE}/v1/stats" 2>&1)
echo "${OUT}" | grep -q 'Re-using existing connection' || fail "connection was not reused"

echo "== health: 200 ok, wrong method 405 =="
CODE=$(curl -s -o /tmp/smoke_health.json -w '%{http_code}' "${BASE}/v1/health")
[[ "${CODE}" == 200 ]] || fail "health expected 200, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_health.json)" 'd["status"]') == ok ]] \
  || fail "health status not ok: $(cat /tmp/smoke_health.json)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "${BASE}/v1/health")
[[ "${CODE}" == 405 ]] || fail "POST /v1/health expected 405, got ${CODE}"

echo "== stats expose lifecycle counters =="
RESP=$(curl -s "${BASE}/v1/stats")
[[ $(jexpr "${RESP}" 'd["completed"] >= 5') == True ]] || fail "completed counter: ${RESP}"
[[ $(jexpr "${RESP}" '"cancelled" in d and "deadline_expired" in d') == True ]] || fail "missing lifecycle counters: ${RESP}"
[[ $(jexpr "${RESP}" '"shed" in d and "watchdog_stalls" in d and "alloc_retries" in d and "faults_injected" in d') == True ]] \
  || fail "missing robustness counters: ${RESP}"

# ---------------------------------------------------------------------------
# Multi-replica cluster surface (ISSUE 8): a fresh server, two replicas.
# ---------------------------------------------------------------------------
kill "${SERVER_PID}" 2>/dev/null || true
wait "${SERVER_PID}" 2>/dev/null || true

CPORT=$((PORT + 1))
CBASE="http://127.0.0.1:${CPORT}"
PO_PORT="${CPORT}" PO_SERVE_SECONDS=120 PO_REPLICAS=2 "${SERVER}" >/dev/null 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -sf "${CBASE}/v1/stats" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

echo "== cluster: /v1/replicas lists both replicas closed + admitting =="
RESP=$(curl -s "${CBASE}/v1/replicas")
[[ $(jexpr "${RESP}" 'd["n_replicas"]') == 2 ]] || fail "n_replicas != 2: ${RESP}"
[[ $(jexpr "${RESP}" 'all(r["breaker"] == "closed" and r["admitting"] for r in d["replicas"])') == True ]] \
  || fail "replicas not healthy at boot: ${RESP}"

echo "== cluster: drain one replica -> health degraded, still serving =="
CODE=$(curl -s -o /tmp/smoke_drain.json -w '%{http_code}' -X POST "${CBASE}/v1/replicas/0/drain")
[[ "${CODE}" == 200 ]] || fail "drain expected 200, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_drain.json)" 'd["replica"]["draining"]') == True ]] || fail "drain did not stick"
RESP=$(curl -s "${CBASE}/v1/health")
[[ $(jexpr "${RESP}" 'd["status"]') == degraded ]] || fail "health not degraded: ${RESP}"
[[ $(jexpr "${RESP}" 'd["admitting"]') == 1 ]] || fail "admitting != 1: ${RESP}"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"tokens":[1,2,3,4],"allowed_tokens":[10,20]}' "${CBASE}/v1/score")
[[ "${CODE}" == 200 ]] || fail "degraded cluster must still score, got ${CODE}"

echo "== cluster: drain ALL -> 503 + Retry-After on health AND score =="
curl -s -X POST "${CBASE}/v1/replicas/1/drain" >/dev/null
CODE=$(curl -s -o /tmp/smoke_h503.json -w '%{http_code}' "${CBASE}/v1/health")
[[ "${CODE}" == 503 ]] || fail "all-drained health expected 503, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_h503.json)" 'd["status"]') == overloaded ]] || fail "bad 503 health body"
[[ $(jexpr "$(cat /tmp/smoke_h503.json)" 'd["admitting"]') == 0 ]] || fail "admitting != 0 when all drained"
RETRY=$(curl -s -D - -o /dev/null "${CBASE}/v1/health" | tr -d '\r' | awk -F': ' 'tolower($1)=="retry-after"{print $2}')
[[ "${RETRY}" == 1 ]] || fail "health 503 missing Retry-After: 1 (got '${RETRY}')"
CODE=$(curl -s -o /tmp/smoke_s503.json -w '%{http_code}' -d '{"tokens":[1,2,3,4],"allowed_tokens":[10,20]}' "${CBASE}/v1/score")
[[ "${CODE}" == 503 ]] || fail "all-drained score expected 503, got ${CODE}"
[[ $(jexpr "$(cat /tmp/smoke_s503.json)" 'd["error"]["code"]') == unavailable ]] || fail "bad 503 error code: $(cat /tmp/smoke_s503.json)"
RETRY=$(curl -s -D - -o /dev/null -d '{"tokens":[1,2],"allowed_tokens":[10,20]}' "${CBASE}/v1/score" | tr -d '\r' | awk -F': ' 'tolower($1)=="retry-after"{print $2}')
[[ "${RETRY}" == 1 ]] || fail "score 503 missing Retry-After: 1 (got '${RETRY}')"

echo "== cluster: rejoin -> ok and scoring resumes =="
curl -s -X POST "${CBASE}/v1/replicas/0/rejoin" >/dev/null
curl -s -X POST "${CBASE}/v1/replicas/1/rejoin" >/dev/null
RESP=$(curl -s "${CBASE}/v1/health")
[[ $(jexpr "${RESP}" 'd["status"]') == ok ]] || fail "health not ok after rejoin: ${RESP}"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"tokens":[1,2,3,4],"allowed_tokens":[10,20]}' "${CBASE}/v1/score")
[[ "${CODE}" == 200 ]] || fail "score after rejoin expected 200, got ${CODE}"

echo "== cluster: stats aggregate with per-replica breakdowns =="
RESP=$(curl -s "${CBASE}/v1/stats")
[[ $(jexpr "${RESP}" 'd["n_replicas"]') == 2 ]] || fail "stats n_replicas != 2: ${RESP}"
[[ $(jexpr "${RESP}" '"routed_affinity" in d["cluster"] and "failovers" in d["cluster"] and "unavailable_rejections" in d["cluster"]') == True ]] \
  || fail "missing cluster counters: ${RESP}"
[[ $(jexpr "${RESP}" 'len(d["replicas"]) == 2') == True ]] || fail "missing per-replica breakdown: ${RESP}"
[[ $(jexpr "${RESP}" 'sum(r["submitted"] for r in d["replicas"]) == d["submitted"]') == True ]] \
  || fail "per-replica submitted does not sum to the total: ${RESP}"
[[ $(jexpr "${RESP}" 'd["cluster"]["unavailable_rejections"] >= 1') == True ]] \
  || fail "all-drained rejections not counted: ${RESP}"

# ---------------------------------------------------------------------------
# Load generator against the live server (ISSUE 10): a ~2-second open-loop
# remote smoke with po_loadgen, reusing the 2-replica cluster server above.
# ---------------------------------------------------------------------------
LOADGEN="${BUILD_DIR}/po_loadgen"
if [[ -x "${LOADGEN}" ]]; then
  echo "== loadgen: remote smoke sweep against the cluster server =="
  SLO_JSON=/tmp/smoke_slo.json
  rm -f "${SLO_JSON}"
  "${LOADGEN}" --smoke --endpoint="127.0.0.1:${CPORT}" --out="${SLO_JSON}" \
    || fail "po_loadgen --smoke exited nonzero"
  [[ -s "${SLO_JSON}" ]] || fail "po_loadgen wrote no JSON"
  RESP=$(cat "${SLO_JSON}")
  [[ $(jexpr "${RESP}" 'd["benchmark"]') == slo_loadgen ]] || fail "bad loadgen JSON shape: ${RESP}"
  [[ $(jexpr "${RESP}" 'd["gate_passed"]') == True ]] || fail "loadgen gate failed: ${RESP}"
  [[ $(jexpr "${RESP}" 'len(d["sweeps"]) >= 1') == True ]] || fail "loadgen produced no sweeps"
  [[ $(jexpr "${RESP}" 'sum(p["ok"] for s in d["sweeps"] for p in s["points"]) > 0') == True ]] \
    || fail "loadgen completed zero requests: ${RESP}"
  [[ $(jexpr "${RESP}" 'all(p["lost"] == 0 for s in d["sweeps"] for p in s["points"])') == True ]] \
    || fail "loadgen lost requests: ${RESP}"
  echo "== loadgen: server stats reflect the generated load =="
  RESP=$(curl -s "${CBASE}/v1/stats")
  [[ $(jexpr "${RESP}" 'd["completed"] >= 10') == True ]] || fail "server saw too little load: ${RESP}"
else
  echo "== loadgen: ${LOADGEN} not built, skipping (cmake --build ${BUILD_DIR} --target po_loadgen) =="
fi

echo "SMOKE OK"
