#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace prefillonly {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, EqualTimesFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CallbacksCanScheduleMoreEvents) {
  Simulation sim;
  std::vector<double> times;
  sim.Schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.ScheduleAfter(2.0, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1.0);
  EXPECT_EQ(times[1], 3.0);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(2.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2.0);
  EXPECT_FALSE(sim.empty());
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, MaxEventsBound) {
  Simulation sim;
  // Self-perpetuating event chain: Run(max) must stop it.
  std::function<void()> tick = [&] {
    sim.ScheduleAfter(1.0, tick);
  };
  sim.Schedule(0.0, tick);
  sim.Run(/*max_events=*/10);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(SimulationTest, DeterministicReplay) {
  auto run_once = [] {
    Simulation sim;
    std::vector<double> trace;
    for (int i = 0; i < 20; ++i) {
      sim.Schedule(static_cast<double>((i * 7) % 5),
                   [&trace, &sim] { trace.push_back(sim.now()); });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace prefillonly
