// HTTP/1.1 client transport tests (ISSUE 10, src/client/http_client.h).
//
// The client is exercised against the real in-repo HttpServer on real
// loopback sockets — the same pairing production uses — so keep-alive
// reuse, stale-connection resend, and transport error mapping are tested
// end to end, not against mocks.
#include "src/client/http_client.h"

#include <atomic>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/server/http_server.h"

namespace prefillonly {
namespace {

HttpServer::Handler CountingEchoHandler(std::atomic<int>& hits) {
  return [&hits](const HttpRequest& request) {
    ++hits;
    HttpResponse response;
    response.body = "{\"path\":\"" + request.path + "\",\"len\":" +
                    std::to_string(request.body.size()) + "}";
    return response;
  };
}

TEST(HttpClientTest, ParseEndpointForms) {
  auto full = ParseEndpoint("10.0.0.8:8080");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().host, "10.0.0.8");
  EXPECT_EQ(full.value().port, 8080);

  // Host defaults to loopback for ":port" and bare-port forms.
  auto colon = ParseEndpoint(":9000");
  ASSERT_TRUE(colon.ok());
  EXPECT_EQ(colon.value().host, "127.0.0.1");
  EXPECT_EQ(colon.value().port, 9000);

  auto bare = ParseEndpoint("9000");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().host, "127.0.0.1");
  EXPECT_EQ(bare.value().port, 9000);

  for (const char* bad : {"", "host:", "host:0", "host:65536", "host:abc"}) {
    auto result = ParseEndpoint(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(HttpClientTest, KeepAliveReusesOneConnection) {
  std::atomic<int> hits{0};
  HttpServer server(CountingEchoHandler(hits));
  ASSERT_TRUE(server.Start(0).ok());

  HttpClientOptions options;
  options.port = server.port();
  HttpClient client(options);
  for (int i = 0; i < 8; ++i) {
    auto response = client.Post("/echo", "payload-" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().message();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_NE(response.value().body.find("\"len\":9"), std::string::npos);
  }
  EXPECT_EQ(hits.load(), 8);
  // The whole exchange rode ONE socket: that is the keep-alive contract.
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.reconnects(), 0);
  server.Stop();
}

TEST(HttpClientTest, StaleConnectionReconnectsAndResendsOnce) {
  std::atomic<int> hits{0};
  auto first = std::make_unique<HttpServer>(CountingEchoHandler(hits));
  ASSERT_TRUE(first->Start(0).ok());
  const uint16_t port = first->port();

  HttpClientOptions options;
  options.port = port;
  HttpClient client(options);
  ASSERT_TRUE(client.Get("/a").ok());
  EXPECT_EQ(client.reconnects(), 0);

  // Simulate a keep-alive peer restarting between requests: the pooled
  // socket is now stale (EOF before any response byte), which is the one
  // provably-safe resend case.
  first->Stop();
  first.reset();
  HttpServer second(CountingEchoHandler(hits));
  ASSERT_TRUE(second.Start(port).ok());

  auto response = client.Get("/b");
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(client.reconnects(), 1);
  EXPECT_EQ(hits.load(), 2);
  second.Stop();
}

TEST(HttpClientTest, ConnectionRefusedIsUnavailable) {
  // Grab a port the OS just proved free, then close the listener.
  uint16_t free_port = 0;
  {
    HttpServer probe([](const HttpRequest&) { return HttpResponse{}; });
    ASSERT_TRUE(probe.Start(0).ok());
    free_port = probe.port();
    probe.Stop();
  }
  HttpClientOptions options;
  options.port = free_port;
  HttpClient client(options);
  auto response = client.Get("/");
  ASSERT_FALSE(response.ok());
  // kUnavailable is the transient class the facade RetryPolicy retries.
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(client.connected());
}

TEST(HttpClientTest, InvalidHostIsInvalidArgument) {
  HttpClientOptions options;
  options.host = "not-an-ip";  // DNS is out of scope: IPv4 literals only
  options.port = 1;
  HttpClient client(options);
  auto response = client.Get("/");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prefillonly
