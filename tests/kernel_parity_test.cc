// Parity tests for the blocked/threaded kernel layer (ISSUE 1).
//
// The determinism contract: the SCALAR backend's kernels must produce
// EXACTLY the bits of the retained scalar reference in src/tensor/ops_ref.h,
// at every thread count. Tolerances would hide the class of bug these tests
// exist to catch — a partition-dependent accumulation order. Since ISSUE 3
// the exact-vs-reference assertions pin KernelBackend::kScalar explicitly
// (the process default may resolve to avx2, which is tolerance-parity only
// — tests/dispatch_test.cc covers that tier); assertions about
// chunk/thread invariance WITHIN a backend run on the default backend, so
// the CI matrix exercises them per backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/rope_table.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_dispatch.h"
#include "src/tensor/ops_ref.h"

namespace prefillonly {
namespace {

const int kThreadCounts[] = {1, 2, 8};

// The scalar backend table: the subject of every exact-vs-reference check.
const KernelOps* Scalar() { return GetKernelOps(KernelBackend::kScalar); }

std::vector<float> RandomVec(int64_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = rng.NextUniformFloat(scale);
  }
  return v;
}

// ------------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ShardRangeCoversExactly) {
  for (int64_t n : {0, 1, 5, 7, 64, 1001}) {
    for (int shards : {1, 2, 3, 8}) {
      int64_t covered = 0;
      int64_t prev_end = 0;
      for (int s = 0; s < shards; ++s) {
        const auto [b, e] = ThreadPool::ShardRange(n, shards, s);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " shards=" << shards;
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const int64_t n = 1000;
    std::vector<int> counts(static_cast<size_t>(n), 0);
    pool.ParallelFor(n, /*grain=*/1, [&](int64_t b, int64_t e, int /*worker*/) {
      for (int64_t i = b; i < e; ++i) {
        ++counts[static_cast<size_t>(i)];
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[static_cast<size_t>(i)], 1) << "i=" << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIndicesAreDistinctAndInRange) {
  ThreadPool pool(4);
  const int64_t n = 4000;
  std::vector<int> owner(static_cast<size_t>(n), -1);
  pool.ParallelFor(n, /*grain=*/1, [&](int64_t b, int64_t e, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, pool.num_threads());
    for (int64_t i = b; i < e; ++i) {
      owner[static_cast<size_t>(i)] = worker;
    }
  });
  // Contiguous ranges: owner is non-decreasing.
  for (int64_t i = 1; i < n; ++i) {
    EXPECT_LE(owner[static_cast<size_t>(i - 1)], owner[static_cast<size_t>(i)]);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, /*grain=*/1, [&](int64_t b, int64_t e, int /*worker*/) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) {
        local += i;
      }
      sum += local;
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

// --------------------------------------------------------------------- MatMul

void ExpectMatMulParity(int64_t m, int64_t k, int64_t n, uint64_t seed) {
  const auto a = RandomVec(m * k, seed);
  const auto b = RandomVec(k * n, seed + 1);
  std::vector<float> want(static_cast<size_t>(m * n));
  ref::MatMul(a.data(), b.data(), want.data(), m, k, n);

  std::vector<float> got(static_cast<size_t>(m * n));
  MatMul(a.data(), b.data(), got.data(), m, k, n, nullptr, Scalar());
  EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
      << "serial m=" << m << " k=" << k << " n=" << n;

  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::fill(got.begin(), got.end(), -1.0f);
    MatMul(a.data(), b.data(), got.data(), m, k, n, &pool, Scalar());
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads << " m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(KernelParityTest, MatMulExactAcrossThreadCounts) {
  // Shapes straddle the k-panel (64) and unroll (4) boundaries and include
  // m smaller and larger than any thread count.
  ExpectMatMulParity(1, 64, 17, 10);
  ExpectMatMulParity(3, 5, 7, 11);
  ExpectMatMulParity(7, 63, 33, 12);
  ExpectMatMulParity(16, 65, 64, 13);
  ExpectMatMulParity(33, 130, 41, 14);
  ExpectMatMulParity(128, 256, 96, 15);
  // m=1 with n past the column-parallel grain: the GEMV column path.
  ExpectMatMulParity(1, 100, 2048, 16);
}

TEST(KernelParityTest, MatMulRowChunkingStillBitwiseIdentical) {
  // The hybrid-prefill property, now for the blocked kernel under threads.
  const int64_t m = 48;
  const int64_t k = 100;
  const int64_t n = 37;
  const auto a = RandomVec(m * k, 21);
  const auto b = RandomVec(k * n, 22);
  std::vector<float> full(static_cast<size_t>(m * n));
  ThreadPool pool(8);
  MatMul(a.data(), b.data(), full.data(), m, k, n, &pool);

  for (int64_t chunk : {1, 5, 16, 48}) {
    std::vector<float> chunked(static_cast<size_t>(m * n));
    for (int64_t r0 = 0; r0 < m; r0 += chunk) {
      const int64_t cs = std::min(chunk, m - r0);
      MatMul(a.data() + r0 * k, b.data(), chunked.data() + r0 * n, cs, k, n, &pool);
    }
    EXPECT_EQ(std::memcmp(full.data(), chunked.data(), full.size() * sizeof(float)), 0)
        << "chunk=" << chunk;
  }
}

TEST(KernelParityTest, MatMulDenseResultUnaffectedByZeros) {
  // The seed kernel's `a_val == 0` skip is gone: zeros in `a` flow through
  // the same code path as every other value.
  const int64_t m = 9;
  const int64_t k = 40;
  const int64_t n = 23;
  auto a = RandomVec(m * k, 31);
  for (size_t i = 0; i < a.size(); i += 3) {
    a[i] = 0.0f;
  }
  const auto b = RandomVec(k * n, 32);
  std::vector<float> want(static_cast<size_t>(m * n));
  ref::MatMul(a.data(), b.data(), want.data(), m, k, n);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::vector<float> got(static_cast<size_t>(m * n));
    MatMul(a.data(), b.data(), got.data(), m, k, n, &pool, Scalar());
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0);
  }
}

// ------------------------------------------------------------- Row kernels

TEST(KernelParityTest, RmsNormExactAcrossThreadCounts) {
  const int64_t m = 53;
  const int64_t h = 96;
  const auto x = RandomVec(m * h, 41);
  const auto w = RandomVec(h, 42);
  std::vector<float> want(static_cast<size_t>(m * h));
  ref::RmsNormRows(x.data(), w.data(), want.data(), m, h);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::vector<float> got(static_cast<size_t>(m * h));
    RmsNormRows(x.data(), w.data(), got.data(), m, h, 1e-5f, &pool, Scalar());
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads;
  }
}

TEST(KernelParityTest, SwiGluExactAcrossThreadCounts) {
  const int64_t m = 37;
  const int64_t inter = 64;
  const auto gate_up = RandomVec(m * 2 * inter, 43, 2.0f);
  std::vector<float> want(static_cast<size_t>(m * inter));
  ref::SwiGluRows(gate_up.data(), want.data(), m, inter);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    std::vector<float> got(static_cast<size_t>(m * inter));
    SwiGluRows(gate_up.data(), got.data(), m, inter, &pool, Scalar());
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads;
  }
}

TEST(KernelParityTest, AddInPlaceExactAcrossThreadCounts) {
  const int64_t count = 100003;  // prime: uneven shards
  const auto b = RandomVec(count, 44);
  auto want = RandomVec(count, 45);
  ref::AddInPlace(want.data(), b.data(), count);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto got = RandomVec(count, 45);
    AddInPlace(got.data(), b.data(), count, &pool);
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads;
  }
}

// ------------------------------------------------------------------- RoPE

TEST(KernelParityTest, RopeTableMatchesRecomputeExactly) {
  const int64_t rows = 29;
  const int64_t n_heads = 4;
  const int64_t head_dim = 16;
  const float theta = 10000.0f;
  std::vector<int32_t> positions(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    positions[static_cast<size_t>(i)] = static_cast<int32_t>(3 * i + 1);
  }
  auto want = RandomVec(rows * n_heads * head_dim, 51);
  auto orig = want;
  ref::ApplyRope(want.data(), rows, n_heads, head_dim, positions, theta);

  RopeTable table(head_dim, theta);
  table.EnsureCapacity(3 * rows + 2);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto got = orig;
    ApplyRopeWithTable(got.data(), rows, n_heads, head_dim, positions, table, &pool);
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads;
  }
}

TEST(KernelParityTest, RopeFallbackBeyondCapacityMatchesReference) {
  // Positions past the materialized table take the recompute fallback; it
  // must be bitwise identical to the reference (and to table rows).
  const int64_t rows = 7;
  const int64_t n_heads = 2;
  const int64_t head_dim = 16;
  const float theta = 10000.0f;
  std::vector<int32_t> positions{0, 5, 4999, 5000, 12345, 3, 99999};
  auto want = RandomVec(rows * n_heads * head_dim, 53);
  auto orig = want;
  ref::ApplyRope(want.data(), rows, n_heads, head_dim, positions, theta);

  RopeTable table(head_dim, theta);
  table.EnsureCapacity(10);  // most positions above are beyond capacity
  ASSERT_LT(table.capacity(), 4999);
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    auto got = orig;
    ApplyRopeWithTable(got.data(), rows, n_heads, head_dim, positions, table, &pool);
    EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "threads=" << threads;
  }
}

TEST(KernelParityTest, RopeTableLazyGrowthPreservesEarlierRows) {
  RopeTable table(16, 10000.0f);
  table.EnsureCapacity(10);
  std::vector<float> before(table.cos_row(7), table.cos_row(7) + 8);
  table.EnsureCapacity(5000);  // multiple new blocks
  EXPECT_GE(table.capacity(), 5000);
  EXPECT_EQ(std::memcmp(before.data(), table.cos_row(7), before.size() * sizeof(float)),
            0);
}

TEST(KernelParityTest, OpsApplyRopeStillMatchesReference) {
  // The recomputing ops.cc variant stays available and agrees with ref.
  const int64_t rows = 5;
  const int64_t n_heads = 2;
  const int64_t head_dim = 8;
  std::vector<int32_t> positions{0, 2, 4, 9, 1};
  auto want = RandomVec(rows * n_heads * head_dim, 52);
  auto got = want;
  ref::ApplyRope(want.data(), rows, n_heads, head_dim, positions, 10000.0f);
  ApplyRope(got.data(), rows, n_heads, head_dim, positions, 10000.0f);
  EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0);
}

}  // namespace
}  // namespace prefillonly
