#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/workload/dataset.h"
#include "src/workload/router.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {
namespace {

// ----------------------------------------------------- Post recommendation

TEST(PostRecTest, MatchesTable1Shape) {
  const Dataset data = MakePostRecommendationDataset({});
  EXPECT_EQ(data.requests.size(), 20u * 50u);
  EXPECT_EQ(data.UserCount(), 20);
  EXPECT_DOUBLE_EQ(data.RequestsPerUser(), 50.0);
  // Table 1: ~14M tokens total.
  EXPECT_GT(data.TotalTokens(), 10'000'000);
  EXPECT_LT(data.TotalTokens(), 18'000'000);
  // Profile lengths clamped to [11k, 17k]; +150-token post.
  for (const auto& r : data.requests) {
    EXPECT_GE(r.n_tokens, 11'000 + 150);
    EXPECT_LE(r.n_tokens, 17'000 + 150);
  }
}

TEST(PostRecTest, RequestsOfOneUserSharePrefix) {
  PostRecommendationConfig config;
  config.n_users = 2;
  config.posts_per_user = 3;
  // Fixed 512-token profile (2 blocks at block 256) + 300-token post: the
  // third chain block is guaranteed to contain post tokens.
  config.profile_min_tokens = 512;
  config.profile_max_tokens = 512;
  config.post_tokens = 300;
  const Dataset data = MakePostRecommendationDataset(config);
  ASSERT_EQ(data.requests.size(), 6u);

  const auto& a = data.requests[0];
  const auto& b = data.requests[1];
  ASSERT_EQ(a.user_id, b.user_id);
  ASSERT_EQ(a.block_hashes.size(), 3u);
  // Shared profile: the two profile blocks equal; the post block differs.
  EXPECT_EQ(a.block_hashes[0], b.block_hashes[0]);
  EXPECT_EQ(a.block_hashes[1], b.block_hashes[1]);
  EXPECT_NE(a.block_hashes[2], b.block_hashes[2]);

  // Different users share nothing.
  const auto& c = data.requests[3];
  ASSERT_NE(a.user_id, c.user_id);
  EXPECT_NE(a.block_hashes[0], c.block_hashes[0]);
}

TEST(PostRecTest, DeterministicAcrossCalls) {
  const Dataset a = MakePostRecommendationDataset({});
  const Dataset b = MakePostRecommendationDataset({});
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].n_tokens, b.requests[i].n_tokens);
    EXPECT_EQ(a.requests[i].block_hashes, b.requests[i].block_hashes);
  }
}

TEST(PostRecTest, KeepTokensPopulatesIds) {
  PostRecommendationConfig config;
  config.n_users = 1;
  config.posts_per_user = 2;
  config.keep_tokens = true;
  const Dataset data = MakePostRecommendationDataset(config);
  for (const auto& r : data.requests) {
    EXPECT_EQ(static_cast<int64_t>(r.tokens.size()), r.n_tokens);
    for (int32_t t : r.tokens) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, config.vocab);
    }
  }
}

// ----------------------------------------------------- Credit verification

TEST(CreditTest, MatchesTable1Shape) {
  const Dataset data = MakeCreditVerificationDataset({});
  EXPECT_EQ(data.requests.size(), 60u);
  EXPECT_EQ(data.UserCount(), 60);
  // Table 1: ~3M tokens total, lengths in [40k, 60k].
  EXPECT_GT(data.TotalTokens(), 2'400'000);
  EXPECT_LT(data.TotalTokens(), 3'600'000);
  for (const auto& r : data.requests) {
    EXPECT_GE(r.n_tokens, 40'000);
    EXPECT_LE(r.n_tokens, 60'000);
  }
}

TEST(CreditTest, NoSharedPrefixes) {
  CreditVerificationConfig config;
  config.n_users = 10;
  const Dataset data = MakeCreditVerificationDataset(config);
  std::set<uint64_t> first_blocks;
  for (const auto& r : data.requests) {
    first_blocks.insert(r.block_hashes[0]);
  }
  EXPECT_EQ(first_blocks.size(), data.requests.size());
}

// ----------------------------------------------------------------- Arrivals

TEST(ArrivalsTest, AllAtOnceZeroes) {
  Dataset data = MakeCreditVerificationDataset({.n_users = 5});
  AssignAllAtOnce(data);
  for (const auto& r : data.requests) {
    EXPECT_EQ(r.arrival_time, 0.0);
  }
}

TEST(ArrivalsTest, PoissonMeanRateApproximatesQps) {
  CreditVerificationConfig config;
  config.n_users = 2000;
  config.min_tokens = 100;
  config.max_tokens = 200;
  Dataset data = MakeCreditVerificationDataset(config);
  const double qps = 10.0;
  AssignPoissonArrivals(data, qps, /*seed=*/3);
  const double makespan = data.requests.back().arrival_time;
  EXPECT_NEAR(static_cast<double>(data.requests.size()) / makespan, qps, 1.0);
  // Nondecreasing arrival order.
  for (size_t i = 1; i < data.requests.size(); ++i) {
    EXPECT_GE(data.requests[i].arrival_time, data.requests[i - 1].arrival_time);
  }
}

TEST(ArrivalsTest, UserBurstsClusterInTime) {
  PostRecommendationConfig config;
  config.n_users = 4;
  config.posts_per_user = 5;
  config.profile_mean_tokens = 500;
  config.profile_min_tokens = 400;
  config.profile_max_tokens = 600;
  Dataset data = MakePostRecommendationDataset(config);
  AssignUserBurstArrivals(data, /*qps=*/20.0, /*seed=*/5, /*intra_burst_gap_s=*/0.01);
  // Within a user: nondecreasing, tightly spaced; across users: distinct
  // session starts.
  std::set<double> starts;
  double prev = -1.0;
  int64_t prev_user = -1;
  for (const auto& r : data.requests) {
    if (r.user_id != prev_user) {
      starts.insert(r.arrival_time);
      prev_user = r.user_id;
    } else {
      EXPECT_GE(r.arrival_time, prev);
      EXPECT_LT(r.arrival_time - prev, 1.0);  // jitter stays small
    }
    prev = r.arrival_time;
  }
  EXPECT_EQ(starts.size(), 4u);
}

TEST(ArrivalsTest, ZeroGapRecoversSharedBurstArrival) {
  PostRecommendationConfig config;
  config.n_users = 2;
  config.posts_per_user = 3;
  config.profile_min_tokens = 400;
  config.profile_max_tokens = 600;
  Dataset data = MakePostRecommendationDataset(config);
  AssignUserBurstArrivals(data, 10.0, 5, /*intra_burst_gap_s=*/0.0);
  EXPECT_EQ(data.requests[0].arrival_time, data.requests[1].arrival_time);
  EXPECT_EQ(data.requests[1].arrival_time, data.requests[2].arrival_time);
  EXPECT_NE(data.requests[2].arrival_time, data.requests[3].arrival_time);
}

// --------------------------------------------------------------- Tokenizer

TEST(TokenizerTest, DeterministicAndInRange) {
  HashTokenizer tok(32000, 32);
  const auto a = tok.Encode("Here is the user profile: likes systems papers.");
  const auto b = tok.Encode("Here is the user profile: likes systems papers.");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  for (int32_t t : a) {
    EXPECT_GE(t, 32);
    EXPECT_LT(t, 32000);
  }
}

TEST(TokenizerTest, SharedTextPrefixSharesTokenPrefix) {
  HashTokenizer tok(32000);
  const std::string profile = "user 42 reads distributed systems and databases";
  const auto a = tok.Encode(profile + " . candidate post: cats");
  const auto b = tok.Encode(profile + " . candidate post: compilers");
  const auto prefix_len = tok.Encode(profile).size();
  ASSERT_GT(a.size(), prefix_len);
  for (size_t i = 0; i < prefix_len; ++i) {
    EXPECT_EQ(a[i], b[i]) << "position " << i;
  }
  EXPECT_NE(a.back(), b.back());
}

TEST(TokenizerTest, CaseInsensitive) {
  HashTokenizer tok(1000);
  EXPECT_EQ(tok.TokenFor("Yes"), tok.TokenFor("yes"));
  EXPECT_EQ(tok.Encode("YES no"), tok.Encode("yes NO"));
}

TEST(TokenizerTest, PunctuationIsSeparate) {
  HashTokenizer tok(1000);
  const auto with = tok.Encode("hello, world");
  const auto without = tok.Encode("hello world");
  EXPECT_EQ(with.size(), 3u);
  EXPECT_EQ(without.size(), 2u);
  EXPECT_EQ(with[0], without[0]);
  EXPECT_EQ(with[2], without[1]);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  HashTokenizer tok(1000);
  EXPECT_TRUE(tok.Encode("").empty());
  EXPECT_TRUE(tok.Encode("   \t\n ").empty());
}

TEST(TokenizerTest, ReservedRangeIsNeverEmitted) {
  HashTokenizer tok(256, 16);
  // Hammer many words; none may fall below the reserved boundary.
  for (int i = 0; i < 500; ++i) {
    const int32_t t = tok.TokenFor("word" + std::to_string(i));
    EXPECT_GE(t, 16);
    EXPECT_LT(t, 256);
  }
}

// ------------------------------------------------------------------ Router

TEST(RouterTest, StickyPerUser) {
  UserRoundRobinRouter router(2);
  const int a = router.Route(10);
  const int b = router.Route(20);
  EXPECT_NE(a, b);  // round robin
  EXPECT_EQ(router.Route(10), a);
  EXPECT_EQ(router.Route(20), b);
  EXPECT_EQ(router.Route(10), a);
}

TEST(RouterTest, RoundRobinBalances) {
  UserRoundRobinRouter router(3);
  int counts[3] = {0, 0, 0};
  for (int64_t user = 0; user < 9; ++user) {
    ++counts[router.Route(user)];
  }
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
}

TEST(RouterTest, AssignmentTableIsBoundedByLruEviction) {
  // ISSUE 8 regression: an unbounded stream of distinct users must not grow
  // the sticky map past max_tracked_users.
  UserRoundRobinRouter router(2, /*max_tracked_users=*/4);
  for (int64_t user = 0; user < 100; ++user) {
    router.Route(user);
    EXPECT_LE(router.tracked_users(), 4u);
  }
  EXPECT_EQ(router.tracked_users(), 4u);
  EXPECT_EQ(router.max_tracked_users(), 4u);
  // The last 4 users are still tracked, so routing them is a no-op on the
  // table; anyone older was forgotten.
  for (int64_t user = 96; user < 100; ++user) {
    router.Route(user);
    EXPECT_EQ(router.tracked_users(), 4u);
  }
}

TEST(RouterTest, RoutingRefreshesRecencySoHotUsersSurvive) {
  UserRoundRobinRouter router(2, /*max_tracked_users=*/2);
  const int hot = router.Route(1);
  router.Route(2);
  // Touch user 1: user 2 is now the LRU entry, so user 3 evicts 2, not 1.
  EXPECT_EQ(router.Route(1), hot);
  router.Route(3);
  EXPECT_EQ(router.Route(1), hot);  // survived: still sticky, no table churn
  EXPECT_EQ(router.tracked_users(), 2u);
}

TEST(RouterTest, EvictedUserReentersRoundRobinLikeANewcomer) {
  UserRoundRobinRouter router(3, /*max_tracked_users=*/1);
  const int first = router.Route(42);   // next_ was 0
  router.Route(7);                      // evicts 42, takes instance 1
  const int again = router.Route(42);   // re-assigned round-robin: instance 2
  EXPECT_EQ(first, 0);
  EXPECT_EQ(again, 2);
  // Stickiness within the tracked window is unaffected by past evictions.
  EXPECT_EQ(router.Route(42), again);
}

}  // namespace
}  // namespace prefillonly
