// Tests for the kernel-backend dispatch layer (ISSUE 3).
//
// The two-tier determinism contract (docs/PERFORMANCE.md "Kernel
// backends"):
//
//  * WITHIN a backend: bitwise identical results across thread counts, row
//    chunkings, column partitions, prefill modes, and packed-vs-dense
//    weight layout.
//  * ACROSS backends: tolerance parity against the scalar reference —
//    8-lane FMA accumulation legitimately reorders (and fuses) float adds.
//
// Every avx2-forced case is skipped with a clear message when the host
// lacks AVX2+FMA, so the suite stays green on any machine while the CI
// matrix (PREFILLONLY_KERNEL_BACKEND = scalar / auto) exercises both
// backends end to end where it can.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/model/llama.h"
#include "src/tensor/ops.h"
#include "src/tensor/ops_dispatch.h"
#include "src/tensor/ops_ref.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tracking_allocator.h"

namespace prefillonly {
namespace {

#define PO_SKIP_WITHOUT_AVX2()                                            \
  if (!Avx2Available()) {                                                 \
    GTEST_SKIP() << "host lacks AVX2+FMA (or the backend TU was built "   \
                    "without it); avx2 backend cases skipped";            \
  }

std::vector<float> RandomVec(int64_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) {
    x = rng.NextUniformFloat(scale);
  }
  return v;
}

// |a - b| <= abs_tol + rel_tol * |b| elementwise.
void ExpectClose(const float* a, const float* b, int64_t n, double abs_tol,
                 double rel_tol, const std::string& what) {
  for (int64_t i = 0; i < n; ++i) {
    const double diff = std::abs(static_cast<double>(a[i]) - b[i]);
    const double bound = abs_tol + rel_tol * std::abs(static_cast<double>(b[i]));
    ASSERT_LE(diff, bound) << what << " diverges at element " << i << ": " << a[i]
                           << " vs " << b[i];
  }
}

// ------------------------------------------------------------------ prepack

TEST(PrepackTest, RoundTripIsBitExact) {
  // Shapes straddle the 16-column panel boundary (n % 16 ∈ {0, odd}).
  for (const auto [k, n] : {std::pair<int64_t, int64_t>{7, 16},
                            {64, 48},
                            {33, 37},
                            {5, 3},
                            {128, 250}}) {
    const auto b = RandomVec(k * n, 1000 + k + n);
    TrackingAllocator alloc;
    const PackedMatrix packed = PackWeights(alloc, b.data(), k, n, "test.pack");
    ASSERT_EQ(packed.k, k);
    ASSERT_EQ(packed.n, n);
    std::vector<float> unpacked(static_cast<size_t>(k * n), -7.0f);
    UnpackWeights(packed, unpacked.data());
    EXPECT_EQ(std::memcmp(b.data(), unpacked.data(), b.size() * sizeof(float)), 0)
        << "k=" << k << " n=" << n;
  }
}

TEST(PrepackTest, PaddedLanesAreZero) {
  const int64_t k = 9;
  const int64_t n = 21;  // last panel holds 5 real + 11 padded columns
  const auto b = RandomVec(k * n, 7);
  TrackingAllocator alloc;
  const PackedMatrix packed = PackWeights(alloc, b.data(), k, n, "test.pack");
  ASSERT_EQ(packed.n_panels(), 2);
  const int64_t last_panel = packed.n_panels() - 1;
  const int64_t first_pad = n - last_panel * kPackPanelWidth;  // real columns
  ASSERT_LT(first_pad, kPackPanelWidth);  // the shape must leave padded lanes
  const float* last = packed.panel(last_panel);
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t lane = first_pad; lane < kPackPanelWidth; ++lane) {
      EXPECT_EQ(last[kk * kPackPanelWidth + lane], 0.0f)
          << "kk=" << kk << " lane=" << lane;
    }
  }
}

// ----------------------------------------------------------------- resolve

TEST(DispatchTest, NamesRoundTrip) {
  for (KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2}) {
    const auto parsed = ParseKernelBackend(KernelBackendName(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(ParseKernelBackend("sse9").has_value());
}

TEST(DispatchTest, ResolutionNeverYieldsAuto) {
  for (KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2}) {
    const KernelBackend resolved = ResolveKernelBackend(b);
    EXPECT_NE(resolved, KernelBackend::kAuto);
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->backend, resolved);
  }
  // Forcing scalar always sticks; forcing avx2 sticks iff available.
  EXPECT_EQ(ResolveKernelBackend(KernelBackend::kScalar), KernelBackend::kScalar);
  EXPECT_EQ(ResolveKernelBackend(KernelBackend::kAvx2),
            Avx2Available() ? KernelBackend::kAvx2 : KernelBackend::kScalar);
}

// ------------------------------------------------------- avx2 kernel parity

TEST(DispatchTest, Avx2MatMulToleranceParityVsReference) {
  PO_SKIP_WITHOUT_AVX2();
  const KernelOps* avx2 = GetKernelOps(KernelBackend::kAvx2);
  for (const auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{5, 64, 48},
                               {33, 130, 41},
                               {1, 100, 2048},
                               {128, 512, 96}}) {
    const auto a = RandomVec(m * k, 100 + m);
    const auto b = RandomVec(k * n, 200 + n);
    std::vector<float> want(static_cast<size_t>(m * n));
    ref::MatMul(a.data(), b.data(), want.data(), m, k, n);
    std::vector<float> got(static_cast<size_t>(m * n));
    MatMul(a.data(), b.data(), got.data(), m, k, n, nullptr, avx2);
    // k <= 512 accumulation: generous but tight enough to catch indexing
    // bugs (a wrong element would be off by O(1), not O(1e-4)).
    ExpectClose(got.data(), want.data(), m * n, 1e-4, 1e-4, "avx2 matmul");
  }
}

TEST(DispatchTest, Avx2MatMulBitwiseAcrossThreadsAndChunks) {
  PO_SKIP_WITHOUT_AVX2();
  const KernelOps* avx2 = GetKernelOps(KernelBackend::kAvx2);
  const int64_t m = 48, k = 100, n = 37;
  const auto a = RandomVec(m * k, 21);
  const auto b = RandomVec(k * n, 22);
  std::vector<float> full(static_cast<size_t>(m * n));
  MatMul(a.data(), b.data(), full.data(), m, k, n, nullptr, avx2);

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int64_t chunk : {1, 5, 16, 48}) {
      std::vector<float> chunked(static_cast<size_t>(m * n), -1.0f);
      for (int64_t r0 = 0; r0 < m; r0 += chunk) {
        const int64_t cs = std::min(chunk, m - r0);
        MatMul(a.data() + r0 * k, b.data(), chunked.data() + r0 * n, cs, k, n,
               &pool, avx2);
      }
      EXPECT_EQ(
          std::memcmp(full.data(), chunked.data(), full.size() * sizeof(float)), 0)
          << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(DispatchTest, Avx2PackedMatMulBitwiseMatchesDenseAvx2) {
  PO_SKIP_WITHOUT_AVX2();
  // Dense and packed kernels build the identical per-element FMA chain
  // (ascending k), so the layouts agree BITWISE within the avx2 backend.
  const KernelOps* avx2 = GetKernelOps(KernelBackend::kAvx2);
  for (const auto [m, k, n] : {std::tuple<int64_t, int64_t, int64_t>{9, 40, 23},
                               {48, 100, 64},
                               {1, 64, 250},
                               {130, 64, 96}}) {
    const auto a = RandomVec(m * k, 300 + m);
    const auto b = RandomVec(k * n, 400 + n);
    TrackingAllocator alloc;
    const PackedMatrix packed = PackWeights(alloc, b.data(), k, n, "test.pack");

    std::vector<float> dense(static_cast<size_t>(m * n));
    MatMul(a.data(), b.data(), dense.data(), m, k, n, nullptr, avx2);

    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      std::vector<float> got(static_cast<size_t>(m * n), -1.0f);
      MatMulPacked(a.data(), packed, got.data(), m, &pool, avx2);
      EXPECT_EQ(std::memcmp(dense.data(), got.data(), dense.size() * sizeof(float)),
                0)
          << "m=" << m << " n=" << n << " threads=" << threads;
    }
  }
}

TEST(DispatchTest, Avx2GemvColumnPartitionBitwise) {
  PO_SKIP_WITHOUT_AVX2();
  // The m == 1 path shards columns (dense) / panels (packed) across
  // workers; partition boundaries must not leak into the bits.
  const KernelOps* avx2 = GetKernelOps(KernelBackend::kAvx2);
  const int64_t k = 130, n = 2048 + 5;  // past the 512-column grain, odd tail
  const auto a = RandomVec(k, 51);
  const auto b = RandomVec(k * n, 52);
  TrackingAllocator alloc;
  const PackedMatrix packed = PackWeights(alloc, b.data(), k, n, "test.pack");

  std::vector<float> serial(static_cast<size_t>(n));
  MatMul(a.data(), b.data(), serial.data(), 1, k, n, nullptr, avx2);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<float> dense(static_cast<size_t>(n), -1.0f);
    MatMul(a.data(), b.data(), dense.data(), 1, k, n, &pool, avx2);
    EXPECT_EQ(std::memcmp(serial.data(), dense.data(), serial.size() * sizeof(float)),
              0)
        << "dense threads=" << threads;
    std::vector<float> pk(static_cast<size_t>(n), -1.0f);
    MatMulPacked(a.data(), packed, pk.data(), 1, &pool, avx2);
    EXPECT_EQ(std::memcmp(serial.data(), pk.data(), serial.size() * sizeof(float)), 0)
        << "packed threads=" << threads;
  }
}

TEST(DispatchTest, Avx2RowKernelsToleranceVsRefBitwiseAcrossThreads) {
  PO_SKIP_WITHOUT_AVX2();
  const KernelOps* avx2 = GetKernelOps(KernelBackend::kAvx2);
  const int64_t m = 53, h = 100;  // h % 8 != 0: exercises the scalar tails

  // RMSNorm.
  const auto x = RandomVec(m * h, 61);
  const auto w = RandomVec(h, 62);
  std::vector<float> ref_y(static_cast<size_t>(m * h));
  ref::RmsNormRows(x.data(), w.data(), ref_y.data(), m, h);
  std::vector<float> serial_y(static_cast<size_t>(m * h));
  RmsNormRows(x.data(), w.data(), serial_y.data(), m, h, 1e-5f, nullptr, avx2);
  ExpectClose(serial_y.data(), ref_y.data(), m * h, 1e-5, 1e-5, "avx2 rmsnorm");

  // SwiGLU (vector exp vs std::exp: the loosest cross-backend pairing).
  const auto gate_up = RandomVec(m * 2 * h, 63, 2.0f);
  std::vector<float> ref_s(static_cast<size_t>(m * h));
  ref::SwiGluRows(gate_up.data(), ref_s.data(), m, h);
  std::vector<float> serial_s(static_cast<size_t>(m * h));
  SwiGluRows(gate_up.data(), serial_s.data(), m, h, nullptr, avx2);
  ExpectClose(serial_s.data(), ref_s.data(), m * h, 1e-5, 1e-5, "avx2 swiglu");

  // Softmax: probabilities sum to ~1 and match scalar closely.
  auto row_scalar = RandomVec(101, 64, 4.0f);
  auto row_avx2 = row_scalar;
  SoftmaxRow(row_scalar.data(), 101, GetKernelOps(KernelBackend::kScalar));
  SoftmaxRow(row_avx2.data(), 101, avx2);
  ExpectClose(row_avx2.data(), row_scalar.data(), 101, 1e-6, 1e-4, "avx2 softmax");

  // Dot / Axpy against scalar.
  const auto va = RandomVec(100, 65);
  const auto vb = RandomVec(100, 66);
  const float d_scalar = Dot(va.data(), vb.data(), 100,
                             GetKernelOps(KernelBackend::kScalar));
  const float d_avx2 = Dot(va.data(), vb.data(), 100, avx2);
  EXPECT_NEAR(d_avx2, d_scalar, 1e-4);

  // Threaded bitwise invariance for the row-parallel kernels.
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    std::vector<float> y(static_cast<size_t>(m * h), -1.0f);
    RmsNormRows(x.data(), w.data(), y.data(), m, h, 1e-5f, &pool, avx2);
    EXPECT_EQ(std::memcmp(serial_y.data(), y.data(), y.size() * sizeof(float)), 0)
        << "rmsnorm threads=" << threads;
    std::vector<float> s(static_cast<size_t>(m * h), -1.0f);
    SwiGluRows(gate_up.data(), s.data(), m, h, &pool, avx2);
    EXPECT_EQ(std::memcmp(serial_s.data(), s.data(), s.size() * sizeof(float)), 0)
        << "swiglu threads=" << threads;
  }
}

// --------------------------------------------------------- model end to end

// Logits of one prefill under the given backend / threads / mode.
std::vector<float> PrefillLogits(KernelBackend backend, int threads,
                                 PrefillMode mode) {
  LlamaModel model(ModelConfig::Tiny(), /*seed=*/17, backend);
  ThreadPool pool(threads);
  model.SetThreadPool(&pool);
  Rng rng(5);
  std::vector<int32_t> tokens(150);
  for (auto& t : tokens) {
    t = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(model.config().vocab_size)));
  }
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = mode;
  options.chunk_size = 32;
  auto result = model.Prefill(tokens, nullptr, options, act);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return std::move(result.value().last_logits);
}

TEST(DispatchModelTest, PerBackendLogitsBitwiseAcrossThreadsAndModes) {
  std::vector<KernelBackend> backends = {KernelBackend::kScalar};
  if (Avx2Available()) {
    backends.push_back(KernelBackend::kAvx2);
  }
  for (KernelBackend backend : backends) {
    const std::vector<float> want =
        PrefillLogits(backend, /*threads=*/1, PrefillMode::kStandard);
    for (int threads : {1, 2, 8}) {
      for (PrefillMode mode :
           {PrefillMode::kStandard, PrefillMode::kChunked, PrefillMode::kHybrid}) {
        const std::vector<float> got = PrefillLogits(backend, threads, mode);
        ASSERT_EQ(want.size(), got.size());
        EXPECT_EQ(std::memcmp(want.data(), got.data(), want.size() * sizeof(float)),
                  0)
            << "backend=" << KernelBackendName(backend) << " threads=" << threads
            << " mode=" << static_cast<int>(mode);
      }
    }
  }
}

TEST(DispatchModelTest, CrossBackendLogitParityWithinTolerance) {
  PO_SKIP_WITHOUT_AVX2();
  const std::vector<float> scalar =
      PrefillLogits(KernelBackend::kScalar, 1, PrefillMode::kHybrid);
  const std::vector<float> avx2 =
      PrefillLogits(KernelBackend::kAvx2, 1, PrefillMode::kHybrid);
  ASSERT_EQ(scalar.size(), avx2.size());
  // Two layers of f32 accumulation divergence; logits are O(1).
  ExpectClose(avx2.data(), scalar.data(), static_cast<int64_t>(scalar.size()),
              5e-3, 5e-3, "cross-backend logits");
}

TEST(DispatchModelTest, PackedImageReplacesDense) {
  const LlamaModel scalar(ModelConfig::Tiny(), 3, KernelBackend::kScalar);
  EXPECT_GT(scalar.weight_bytes(), 0u);
  EXPECT_EQ(scalar.kernel_backend(), KernelBackend::kScalar);
  if (Avx2Available()) {
    const LlamaModel avx2(ModelConfig::Tiny(), 3, KernelBackend::kAvx2);
    EXPECT_EQ(avx2.kernel_backend(), KernelBackend::kAvx2);
    // The packed image replaces the dense one (released after the pack):
    // resident weight memory must NOT double — only panel zero-padding may
    // add a little.
    EXPECT_GE(avx2.weight_bytes(), scalar.weight_bytes());
    EXPECT_LT(avx2.weight_bytes(),
              scalar.weight_bytes() + scalar.weight_bytes() / 5);
  }
}

TEST(DispatchModelTest, GemmLayoutFollowsBackend) {
  // Dense-vs-packed is a per-backend property of the KernelOps table, not a
  // global: the scalar GEMM reads packed panels ~6x slower than dense rows
  // (3.8 vs 23 GFLOP/s), so scalar declares kDense and only the avx2
  // backend asks for the packed image its panel kernel needs.
  EXPECT_EQ(GetKernelOps(KernelBackend::kScalar)->gemm_layout, GemmLayout::kDense);
  if (Avx2Available()) {
    EXPECT_EQ(GetKernelOps(KernelBackend::kAvx2)->gemm_layout, GemmLayout::kPacked);
  }
  // kAuto resolves to a concrete backend and inherits ITS layout choice —
  // there is no path that hands a packed image to the scalar GEMM.
  const KernelOps* resolved = GetKernelOps(KernelBackend::kAuto);
  EXPECT_EQ(resolved->gemm_layout, GetKernelOps(resolved->backend)->gemm_layout);
  EXPECT_EQ(resolved->gemm_layout, resolved->backend == KernelBackend::kAvx2
                                       ? GemmLayout::kPacked
                                       : GemmLayout::kDense);
}

// --------------------------------------------------------- engine end to end

ScoringRequest MakeRequest(const ModelConfig& config) {
  ScoringRequest request;
  Rng rng(23);
  request.tokens.resize(96);
  for (auto& t : request.tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(config.vocab_size)));
  }
  request.allowed_tokens = {1, 2, 3};
  return request;
}

TEST(DispatchEngineTest, EngineHonorsKernelBackendKnob) {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.num_threads = 2;
  options.kernel_backend = KernelBackend::kScalar;
  Engine scalar_engine(options);
  EXPECT_EQ(scalar_engine.model().kernel_backend(), KernelBackend::kScalar);
  auto scalar_response = scalar_engine.ScoreSync(MakeRequest(options.model));
  ASSERT_TRUE(scalar_response.ok());

  if (!Avx2Available()) {
    GTEST_SKIP() << "host lacks AVX2+FMA; cross-backend engine case skipped";
  }
  options.kernel_backend = KernelBackend::kAvx2;
  Engine avx2_engine(options);
  EXPECT_EQ(avx2_engine.model().kernel_backend(), KernelBackend::kAvx2);
  auto avx2_response = avx2_engine.ScoreSync(MakeRequest(options.model));
  ASSERT_TRUE(avx2_response.ok());

  // Same request, same weights: probabilities agree within tolerance.
  const auto& sp = scalar_response.value().probabilities;
  const auto& ap = avx2_response.value().probabilities;
  ASSERT_EQ(sp.size(), ap.size());
  for (size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(sp[i].token, ap[i].token);
    EXPECT_NEAR(sp[i].probability, ap[i].probability, 5e-3);
  }
}

}  // namespace
}  // namespace prefillonly
