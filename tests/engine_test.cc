#include <gtest/gtest.h>

#include <vector>

#include "src/engine/cluster.h"
#include "src/engine/engine_config.h"
#include "src/gpu/memory_model.h"
#include "src/workload/dataset.h"

namespace prefillonly {
namespace {

// Scaled-down Table 1 datasets: same structure, fewer requests, so the
// whole file runs in well under a second.
Dataset SmallPostRec(uint64_t seed = 1) {
  PostRecommendationConfig config;
  config.n_users = 8;
  config.posts_per_user = 12;
  config.seed = seed;
  return MakePostRecommendationDataset(config);
}

Dataset SmallCredit(uint64_t seed = 2) {
  CreditVerificationConfig config;
  config.n_users = 12;
  config.seed = seed;
  return MakeCreditVerificationDataset(config);
}

ClusterResult RunAt(EngineKind kind, const HardwareSetup& hw, Dataset dataset,
                    double qps, double lambda = 500.0) {
  if (dataset.name == "post-recommendation") {
    AssignUserBurstArrivals(dataset, qps, /*seed=*/11);
  } else {
    AssignPoissonArrivals(dataset, qps, /*seed=*/11);
  }
  EngineConfig config = EngineConfig::Make(kind, hw);
  config.lambda = lambda;
  return RunCluster(config, dataset);
}

// ----------------------------------------------------------- Basic sanity

TEST(ClusterTest, CompletesAllFeasibleRequests) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 2.0);
  EXPECT_EQ(result.submitted, 96);
  EXPECT_EQ(result.completed, 96);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_GT(result.mean_latency_s, 0.0);
  EXPECT_GE(result.p99_latency_s, result.mean_latency_s);
  EXPECT_GT(result.throughput_rps, 0.0);
}

TEST(ClusterTest, DeterministicReplay) {
  const auto hw = HardwareSetup::L4_Llama8B();
  const auto a = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 3.0);
  const auto b = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 3.0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

TEST(ClusterTest, EveryEngineServesPostRecOnH100) {
  const auto hw = HardwareSetup::H100_Llama70B();
  for (EngineKind kind :
       {EngineKind::kChunkedPrefill, EngineKind::kPipelineParallel,
        EngineKind::kTensorParallel, EngineKind::kPrefillOnly}) {
    const auto result = RunAt(kind, hw, SmallPostRec(), 1.0);
    EXPECT_EQ(result.completed, result.submitted) << EngineKindName(kind);
  }
}

// ------------------------------------------------- Table 2 infeasibility

TEST(ClusterTest, PagedAttentionRejectsCreditWorkload) {
  // Paged MIL on H100+70B is ~15k; credit requests are 40k-60k: every one
  // must be rejected (the "x" cells of Table 2).
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPagedAttention, hw, SmallCredit(), 0.1);
  EXPECT_EQ(result.completed, 0);
  EXPECT_EQ(result.rejected, result.submitted);
}

TEST(ClusterTest, PrefillOnlyServesCreditEverywhere) {
  for (const auto& hw : HardwareSetup::All()) {
    const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), 0.05);
    EXPECT_EQ(result.completed, result.submitted) << hw.name;
  }
}

// ------------------------------------------- Scheduling & caching effects

TEST(ClusterTest, PrefixCacheHitsHappenWithinUsers) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 2.0);
  // 11 of 12 requests per user can reuse the profile: hit rate near 90%.
  EXPECT_GT(result.cache_hit_rate, 0.5);
}

TEST(ClusterTest, CalibratedSchedulingBeatsFifoUnderOverlap) {
  // At high QPS user bursts overlap; FIFO interleaves users and thrashes
  // the small cache, calibrated SRJF drains cache-hit requests first.
  const auto hw = HardwareSetup::H100_Llama70B();
  const double qps = 20.0;
  EngineConfig calibrated = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  EngineConfig fifo = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  fifo.policy = SchedPolicy::kFifo;

  Dataset dataset = SmallPostRec();
  AssignUserBurstArrivals(dataset, qps, 13);
  const auto with_cal = RunCluster(calibrated, dataset);
  const auto with_fifo = RunCluster(fifo, dataset);
  EXPECT_GE(with_cal.cache_hit_rate, with_fifo.cache_hit_rate);
  EXPECT_LE(with_cal.mean_latency_s, with_fifo.mean_latency_s * 1.05);
}

TEST(ClusterTest, KvDropNaiveNeverHitsCache) {
  const auto hw = HardwareSetup::L4_Llama8B();
  const auto result = RunAt(EngineKind::kKvDropNaive, hw, SmallPostRec(), 1.0);
  EXPECT_EQ(result.cache_hit_rate, 0.0);
  EXPECT_EQ(result.completed, result.submitted);
}

// ------------------------------------------------------- Headline results

TEST(ClusterTest, PrefillOnlyHasHighestSaturatedThroughputOnCredit) {
  // Fig. 8: on the long-context workload PrefillOnly out-throughputs both
  // parallelization baselines, with and without NVLink.
  for (const auto& hw :
       {HardwareSetup::H100_Llama70B(), HardwareSetup::H100_NvLink_Llama70B()}) {
    const double po = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kPrefillOnly, hw), SmallCredit());
    const double tp = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kTensorParallel, hw), SmallCredit());
    const double pp = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kPipelineParallel, hw), SmallCredit());
    EXPECT_GT(po, tp) << hw.name;
    EXPECT_GT(po, pp) << hw.name;
  }
}

TEST(ClusterTest, NvLinkHelpsTensorParallelThroughput) {
  const double pcie = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kTensorParallel, HardwareSetup::H100_Llama70B()),
      SmallCredit());
  const double nvlink = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kTensorParallel,
                         HardwareSetup::H100_NvLink_Llama70B()),
      SmallCredit());
  EXPECT_GT(nvlink, pcie);
}

TEST(ClusterTest, TensorParallelHasLowerLatencyAtLowQps) {
  // Fig. 6: at low QPS the parallel baselines can beat PrefillOnly on
  // latency (two GPUs serve one request); PrefillOnly wins on throughput.
  const auto hw = HardwareSetup::H100_NvLink_Llama70B();
  const auto po = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), 0.01);
  const auto tp = RunAt(EngineKind::kTensorParallel, hw, SmallCredit(), 0.01);
  EXPECT_LT(tp.mean_latency_s, po.mean_latency_s);
}

TEST(ClusterTest, PrefillOnlyWinsLatencyAtHighQps) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const double saturated = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), SmallCredit());
  const double qps = saturated * 0.9;
  const auto po = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), qps);
  const auto tp = RunAt(EngineKind::kTensorParallel, hw, SmallCredit(), qps);
  const auto pp = RunAt(EngineKind::kPipelineParallel, hw, SmallCredit(), qps);
  EXPECT_LT(po.mean_latency_s, tp.mean_latency_s);
  EXPECT_LT(po.mean_latency_s, pp.mean_latency_s);
}

// ----------------------------------------------------------- Offload tier

TEST(ClusterTest, OffloadTierCutsRepeatLatency) {
  const auto hw = HardwareSetup::H100_Llama70B();
  CreditVerificationConfig config;
  config.n_users = 8;
  Dataset base = MakeCreditVerificationDataset(config);
  Dataset doubled = base;
  doubled.requests.clear();
  for (const auto& r : base.requests) {
    doubled.requests.push_back(r);
    SimRequest copy = r;
    copy.id += 100;
    doubled.requests.push_back(std::move(copy));
  }
  AssignPoissonArrivals(doubled, 0.1, 3);

  EngineConfig no_offload = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  EngineConfig with_offload = no_offload;
  with_offload.offload_bytes = 64e9;

  const auto baseline = RunCluster(no_offload, doubled);
  const auto offloaded = RunCluster(with_offload, doubled);
  EXPECT_EQ(baseline.offload_hit_tokens, 0);
  EXPECT_GT(offloaded.offload_hit_tokens, 0);
  EXPECT_LT(offloaded.mean_latency_s, baseline.mean_latency_s);
  EXPECT_GT(offloaded.cache_hit_rate, baseline.cache_hit_rate);
}

TEST(ClusterTest, OffloadReloadIsNotFree) {
  // A fully offload-served request still pays the PCIe reload: its service
  // time must exceed a pure GPU-cache hit of the same length.
  const auto hw = HardwareSetup::H100_Llama70B();
  EngineConfig config = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  MemoryModel mem(hw.llm, hw.gpu, config.memory);
  const double kv_per_token = mem.KvBytesPerTokenPerGpu(EngineKind::kPrefillOnly);
  const double reload_50k = 50000.0 * kv_per_token / config.offload_load_bandwidth;
  EXPECT_GT(reload_50k, 0.1);  // hundreds of ms: visible but << recompute
  CostModel cost(hw.llm, hw.gpu, config.cost);
  const double recompute_50k = cost.PrefillTime(50000, 0, PassStrategy::kHybrid, 2048);
  EXPECT_LT(reload_50k, recompute_50k / 10);
}

// ------------------------------------------------------------ Fairness/λ

TEST(ClusterTest, HigherLambdaImprovesTailAtSomeMeanCost) {
  const auto hw = HardwareSetup::H100_Llama70B();
  Dataset dataset = SmallPostRec();
  const double qps = 25.0;  // overloaded: scheduling order matters
  AssignUserBurstArrivals(dataset, qps, 17);

  EngineConfig none = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  none.lambda = 0.0;
  EngineConfig strong = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  strong.lambda = 2000.0;

  const auto r_none = RunCluster(none, dataset);
  const auto r_strong = RunCluster(strong, dataset);
  EXPECT_LE(r_strong.max_latency_s, r_none.max_latency_s);
}

// --------------------------------------------------------- PP mechanics

TEST(ClusterTest, PipelineOverlapsRequests) {
  // With two stages, serving n requests takes roughly (n+1) stage times,
  // not 2n: the pipeline must overlap. Compare against a no-overlap bound.
  const auto hw = HardwareSetup::H100_Llama70B();
  Dataset dataset = SmallCredit();
  const auto result = RunAt(EngineKind::kPipelineParallel, hw, dataset, 1000.0);
  ASSERT_EQ(result.completed, result.submitted);
  // Mean latency under saturation is far below completed * full-pass time
  // only if overlap happens; check makespan < sum of all full-pass times.
  double serial_sum = 0.0;
  {
    EngineConfig config = EngineConfig::Make(EngineKind::kPipelineParallel, hw);
    CostModel cost(hw.llm, hw.gpu, config.cost);
    for (const auto& r : dataset.requests) {
      serial_sum += 2.0 * cost.PipelineStageTime(r.n_tokens, 0, 2, hw.link,
                                                 PassStrategy::kStandard, 0);
    }
  }
  EXPECT_LT(result.makespan_s, serial_sum * 0.75);
}

}  // namespace
}  // namespace prefillonly
