#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/engine/cluster.h"
#include "src/engine/engine_config.h"
#include "src/gpu/memory_model.h"
#include "src/workload/dataset.h"

namespace prefillonly {
namespace {

// Scaled-down Table 1 datasets: same structure, fewer requests, so the
// whole file runs in well under a second.
Dataset SmallPostRec(uint64_t seed = 1) {
  PostRecommendationConfig config;
  config.n_users = 8;
  config.posts_per_user = 12;
  config.seed = seed;
  return MakePostRecommendationDataset(config);
}

Dataset SmallCredit(uint64_t seed = 2) {
  CreditVerificationConfig config;
  config.n_users = 12;
  config.seed = seed;
  return MakeCreditVerificationDataset(config);
}

ClusterResult RunAt(EngineKind kind, const HardwareSetup& hw, Dataset dataset,
                    double qps, double lambda = 500.0) {
  if (dataset.name == "post-recommendation") {
    AssignUserBurstArrivals(dataset, qps, /*seed=*/11);
  } else {
    AssignPoissonArrivals(dataset, qps, /*seed=*/11);
  }
  EngineConfig config = EngineConfig::Make(kind, hw);
  config.lambda = lambda;
  return RunCluster(config, dataset);
}

// ----------------------------------------------------------- Basic sanity

TEST(ClusterTest, CompletesAllFeasibleRequests) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 2.0);
  EXPECT_EQ(result.submitted, 96);
  EXPECT_EQ(result.completed, 96);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_GT(result.mean_latency_s, 0.0);
  EXPECT_GE(result.p99_latency_s, result.mean_latency_s);
  EXPECT_GT(result.throughput_rps, 0.0);
}

TEST(ClusterTest, DeterministicReplay) {
  const auto hw = HardwareSetup::L4_Llama8B();
  const auto a = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 3.0);
  const auto b = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 3.0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

TEST(ClusterTest, EveryEngineServesPostRecOnH100) {
  const auto hw = HardwareSetup::H100_Llama70B();
  for (EngineKind kind :
       {EngineKind::kChunkedPrefill, EngineKind::kPipelineParallel,
        EngineKind::kTensorParallel, EngineKind::kPrefillOnly}) {
    const auto result = RunAt(kind, hw, SmallPostRec(), 1.0);
    EXPECT_EQ(result.completed, result.submitted) << EngineKindName(kind);
  }
}

// ------------------------------------------------- Table 2 infeasibility

TEST(ClusterTest, PagedAttentionRejectsCreditWorkload) {
  // Paged MIL on H100+70B is ~15k; credit requests are 40k-60k: every one
  // must be rejected (the "x" cells of Table 2).
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPagedAttention, hw, SmallCredit(), 0.1);
  EXPECT_EQ(result.completed, 0);
  EXPECT_EQ(result.rejected, result.submitted);
}

TEST(ClusterTest, PrefillOnlyServesCreditEverywhere) {
  for (const auto& hw : HardwareSetup::All()) {
    const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), 0.05);
    EXPECT_EQ(result.completed, result.submitted) << hw.name;
  }
}

// ------------------------------------------- Scheduling & caching effects

TEST(ClusterTest, PrefixCacheHitsHappenWithinUsers) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const auto result = RunAt(EngineKind::kPrefillOnly, hw, SmallPostRec(), 2.0);
  // 11 of 12 requests per user can reuse the profile: hit rate near 90%.
  EXPECT_GT(result.cache_hit_rate, 0.5);
}

TEST(ClusterTest, CalibratedSchedulingBeatsFifoUnderOverlap) {
  // At high QPS user bursts overlap; FIFO interleaves users and thrashes
  // the small cache, calibrated SRJF drains cache-hit requests first.
  const auto hw = HardwareSetup::H100_Llama70B();
  const double qps = 20.0;
  EngineConfig calibrated = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  EngineConfig fifo = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  fifo.policy = SchedPolicy::kFifo;

  Dataset dataset = SmallPostRec();
  AssignUserBurstArrivals(dataset, qps, 13);
  const auto with_cal = RunCluster(calibrated, dataset);
  const auto with_fifo = RunCluster(fifo, dataset);
  EXPECT_GE(with_cal.cache_hit_rate, with_fifo.cache_hit_rate);
  EXPECT_LE(with_cal.mean_latency_s, with_fifo.mean_latency_s * 1.05);
}

TEST(ClusterTest, KvDropNaiveNeverHitsCache) {
  const auto hw = HardwareSetup::L4_Llama8B();
  const auto result = RunAt(EngineKind::kKvDropNaive, hw, SmallPostRec(), 1.0);
  EXPECT_EQ(result.cache_hit_rate, 0.0);
  EXPECT_EQ(result.completed, result.submitted);
}

// ------------------------------------------------------- Headline results

TEST(ClusterTest, PrefillOnlyHasHighestSaturatedThroughputOnCredit) {
  // Fig. 8: on the long-context workload PrefillOnly out-throughputs both
  // parallelization baselines, with and without NVLink.
  for (const auto& hw :
       {HardwareSetup::H100_Llama70B(), HardwareSetup::H100_NvLink_Llama70B()}) {
    const double po = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kPrefillOnly, hw), SmallCredit());
    const double tp = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kTensorParallel, hw), SmallCredit());
    const double pp = MeasureSaturatedThroughput(
        EngineConfig::Make(EngineKind::kPipelineParallel, hw), SmallCredit());
    EXPECT_GT(po, tp) << hw.name;
    EXPECT_GT(po, pp) << hw.name;
  }
}

TEST(ClusterTest, NvLinkHelpsTensorParallelThroughput) {
  const double pcie = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kTensorParallel, HardwareSetup::H100_Llama70B()),
      SmallCredit());
  const double nvlink = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kTensorParallel,
                         HardwareSetup::H100_NvLink_Llama70B()),
      SmallCredit());
  EXPECT_GT(nvlink, pcie);
}

TEST(ClusterTest, TensorParallelHasLowerLatencyAtLowQps) {
  // Fig. 6: at low QPS the parallel baselines can beat PrefillOnly on
  // latency (two GPUs serve one request); PrefillOnly wins on throughput.
  const auto hw = HardwareSetup::H100_NvLink_Llama70B();
  const auto po = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), 0.01);
  const auto tp = RunAt(EngineKind::kTensorParallel, hw, SmallCredit(), 0.01);
  EXPECT_LT(tp.mean_latency_s, po.mean_latency_s);
}

TEST(ClusterTest, PrefillOnlyWinsLatencyAtHighQps) {
  const auto hw = HardwareSetup::H100_Llama70B();
  const double saturated = MeasureSaturatedThroughput(
      EngineConfig::Make(EngineKind::kPrefillOnly, hw), SmallCredit());
  const double qps = saturated * 0.9;
  const auto po = RunAt(EngineKind::kPrefillOnly, hw, SmallCredit(), qps);
  const auto tp = RunAt(EngineKind::kTensorParallel, hw, SmallCredit(), qps);
  const auto pp = RunAt(EngineKind::kPipelineParallel, hw, SmallCredit(), qps);
  EXPECT_LT(po.mean_latency_s, tp.mean_latency_s);
  EXPECT_LT(po.mean_latency_s, pp.mean_latency_s);
}

// ----------------------------------------------------------- Offload tier

TEST(ClusterTest, OffloadTierCutsRepeatLatency) {
  const auto hw = HardwareSetup::H100_Llama70B();
  CreditVerificationConfig config;
  config.n_users = 8;
  Dataset base = MakeCreditVerificationDataset(config);
  Dataset doubled = base;
  doubled.requests.clear();
  for (const auto& r : base.requests) {
    doubled.requests.push_back(r);
    SimRequest copy = r;
    copy.id += 100;
    doubled.requests.push_back(std::move(copy));
  }
  AssignPoissonArrivals(doubled, 0.1, 3);

  EngineConfig no_offload = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  EngineConfig with_offload = no_offload;
  with_offload.offload_bytes = 64e9;

  const auto baseline = RunCluster(no_offload, doubled);
  const auto offloaded = RunCluster(with_offload, doubled);
  EXPECT_EQ(baseline.offload_hit_tokens, 0);
  EXPECT_GT(offloaded.offload_hit_tokens, 0);
  EXPECT_LT(offloaded.mean_latency_s, baseline.mean_latency_s);
  EXPECT_GT(offloaded.cache_hit_rate, baseline.cache_hit_rate);
}

TEST(ClusterTest, OffloadReloadIsNotFree) {
  // A fully offload-served request still pays the PCIe reload: its service
  // time must exceed a pure GPU-cache hit of the same length.
  const auto hw = HardwareSetup::H100_Llama70B();
  EngineConfig config = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  MemoryModel mem(hw.llm, hw.gpu, config.memory);
  const double kv_per_token = mem.KvBytesPerTokenPerGpu(EngineKind::kPrefillOnly);
  const double reload_50k = 50000.0 * kv_per_token / config.offload_load_bandwidth;
  EXPECT_GT(reload_50k, 0.1);  // hundreds of ms: visible but << recompute
  CostModel cost(hw.llm, hw.gpu, config.cost);
  const double recompute_50k = cost.PrefillTime(50000, 0, PassStrategy::kHybrid, 2048);
  EXPECT_LT(reload_50k, recompute_50k / 10);
}

// ------------------------------------------------------------ Fairness/λ

TEST(ClusterTest, HigherLambdaImprovesTailAtSomeMeanCost) {
  const auto hw = HardwareSetup::H100_Llama70B();
  Dataset dataset = SmallPostRec();
  const double qps = 25.0;  // overloaded: scheduling order matters
  AssignUserBurstArrivals(dataset, qps, 17);

  EngineConfig none = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  none.lambda = 0.0;
  EngineConfig strong = EngineConfig::Make(EngineKind::kPrefillOnly, hw);
  strong.lambda = 2000.0;

  const auto r_none = RunCluster(none, dataset);
  const auto r_strong = RunCluster(strong, dataset);
  EXPECT_LE(r_strong.max_latency_s, r_none.max_latency_s);
}

// --------------------------------------------------------- PP mechanics

TEST(ClusterTest, PipelineOverlapsRequests) {
  // With two stages, serving n requests takes roughly (n+1) stage times,
  // not 2n: the pipeline must overlap. Compare against a no-overlap bound.
  const auto hw = HardwareSetup::H100_Llama70B();
  Dataset dataset = SmallCredit();
  const auto result = RunAt(EngineKind::kPipelineParallel, hw, dataset, 1000.0);
  ASSERT_EQ(result.completed, result.submitted);
  // Mean latency under saturation is far below completed * full-pass time
  // only if overlap happens; check makespan < sum of all full-pass times.
  double serial_sum = 0.0;
  {
    EngineConfig config = EngineConfig::Make(EngineKind::kPipelineParallel, hw);
    CostModel cost(hw.llm, hw.gpu, config.cost);
    for (const auto& r : dataset.requests) {
      serial_sum += 2.0 * cost.PipelineStageTime(r.n_tokens, 0, 2, hw.link,
                                                 PassStrategy::kStandard, 0);
    }
  }
  EXPECT_LT(result.makespan_s, serial_sum * 0.75);
}

// -------------------------- Request lifecycle on the real engine (ISSUE 5)
//
// These tests run WITHOUT the concurrent runtime: submissions stay queued
// until RunPending() drains them, so cancel-while-queued and pre-dispatch
// deadline expiry are exercised deterministically, and the engine counters
// prove exactly what executed.

EngineOptions LifecycleOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  return options;
}

ScoringRequest LifecycleRequest(int seed, int n_tokens = 32) {
  ScoringRequest request;
  for (int i = 0; i < n_tokens; ++i) {
    request.tokens.push_back((seed * 31 + i * 7) % 100 + 1);
  }
  request.allowed_tokens = {3, 4};
  return request;
}

TEST(EngineLifecycleTest, CancelledQueuedRequestNeverExecutes) {
  Engine engine(LifecycleOptions());
  auto submission = engine.SubmitAsyncHandle(LifecycleRequest(1));
  ASSERT_TRUE(submission.ok());
  EXPECT_EQ(engine.Phase(submission.value().id), Engine::RequestPhase::kQueued);

  ASSERT_TRUE(engine.Cancel(submission.value().id).ok());
  auto result = submission.value().future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine.Phase(submission.value().id), Engine::RequestPhase::kUnknown);

  // Draining the queue runs nothing: the counters prove the cancelled
  // request never reached a prefill.
  auto drained = engine.RunPending();
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained.value().empty());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.batches_dispatched, 0);
}

TEST(EngineLifecycleTest, CancelUnknownOrFinishedIsNotFound) {
  Engine engine(LifecycleOptions());
  EXPECT_EQ(engine.Cancel(12345).code(), StatusCode::kNotFound);

  auto submission = engine.SubmitAsyncHandle(LifecycleRequest(2));
  ASSERT_TRUE(submission.ok());
  ASSERT_TRUE(engine.RunPending().ok());
  ASSERT_TRUE(submission.value().future.get().ok());
  // Cancel-after-done: the engine reports kNotFound (terminal results live
  // in the caller's future); the API layer turns this into idempotence.
  EXPECT_EQ(engine.Cancel(submission.value().id).code(), StatusCode::kNotFound);
}

TEST(EngineLifecycleTest, ExpiredDeadlineRejectedAtSubmission) {
  Engine engine(LifecycleOptions());
  ScoringRequest request = LifecycleRequest(3);
  request.deadline_ms = 0;
  auto submitted = engine.SubmitAsync(std::move(request));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kDeadlineExceeded);
  // Rejected at the door: it never counted as submitted, let alone ran.
  EXPECT_EQ(engine.stats().submitted, 0);
}

TEST(EngineLifecycleTest, ScoreSyncHonorsExpiredDeadline) {
  // The blocking frontend goes through the same admission as async paths:
  // an already-expired deadline never reaches a prefill here either.
  Engine engine(LifecycleOptions());
  ScoringRequest request = LifecycleRequest(40);
  request.deadline_ms = 0;
  auto response = engine.ScoreSync(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().submitted, 0);
}

TEST(EngineLifecycleTest, LapsedDeadlineFailsBeforeDispatch) {
  Engine engine(LifecycleOptions());
  ScoringRequest request = LifecycleRequest(4);
  request.deadline_ms = 1;
  auto submission = engine.SubmitAsyncHandle(std::move(request));
  ASSERT_TRUE(submission.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // The next scheduling decision purges it instead of prefilling it.
  auto drained = engine.RunPending();
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained.value().empty());
  auto result = submission.value().future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.batches_dispatched, 0);
}

TEST(EngineLifecycleTest, GroupSubmissionCoBatchesAcrossBuckets) {
  EngineOptions options = LifecycleOptions();
  options.max_batch_size = 4;
  Engine engine(options);
  // Three lengths in three different LengthBuckets: probabilistic batching
  // would run them solo; the group co-schedules them deliberately.
  std::vector<ScoringRequest> group;
  group.push_back(LifecycleRequest(10, 16));
  group.push_back(LifecycleRequest(11, 40));
  group.push_back(LifecycleRequest(12, 150));
  auto submitted = engine.SubmitGroupAsync(std::move(group));
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted.value().size(), 3u);
  ASSERT_TRUE(engine.RunPending().ok());
  for (auto& submission : submitted.value()) {
    auto result = submission.future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().batch_size, 3);
  }
  EXPECT_EQ(engine.stats().peak_batch_size, 3);
  EXPECT_EQ(engine.stats().batches_dispatched, 1);
}

TEST(EngineLifecycleTest, GroupAdmissionIsAllOrNothing) {
  Engine engine(LifecycleOptions());
  std::vector<ScoringRequest> group;
  group.push_back(LifecycleRequest(20));
  group.push_back(LifecycleRequest(21));
  group.back().allowed_tokens.clear();  // invalid member
  auto submitted = engine.SubmitGroupAsync(std::move(group));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.stats().submitted, 0);  // the valid member was not admitted
}

TEST(EngineLifecycleTest, HigherPriorityClassRunsFirst) {
  Engine engine(LifecycleOptions());
  ScoringRequest low = LifecycleRequest(30);
  ScoringRequest high = LifecycleRequest(31);
  high.priority = 2;
  auto low_id = engine.Submit(std::move(low));
  auto high_id = engine.Submit(std::move(high));
  ASSERT_TRUE(low_id.ok());
  ASSERT_TRUE(high_id.ok());
  // Equal lengths tie FIFO under SRJF — only the class flips the order.
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses.value().size(), 2u);
  EXPECT_EQ(responses.value()[0].request_id, high_id.value());
  EXPECT_EQ(responses.value()[1].request_id, low_id.value());
}

}  // namespace
}  // namespace prefillonly
