#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tracking_allocator.h"

namespace prefillonly {
namespace {

// ----------------------------------------------------- TrackingAllocator

TEST(TrackingAllocatorTest, TracksCurrentAndPeak) {
  TrackingAllocator alloc;
  void* a = alloc.Allocate(1000, "a");
  void* b = alloc.Allocate(2000, "b");
  EXPECT_EQ(alloc.current_bytes(), 3000u);
  EXPECT_EQ(alloc.peak_bytes(), 3000u);
  alloc.Deallocate(a);
  EXPECT_EQ(alloc.current_bytes(), 2000u);
  EXPECT_EQ(alloc.peak_bytes(), 3000u);  // peak sticks
  alloc.Deallocate(b);
  EXPECT_EQ(alloc.current_bytes(), 0u);
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

TEST(TrackingAllocatorTest, BudgetRejectsOverflow) {
  TrackingAllocator alloc(1024);
  void* a = alloc.Allocate(512, "a");
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(alloc.Allocate(1024, "too big"), nullptr);
  void* b = alloc.Allocate(512, "b");
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(alloc.Allocate(1, "over"), nullptr);
  alloc.Deallocate(a);
  alloc.Deallocate(b);
}

TEST(TrackingAllocatorTest, TimelineRecordsAllocAndFree) {
  TrackingAllocator alloc;
  alloc.EnableTimeline(true);
  void* a = alloc.Allocate(100, "spike");
  alloc.Deallocate(a);
  ASSERT_EQ(alloc.timeline().size(), 2u);
  EXPECT_EQ(alloc.timeline()[0].tag, "spike");
  EXPECT_EQ(alloc.timeline()[0].delta_bytes, 100);
  EXPECT_EQ(alloc.timeline()[1].delta_bytes, -100);
  EXPECT_EQ(alloc.timeline()[1].current_bytes, 0u);
}

TEST(TrackingAllocatorTest, ResetPeak) {
  TrackingAllocator alloc;
  void* a = alloc.Allocate(500, "a");
  alloc.Deallocate(a);
  EXPECT_EQ(alloc.peak_bytes(), 500u);
  alloc.ResetPeak();
  EXPECT_EQ(alloc.peak_bytes(), 0u);
}

// ---------------------------------------------------------------- Tensor

TEST(TensorTest, ZerosIsZeroed) {
  TrackingAllocator alloc;
  Tensor t = Tensor::Zeros(alloc, {4, 8}, "t");
  for (float v : t.span()) {
    EXPECT_EQ(v, 0.0f);
  }
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_EQ(t.numel(), 32);
  EXPECT_EQ(t.bytes(), 32u * sizeof(float));
}

TEST(TensorTest, MoveTransfersOwnership) {
  TrackingAllocator alloc;
  Tensor a = Tensor::Zeros(alloc, {2, 2}, "a");
  const float* data = a.data();
  Tensor b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(alloc.live_allocations(), 1u);
}

TEST(TensorTest, DestructionReleasesMemory) {
  TrackingAllocator alloc;
  {
    Tensor t = Tensor::Zeros(alloc, {16, 16}, "t");
    EXPECT_GT(alloc.current_bytes(), 0u);
  }
  EXPECT_EQ(alloc.current_bytes(), 0u);
}

TEST(TensorTest, CloneIsDeepCopy) {
  TrackingAllocator alloc;
  Tensor a = Tensor::Zeros(alloc, {2, 2}, "a");
  a.data()[0] = 7.0f;
  Tensor b = a.Clone("b");
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 7.0f);
  EXPECT_EQ(b.data()[0], 9.0f);
}

TEST(TensorTest, TryCreateFailsUnderBudget) {
  TrackingAllocator alloc(64);
  Tensor t = Tensor::TryCreate(alloc, {1024}, "big");
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, UninitAbortsLoudlyOverBudget) {
  // Uninit is the infallible path: budget exhaustion must abort in every
  // build type (the assert it replaced compiled out under -DNDEBUG and the
  // next kernel wrote through nullptr), naming the tag and size.
  EXPECT_DEATH(
      {
        TrackingAllocator alloc(64);
        Tensor t = Tensor::Uninit(alloc, {1024}, "too.big");
      },
      "Tensor::Uninit: allocation 'too.big' of 4096 bytes failed");
}

TEST(TrackingAllocatorTest, ZeroByteAllocationIsAccounted) {
  // A zero-byte request still consumes one 64-byte cache line; the
  // accounting must charge what was actually allocated, or peak/current
  // undercount by a line per empty tensor.
  TrackingAllocator alloc;
  void* p = alloc.Allocate(0, "empty");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(alloc.current_bytes(), 64u);
  EXPECT_EQ(alloc.peak_bytes(), 64u);
  EXPECT_EQ(alloc.live_allocations(), 1u);
  alloc.Deallocate(p);
  EXPECT_EQ(alloc.current_bytes(), 0u);
  EXPECT_EQ(alloc.peak_bytes(), 64u);
}

TEST(TrackingAllocatorTest, ZeroByteAllocationRespectsBudget) {
  TrackingAllocator alloc(100);
  void* p = alloc.Allocate(0, "empty");  // charged 64 of the 100
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(alloc.Allocate(64, "over"), nullptr);
  alloc.Deallocate(p);
  void* q = alloc.Allocate(64, "fits now");
  EXPECT_NE(q, nullptr);
  alloc.Deallocate(q);
}

TEST(TensorTest, RowAccessor) {
  TrackingAllocator alloc;
  Tensor t = Tensor::Zeros(alloc, {3, 4}, "t");
  t.row(2)[1] = 5.0f;
  EXPECT_EQ(t.data()[2 * 4 + 1], 5.0f);
}

// ------------------------------------------------------------------- Ops

TEST(OpsTest, MatMulMatchesNaive) {
  Rng rng(1);
  const int64_t m = 7;
  const int64_t k = 13;
  const int64_t n = 5;
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  for (auto& v : a) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto& v : b) {
    v = rng.NextUniformFloat(1.0f);
  }
  std::vector<float> c(m * n);
  MatMul(a.data(), b.data(), c.data(), m, k, n);

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double expected = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        expected += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      EXPECT_NEAR(c[i * n + j], expected, 1e-4) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(OpsTest, MatMulRowChunkingIsBitwiseIdentical) {
  // The property hybrid prefilling relies on: computing row blocks
  // separately gives EXACTLY the same bits as one full call.
  Rng rng(2);
  const int64_t m = 24;
  const int64_t k = 16;
  const int64_t n = 10;
  std::vector<float> a(m * k);
  std::vector<float> b(k * n);
  for (auto& v : a) {
    v = rng.NextUniformFloat(1.0f);
  }
  for (auto& v : b) {
    v = rng.NextUniformFloat(1.0f);
  }
  std::vector<float> full(m * n);
  MatMul(a.data(), b.data(), full.data(), m, k, n);

  for (int64_t chunk : {1, 3, 8, 24}) {
    std::vector<float> chunked(m * n);
    for (int64_t r0 = 0; r0 < m; r0 += chunk) {
      const int64_t cs = std::min(chunk, m - r0);
      MatMul(a.data() + r0 * k, b.data(), chunked.data() + r0 * n, cs, k, n);
    }
    EXPECT_EQ(std::memcmp(full.data(), chunked.data(), full.size() * sizeof(float)), 0)
        << "chunk=" << chunk;
  }
}

TEST(OpsTest, SoftmaxRowSumsToOne) {
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  SoftmaxRow(x.data(), 4);
  float sum = 0;
  for (float v : x) {
    EXPECT_GT(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(x[3], x[2]);  // monotone in logits
}

TEST(OpsTest, SoftmaxRowNumericallyStableForLargeValues) {
  std::vector<float> x{1000.0f, 1001.0f};
  SoftmaxRow(x.data(), 2);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6);
}

TEST(OpsTest, RmsNormUnitScale) {
  // Row of constant c: rms = c, so normalized values = weight.
  const int64_t h = 8;
  std::vector<float> x(h, 3.0f);
  std::vector<float> w(h, 2.0f);
  std::vector<float> y(h);
  RmsNormRows(x.data(), w.data(), y.data(), 1, h, 0.0f);
  for (float v : y) {
    EXPECT_NEAR(v, 2.0f, 1e-5);
  }
}

TEST(OpsTest, SiluMulMatchesDefinition) {
  std::vector<float> gate{0.0f, 1.0f, -1.0f};
  std::vector<float> up{2.0f, 2.0f, 2.0f};
  std::vector<float> out(3);
  SiluMul(gate.data(), up.data(), out.data(), 3);
  EXPECT_NEAR(out[0], 0.0f, 1e-6);
  EXPECT_NEAR(out[1], 2.0f / (1.0f + std::exp(-1.0f)), 1e-6);
  EXPECT_NEAR(out[2], -2.0f / (1.0f + std::exp(1.0f)), 1e-6);
}

TEST(OpsTest, SwiGluRowsMatchesUnfused) {
  const int64_t m = 3;
  const int64_t inter = 4;
  Rng rng(4);
  std::vector<float> gate_up(m * 2 * inter);
  for (auto& v : gate_up) {
    v = rng.NextUniformFloat(2.0f);
  }
  std::vector<float> fused(m * inter);
  SwiGluRows(gate_up.data(), fused.data(), m, inter);
  for (int64_t r = 0; r < m; ++r) {
    std::vector<float> expected(inter);
    SiluMul(gate_up.data() + r * 2 * inter, gate_up.data() + r * 2 * inter + inter,
            expected.data(), inter);
    for (int64_t j = 0; j < inter; ++j) {
      EXPECT_EQ(fused[r * inter + j], expected[j]);
    }
  }
}

TEST(OpsTest, RopePreservesNorm) {
  // Rotations preserve vector length per head.
  const int64_t heads = 2;
  const int64_t hd = 8;
  Rng rng(6);
  std::vector<float> x(heads * hd);
  for (auto& v : x) {
    v = rng.NextUniformFloat(1.0f);
  }
  double norm_before = 0;
  for (float v : x) {
    norm_before += static_cast<double>(v) * v;
  }
  std::vector<int32_t> pos{17};
  ApplyRope(x.data(), 1, heads, hd, pos, 10000.0f);
  double norm_after = 0;
  for (float v : x) {
    norm_after += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(norm_before, norm_after, 1e-4);
}

TEST(OpsTest, RopeAtPositionZeroIsIdentity) {
  const int64_t hd = 4;
  std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> orig = x;
  std::vector<int32_t> pos{0};
  ApplyRope(x.data(), 1, 1, hd, pos, 10000.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], orig[i], 1e-6);
  }
}

TEST(OpsTest, RopeIsPositionDependent) {
  const int64_t hd = 4;
  std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> b = a;
  std::vector<int32_t> pos_a{1};
  std::vector<int32_t> pos_b{2};
  ApplyRope(a.data(), 1, 1, hd, pos_a, 10000.0f);
  ApplyRope(b.data(), 1, 1, hd, pos_b, 10000.0f);
  EXPECT_NE(a[0], b[0]);
}

TEST(OpsTest, EmbeddingLookupCopiesRows) {
  const int64_t h = 4;
  std::vector<float> table(3 * h);
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i);
  }
  std::vector<int32_t> tokens{2, 0};
  std::vector<float> out(2 * h);
  EmbeddingLookup(table.data(), tokens, out.data(), h);
  EXPECT_EQ(out[0], 8.0f);   // row 2 starts at 2*4
  EXPECT_EQ(out[h], 0.0f);   // row 0
}

TEST(OpsTest, DotAndAxpy) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_EQ(Dot(a.data(), b.data(), 3), 32.0f);
  Axpy(a.data(), b.data(), 2.0f, 3);
  EXPECT_EQ(a[0], 9.0f);
  EXPECT_EQ(a[2], 15.0f);
}

TEST(OpsTest, AddInPlace) {
  std::vector<float> a{1, 2};
  std::vector<float> b{10, 20};
  AddInPlace(a.data(), b.data(), 2);
  EXPECT_EQ(a[0], 11.0f);
  EXPECT_EQ(a[1], 22.0f);
}

}  // namespace
}  // namespace prefillonly
