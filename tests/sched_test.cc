#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sched/jct.h"
#include "src/sched/scheduler.h"

namespace prefillonly {
namespace {

SchedEntry Entry(double arrival, int64_t n_input, int64_t cached_arrival,
                 int64_t cached_now) {
  SchedEntry e;
  e.arrival_time = arrival;
  e.n_input = n_input;
  e.n_cached_at_arrival = cached_arrival;
  e.n_cached_now = cached_now;
  return e;
}

// -------------------------------------------------------------- Estimators

TEST(JctEstimatorTest, ProxyIsCacheMissTokens) {
  CacheMissProxyEstimator proxy;
  EXPECT_EQ(proxy.Estimate(1000, 0), 1000.0);
  EXPECT_EQ(proxy.Estimate(1000, 900), 100.0);
}

TEST(JctEstimatorTest, ProfiledRecoversLinearGroundTruth) {
  // Ground truth jct = 2ms/token_input - 1.5ms/token_cached + 40ms.
  auto measure = [](int64_t n_input, int64_t n_cached) {
    return 0.002 * static_cast<double>(n_input) -
           0.0015 * static_cast<double>(n_cached) + 0.04;
  };
  auto estimator = ProfiledJctEstimator::Profile(measure, 8000, 1000);
  ASSERT_TRUE(estimator.ok());
  EXPECT_GT(estimator.value().r_squared(), 0.999);
  EXPECT_NEAR(estimator.value().Estimate(5500, 2500), measure(5500, 2500), 1e-6);
}

TEST(JctEstimatorTest, ProfiledRejectsBadGrid) {
  auto measure = [](int64_t, int64_t) { return 1.0; };
  EXPECT_FALSE(ProfiledJctEstimator::Profile(measure, 500, 1000).ok());
  EXPECT_FALSE(ProfiledJctEstimator::Profile(measure, 1000, 0).ok());
}

// --------------------------------------------------------------- Policies

TEST(SchedulerTest, FifoPicksEarliestArrival) {
  Scheduler sched(SchedPolicy::kFifo, 0.0, nullptr);
  std::vector<SchedEntry> queue{
      Entry(2.0, 100, 0, 0), Entry(1.0, 900, 0, 0), Entry(3.0, 10, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 10.0), 1u);
}

TEST(SchedulerTest, SjfPicksShortestJob) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSjfStatic, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 500, 0, 0), Entry(0.0, 100, 0, 0), Entry(0.0, 900, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 1.0), 1u);
}

TEST(SchedulerTest, StaticSjfIgnoresFreshCacheState) {
  // Request 0 became fully cached AFTER arrival; static SJF cannot see it.
  CacheMissProxyEstimator proxy;
  Scheduler stale(SchedPolicy::kSjfStatic, 0.0, &proxy);
  Scheduler calibrated(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 1000, 0, 950),  // 50 miss tokens NOW, 1000 at arrival
      Entry(0.0, 400, 0, 0)};
  EXPECT_EQ(stale.PickNext(queue, 1.0), 1u);       // sees 1000 vs 400
  EXPECT_EQ(calibrated.PickNext(queue, 1.0), 0u);  // sees 50 vs 400
}

TEST(SchedulerTest, LambdaAgingPreventsStarvation) {
  // A long job that has waited long enough must win over fresh short jobs
  // (Algorithm 1's - lambda * T_queue term).
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, /*lambda=*/500.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 10000, 0, 0),   // 10k miss tokens, waiting since t=0
      Entry(19.0, 100, 0, 0)};   // tiny job, just arrived
  // At t=19: scores are 10000 - 500*19 = 500 vs 100 - 0 = 100: short wins.
  EXPECT_EQ(sched.PickNext(queue, 19.0), 1u);
  // At t=21: 10000 - 500*21 = -500 vs 100 - 500*2 = -900: short STILL wins
  // (it ages at the same rate); the long job wins once the score gap from
  // arrival-time difference dominates.
  EXPECT_EQ(sched.PickNext(queue, 21.0), 1u);
  std::vector<SchedEntry> queue2{
      Entry(0.0, 10000, 0, 0),
      Entry(25.0, 100, 0, 0)};  // arrives 25s later
  // 10000 - 500*25 = -2500 vs 100: the starved job finally runs.
  EXPECT_EQ(sched.PickNext(queue2, 25.0), 0u);
}

TEST(SchedulerTest, ZeroLambdaNeverAges) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 10000, 0, 0), Entry(1000.0, 100, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 2000.0), 1u);  // short always wins
}

TEST(SchedulerTest, TieBreaksFifo) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(1.0, 100, 0, 0), Entry(2.0, 100, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 3.0), 0u);
}

TEST(SchedulerTest, ScoreExposesAlgorithm1) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 500.0, &proxy);
  const SchedEntry e = Entry(10.0, 5000, 0, 2000);
  // score = (5000 - 2000) - 500 * (now - 10)
  EXPECT_DOUBLE_EQ(sched.Score(e, 14.0), 3000.0 - 500.0 * 4.0);
}

// ------------------------------------------------- Fig. 5 walkthrough
//
// Four requests A, B, C, D with length A < C < B < D; A and D share a
// prefix, B and C share a prefix; the cache holds only ONE request's KV.
// FIFO and static SRJF each get 1 cache hit; SRJF with continuous
// calibration gets 2 (it notices D's JCT collapse right after A runs).
// This mirrors the paper's Fig. 5 exactly, with the cache dynamics
// emulated deterministically.

struct Fig5Request {
  const char* name;
  int64_t length;
  int group;  // shared-prefix group: 0 = {A, D}, 1 = {B, C}
};

int RunFig5(SchedPolicy policy) {
  // Lengths satisfy A < C < B < D, with the shared prefixes large enough
  // that a cache hit flips the JCT order (D's miss after A = 100 tokens,
  // below C's 350) — the situation Fig. 5 illustrates.
  const Fig5Request requests[] = {
      {"A", 300, 0}, {"B", 380, 1}, {"C", 350, 1}, {"D", 400, 0}};
  CacheMissProxyEstimator proxy;
  Scheduler sched(policy, 0.0, &proxy);

  std::vector<int> remaining{0, 1, 2, 3};
  int cached_group = -1;  // cache holds one request's prefix
  int64_t cached_len = 0;
  int hits = 0;
  double now = 0;
  while (!remaining.empty()) {
    std::vector<SchedEntry> queue;
    for (int idx : remaining) {
      const auto& r = requests[idx];
      const int64_t hit =
          (r.group == cached_group) ? std::min(cached_len, r.length - 1) : 0;
      SchedEntry e = Entry(0.0, r.length, 0, hit);
      // Static policies saw an empty cache at arrival.
      if (policy != SchedPolicy::kSrjfCalibrated) {
        e.n_cached_now = e.n_cached_at_arrival;
      }
      queue.push_back(e);
    }
    const size_t pick = sched.PickNext(queue, now);
    const int idx = remaining[pick];
    const auto& r = requests[idx];
    if (r.group == cached_group && cached_len > 0) {
      ++hits;
    }
    cached_group = r.group;  // tiny cache: last request's prefix only
    cached_len = r.length;
    now += 1.0;
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return hits;
}

TEST(Fig5Test, FifoGetsOneHit) { EXPECT_EQ(RunFig5(SchedPolicy::kFifo), 1); }

TEST(Fig5Test, StaticSrjfGetsOneHit) {
  EXPECT_EQ(RunFig5(SchedPolicy::kSjfStatic), 1);
}

TEST(Fig5Test, CalibratedSrjfGetsTwoHits) {
  EXPECT_EQ(RunFig5(SchedPolicy::kSrjfCalibrated), 2);
}

}  // namespace
}  // namespace prefillonly
