#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/sched/jct.h"
#include "src/sched/scheduler.h"

namespace prefillonly {
namespace {

SchedEntry Entry(double arrival, int64_t n_input, int64_t cached_arrival,
                 int64_t cached_now) {
  SchedEntry e;
  e.arrival_time = arrival;
  e.n_input = n_input;
  e.n_cached_at_arrival = cached_arrival;
  e.n_cached_now = cached_now;
  return e;
}

// -------------------------------------------------------------- Estimators

TEST(JctEstimatorTest, ProxyIsCacheMissTokens) {
  CacheMissProxyEstimator proxy;
  EXPECT_EQ(proxy.Estimate(1000, 0), 1000.0);
  EXPECT_EQ(proxy.Estimate(1000, 900), 100.0);
}

TEST(JctEstimatorTest, ProfiledRecoversLinearGroundTruth) {
  // Ground truth jct = 2ms/token_input - 1.5ms/token_cached + 40ms.
  auto measure = [](int64_t n_input, int64_t n_cached) {
    return 0.002 * static_cast<double>(n_input) -
           0.0015 * static_cast<double>(n_cached) + 0.04;
  };
  auto estimator = ProfiledJctEstimator::Profile(measure, 8000, 1000);
  ASSERT_TRUE(estimator.ok());
  EXPECT_GT(estimator.value().r_squared(), 0.999);
  EXPECT_NEAR(estimator.value().Estimate(5500, 2500), measure(5500, 2500), 1e-6);
}

TEST(JctEstimatorTest, ProfiledRejectsBadGrid) {
  auto measure = [](int64_t, int64_t) { return 1.0; };
  EXPECT_FALSE(ProfiledJctEstimator::Profile(measure, 500, 1000).ok());
  EXPECT_FALSE(ProfiledJctEstimator::Profile(measure, 1000, 0).ok());
}

// --------------------------------------------------------------- Policies

TEST(SchedulerTest, FifoPicksEarliestArrival) {
  Scheduler sched(SchedPolicy::kFifo, 0.0, nullptr);
  std::vector<SchedEntry> queue{
      Entry(2.0, 100, 0, 0), Entry(1.0, 900, 0, 0), Entry(3.0, 10, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 10.0), 1u);
}

TEST(SchedulerTest, SjfPicksShortestJob) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSjfStatic, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 500, 0, 0), Entry(0.0, 100, 0, 0), Entry(0.0, 900, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 1.0), 1u);
}

TEST(SchedulerTest, StaticSjfIgnoresFreshCacheState) {
  // Request 0 became fully cached AFTER arrival; static SJF cannot see it.
  CacheMissProxyEstimator proxy;
  Scheduler stale(SchedPolicy::kSjfStatic, 0.0, &proxy);
  Scheduler calibrated(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 1000, 0, 950),  // 50 miss tokens NOW, 1000 at arrival
      Entry(0.0, 400, 0, 0)};
  EXPECT_EQ(stale.PickNext(queue, 1.0), 1u);       // sees 1000 vs 400
  EXPECT_EQ(calibrated.PickNext(queue, 1.0), 0u);  // sees 50 vs 400
}

TEST(SchedulerTest, LambdaAgingPreventsStarvation) {
  // A long job that has waited long enough must win over fresh short jobs
  // (Algorithm 1's - lambda * T_queue term).
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, /*lambda=*/500.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 10000, 0, 0),   // 10k miss tokens, waiting since t=0
      Entry(19.0, 100, 0, 0)};   // tiny job, just arrived
  // At t=19: scores are 10000 - 500*19 = 500 vs 100 - 0 = 100: short wins.
  EXPECT_EQ(sched.PickNext(queue, 19.0), 1u);
  // At t=21: 10000 - 500*21 = -500 vs 100 - 500*2 = -900: short STILL wins
  // (it ages at the same rate); the long job wins once the score gap from
  // arrival-time difference dominates.
  EXPECT_EQ(sched.PickNext(queue, 21.0), 1u);
  std::vector<SchedEntry> queue2{
      Entry(0.0, 10000, 0, 0),
      Entry(25.0, 100, 0, 0)};  // arrives 25s later
  // 10000 - 500*25 = -2500 vs 100: the starved job finally runs.
  EXPECT_EQ(sched.PickNext(queue2, 25.0), 0u);
}

TEST(SchedulerTest, ZeroLambdaNeverAges) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 10000, 0, 0), Entry(1000.0, 100, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 2000.0), 1u);  // short always wins
}

TEST(SchedulerTest, TieBreaksFifo) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(1.0, 100, 0, 0), Entry(2.0, 100, 0, 0)};
  EXPECT_EQ(sched.PickNext(queue, 3.0), 0u);
}

TEST(SchedulerTest, ScoreExposesAlgorithm1) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 500.0, &proxy);
  const SchedEntry e = Entry(10.0, 5000, 0, 2000);
  // score = (5000 - 2000) - 500 * (now - 10)
  EXPECT_DOUBLE_EQ(sched.Score(e, 14.0), 3000.0 - 500.0 * 4.0);
}

// ------------------------------------------- Batch admission (ISSUE 4)

TEST(LengthBucketTest, PowerOfTwoBrackets) {
  EXPECT_EQ(LengthBucket(1), 0);
  EXPECT_EQ(LengthBucket(2), 1);
  EXPECT_EQ(LengthBucket(3), 1);
  EXPECT_EQ(LengthBucket(4), 2);
  EXPECT_EQ(LengthBucket(31), 4);
  EXPECT_EQ(LengthBucket(32), 5);
  EXPECT_EQ(LengthBucket(63), 5);
  EXPECT_EQ(LengthBucket(64), 6);
  // Degenerate inputs clamp into the smallest bucket.
  EXPECT_EQ(LengthBucket(0), 0);
  EXPECT_EQ(LengthBucket(-5), 0);
}

TEST(SchedulerBatchTest, SeedIsExactlyThePickNextWinner) {
  CacheMissProxyEstimator proxy;
  for (const BatchPacking packing : {BatchPacking::kFirstFit, BatchPacking::kBucket}) {
    Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, packing);
    std::vector<SchedEntry> queue{
        Entry(0.0, 500, 0, 0), Entry(0.0, 100, 0, 0), Entry(0.0, 900, 0, 0)};
    const auto batch = sched.PickBatch(queue, 1.0, 4);
    ASSERT_FALSE(batch.empty());
    EXPECT_EQ(batch[0], sched.PickNext(queue, 1.0))
        << "packing=" << BatchPackingName(packing);
  }
}

TEST(SchedulerBatchTest, FillsOnlyFromTheSeedsBucketInScoreOrder) {
  // Legacy kBucket semantics (ISSUE 4), kept selectable for bisection.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, BatchPacking::kBucket);
  // Seed is the 33-token job (bucket 5, = lengths 32..63): the smallest
  // remaining work in the queue. 40 and 60 share the bucket and join in
  // score order; 900 and 700 do not.
  std::vector<SchedEntry> queue{
      Entry(0.0, 900, 0, 0),  // bucket 9
      Entry(1.0, 40, 0, 0),   // bucket 5
      Entry(2.0, 33, 0, 0),   // bucket 5, best score -> seed
      Entry(3.0, 700, 0, 0),  // bucket 9
      Entry(4.0, 60, 0, 0)};  // bucket 5
  const auto batch = sched.PickBatch(queue, 5.0, 4);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 2u);  // seed
  EXPECT_EQ(batch[1], 1u);  // 40 beats 60
  EXPECT_EQ(batch[2], 4u);
  // max_batch truncates the riders, never the seed.
  const auto pair = sched.PickBatch(queue, 5.0, 2);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], 2u);
  EXPECT_EQ(pair[1], 1u);
  const auto solo = sched.PickBatch(queue, 5.0, 1);
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0], 2u);
}

TEST(SchedulerBatchTest, BucketsJudgeRemainingNotTotalLength) {
  // A 1000-token request with 990 cached has 10 miss tokens — it batches
  // with genuinely short requests, not with other 1000-token ones.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, BatchPacking::kBucket);
  std::vector<SchedEntry> queue{
      Entry(0.0, 1000, 0, 990),  // 10 miss -> bucket 3
      Entry(1.0, 12, 0, 0),      // bucket 3
      Entry(2.0, 1000, 0, 0)};   // bucket 9
  const auto batch = sched.PickBatch(queue, 3.0, 4);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 0u);
  EXPECT_EQ(batch[1], 1u);
}

TEST(SchedulerBatchTest, AgedLongJobSeedsItsOwnBatchDespiteShortBacklog) {
  // The starvation scenario batching must not reintroduce: a long job aged
  // past the lambda bound seeds the next batch ALONE under the legacy
  // bucket rule (the shorts are in another bucket) — small-batch formation
  // around short jobs cannot keep deferring it, because the seed choice is
  // pure PickNext.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, /*lambda=*/500.0, &proxy,
                  BatchPacking::kBucket);
  // Shorts that arrived soon after the long job: their scores stay ahead
  // (everyone ages at the same rate), so they batch together and the long
  // job waits — the efficient steady state.
  std::vector<SchedEntry> fresh{
      Entry(0.0, 10000, 0, 0),
      Entry(5.0, 100, 0, 0),   // bucket 6
      Entry(5.0, 101, 0, 0)};  // bucket 6
  const auto early = sched.PickBatch(fresh, 6.0, 4);
  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(early[0], 1u);
  EXPECT_EQ(early[1], 2u);
  // Shorts arriving 25s later: the long job's accumulated queueing offset
  // (500 * 25 > 10000 - 100) now dominates, it wins the seed, and — being
  // alone in its bucket — runs as a batch of one. Repeated small-batch
  // formation can never keep deferring it.
  std::vector<SchedEntry> aged{
      Entry(0.0, 10000, 0, 0),
      Entry(25.0, 100, 0, 0),
      Entry(25.0, 101, 0, 0)};
  const auto batch = sched.PickBatch(aged, 25.0, 4);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 0u);
}

// --------------------------------- Priority classes + co-batch groups (ISSUE 5)

TEST(SchedulerTest, PriorityClassOverridesPolicyScore) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  // SRJF alone would run the 100-token job; the 900-token job's higher
  // class is strict and wins regardless.
  std::vector<SchedEntry> queue{Entry(0.0, 100, 0, 0), Entry(0.0, 900, 0, 0)};
  queue[1].priority = 1;
  EXPECT_EQ(sched.PickNext(queue, 1.0), 1u);
  // Within one class the policy decides again.
  queue[0].priority = 1;
  EXPECT_EQ(sched.PickNext(queue, 1.0), 0u);
  // Negative classes deprioritize below the default.
  std::vector<SchedEntry> demoted{Entry(0.0, 100, 0, 0), Entry(0.0, 900, 0, 0)};
  demoted[0].priority = -1;
  EXPECT_EQ(sched.PickNext(demoted, 1.0), 1u);
}

TEST(SchedulerBatchTest, GroupMatesRideRegardlessOfBucketAndBeforeStrangers) {
  CacheMissProxyEstimator proxy;
  for (const BatchPacking packing : {BatchPacking::kFirstFit, BatchPacking::kBucket}) {
    Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, packing);
    // Seed: 33 tokens, group 7. Its group-mate has 900 miss tokens — a
    // different bucket, normally unweldable under kBucket — but the caller
    // co-submitted them, so the mate rides in BOTH packing modes, and it
    // outranks the stranger when slots are scarce.
    std::vector<SchedEntry> queue{
        Entry(0.0, 33, 0, 0),    // seed, group 7
        Entry(1.0, 900, 0, 0),   // group 7, bucket 9
        Entry(2.0, 40, 0, 0)};   // ungrouped, seed's bucket
    queue[0].group = 7;
    queue[1].group = 7;
    const auto pair = sched.PickBatch(queue, 3.0, 2);
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_EQ(pair[0], 0u);
    EXPECT_EQ(pair[1], 1u);  // the mate, despite bucket 9
    const auto full = sched.PickBatch(queue, 3.0, 4);
    ASSERT_EQ(full.size(), 3u);
    EXPECT_EQ(full[1], 1u);  // mates first...
    EXPECT_EQ(full[2], 2u);  // ...then strangers
  }
}

TEST(SchedulerBatchTest, UngroupedSeedStillFillsFromItsBucket) {
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, BatchPacking::kBucket);
  // A stranger's group membership neither blocks nor boosts it when the
  // seed is ungrouped: the bucket rule governs as before.
  std::vector<SchedEntry> queue{
      Entry(0.0, 33, 0, 0),    // seed, ungrouped
      Entry(1.0, 40, 0, 0),    // same bucket, grouped among others
      Entry(2.0, 900, 0, 0)};  // other bucket, same group as [1]
  queue[1].group = 9;
  queue[2].group = 9;
  const auto batch = sched.PickBatch(queue, 3.0, 4);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 0u);
  EXPECT_EQ(batch[1], 1u);
}

// ----------------------- Budget-aware first-fit packing (ISSUE 9)

// A budget in "token units": 1 byte per miss token (optionally per cached
// token) makes the arithmetic readable — budget_bytes is a token count.
BatchBudget TokenBudget(size_t budget_tokens, size_t per_cached = 0) {
  BatchBudget budget;
  budget.budget_bytes = budget_tokens;
  budget.bytes_per_miss_token = 1;
  budget.bytes_per_cached_token = per_cached;
  return budget;
}

TEST(BatchBudgetTest, MissTokensAreBlockAlignedAndNeverZero) {
  BatchBudget budget;
  budget.block_tokens = 16;
  // The engine refreshes n_cached_now as min(match, n_input - 1) = 63, but
  // the prefix AcquirePrefix can really assemble is block-aligned: 48
  // tokens, so 16 rows stack — the projection must not assume 1.
  EXPECT_EQ(budget.CachedTokens(64, 63), 48);
  EXPECT_EQ(budget.MissTokens(64, 63), 16);
  // An over-reported match clamps to n_input - 1 first.
  EXPECT_EQ(budget.MissTokens(64, 64), 16);
  // Fully-aligned reuse passes through.
  EXPECT_EQ(budget.CachedTokens(65, 64), 64);
  EXPECT_EQ(budget.MissTokens(65, 64), 1);
  // At least one row always stacks.
  EXPECT_EQ(budget.MissTokens(1, 0), 1);
  budget.block_tokens = 0;  // no alignment information: trust the caller
  EXPECT_EQ(budget.CachedTokens(64, 63), 63);
  EXPECT_EQ(budget.MissTokens(64, 63), 1);
}

TEST(BatchBudgetTest, SequenceBytesChargesAllThreeRates) {
  BatchBudget budget;
  budget.bytes_per_miss_token = 10;
  budget.bytes_per_cached_token = 2;
  budget.bytes_per_sequence = 100;
  budget.block_tokens = 16;
  // n_input 64, match 63 -> 48 cached, 16 miss.
  EXPECT_EQ(budget.SequenceBytes(64, 63), 16u * 10u + 48u * 2u + 100u);
  EXPECT_EQ(budget.SequenceBytes(8, 0), 8u * 10u + 100u);
}

TEST(SchedulerBatchTest, PackedFillsAnyLengthLongestFirst) {
  // kFirstFit with an unlimited budget: the bucket gate is gone — every
  // waiting entry rides, longest remaining length first (first-fit
  // decreasing), behind the unchanged SRJF seed.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 900, 0, 0), Entry(1.0, 40, 0, 0), Entry(2.0, 33, 0, 0),
      Entry(3.0, 700, 0, 0), Entry(4.0, 60, 0, 0)};
  const BatchPick pick = sched.PickBatch(queue, 5.0, 5, BatchBudget{});
  ASSERT_EQ(pick.picked.size(), 5u);
  EXPECT_EQ(pick.picked[0], 2u);  // seed: best score (33)
  EXPECT_EQ(pick.picked[1], 0u);  // 900
  EXPECT_EQ(pick.picked[2], 3u);  // 700
  EXPECT_EQ(pick.picked[3], 4u);  // 60
  EXPECT_EQ(pick.picked[4], 1u);  // 40
  EXPECT_EQ(pick.miss_tokens, 900 + 700 + 60 + 40 + 33);
  EXPECT_EQ(pick.budget_skips, 0);
}

TEST(SchedulerBatchTest, PackedSkipsOversizedRidersAndStillAdmitsSmallerOnes) {
  // THE ISSUE 9 regression: under the old admission code the first rider
  // that overflowed the budget truncated the whole tail. First-fit must
  // skip the oversized candidates and keep scanning — the 60-token rider
  // fits next to the 33-token seed even though 900 and 700 do not.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 900, 0, 0), Entry(1.0, 40, 0, 0), Entry(2.0, 33, 0, 0),
      Entry(3.0, 700, 0, 0), Entry(4.0, 60, 0, 0)};
  const BatchPick pick = sched.PickBatch(queue, 5.0, 5, TokenBudget(100));
  ASSERT_EQ(pick.picked.size(), 2u);
  EXPECT_EQ(pick.picked[0], 2u);  // seed (33)
  EXPECT_EQ(pick.picked[1], 4u);  // 60 fits: 33 + 60 = 93 <= 100
  EXPECT_EQ(pick.projected_bytes, 93u);
  EXPECT_EQ(pick.miss_tokens, 93);
  // 900 and 700 were skipped before 60; 40 after it (93 + 40 > 100).
  EXPECT_EQ(pick.budget_skips, 3);
}

TEST(SchedulerBatchTest, BucketModeAlsoSkipsInsteadOfTruncatingTheTail) {
  // The same skip-not-break fix must hold in the legacy bucket mode: a
  // better-scored rider whose PROJECTED COST is huge (tiny miss length but
  // a megaprefix of cached tokens to assemble) must not evict the cheap
  // rider behind it from consideration.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy, BatchPacking::kBucket);
  std::vector<SchedEntry> queue{
      Entry(0.0, 33, 0, 0),      // seed: 33 miss, cost 33
      Entry(1.0, 1000, 0, 960),  // 40 miss (bucket 5), cost 40 + 960 = 1000
      Entry(2.0, 60, 0, 0)};     // 60 miss (bucket 5), cost 60
  const BatchPick pick =
      sched.PickBatch(queue, 3.0, 4, TokenBudget(100, /*per_cached=*/1));
  ASSERT_EQ(pick.picked.size(), 2u);
  EXPECT_EQ(pick.picked[0], 0u);
  EXPECT_EQ(pick.picked[1], 2u);  // 33 + 60 = 93 <= 100; the megaprefix skipped
  EXPECT_EQ(pick.budget_skips, 1);
  EXPECT_EQ(pick.projected_bytes, 93u);
}

TEST(SchedulerBatchTest, PackedSeedAlwaysDispatchesEvenOverBudget) {
  // A seed alone over budget still dispatches (it would charge the lane the
  // same bytes running solo); only riders are subject to admission.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{Entry(0.0, 200, 0, 0), Entry(1.0, 300, 0, 0)};
  const BatchPick pick = sched.PickBatch(queue, 2.0, 4, TokenBudget(100));
  ASSERT_EQ(pick.picked.size(), 1u);
  EXPECT_EQ(pick.picked[0], 0u);
  EXPECT_EQ(pick.projected_bytes, 200u);
  EXPECT_EQ(pick.budget_skips, 1);
}

TEST(SchedulerBatchTest, PackedPriorityClassesStillDominateLength) {
  // First-fit decreasing orders riders by length only WITHIN a priority
  // class; a higher class still rides first even when it is shorter.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, 0.0, &proxy);
  std::vector<SchedEntry> queue{
      Entry(0.0, 10, 0, 0),    // priority 1: best score in top class -> seed
      Entry(1.0, 500, 0, 0),   // priority 0: longest overall
      Entry(2.0, 100, 0, 0)};  // priority 1
  queue[0].priority = 1;
  queue[2].priority = 1;
  const BatchPick pick = sched.PickBatch(queue, 3.0, 2, BatchBudget{});
  ASSERT_EQ(pick.picked.size(), 2u);
  EXPECT_EQ(pick.picked[0], 0u);
  EXPECT_EQ(pick.picked[1], 2u);  // class beats the 500-token rider
}

TEST(SchedulerBatchTest, PackedAgedLongSeedGetsShortRiders) {
  // The flip side of AgedLongJobSeedsItsOwnBatchDespiteShortBacklog: under
  // first-fit the aged long job still wins the seed (the starvation bound
  // is untouched), but the backlogged shorts now ride WITH it instead of
  // leaving the lane nearly empty.
  CacheMissProxyEstimator proxy;
  Scheduler sched(SchedPolicy::kSrjfCalibrated, /*lambda=*/500.0, &proxy);
  std::vector<SchedEntry> aged{
      Entry(0.0, 10000, 0, 0),
      Entry(25.0, 100, 0, 0),
      Entry(25.0, 101, 0, 0)};
  const BatchPick pick = sched.PickBatch(aged, 25.0, 4, BatchBudget{});
  ASSERT_EQ(pick.picked.size(), 3u);
  EXPECT_EQ(pick.picked[0], 0u);  // the starved long job still seeds
  EXPECT_EQ(pick.picked[1], 2u);  // 101 before 100: longest first
  EXPECT_EQ(pick.picked[2], 1u);
  EXPECT_EQ(pick.miss_tokens, 10000 + 101 + 100);
}

// ------------------------------------------------- Fig. 5 walkthrough
//
// Four requests A, B, C, D with length A < C < B < D; A and D share a
// prefix, B and C share a prefix; the cache holds only ONE request's KV.
// FIFO and static SRJF each get 1 cache hit; SRJF with continuous
// calibration gets 2 (it notices D's JCT collapse right after A runs).
// This mirrors the paper's Fig. 5 exactly, with the cache dynamics
// emulated deterministically.

struct Fig5Request {
  const char* name;
  int64_t length;
  int group;  // shared-prefix group: 0 = {A, D}, 1 = {B, C}
};

int RunFig5(SchedPolicy policy) {
  // Lengths satisfy A < C < B < D, with the shared prefixes large enough
  // that a cache hit flips the JCT order (D's miss after A = 100 tokens,
  // below C's 350) — the situation Fig. 5 illustrates.
  const Fig5Request requests[] = {
      {"A", 300, 0}, {"B", 380, 1}, {"C", 350, 1}, {"D", 400, 0}};
  CacheMissProxyEstimator proxy;
  Scheduler sched(policy, 0.0, &proxy);

  std::vector<int> remaining{0, 1, 2, 3};
  int cached_group = -1;  // cache holds one request's prefix
  int64_t cached_len = 0;
  int hits = 0;
  double now = 0;
  while (!remaining.empty()) {
    std::vector<SchedEntry> queue;
    for (int idx : remaining) {
      const auto& r = requests[idx];
      const int64_t hit =
          (r.group == cached_group) ? std::min(cached_len, r.length - 1) : 0;
      SchedEntry e = Entry(0.0, r.length, 0, hit);
      // Static policies saw an empty cache at arrival.
      if (policy != SchedPolicy::kSrjfCalibrated) {
        e.n_cached_now = e.n_cached_at_arrival;
      }
      queue.push_back(e);
    }
    const size_t pick = sched.PickNext(queue, now);
    const int idx = remaining[pick];
    const auto& r = requests[idx];
    if (r.group == cached_group && cached_len > 0) {
      ++hits;
    }
    cached_group = r.group;  // tiny cache: last request's prefix only
    cached_len = r.length;
    now += 1.0;
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return hits;
}

TEST(Fig5Test, FifoGetsOneHit) { EXPECT_EQ(RunFig5(SchedPolicy::kFifo), 1); }

TEST(Fig5Test, StaticSrjfGetsOneHit) {
  EXPECT_EQ(RunFig5(SchedPolicy::kSjfStatic), 1);
}

TEST(Fig5Test, CalibratedSrjfGetsTwoHits) {
  EXPECT_EQ(RunFig5(SchedPolicy::kSrjfCalibrated), 2);
}

// ------------------------------------- Scheduling order on the REAL engine
//
// Engine::PickIndex end to end (ISSUE 2): not the simulator — a backlog is
// queued into the concurrent runtime and the policy decides completion
// order. All requests are submitted BEFORE StartWorker and executed by a
// single executor slot, so the order is deterministic.

std::vector<int32_t> EngineTokens(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(256));
  }
  return out;
}

ScoringRequest EngineRequest(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

EngineOptions OrderTestOptions(SchedPolicy policy, double lambda) {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.policy = policy;
  options.lambda = lambda;
  options.max_concurrent_requests = 1;  // serialize so order is observable
  return options;
}

// Runs the queued backlog through the runtime; returns completion order ids.
std::vector<int64_t> DrainAndCollect(Engine& engine) {
  std::mutex mu;
  std::vector<int64_t> order;
  EXPECT_TRUE(engine
                  .StartWorker([&](Result<ScoringResponse> response) {
                    ASSERT_TRUE(response.ok()) << response.status().ToString();
                    std::lock_guard<std::mutex> lock(mu);
                    order.push_back(response.value().request_id);
                  })
                  .ok());
  engine.StopWorker();  // drains the whole backlog
  return order;
}

TEST(EngineSchedulingOrderTest, FifoCompletesInArrivalOrder) {
  Engine engine(OrderTestOptions(SchedPolicy::kFifo, 0.0));
  const auto long_id = engine.Submit(EngineRequest(EngineTokens(120, 1))).value();
  const auto mid_id = engine.Submit(EngineRequest(EngineTokens(60, 2))).value();
  const auto short_id = engine.Submit(EngineRequest(EngineTokens(20, 3))).value();
  const auto order = DrainAndCollect(engine);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], long_id);
  EXPECT_EQ(order[1], mid_id);
  EXPECT_EQ(order[2], short_id);
}

TEST(EngineSchedulingOrderTest, CalibratedSrjfRunsCachedShortJobFirst) {
  Engine engine(OrderTestOptions(SchedPolicy::kSrjfCalibrated, 0.0));
  // Warm the cache with a 96-token prefix.
  const auto profile = EngineTokens(96, 10);
  auto warm = profile;
  warm.push_back(1);
  ASSERT_TRUE(engine.ScoreSync(EngineRequest(warm, 1)).ok());

  // Backlog: a long uncached job arrives FIRST, then a sibling of the cached
  // prefix (97 tokens input but only ~1 block of cache misses). Calibrated
  // SRJF must complete the cached job ahead of the long one.
  const auto long_id = engine.Submit(EngineRequest(EngineTokens(120, 11), 2)).value();
  auto sibling = profile;
  sibling.push_back(2);
  sibling.push_back(3);
  const auto sibling_id = engine.Submit(EngineRequest(sibling, 1)).value();
  const auto order = DrainAndCollect(engine);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], sibling_id);
  EXPECT_EQ(order[1], long_id);
}

TEST(EngineSchedulingOrderTest, LambdaBoundsQueueingOfTheLongJob) {
  // The same backlog twice: a long job that arrived measurably earlier than
  // a swarm of short jobs. With lambda = 0 pure SRJF starves the long job to
  // the back; with a large lambda its accumulated queueing time outweighs
  // the size difference and it runs first (Algorithm 1's starvation offset).
  for (const double lambda : {0.0, 1e9}) {
    Engine engine(OrderTestOptions(SchedPolicy::kSrjfCalibrated, lambda));
    const auto long_id = engine.Submit(EngineRequest(EngineTokens(120, 20), 1)).value();
    // Let the long job age so its queueing-time offset is unambiguous.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<int64_t> short_ids;
    for (int i = 0; i < 3; ++i) {
      short_ids.push_back(
          engine.Submit(EngineRequest(EngineTokens(20 + i, 30 + i), 2 + i)).value());
    }
    const auto order = DrainAndCollect(engine);
    ASSERT_EQ(order.size(), 4u);
    if (lambda == 0.0) {
      EXPECT_EQ(order.back(), long_id) << "pure SRJF must run the long job last";
    } else {
      EXPECT_EQ(order.front(), long_id)
          << "the starvation offset must bound the long job's queueing";
    }
  }
}

TEST(EngineSchedulingOrderTest, BatchFormationKeepsTheStarvationBound) {
  // The admission-ordering requirement on the REAL engine (ISSUE 4,
  // re-proven for first-fit packing in ISSUE 9): with batching on, SRJF
  // must not starve a long request behind repeated small-batch formation.
  // The backlog is one aged 120-token job plus four shorts (20..23 tokens,
  // one LengthBucket), drained in batches of up to 2. In BOTH packing
  // modes the seed sequence is identical — packing only changes who RIDES:
  //
  //  * lambda = 0   — seeds are the shorts, the long job scores last.
  //    kBucket: the shorts pair up and the long job runs alone, dead last.
  //    kFirstFit: the long job is the biggest rider, so it is welded into
  //    the FIRST batch behind the short seed — same seed order, better
  //    occupancy, and the long job now finishes EARLIER than the legacy
  //    rule allowed (delivery slot 1 instead of last).
  //  * lambda = 1e9 — arrival order dominates: the aged long job seeds the
  //    first dispatch in both modes (the starvation bound). kBucket leaves
  //    it alone in the lane; kFirstFit gives it the longest short as a
  //    rider.
  //
  // Either way: 5 requests over 3 dispatches, peak batch 2.
  for (const BatchPacking packing : {BatchPacking::kFirstFit, BatchPacking::kBucket}) {
    for (const double lambda : {0.0, 1e9}) {
      EngineOptions options = OrderTestOptions(SchedPolicy::kSrjfCalibrated, lambda);
      options.max_batch_size = 2;
      options.batch_packing = packing;
      Engine engine(options);
      const auto long_id =
          engine.Submit(EngineRequest(EngineTokens(120, 40), 1)).value();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      for (int i = 0; i < 4; ++i) {
        // Lengths 20..23 share LengthBucket 4.
        ASSERT_TRUE(
            engine.Submit(EngineRequest(EngineTokens(20 + i, 50 + i), 2 + i)).ok());
      }
      const auto order = DrainAndCollect(engine);
      ASSERT_EQ(order.size(), 5u);
      if (lambda == 0.0) {
        if (packing == BatchPacking::kBucket) {
          EXPECT_EQ(order.back(), long_id)
              << "pure SRJF + bucket rule: short batches first, long job last";
        } else {
          EXPECT_EQ(order[1], long_id)
              << "first-fit: the long job rides the first short-seeded batch";
          EXPECT_NE(order.front(), long_id)
              << "packing must not usurp the short seed's win";
        }
      } else {
        EXPECT_EQ(order.front(), long_id)
            << "batch formation must not defer the aged long job";
      }
      const auto stats = engine.stats();
      EXPECT_EQ(stats.completed, 5);
      EXPECT_EQ(stats.batched_requests, 5);
      EXPECT_EQ(stats.batches_dispatched, 3);
      EXPECT_EQ(stats.peak_batch_size, 2);
      // Every miss token of every request went through admission accounting
      // (no prefix reuse in this workload: 5 distinct prompts).
      EXPECT_EQ(stats.batched_miss_tokens, 120 + 20 + 21 + 22 + 23);
      EXPECT_EQ(stats.packing_skips, 0);
    }
  }
}

}  // namespace
}  // namespace prefillonly
