// Concurrent serving runtime tests (ISSUE 2).
//
// Proves the two contracts of the multi-request executor:
//  1. DETERMINISM — a request's logits (hence its constrained probabilities)
//     are bitwise identical whether it ran on 1, 4, or all workers, alone or
//     alongside other requests, at in-flight counts {1, 2, 4};
//  2. ACCOUNTING — under N client threads hammering Submit/SubmitAsync, no
//     request is lost or double-completed and the stats counters sum.
// Plus the elastic worker-partition behavior of ThreadPool::Lease and the
// checked-misuse errors of the runtime lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/request.h"

namespace prefillonly {
namespace {

EngineOptions TinyEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.chunk_size = 32;
  // A fixed pool width so every machine (including the 1-core CI container)
  // exercises the same partition arithmetic.
  options.num_threads = 4;
  return options;
}

std::vector<int32_t> Tokens(int64_t n, uint64_t seed, int64_t vocab = 256) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

ScoringRequest YesNoRequest(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

// Bitwise comparison of two probability lists — the determinism contract is
// exact, not approximate.
::testing::AssertionResult SameBits(const std::vector<TokenProbability>& a,
                                    const std::vector<TokenProbability>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].token != b[i].token ||
        std::memcmp(&a[i].probability, &b[i].probability, sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "probability " << i << ": " << a[i].probability << " vs "
             << b[i].probability;
    }
  }
  return ::testing::AssertionSuccess();
}

// --------------------------------------------------- ThreadPool partitions

TEST(ThreadPoolLeaseTest, ReservationsAreDisjointAndBounded) {
  ThreadPool pool(4);  // 3 spawned workers
  ThreadPool::Lease a(pool, 2);
  EXPECT_EQ(a.reserved(), 2);
  // Only one spawned worker left; an over-ask is satisfied partially.
  ThreadPool::Lease b(pool, 2);
  EXPECT_EQ(b.reserved(), 1);
  ThreadPool::Lease c(pool, 2);
  EXPECT_EQ(c.reserved(), 0);
}

TEST(ThreadPoolLeaseTest, WorkersReturnWhenLeaseDies) {
  ThreadPool pool(4);
  {
    ThreadPool::Lease a(pool, 3);
    EXPECT_EQ(a.reserved(), 3);
  }
  ThreadPool::Lease b(pool, 3);
  EXPECT_EQ(b.reserved(), 3);
}

TEST(ThreadPoolLeaseTest, ConcurrentLeasedParallelForsVisitEveryIndexOnce) {
  // Two client threads, each with its own lease, issue ParallelFor calls at
  // the same time; every call must cover its range exactly once.
  ThreadPool pool(8);
  constexpr int kClients = 2;
  constexpr int kRounds = 50;
  constexpr int64_t kN = 4096;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &failures] {
      ThreadPool::Lease lease(pool, 3);
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> visits(kN);
        pool.ParallelFor(kN, /*grain=*/64, [&](int64_t b, int64_t e, int worker) {
          if (worker < 0 || worker >= pool.num_threads()) {
            ++failures;
          }
          for (int64_t i = b; i < e; ++i) {
            visits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < kN; ++i) {
          if (visits[static_cast<size_t>(i)].load() != 1) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolLeaseTest, UnleasedCallerBorrowsTheWholePool) {
  // Legacy behavior: with no lease and an idle pool, a ParallelFor spreads
  // across all workers.
  ThreadPool pool(4);
  std::set<int> seen;
  std::mutex mu;
  pool.ParallelFor(400, /*grain=*/1, [&](int64_t, int64_t, int worker) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
  });
  EXPECT_EQ(seen.size(), 4u);
}

// ----------------------------------------------- Determinism under load

// Reference probabilities computed serially on a single-thread engine.
std::vector<std::vector<TokenProbability>> ReferenceProbabilities(
    const std::vector<ScoringRequest>& requests) {
  EngineOptions options = TinyEngineOptions();
  options.num_threads = 1;  // exact legacy serial execution
  Engine engine(options);
  std::vector<std::vector<TokenProbability>> out;
  for (const auto& request : requests) {
    auto response = engine.ScoreSync(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    out.push_back(response.value().probabilities);
  }
  return out;
}

TEST(ConcurrencyTest, BitwiseIdenticalAcrossInFlightCounts) {
  // 8 distinct requests; expected bits from the serial single-thread engine.
  std::vector<ScoringRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(YesNoRequest(Tokens(40 + 11 * i, 1000 + i), i));
  }
  const auto expected = ReferenceProbabilities(requests);

  for (int in_flight : {1, 2, 4}) {
    EngineOptions options = TinyEngineOptions();
    options.max_concurrent_requests = in_flight;
    Engine engine(options);
    ASSERT_TRUE(engine.StartWorker(nullptr).ok());

    // One client thread per request so submissions and executions overlap.
    std::vector<Engine::ResponseFuture> futures(requests.size());
    std::vector<std::thread> clients;
    for (size_t i = 0; i < requests.size(); ++i) {
      clients.emplace_back([&engine, &requests, &futures, i] {
        auto submitted = engine.SubmitAsync(requests[i]);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures[i] = submitted.take();
      });
    }
    for (auto& t : clients) {
      t.join();
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      auto response = futures[i].get();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(response.value().user_id, static_cast<int64_t>(i));
      EXPECT_TRUE(SameBits(response.value().probabilities, expected[i]))
          << "request " << i << " at in-flight " << in_flight;
    }
    engine.StopWorker();
    const auto stats = engine.stats();
    EXPECT_LE(stats.peak_in_flight, in_flight);
  }
}

TEST(ConcurrencyTest, ScoreSyncLaneMatchesBitsWhileRuntimeRuns) {
  // The synchronous bypass lane runs alongside dispatched requests and must
  // produce the same bits as the serial reference.
  std::vector<ScoringRequest> requests = {YesNoRequest(Tokens(64, 7), 7)};
  const auto expected = ReferenceProbabilities(requests);

  EngineOptions options = TinyEngineOptions();
  options.max_concurrent_requests = 2;
  Engine engine(options);
  ASSERT_TRUE(engine.StartWorker(nullptr).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Submit(YesNoRequest(Tokens(50 + i, 2000 + i), 100 + i)).ok());
  }
  auto inline_response = engine.ScoreSync(requests[0]);
  ASSERT_TRUE(inline_response.ok());
  EXPECT_TRUE(SameBits(inline_response.value().probabilities, expected[0]));
  engine.StopWorker();
  EXPECT_EQ(engine.stats().completed, 5);
}

// ------------------------------------------- Batched + concurrent (ISSUE 4)

TEST(ConcurrencyTest, BatchedRuntimeKeepsBitsAndAccounting) {
  // In-flight {2, 4} lanes, each running batches of up to {1, 2, 4}: every
  // request's probabilities must match the serial solo reference bitwise,
  // and no request may be lost or double-completed. Lengths 33..55 share
  // one LengthBucket, so a backlog submitted before StartWorker guarantees
  // real (>= 2) batches whenever max_batch_size > 1.
  constexpr int kRequests = 12;
  std::vector<ScoringRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    requests.push_back(YesNoRequest(Tokens(33 + 2 * i, 7000 + i), i));
  }
  const auto expected = ReferenceProbabilities(requests);

  for (int in_flight : {2, 4}) {
    for (int max_batch : {1, 2, 4}) {
      EngineOptions options = TinyEngineOptions();
      options.max_concurrent_requests = in_flight;
      options.max_batch_size = max_batch;
      Engine engine(options);

      // Backlog first, runtime second: the first dispatch decisions see the
      // whole queue and can form full batches.
      std::vector<Engine::ResponseFuture> futures;
      for (const auto& request : requests) {
        auto submitted = engine.SubmitAsync(request);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures.push_back(submitted.take());
      }
      std::mutex delivered_mu;
      std::vector<int64_t> delivered_ids;
      ASSERT_TRUE(engine
                      .StartWorker([&](Result<ScoringResponse> response) {
                        ASSERT_TRUE(response.ok()) << response.status().ToString();
                        std::lock_guard<std::mutex> lock(delivered_mu);
                        delivered_ids.push_back(response.value().request_id);
                      })
                      .ok());

      std::set<int64_t> response_ids;
      for (size_t i = 0; i < futures.size(); ++i) {
        auto response = futures[i].get();
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        EXPECT_EQ(response.value().user_id, static_cast<int64_t>(i));
        EXPECT_TRUE(SameBits(response.value().probabilities, expected[i]))
            << "request " << i << " at in-flight " << in_flight << " max_batch "
            << max_batch;
        EXPECT_GE(response.value().batch_size, 1);
        EXPECT_LE(response.value().batch_size, max_batch);
        EXPECT_TRUE(response_ids.insert(response.value().request_id).second)
            << "request completed twice";
      }
      engine.StopWorker();

      std::set<int64_t> delivered_set(delivered_ids.begin(), delivered_ids.end());
      EXPECT_EQ(delivered_ids.size(), static_cast<size_t>(kRequests));
      EXPECT_EQ(delivered_set, response_ids);

      const auto stats = engine.stats();
      EXPECT_EQ(stats.completed, kRequests);
      EXPECT_EQ(stats.failed, 0);
      EXPECT_EQ(stats.batched_requests, kRequests);
      EXPECT_LE(stats.peak_batch_size, max_batch);
      EXPECT_LE(stats.peak_in_flight, in_flight);
      if (max_batch == 1) {
        EXPECT_EQ(stats.batches_dispatched, kRequests);  // exact legacy
      } else {
        EXPECT_GE(stats.peak_batch_size, 2)
            << "deep same-bucket backlog must form a real batch";
        EXPECT_LT(stats.batches_dispatched, kRequests);
      }
    }
  }
}

// ------------------------------------------------- Accounting under load

TEST(ConcurrencyTest, NoRequestLostOrDoubleCompleted) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  EngineOptions options = TinyEngineOptions();
  options.max_concurrent_requests = 4;
  Engine engine(options);

  std::mutex delivered_mu;
  std::vector<int64_t> delivered_ids;
  ASSERT_TRUE(engine
                  .StartWorker([&](Result<ScoringResponse> response) {
                    ASSERT_TRUE(response.ok()) << response.status().ToString();
                    std::lock_guard<std::mutex> lock(delivered_mu);
                    delivered_ids.push_back(response.value().request_id);
                  })
                  .ok());

  std::mutex futures_mu;
  std::vector<std::pair<int64_t, Engine::ResponseFuture>> futures;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto request =
            YesNoRequest(Tokens(30 + 5 * i + c, 3000 + c * 100 + i), c * 100 + i);
        auto submitted = engine.SubmitAsync(std::move(request));
        ASSERT_TRUE(submitted.ok());
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.emplace_back(c * 100 + i, submitted.take());
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }

  // Every future resolves with its own request (user_id round-trips).
  std::set<int64_t> response_ids;
  for (auto& [user, future] : futures) {
    auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().user_id, user);
    EXPECT_TRUE(response_ids.insert(response.value().request_id).second)
        << "request id " << response.value().request_id << " completed twice";
  }
  EXPECT_EQ(response_ids.size(), static_cast<size_t>(kClients * kPerClient));

  engine.StopWorker();

  // Callback deliveries: exactly one per request, no duplicates, none lost.
  std::set<int64_t> delivered_set(delivered_ids.begin(), delivered_ids.end());
  EXPECT_EQ(delivered_ids.size(), static_cast<size_t>(kClients * kPerClient));
  EXPECT_EQ(delivered_set, response_ids);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.peak_in_flight, 1);
  EXPECT_LE(stats.peak_in_flight, options.max_concurrent_requests);
}

TEST(ConcurrencyTest, StopWorkerDrainsBacklog) {
  EngineOptions options = TinyEngineOptions();
  options.max_concurrent_requests = 2;
  Engine engine(options);
  std::atomic<int> delivered{0};
  ASSERT_TRUE(engine.StartWorker([&](Result<ScoringResponse>) { ++delivered; }).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Submit(YesNoRequest(Tokens(25 + i, 4000 + i), i)).ok());
  }
  engine.StopWorker();  // must serve everything queued before returning
  EXPECT_EQ(delivered.load(), 10);
  EXPECT_EQ(engine.stats().completed, 10);
  EXPECT_FALSE(engine.worker_running());
}

// --------------------------------------------------- Lifecycle misuse

TEST(ConcurrencyTest, RunPendingWhileRuntimeActiveIsCheckedError) {
  Engine engine(TinyEngineOptions());
  ASSERT_TRUE(engine.StartWorker(nullptr).ok());
  auto result = engine.RunPending();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  engine.StopWorker();
  // After stopping, the synchronous frontend works again.
  ASSERT_TRUE(engine.Submit(YesNoRequest(Tokens(20, 5000))).ok());
  auto drained = engine.RunPending();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value().size(), 1u);
}

TEST(ConcurrencyTest, DoubleStartIsCheckedError) {
  Engine engine(TinyEngineOptions());
  ASSERT_TRUE(engine.StartWorker(nullptr).ok());
  EXPECT_EQ(engine.StartWorker(nullptr).code(), StatusCode::kFailedPrecondition);
  engine.StopWorker();
  engine.StopWorker();  // idempotent
  // The runtime can be restarted after a full stop.
  ASSERT_TRUE(engine.StartWorker(nullptr).ok());
  engine.StopWorker();
}

TEST(ConcurrencyTest, SubmitAsyncResolvesInSyncModeToo) {
  Engine engine(TinyEngineOptions());
  auto submitted = engine.SubmitAsync(YesNoRequest(Tokens(33, 6000), 42));
  ASSERT_TRUE(submitted.ok());
  auto future = submitted.take();
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses.value().size(), 1u);
  auto via_future = future.get();
  ASSERT_TRUE(via_future.ok());
  EXPECT_EQ(via_future.value().user_id, 42);
  EXPECT_TRUE(SameBits(via_future.value().probabilities,
                       responses.value()[0].probabilities));
}

}  // namespace
}  // namespace prefillonly
