// Golden-logits regression test (ISSUE 4).
//
// The determinism contract makes the scalar backend's bits a stable
// artifact: independent of thread count, prefill mode, chunking, partition
// width, concurrency, and batch composition. This test pins those bits to a
// checked-in golden file so silent cross-PR numeric drift — a kernel
// "cleanup" that reorders an accumulation, a weight-init reshuffle — fails
// tier-1 instead of surviving until someone inspects benchmark output.
//
// Scope: the SCALAR backend only. Its inner loops are ISO-C++ float
// arithmetic (no FMA contraction at -std=c++20, no reassociation), so the
// bits are reproducible wherever the same libm feeds SwiGLU/softmax's
// expf. The golden values are tied to this repo's build environment
// (container gcc + glibc); if a toolchain bump legitimately moves them,
// regenerate and commit the diff alongside the bump:
//
//   cmake -B build -S . && cmake --build build -j --target prefillonly_core
//   g++ -O3 -DNDEBUG -std=c++20 -I. <generator mirroring this file> \
//       build/libprefillonly_core.a -lpthread -o gen && ./gen > tests/golden_logits.inc
//
// (The generator is the mirror of the constants below: ModelConfig::Tiny,
// weight seed 42, prompts Rng(777 + p) of lengths {5, 17, 33, 40}, vocab
// 256, default hybrid PrefillOptions for the model pass; engine with
// num_threads 1, block_size 16, cache_budget 512, chunk 32, allowed tokens
// {3, 7, 11, 19}, prompts scored in order. Lengths 33 and 40 share a
// LengthBucket so the batched variant below really stacks them.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/model/llama.h"
#include "tests/golden_logits.inc"

namespace prefillonly {
namespace {

// Escape hatch for hosts whose libm legitimately rounds differently from
// the environment the golden file was generated in (see the header
// comment): PREFILLONLY_GOLDEN=off skips the suite with a visible notice
// instead of failing tier-1 on a toolchain difference.
bool GoldenDisabled() {
  const char* env = std::getenv("PREFILLONLY_GOLDEN");
  return env != nullptr && std::string_view(env) == "off";
}

#define PO_SKIP_IF_GOLDEN_OFF()                                               \
  if (GoldenDisabled()) {                                                     \
    GTEST_SKIP() << "PREFILLONLY_GOLDEN=off: golden bits tied to another "    \
                    "toolchain; regenerate per the header recipe to re-arm."; \
  }

uint64_t Fnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<int32_t> Prompt(uint64_t seed, int64_t n) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(256));
  }
  return out;
}

EngineOptions GoldenEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.kernel_backend = KernelBackend::kScalar;
  options.num_threads = 1;
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.chunk_size = 32;
  return options;
}

TEST(GoldenLogitsTest, ModelLogitsMatchGoldenBits) {
  PO_SKIP_IF_GOLDEN_OFF();
  LlamaModel model(ModelConfig::Tiny(), /*seed=*/42, KernelBackend::kScalar);
  TrackingAllocator arena;
  for (int p = 0; p < golden::kNumPrompts; ++p) {
    const auto tokens =
        Prompt(777 + static_cast<uint64_t>(p), golden::kPromptLengths[p]);
    PrefillOptions options;  // hybrid defaults, exactly like the generator
    auto pass = model.Prefill(tokens, nullptr, options, arena);
    ASSERT_TRUE(pass.ok()) << pass.status().ToString();
    const auto& logits = pass.value().last_logits;
    ASSERT_EQ(logits.size(), 256u);
    for (int i = 0; i < 16; ++i) {
      uint32_t bits;
      std::memcpy(&bits, &logits[static_cast<size_t>(i)], sizeof(bits));
      EXPECT_EQ(bits, golden::kLogitsHead[p][i])
          << "prompt " << p << " logit " << i << " drifted: " << logits[i];
    }
    EXPECT_EQ(Fnv1a(logits.data(), logits.size() * sizeof(float)),
              golden::kLogitsHash[p])
        << "prompt " << p << ": some logit beyond the spot-checked head drifted";
  }
}

TEST(GoldenLogitsTest, EngineProbabilitiesMatchGoldenBits) {
  PO_SKIP_IF_GOLDEN_OFF();
  Engine engine(GoldenEngineOptions());
  for (int p = 0; p < golden::kNumPrompts; ++p) {
    ScoringRequest request;
    request.user_id = p;
    request.tokens = Prompt(777 + static_cast<uint64_t>(p), golden::kPromptLengths[p]);
    request.allowed_tokens = {3, 7, 11, 19};
    auto response = engine.ScoreSync(std::move(request));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().probabilities.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &response.value().probabilities[i].probability,
                  sizeof(bits));
      EXPECT_EQ(bits, golden::kProbabilityBits[p][i])
          << "prompt " << p << " probability " << i << " drifted: "
          << response.value().probabilities[i].probability;
    }
  }
}

TEST(GoldenLogitsTest, BatchedEngineMatchesGoldenBitsToo) {
  // The same prompts drained as one max_batch_size = 4 backlog: the batched
  // path must reproduce the same golden bits (the solo/batched contract,
  // anchored to an absolute reference instead of a relative one).
  PO_SKIP_IF_GOLDEN_OFF();
  EngineOptions options = GoldenEngineOptions();
  options.max_batch_size = 4;
  Engine engine(options);
  for (int p = 0; p < golden::kNumPrompts; ++p) {
    ScoringRequest request;
    request.user_id = p;
    request.tokens = Prompt(777 + static_cast<uint64_t>(p), golden::kPromptLengths[p]);
    request.allowed_tokens = {3, 7, 11, 19};
    ASSERT_TRUE(engine.Submit(std::move(request)).ok());
  }
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses.value().size(), static_cast<size_t>(golden::kNumPrompts));
  for (const ScoringResponse& response : responses.value()) {
    const auto p = static_cast<size_t>(response.user_id);
    for (size_t i = 0; i < 4; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &response.probabilities[i].probability, sizeof(bits));
      EXPECT_EQ(bits, golden::kProbabilityBits[p][i])
          << "prompt " << p << " probability " << i << " (batched path)";
    }
  }
  // The length-33 and length-40 prompts share a bucket: at least one real
  // (>= 2) batch must have formed, so this anchored the stacked path too.
  EXPECT_GE(engine.stats().peak_batch_size, 2);
}

}  // namespace
}  // namespace prefillonly
