#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/scoring_service.h"

namespace prefillonly {
namespace {

// -------------------------------------------------------------------- JSON

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_EQ(Json::Parse("true").value().AsBool(), true);
  EXPECT_EQ(Json::Parse("false").value().AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25").value().AsDouble(), 3.25);
  EXPECT_EQ(Json::Parse("-17").value().AsInt(), -17);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto parsed = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  const Json* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(v.Find("d")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ParseEscapes) {
  auto parsed = Json::Parse(R"("line\nbreak \"quoted\" tab\t uA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "line\nbreak \"quoted\" tab\t uA");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("12 34").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, SerializeRoundTrip) {
  Json::Object object;
  object.emplace("name", Json("prefill\"only\""));
  object.emplace("n", Json(42));
  object.emplace("pi", Json(3.5));
  object.emplace("flags", Json(Json::Array{Json(true), Json(nullptr)}));
  const std::string serialized = Json(std::move(object)).Serialize();
  auto reparsed = Json::Parse(serialized);
  ASSERT_TRUE(reparsed.ok()) << serialized;
  EXPECT_EQ(reparsed.value().Find("name")->AsString(), "prefill\"only\"");
  EXPECT_EQ(reparsed.value().Find("n")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(reparsed.value().Find("pi")->AsDouble(), 3.5);
  EXPECT_TRUE(reparsed.value().Find("flags")->AsArray()[1].is_null());
}

// -------------------------------------------------------------- HTTP parse

TEST(HttpParseTest, ParsesRequestLineHeadersBody) {
  const std::string raw =
      "POST /v1/score HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "{}";
  auto request = HttpServer::ParseRequest(raw);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().path, "/v1/score");
  EXPECT_EQ(request.value().headers.at("content-type"), "application/json");
  EXPECT_EQ(request.value().body, "{}");
}

TEST(HttpParseTest, RejectsMalformed) {
  EXPECT_FALSE(HttpServer::ParseRequest("garbage").ok());
  EXPECT_FALSE(HttpServer::ParseRequest("GET\r\n\r\n").ok());
}

// ----------------------------------------------------- Service (no socket)

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  return options;
}

HttpRequest Post(const std::string& path, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = body;
  return request;
}

TEST(ScoringServiceTest, ScoresTokenRequest) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4,5,6,7,8], "allowed_tokens":[10,20]})"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  const double score = body.value().Find("score")->AsDouble();
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 1.0);
  EXPECT_EQ(body.value().Find("n_input")->AsInt(), 8);
}

TEST(ScoringServiceTest, ScoresTextRequestAndHitsCache) {
  ScoringService service(SmallEngineOptions());
  const std::string profile =
      "user profile : systems papers , sourdough , gravel cycling , synths "
      "and long reads about databases storage and schedulers every week";
  const std::string req1 = R"({"text":")" + profile + R"( article one",
                               "allowed":["yes","no"]})";
  const std::string req2 = R"({"text":")" + profile + R"( article two",
                               "allowed":["yes","no"]})";
  ASSERT_EQ(service.Handle(Post("/v1/score", req1)).status, 200);
  const auto response = service.Handle(Post("/v1/score", req2));
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body.value().Find("n_cached")->AsInt(), 0);
}

TEST(ScoringServiceTest, BadRequestsGet400) {
  ScoringService service(SmallEngineOptions());
  EXPECT_EQ(service.Handle(Post("/v1/score", "not json")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score", "{}")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score", R"({"tokens":[1]})")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score",
                                R"({"tokens":[99999], "allowed_tokens":[1]})"))
                .status,
            400);
}

TEST(ScoringServiceTest, UnknownRouteGets404) {
  ScoringService service(SmallEngineOptions());
  HttpRequest request;
  request.method = "GET";
  request.path = "/v2/nonsense";
  EXPECT_EQ(service.Handle(request).status, 404);
}

TEST(ScoringServiceTest, StatsEndpoint) {
  ScoringService service(SmallEngineOptions());
  service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4], "allowed_tokens":[10,20]})"));
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/stats";
  const auto response = service.Handle(request);
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("completed")->AsInt(), 1);
}

// ------------------------------------------------- End to end over a socket

// Minimal blocking HTTP client for the loopback test.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpEndToEndTest, ScoreOverLoopback) {
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(/*port=*/0).ok());
  ASSERT_GT(service.port(), 0);

  const std::string body =
      R"({"tokens":[3,1,4,1,5,9,2,6,5,3,5,9], "allowed_tokens":[10,20], "user_id": 7})";
  const std::string request = "POST /v1/score HTTP/1.1\r\n"
                              "Host: localhost\r\n"
                              "Content-Type: application/json\r\n"
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  const std::string response = HttpRoundTrip(service.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  const size_t json_start = response.find("\r\n\r\n");
  ASSERT_NE(json_start, std::string::npos);
  auto parsed = Json::Parse(response.substr(json_start + 4));
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.value().Find("score")->AsDouble(), 0.0);
  service.Stop();
}

TEST(HttpEndToEndTest, StartStopIsIdempotent) {
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  service.Stop();
  service.Stop();  // no-op
}

// ------------------------------------------- Concurrent serving (ISSUE 2)

std::string ScoreRequestBody(int seed) {
  std::string tokens;
  for (int i = 0; i < 24; ++i) {
    tokens += (i == 0 ? "" : ",") + std::to_string((seed * 31 + i * 7) % 200 + 1);
  }
  return R"({"tokens":[)" + tokens + R"(], "allowed_tokens":[10,20], "user_id": )" +
         std::to_string(seed) + "}";
}

std::string PostRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Body of a 200 response, or "" on any other status.
std::string OkBody(const std::string& response) {
  if (response.find("HTTP/1.1 200 OK") == std::string::npos) {
    return "";
  }
  const size_t json_start = response.find("\r\n\r\n");
  return json_start == std::string::npos ? "" : response.substr(json_start + 4);
}

TEST(HttpConcurrencyTest, ParallelSocketsMatchSerialExecution) {
  constexpr int kClients = 6;
  // Serial reference: the same requests one at a time on a fresh service.
  std::vector<double> expected_scores(kClients);
  {
    EngineOptions options = SmallEngineOptions();
    ScoringService serial(options);
    ASSERT_TRUE(serial.Start(0).ok());
    for (int c = 0; c < kClients; ++c) {
      const auto body = OkBody(HttpRoundTrip(
          serial.port(), PostRequest("/v1/score", ScoreRequestBody(c))));
      ASSERT_FALSE(body.empty());
      auto json = Json::Parse(body);
      ASSERT_TRUE(json.ok());
      expected_scores[static_cast<size_t>(c)] = json.value().Find("score")->AsDouble();
    }
    serial.Stop();
  }

  // Concurrent run: every socket in flight at once against a 4-lane engine.
  EngineOptions options = SmallEngineOptions();
  options.max_concurrent_requests = 4;
  ScoringService service(options);
  ASSERT_TRUE(service.Start(0).ok());
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &bodies, c] {
      bodies[static_cast<size_t>(c)] = OkBody(HttpRoundTrip(
          service.port(), PostRequest("/v1/score", ScoreRequestBody(c))));
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(bodies[static_cast<size_t>(c)].empty()) << "client " << c;
    auto json = Json::Parse(bodies[static_cast<size_t>(c)]);
    ASSERT_TRUE(json.ok());
    // Bitwise determinism end to end: concurrent execution must reproduce
    // the serial scores exactly (same doubles, same serialization).
    EXPECT_EQ(json.value().Find("score")->AsDouble(),
              expected_scores[static_cast<size_t>(c)])
        << "client " << c;
    EXPECT_EQ(json.value().Find("n_input")->AsInt(), 24);
  }
  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.submitted, kClients);
  EXPECT_EQ(stats.completed, kClients);
  service.Stop();
}

TEST(HttpConcurrencyTest, StopUnblocksIdleConnections) {
  // A client that connects and sends nothing parks a connection thread in
  // read(); Stop() must shut the socket down and return instead of hanging
  // in the join.
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(service.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Let the server accept and block reading the (never-sent) request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  service.Stop();
  ::close(fd);
}

TEST(HttpConcurrencyTest, StatsReadableMidFlightWithoutTornCounters) {
  EngineOptions options = SmallEngineOptions();
  options.max_concurrent_requests = 2;
  ScoringService service(options);
  ASSERT_TRUE(service.Start(0).ok());

  constexpr int kScores = 8;
  std::vector<std::thread> scorers;
  for (int c = 0; c < kScores; ++c) {
    scorers.emplace_back([&service, c] {
      HttpRoundTrip(service.port(), PostRequest("/v1/score", ScoreRequestBody(c)));
    });
  }
  // Hammer /v1/stats while the scores are in flight; every response must be
  // a consistent snapshot (never completed+failed > submitted, never torn).
  std::atomic<bool> done{false};
  std::thread stats_reader([&service, &done] {
    while (!done.load()) {
      const auto body =
          OkBody(HttpRoundTrip(service.port(), "GET /v1/stats HTTP/1.1\r\n"
                                               "Host: localhost\r\n\r\n"));
      ASSERT_FALSE(body.empty());
      auto json = Json::Parse(body);
      ASSERT_TRUE(json.ok()) << body;
      const int64_t submitted = json.value().Find("submitted")->AsInt();
      const int64_t completed = json.value().Find("completed")->AsInt();
      const int64_t failed = json.value().Find("failed")->AsInt();
      EXPECT_GE(submitted, 0);
      EXPECT_LE(completed + failed, submitted);
    }
  });
  for (auto& t : scorers) {
    t.join();
  }
  done.store(true);
  stats_reader.join();

  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.completed + stats.failed, kScores);
  service.Stop();
}

// ------------------------------------ Request-lifecycle API (ISSUE 5)

HttpRequest Req(const std::string& method, const std::string& path,
                const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.path = path;
  request.body = body;
  return request;
}

std::string TokensBody(int n_tokens, int seed, const std::string& extra = "") {
  std::string tokens;
  for (int i = 0; i < n_tokens; ++i) {
    tokens += (i == 0 ? "" : ",") + std::to_string((seed * 31 + i * 7) % 200 + 1);
  }
  return R"({"tokens":[)" + tokens + R"(], "allowed_tokens":[10,20])" + extra + "}";
}

// Polls GET /v1/requests/{id} until `status` (or a generous timeout — TSan
// slows prefills by an order of magnitude); returns the last response body.
std::string PollUntil(ScoringService& service, const std::string& id,
                      const std::string& status) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (true) {
    const auto response = service.Handle(Req("GET", "/v1/requests/" + id));
    if (response.status != 200) {
      return response.body;
    }
    auto body = Json::Parse(response.body);
    if (body.ok() && body.value().Find("status")->AsString() == status) {
      return response.body;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return response.body;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ApiErrorModelTest, EveryRouteSharesTheStructuredShape) {
  ScoringService service(SmallEngineOptions());
  for (const auto& [request, expected_status, expected_code] :
       std::vector<std::tuple<HttpRequest, int, std::string>>{
           {Post("/v1/score", "not json"), 400, "invalid_argument"},
           {Post("/v1/score", "{}"), 400, "invalid_argument"},
           {Req("GET", "/v2/nonsense"), 404, "not_found"},
           {Req("GET", "/v1/requests/nope"), 404, "not_found"},
           {Req("DELETE", "/v1/requests/nope"), 404, "not_found"},
       }) {
    const auto response = service.Handle(request);
    EXPECT_EQ(response.status, expected_status) << request.path;
    auto body = Json::Parse(response.body);
    ASSERT_TRUE(body.ok()) << response.body;
    const Json* error = body.value().Find("error");
    ASSERT_NE(error, nullptr) << response.body;
    EXPECT_EQ(error->Find("code")->AsString(), expected_code);
    ASSERT_NE(error->Find("type"), nullptr);
    EXPECT_FALSE(error->Find("message")->AsString().empty());
  }
}

TEST(ApiErrorModelTest, MalformedAllowedTokensGets400NotACrash) {
  // Regression (ISSUE 5 satellite): the pre-redesign handler called AsInt()
  // on 'allowed_tokens' elements without checking is_number() — a string in
  // the list threw bad_variant_access through the connection thread.
  ScoringService service(SmallEngineOptions());
  EXPECT_EQ(
      service.Handle(Post("/v1/score", R"({"tokens":[1,2],"allowed_tokens":["x"]})"))
          .status,
      400);
  EXPECT_EQ(
      service.Handle(Post("/v1/score", R"({"tokens":[1,2],"allowed_tokens":[null]})"))
          .status,
      400);
  EXPECT_EQ(
      service
          .Handle(Post("/v1/score", R"({"tokens":[1,2],"allowed_tokens":[10,{}]})"))
          .status,
      400);
  // The sibling 'tokens' loop keeps its check too.
  EXPECT_EQ(
      service.Handle(Post("/v1/score", R"({"tokens":[1,"2"],"allowed_tokens":[10]})"))
          .status,
      400);
}

TEST(ApiErrorModelTest, ExpiredDeadlineGets504BeforeDispatch) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(
      Post("/v1/score", TokensBody(8, 1, R"(, "options":{"deadline_ms":0})")));
  EXPECT_EQ(response.status, 504);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("error")->Find("code")->AsString(),
            "deadline_exceeded");
  EXPECT_EQ(body.value().Find("error")->Find("type")->AsString(), "timeout_error");
  // Rejected before admission: nothing was submitted, nothing ran.
  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.submitted, 0);
  EXPECT_EQ(stats.completed, 0);
}

TEST(ApiErrorModelTest, KnownPathWrongMethodGets405WithAllow) {
  ScoringService service(SmallEngineOptions());
  const auto score = service.Handle(Req("GET", "/v1/score"));
  EXPECT_EQ(score.status, 405);
  EXPECT_EQ(score.headers.at("Allow"), "POST");
  const auto stats = service.Handle(Req("POST", "/v1/stats", "{}"));
  EXPECT_EQ(stats.status, 405);
  EXPECT_EQ(stats.headers.at("Allow"), "GET");
  const auto lifecycle = service.Handle(Req("PUT", "/v1/requests/abc", "{}"));
  EXPECT_EQ(lifecycle.status, 405);
  EXPECT_EQ(lifecycle.headers.at("Allow"), "GET, DELETE");
}

TEST(MultiItemScoreTest, ResultsMatchSoloScoresInInputOrder) {
  ScoringService service(SmallEngineOptions());
  // Solo reference scores (bitwise: caching never changes logits).
  std::vector<double> expected;
  for (int seed = 0; seed < 3; ++seed) {
    const auto response = service.Handle(Post("/v1/score", TokensBody(24, seed)));
    ASSERT_EQ(response.status, 200) << response.body;
    expected.push_back(Json::Parse(response.body).value().Find("score")->AsDouble());
  }
  std::string items;
  for (int seed = 0; seed < 3; ++seed) {
    items += (seed == 0 ? "" : ",") + TokensBody(24, seed);
  }
  const auto response =
      service.Handle(Post("/v1/score", R"({"items":[)" + items + "]}"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("n_items")->AsInt(), 3);
  const Json::Array& results = body.value().Find("results")->AsArray();
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].Find("score")->AsDouble(), expected[i]) << "item " << i;
  }
}

TEST(MultiItemScoreTest, ItemParseErrorsNameTheItem) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(Post(
      "/v1/score",
      R"({"items":[)" + TokensBody(8, 1) + R"(, {"tokens":"oops"}]})"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("items[1]"), std::string::npos) << response.body;
  // All-or-nothing: the valid sibling was never admitted.
  EXPECT_EQ(service.engine().stats().submitted, 0);
}

TEST(LifecycleRoutesTest, SubmitPollCompletesWithResults) {
  ScoringService service(SmallEngineOptions());
  const auto submitted = service.Handle(Req(
      "POST", "/v1/requests",
      TokensBody(16, 5, R"(, "options":{"request_id":"my-req"})")));
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  auto body = Json::Parse(submitted.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("id")->AsString(), "my-req");
  EXPECT_EQ(body.value().Find("status")->AsString(), "queued");

  const std::string done = PollUntil(service, "my-req", "done");
  auto done_body = Json::Parse(done);
  ASSERT_TRUE(done_body.ok()) << done;
  ASSERT_EQ(done_body.value().Find("status")->AsString(), "done");
  const Json::Array& results = done_body.value().Find("results")->AsArray();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].Find("score")->AsDouble(), 0.0);
  EXPECT_EQ(results[0].Find("n_input")->AsInt(), 16);
}

TEST(LifecycleRoutesTest, DuplicateClientRequestIdGets409) {
  ScoringService service(SmallEngineOptions());
  const std::string body =
      TokensBody(8, 6, R"(, "options":{"request_id":"dup"})");
  ASSERT_EQ(service.Handle(Req("POST", "/v1/requests", body)).status, 202);
  const int64_t after_first = service.engine().stats().submitted;
  const auto second = service.Handle(Req("POST", "/v1/requests", body));
  EXPECT_EQ(second.status, 409);
  EXPECT_NE(second.body.find("failed_precondition"), std::string::npos);
  // The duplicate (e.g. an idempotent client retry) must cost NOTHING:
  // the id check happens before engine admission, so no prefill is burned.
  EXPECT_EQ(service.engine().stats().submitted, after_first);
}

TEST(LifecycleRoutesTest, OptionsOutOfIntegerRangeGet400) {
  ScoringService service(SmallEngineOptions());
  // Values whose float-to-int cast would be out of range (UB) must 400 at
  // validation instead of reaching the cast.
  EXPECT_EQ(service
                .Handle(Req("POST", "/v1/requests",
                            TokensBody(8, 12, R"(, "options":{"deadline_ms":1e19})")))
                .status,
            400);
  EXPECT_EQ(service
                .Handle(Req("POST", "/v1/requests",
                            TokensBody(8, 12, R"(, "options":{"priority":3e9})")))
                .status,
            400);
  EXPECT_EQ(service.engine().stats().submitted, 0);
}

TEST(LifecycleRoutesTest, RejectsUnroutableOrReservedRequestIds) {
  ScoringService service(SmallEngineOptions());
  // '/' would make the id unreachable through /v1/requests/{id}; 'req-' is
  // the server generator's reserved prefix.
  for (const std::string bad : {"a/b", "req-1", ""}) {
    const auto response = service.Handle(Req(
        "POST", "/v1/requests",
        TokensBody(8, 10, R"(, "options":{"request_id":")" + bad + R"("})")));
    EXPECT_EQ(response.status, 400) << bad << ": " << response.body;
  }
  EXPECT_EQ(service.engine().stats().submitted, 0);
}

TEST(LifecycleRoutesTest, CancelWhileQueuedNeverExecutes) {
  ScoringService service(SmallEngineOptions());  // 1 executor lane
  // Occupy the single lane with a long request, deterministically: submit,
  // then wait until it reports running.
  const auto blocker = service.Handle(Req(
      "POST", "/v1/requests",
      TokensBody(512, 7, R"(, "options":{"request_id":"blocker"})")));
  ASSERT_EQ(blocker.status, 202) << blocker.body;
  ASSERT_NE(PollUntil(service, "blocker", "running").find("running"),
            std::string::npos);

  // The target sits queued behind the blocker; cancelling it must dequeue
  // it before it ever reaches a prefill.
  ASSERT_EQ(service
                .Handle(Req("POST", "/v1/requests",
                            TokensBody(16, 8, R"(, "options":{"request_id":"target"})")))
                .status,
            202);
  const auto cancelled = service.Handle(Req("DELETE", "/v1/requests/target"));
  ASSERT_EQ(cancelled.status, 200) << cancelled.body;
  EXPECT_EQ(Json::Parse(cancelled.body).value().Find("status")->AsString(),
            "cancelled");
  // A later poll agrees (cancellation is sticky).
  EXPECT_NE(PollUntil(service, "target", "cancelled").find("cancelled"),
            std::string::npos);

  // Let the blocker finish, then read the counters: exactly one request
  // completed (the blocker), the target counted as a queued cancellation.
  PollUntil(service, "blocker", "done");
  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.failed, 0);
}

TEST(LifecycleRoutesTest, CancelAfterDoneIsIdempotent) {
  ScoringService service(SmallEngineOptions());
  ASSERT_EQ(service
                .Handle(Req("POST", "/v1/requests",
                            TokensBody(8, 9, R"(, "options":{"request_id":"fin"})")))
                .status,
            202);
  PollUntil(service, "fin", "done");
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto response = service.Handle(Req("DELETE", "/v1/requests/fin"));
    ASSERT_EQ(response.status, 200) << response.body;
    auto body = Json::Parse(response.body);
    ASSERT_TRUE(body.ok());
    // Cancelling a finished request does not rewrite history: it stays
    // done, results intact, on every repeat.
    EXPECT_EQ(body.value().Find("status")->AsString(), "done");
    EXPECT_EQ(body.value().Find("results")->AsArray().size(), 1u);
  }
}

TEST(LifecycleRoutesTest, CompletedResultTableEvictsOldest) {
  ScoringServiceOptions service_options;
  service_options.completed_requests_capacity = 2;
  ScoringService service(SmallEngineOptions(), service_options);
  for (const char* id : {"a", "b", "c"}) {
    ASSERT_EQ(service
                  .Handle(Req("POST", "/v1/requests",
                              TokensBody(8, id[0],
                                         R"(, "options":{"request_id":")" +
                                             std::string(id) + R"("})")))
                  .status,
              202);
    ASSERT_NE(PollUntil(service, id, "done").find("done"), std::string::npos);
  }
  // Capacity 2: the third completion evicted the first.
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/a")).status, 404);
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/b")).status, 200);
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/c")).status, 200);
}

TEST(LifecycleRoutesTest, CompletedResultEvictionIsPriorityAware) {
  // Capacity 2, and the OLDEST completion carries the HIGHEST priority: a
  // FIFO ring would evict it; priority-aware eviction (ISSUE 6) must evict
  // the oldest LOW-priority entry instead, so a burst of low-priority
  // traffic cannot flush a high-priority client's result before it polls.
  ScoringServiceOptions service_options;
  service_options.completed_requests_capacity = 2;
  ScoringService service(SmallEngineOptions(), service_options);
  const std::pair<const char*, int> requests[] = {
      {"high", 5}, {"low1", 0}, {"low2", 0}};
  for (const auto& [id, priority] : requests) {
    ASSERT_EQ(service
                  .Handle(Req("POST", "/v1/requests",
                              TokensBody(8, id[0],
                                         R"(, "options":{"request_id":")" +
                                             std::string(id) +
                                             R"(","priority":)" +
                                             std::to_string(priority) + "}")))
                  .status,
              202);
    ASSERT_NE(PollUntil(service, id, "done").find("done"), std::string::npos);
  }
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/high")).status, 200);
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/low1")).status, 404);
  EXPECT_EQ(service.Handle(Req("GET", "/v1/requests/low2")).status, 200);
}

// ---------------------------------------------- Health probe (ISSUE 6)

TEST(HealthRouteTest, HealthyServiceAnswersOk) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(Req("GET", "/v1/health"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("status")->AsString(), "ok");
  // Wrong method follows the shared 405 + Allow convention.
  const auto post = service.Handle(Req("POST", "/v1/health"));
  EXPECT_EQ(post.status, 405);
  EXPECT_EQ(post.headers.at("Allow"), "GET");
}

TEST(HealthRouteTest, StatsExposeRobustnessCounters) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(Req("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  for (const char* key :
       {"deadline_expired_in_flight", "abort_checks", "alloc_retries",
        "alloc_retry_successes", "shed", "watchdog_stalls", "faults_injected"}) {
    ASSERT_NE(body.value().Find(key), nullptr) << key;
    EXPECT_EQ(body.value().Find(key)->AsInt(), 0) << key;
  }
}

// ------------------------------------------- Keep-alive (ISSUE 5 satellite)

// Reads exactly one Content-Length-framed response from `fd`.
std::string ReadFramedResponse(int fd) {
  std::string raw;
  char buffer[2048];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const size_t pos = raw.find("Content-Length: ");
        if (pos != std::string::npos && pos < header_end) {
          content_length = std::stoul(raw.substr(pos + 16));
        }
      }
    }
    if (header_end != std::string::npos &&
        raw.size() >= header_end + 4 + content_length) {
      return raw.substr(0, header_end + 4 + content_length);
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      return raw;
    }
    raw.append(buffer, static_cast<size_t>(n));
  }
}

TEST(KeepAliveTest, PollingReusesOneConnection) {
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(service.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Three requests on ONE socket: submit, then two polls.
  const std::string submit_body =
      TokensBody(8, 11, R"(, "options":{"request_id":"ka"})");
  const std::string submit =
      "POST /v1/requests HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: keep-alive\r\nContent-Length: " +
      std::to_string(submit_body.size()) + "\r\n\r\n" + submit_body;
  ASSERT_EQ(::write(fd, submit.data(), submit.size()),
            static_cast<ssize_t>(submit.size()));
  const std::string first = ReadFramedResponse(fd);
  EXPECT_NE(first.find("HTTP/1.1 202"), std::string::npos) << first;
  EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos) << first;

  const std::string poll =
      "GET /v1/requests/ka HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: keep-alive\r\nContent-Length: 0\r\n\r\n";
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(::write(fd, poll.data(), poll.size()),
              static_cast<ssize_t>(poll.size()));
    const std::string response = ReadFramedResponse(fd);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("\"id\":\"ka\""), std::string::npos) << response;
  }
  ::close(fd);
  service.Stop();
}

TEST(KeepAliveTest, GarbageContentLengthGets400NotACrash) {
  // Regression: std::stoul on a non-numeric Content-Length threw through
  // the connection thread and std::terminate'd the whole server.
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  for (const std::string bad : {"abc", "99999999999999999999", "-1", "12x"}) {
    const std::string response = HttpRoundTrip(
        service.port(), "POST /v1/score HTTP/1.1\r\nHost: localhost\r\n"
                        "Content-Length: " + bad + "\r\n\r\n{}");
    EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos)
        << "Content-Length: " << bad << " -> " << response;
  }
  // The server survived and still serves real requests.
  const std::string ok = HttpRoundTrip(
      service.port(), PostRequest("/v1/score", ScoreRequestBody(3)));
  EXPECT_NE(ok.find("HTTP/1.1 200 OK"), std::string::npos);
  service.Stop();
}

TEST(KeepAliveTest, WithoutTheHeaderConnectionsStayOneShot) {
  // Legacy close-delimited behavior is load-bearing: clients read to EOF.
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  const std::string response = HttpRoundTrip(
      service.port(), PostRequest("/v1/score", ScoreRequestBody(1)));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  service.Stop();
}

// ------------------------------- Replica administration (ISSUE 8)

ScoringServiceOptions TwoReplicaOptions() {
  ScoringServiceOptions options;
  options.cluster.n_replicas = 2;
  options.cluster.health_poll_ms = 0;  // no monitor racing assertions
  return options;
}

TEST(ReplicaAdminTest, ListReplicasShowsPerReplicaState) {
  ScoringService service(SmallEngineOptions(), TwoReplicaOptions());
  const auto response = service.Handle(Req("GET", "/v1/replicas"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("n_replicas")->AsInt(), 2);
  const Json::Array& replicas = body.value().Find("replicas")->AsArray();
  ASSERT_EQ(replicas.size(), 2u);
  for (size_t i = 0; i < replicas.size(); ++i) {
    EXPECT_EQ(replicas[i].Find("index")->AsInt(), static_cast<int64_t>(i));
    EXPECT_EQ(replicas[i].Find("breaker")->AsString(), "closed");
    EXPECT_TRUE(replicas[i].Find("admitting")->AsBool());
    EXPECT_FALSE(replicas[i].Find("draining")->AsBool());
    EXPECT_EQ(replicas[i].Find("engine_health")->AsString(), "ok");
    EXPECT_EQ(replicas[i].Find("routed_affinity")->AsInt(), 0);
  }
  // Wrong method follows the shared 405 + Allow convention.
  const auto post = service.Handle(Req("POST", "/v1/replicas"));
  EXPECT_EQ(post.status, 405);
  EXPECT_EQ(post.headers.at("Allow"), "GET");
}

TEST(ReplicaAdminTest, DrainAndRejoinDriveClusterHealth) {
  ScoringService service(SmallEngineOptions(), TwoReplicaOptions());

  const auto drained = service.Handle(Req("POST", "/v1/replicas/0/drain"));
  ASSERT_EQ(drained.status, 200) << drained.body;
  auto body = Json::Parse(drained.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("action")->AsString(), "drain");
  EXPECT_TRUE(body.value().Find("replica")->Find("draining")->AsBool());
  EXPECT_FALSE(body.value().Find("replica")->Find("admitting")->AsBool());

  // One replica down: degraded but serving — /v1/health stays 200.
  auto health = service.Handle(Req("GET", "/v1/health"));
  ASSERT_EQ(health.status, 200) << health.body;
  auto health_body = Json::Parse(health.body);
  ASSERT_TRUE(health_body.ok());
  EXPECT_EQ(health_body.value().Find("status")->AsString(), "degraded");
  EXPECT_EQ(health_body.value().Find("admitting")->AsInt(), 1);
  EXPECT_EQ(health_body.value().Find("n_replicas")->AsInt(), 2);

  // Both replicas down: nothing admits — the 503 + Retry-After shape, and
  // a submission is refused with the structured unavailable error.
  ASSERT_EQ(service.Handle(Req("POST", "/v1/replicas/1/drain")).status, 200);
  health = service.Handle(Req("GET", "/v1/health"));
  EXPECT_EQ(health.status, 503);
  EXPECT_EQ(health.headers.at("Retry-After"), "1");
  health_body = Json::Parse(health.body);
  ASSERT_TRUE(health_body.ok());
  EXPECT_EQ(health_body.value().Find("admitting")->AsInt(), 0);
  const auto refused = service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4], "allowed_tokens":[10,20]})"));
  EXPECT_EQ(refused.status, 503);
  EXPECT_EQ(refused.headers.at("Retry-After"), "1");
  EXPECT_NE(refused.body.find("unavailable"), std::string::npos) << refused.body;

  // Rejoin both and the cluster is whole again.
  ASSERT_EQ(service.Handle(Req("POST", "/v1/replicas/0/rejoin")).status, 200);
  ASSERT_EQ(service.Handle(Req("POST", "/v1/replicas/1/rejoin")).status, 200);
  health = service.Handle(Req("GET", "/v1/health"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(Json::Parse(health.body).value().Find("status")->AsString(), "ok");
}

TEST(ReplicaAdminTest, MalformedAdminRoutesGetStructuredErrors) {
  ScoringService service(SmallEngineOptions(), TwoReplicaOptions());
  // Unknown action / non-numeric index: not a route at all.
  EXPECT_EQ(service.Handle(Req("POST", "/v1/replicas/0/explode")).status, 404);
  EXPECT_EQ(service.Handle(Req("POST", "/v1/replicas/zero/drain")).status, 404);
  // Known route, wrong method.
  const auto got = service.Handle(Req("GET", "/v1/replicas/0/drain"));
  EXPECT_EQ(got.status, 405);
  EXPECT_EQ(got.headers.at("Allow"), "POST");
  // Known route, index out of range: a 400 with the shared error shape.
  const auto out_of_range = service.Handle(Req("POST", "/v1/replicas/9/drain"));
  EXPECT_EQ(out_of_range.status, 400);
  EXPECT_NE(out_of_range.body.find("invalid_argument"), std::string::npos)
      << out_of_range.body;
}

TEST(ReplicaAdminTest, StatsAggregateAcrossReplicasWithBreakdowns) {
  ScoringService service(SmallEngineOptions(), TwoReplicaOptions());
  const auto scored = service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4,5,6,7,8], "allowed_tokens":[10,20]})"));
  ASSERT_EQ(scored.status, 200) << scored.body;

  const auto response = service.Handle(Req("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  // Legacy flat keys are now cluster totals; the request above is in them.
  EXPECT_EQ(body.value().Find("submitted")->AsInt(), 1);
  EXPECT_EQ(body.value().Find("completed")->AsInt(), 1);
  EXPECT_EQ(body.value().Find("n_replicas")->AsInt(), 2);
  // Router-level counters live under "cluster".
  const Json* cluster = body.value().Find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->Find("routed_affinity")->AsInt(), 1);
  EXPECT_EQ(cluster->Find("failovers")->AsInt(), 0);
  EXPECT_EQ(cluster->Find("unavailable_rejections")->AsInt(), 0);
  // Per-replica breakdowns: exactly one replica took the request.
  const Json::Array& replicas = body.value().Find("replicas")->AsArray();
  ASSERT_EQ(replicas.size(), 2u);
  int64_t submitted = 0;
  for (const Json& replica : replicas) {
    submitted += replica.Find("submitted")->AsInt();
  }
  EXPECT_EQ(submitted, 1);
}

}  // namespace
}  // namespace prefillonly
