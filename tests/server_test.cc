#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/scoring_service.h"

namespace prefillonly {
namespace {

// -------------------------------------------------------------------- JSON

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_EQ(Json::Parse("true").value().AsBool(), true);
  EXPECT_EQ(Json::Parse("false").value().AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25").value().AsDouble(), 3.25);
  EXPECT_EQ(Json::Parse("-17").value().AsInt(), -17);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonTest, ParseNested) {
  auto parsed = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  const Json* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(v.Find("d")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ParseEscapes) {
  auto parsed = Json::Parse(R"("line\nbreak \"quoted\" tab\t uA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "line\nbreak \"quoted\" tab\t uA");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("12 34").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, SerializeRoundTrip) {
  Json::Object object;
  object.emplace("name", Json("prefill\"only\""));
  object.emplace("n", Json(42));
  object.emplace("pi", Json(3.5));
  object.emplace("flags", Json(Json::Array{Json(true), Json(nullptr)}));
  const std::string serialized = Json(std::move(object)).Serialize();
  auto reparsed = Json::Parse(serialized);
  ASSERT_TRUE(reparsed.ok()) << serialized;
  EXPECT_EQ(reparsed.value().Find("name")->AsString(), "prefill\"only\"");
  EXPECT_EQ(reparsed.value().Find("n")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(reparsed.value().Find("pi")->AsDouble(), 3.5);
  EXPECT_TRUE(reparsed.value().Find("flags")->AsArray()[1].is_null());
}

// -------------------------------------------------------------- HTTP parse

TEST(HttpParseTest, ParsesRequestLineHeadersBody) {
  const std::string raw =
      "POST /v1/score HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "{}";
  auto request = HttpServer::ParseRequest(raw);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().path, "/v1/score");
  EXPECT_EQ(request.value().headers.at("content-type"), "application/json");
  EXPECT_EQ(request.value().body, "{}");
}

TEST(HttpParseTest, RejectsMalformed) {
  EXPECT_FALSE(HttpServer::ParseRequest("garbage").ok());
  EXPECT_FALSE(HttpServer::ParseRequest("GET\r\n\r\n").ok());
}

// ----------------------------------------------------- Service (no socket)

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  return options;
}

HttpRequest Post(const std::string& path, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = body;
  return request;
}

TEST(ScoringServiceTest, ScoresTokenRequest) {
  ScoringService service(SmallEngineOptions());
  const auto response = service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4,5,6,7,8], "allowed_tokens":[10,20]})"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  const double score = body.value().Find("score")->AsDouble();
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 1.0);
  EXPECT_EQ(body.value().Find("n_input")->AsInt(), 8);
}

TEST(ScoringServiceTest, ScoresTextRequestAndHitsCache) {
  ScoringService service(SmallEngineOptions());
  const std::string profile =
      "user profile : systems papers , sourdough , gravel cycling , synths "
      "and long reads about databases storage and schedulers every week";
  const std::string req1 = R"({"text":")" + profile + R"( article one",
                               "allowed":["yes","no"]})";
  const std::string req2 = R"({"text":")" + profile + R"( article two",
                               "allowed":["yes","no"]})";
  ASSERT_EQ(service.Handle(Post("/v1/score", req1)).status, 200);
  const auto response = service.Handle(Post("/v1/score", req2));
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_GT(body.value().Find("n_cached")->AsInt(), 0);
}

TEST(ScoringServiceTest, BadRequestsGet400) {
  ScoringService service(SmallEngineOptions());
  EXPECT_EQ(service.Handle(Post("/v1/score", "not json")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score", "{}")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score", R"({"tokens":[1]})")).status, 400);
  EXPECT_EQ(service.Handle(Post("/v1/score",
                                R"({"tokens":[99999], "allowed_tokens":[1]})"))
                .status,
            400);
}

TEST(ScoringServiceTest, UnknownRouteGets404) {
  ScoringService service(SmallEngineOptions());
  HttpRequest request;
  request.method = "GET";
  request.path = "/v2/nonsense";
  EXPECT_EQ(service.Handle(request).status, 404);
}

TEST(ScoringServiceTest, StatsEndpoint) {
  ScoringService service(SmallEngineOptions());
  service.Handle(
      Post("/v1/score", R"({"tokens":[1,2,3,4], "allowed_tokens":[10,20]})"));
  HttpRequest request;
  request.method = "GET";
  request.path = "/v1/stats";
  const auto response = service.Handle(request);
  ASSERT_EQ(response.status, 200);
  auto body = Json::Parse(response.body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().Find("completed")->AsInt(), 1);
}

// ------------------------------------------------- End to end over a socket

// Minimal blocking HTTP client for the loopback test.
std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpEndToEndTest, ScoreOverLoopback) {
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(/*port=*/0).ok());
  ASSERT_GT(service.port(), 0);

  const std::string body =
      R"({"tokens":[3,1,4,1,5,9,2,6,5,3,5,9], "allowed_tokens":[10,20], "user_id": 7})";
  const std::string request = "POST /v1/score HTTP/1.1\r\n"
                              "Host: localhost\r\n"
                              "Content-Type: application/json\r\n"
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  const std::string response = HttpRoundTrip(service.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  const size_t json_start = response.find("\r\n\r\n");
  ASSERT_NE(json_start, std::string::npos);
  auto parsed = Json::Parse(response.substr(json_start + 4));
  ASSERT_TRUE(parsed.ok());
  EXPECT_GT(parsed.value().Find("score")->AsDouble(), 0.0);
  service.Stop();
}

TEST(HttpEndToEndTest, StartStopIsIdempotent) {
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  service.Stop();
  service.Stop();  // no-op
}

// ------------------------------------------- Concurrent serving (ISSUE 2)

std::string ScoreRequestBody(int seed) {
  std::string tokens;
  for (int i = 0; i < 24; ++i) {
    tokens += (i == 0 ? "" : ",") + std::to_string((seed * 31 + i * 7) % 200 + 1);
  }
  return R"({"tokens":[)" + tokens + R"(], "allowed_tokens":[10,20], "user_id": )" +
         std::to_string(seed) + "}";
}

std::string PostRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Body of a 200 response, or "" on any other status.
std::string OkBody(const std::string& response) {
  if (response.find("HTTP/1.1 200 OK") == std::string::npos) {
    return "";
  }
  const size_t json_start = response.find("\r\n\r\n");
  return json_start == std::string::npos ? "" : response.substr(json_start + 4);
}

TEST(HttpConcurrencyTest, ParallelSocketsMatchSerialExecution) {
  constexpr int kClients = 6;
  // Serial reference: the same requests one at a time on a fresh service.
  std::vector<double> expected_scores(kClients);
  {
    EngineOptions options = SmallEngineOptions();
    ScoringService serial(options);
    ASSERT_TRUE(serial.Start(0).ok());
    for (int c = 0; c < kClients; ++c) {
      const auto body = OkBody(HttpRoundTrip(
          serial.port(), PostRequest("/v1/score", ScoreRequestBody(c))));
      ASSERT_FALSE(body.empty());
      auto json = Json::Parse(body);
      ASSERT_TRUE(json.ok());
      expected_scores[static_cast<size_t>(c)] = json.value().Find("score")->AsDouble();
    }
    serial.Stop();
  }

  // Concurrent run: every socket in flight at once against a 4-lane engine.
  EngineOptions options = SmallEngineOptions();
  options.max_concurrent_requests = 4;
  ScoringService service(options);
  ASSERT_TRUE(service.Start(0).ok());
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &bodies, c] {
      bodies[static_cast<size_t>(c)] = OkBody(HttpRoundTrip(
          service.port(), PostRequest("/v1/score", ScoreRequestBody(c))));
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(bodies[static_cast<size_t>(c)].empty()) << "client " << c;
    auto json = Json::Parse(bodies[static_cast<size_t>(c)]);
    ASSERT_TRUE(json.ok());
    // Bitwise determinism end to end: concurrent execution must reproduce
    // the serial scores exactly (same doubles, same serialization).
    EXPECT_EQ(json.value().Find("score")->AsDouble(),
              expected_scores[static_cast<size_t>(c)])
        << "client " << c;
    EXPECT_EQ(json.value().Find("n_input")->AsInt(), 24);
  }
  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.submitted, kClients);
  EXPECT_EQ(stats.completed, kClients);
  service.Stop();
}

TEST(HttpConcurrencyTest, StopUnblocksIdleConnections) {
  // A client that connects and sends nothing parks a connection thread in
  // read(); Stop() must shut the socket down and return instead of hanging
  // in the join.
  ScoringService service(SmallEngineOptions());
  ASSERT_TRUE(service.Start(0).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(service.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Let the server accept and block reading the (never-sent) request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  service.Stop();
  ::close(fd);
}

TEST(HttpConcurrencyTest, StatsReadableMidFlightWithoutTornCounters) {
  EngineOptions options = SmallEngineOptions();
  options.max_concurrent_requests = 2;
  ScoringService service(options);
  ASSERT_TRUE(service.Start(0).ok());

  constexpr int kScores = 8;
  std::vector<std::thread> scorers;
  for (int c = 0; c < kScores; ++c) {
    scorers.emplace_back([&service, c] {
      HttpRoundTrip(service.port(), PostRequest("/v1/score", ScoreRequestBody(c)));
    });
  }
  // Hammer /v1/stats while the scores are in flight; every response must be
  // a consistent snapshot (never completed+failed > submitted, never torn).
  std::atomic<bool> done{false};
  std::thread stats_reader([&service, &done] {
    while (!done.load()) {
      const auto body =
          OkBody(HttpRoundTrip(service.port(), "GET /v1/stats HTTP/1.1\r\n"
                                               "Host: localhost\r\n\r\n"));
      ASSERT_FALSE(body.empty());
      auto json = Json::Parse(body);
      ASSERT_TRUE(json.ok()) << body;
      const int64_t submitted = json.value().Find("submitted")->AsInt();
      const int64_t completed = json.value().Find("completed")->AsInt();
      const int64_t failed = json.value().Find("failed")->AsInt();
      EXPECT_GE(submitted, 0);
      EXPECT_LE(completed + failed, submitted);
    }
  });
  for (auto& t : scorers) {
    t.join();
  }
  done.store(true);
  stats_reader.join();

  const auto stats = service.engine().stats();
  EXPECT_EQ(stats.completed + stats.failed, kScores);
  service.Stop();
}

}  // namespace
}  // namespace prefillonly
