// Load-generation subsystem tests (ISSUE 10, src/loadgen/).
//
// Four layers under test:
//   * arrival schedules — seeded determinism (same seed => the same
//     schedule bit for bit, distinct seeds => distinct schedules) and trace
//     replay semantics;
//   * the HDR-style histogram — percentiles against an exact sorted-vector
//     nearest-rank reference, within the documented 2^-b relative bound;
//   * the open-loop runner — zero lost requests and a balanced engine
//     ledger on a real in-process engine;
//   * remote-vs-in-process parity — the same workload through the facade's
//     two transports must yield BITWISE identical scores (the determinism
//     contract riding the shortest-round-trip JSON doubles), with the
//     balance invariant holding on both sides of the wire.
//
// ChaosLoadgenTest (chaos label, CI's chaos job) replays a seeded fault
// schedule across BOTH fault domains at once — a replica hand-off failure
// and a socket-level read blip — under open-loop load against a self-hosted
// server, and checks the books still reconcile with /v1/stats.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/loadgen/arrival.h"
#include "src/loadgen/histogram.h"
#include "src/loadgen/runner.h"
#include "src/loadgen/target.h"
#include "src/server/scoring_service.h"
#include "src/workload/dataset.h"

namespace prefillonly {
namespace {

// ----------------------------------------------------------------- arrivals

TEST(LoadgenArrivalTest, PoissonSameSeedSameSchedule) {
  ArrivalOptions options;
  options.kind = ArrivalKind::kPoisson;
  options.qps = 25.0;
  options.seed = 99;
  const auto a = MakeArrivalSchedule(500, options);
  const auto b = MakeArrivalSchedule(500, options);
  ASSERT_EQ(a.size(), 500u);
  // Bit-for-bit replay, not approximate: the whole point of seeding.
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(a.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(LoadgenArrivalTest, PoissonDistinctSeedsDiffer) {
  ArrivalOptions options;
  options.kind = ArrivalKind::kPoisson;
  options.qps = 25.0;
  options.seed = 1;
  const auto a = MakeArrivalSchedule(100, options);
  options.seed = 2;
  const auto b = MakeArrivalSchedule(100, options);
  EXPECT_NE(a, b);
}

TEST(LoadgenArrivalTest, PoissonMeanRateApproximatesQps) {
  ArrivalOptions options;
  options.kind = ArrivalKind::kPoisson;
  options.qps = 50.0;
  options.seed = 7;
  const auto schedule = MakeArrivalSchedule(4000, options);
  const double measured_qps =
      static_cast<double>(schedule.size() - 1) / schedule.back();
  EXPECT_NEAR(measured_qps, 50.0, 5.0);  // ~4000 samples: well within 10%
}

TEST(LoadgenArrivalTest, FixedRateIsAMetronome) {
  ArrivalOptions options;
  options.kind = ArrivalKind::kFixedRate;
  options.qps = 10.0;
  const auto schedule = MakeArrivalSchedule(5, options);
  ASSERT_EQ(schedule.size(), 5u);
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_DOUBLE_EQ(schedule[i], static_cast<double>(i) / 10.0);
  }
}

TEST(LoadgenArrivalTest, TraceScheduleShiftsAndRescales) {
  Dataset dataset;
  for (double t : {8.0, 5.0, 6.0}) {  // deliberately unsorted
    SimRequest request;
    request.arrival_time = t;
    dataset.requests.push_back(request);
  }
  const auto verbatim = TraceSchedule(dataset);
  ASSERT_EQ(verbatim.size(), 3u);
  EXPECT_DOUBLE_EQ(verbatim[0], 0.0);
  EXPECT_DOUBLE_EQ(verbatim[1], 1.0);
  EXPECT_DOUBLE_EQ(verbatim[2], 3.0);

  // 3 requests over 3 s = 1 QPS; asking for 2 QPS halves every offset,
  // preserving the relative burst structure.
  const auto rescaled = TraceSchedule(dataset, 2.0);
  EXPECT_DOUBLE_EQ(rescaled[1], 0.5);
  EXPECT_DOUBLE_EQ(rescaled[2], 1.5);
}

TEST(LoadgenArrivalTest, TraceReplayOfUserBurstsIsDeterministic) {
  Dataset a = MakePostRecommendationDataset(ScaledPostRecommendationConfig());
  AssignUserBurstArrivals(a, 40.0, /*seed=*/5);
  Dataset b = MakePostRecommendationDataset(ScaledPostRecommendationConfig());
  AssignUserBurstArrivals(b, 40.0, /*seed=*/5);
  EXPECT_EQ(TraceSchedule(a), TraceSchedule(b));
}

// ---------------------------------------------------------------- histogram

// Exact nearest-rank percentile over a sorted copy — the reference the
// histogram's bounded-error answer is checked against.
double NearestRankMicros(std::vector<int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(values.size())))));
  return static_cast<double>(values[rank - 1]);
}

TEST(LoadgenHistogramTest, PercentilesWithinDocumentedBound) {
  LatencyHistogram histogram(6);
  EXPECT_DOUBLE_EQ(histogram.MaxRelativeError(), 1.0 / 64.0);

  // Latencies spanning five orders of magnitude (0.1 ms .. multiple
  // seconds), heavy-tailed like a saturating server.
  Rng rng(42);
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double magnitude = std::pow(10.0, 2.0 + 4.0 * rng.NextDouble());
    const int64_t micros = static_cast<int64_t>(magnitude);
    values.push_back(micros);
    histogram.RecordMicros(micros);
  }
  ASSERT_EQ(histogram.count(), 20000);

  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const double reference = NearestRankMicros(values, q);
    const double reported = histogram.Percentile(q) * 1e6;
    // The documented contract: relative error <= 2^-b (plus half a micro
    // for the integer bucket midpoint).
    EXPECT_NEAR(reported, reference,
                reference * histogram.MaxRelativeError() + 0.5)
        << "q=" << q;
  }
  const double mean_reference =
      static_cast<double>(std::accumulate(values.begin(), values.end(),
                                          int64_t{0})) /
      static_cast<double>(values.size());
  // The mean is tracked exactly, no bucket error at all.
  EXPECT_DOUBLE_EQ(histogram.Mean() * 1e6, mean_reference);
  EXPECT_DOUBLE_EQ(histogram.Min() * 1e6,
                   static_cast<double>(*std::min_element(values.begin(), values.end())));
  EXPECT_DOUBLE_EQ(histogram.Max() * 1e6,
                   static_cast<double>(*std::max_element(values.begin(), values.end())));
}

TEST(LoadgenHistogramTest, SmallValuesAreExact) {
  LatencyHistogram histogram(6);
  for (int64_t v : {0, 1, 5, 17, 63}) {  // all below 2^6: the exact region
    histogram.RecordMicros(v);
  }
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.0) * 1e6, 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(1.0) * 1e6, 63.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5) * 1e6, 5.0);
}

TEST(LoadgenHistogramTest, MergeMatchesSingleRecorder) {
  LatencyHistogram merged(6);
  LatencyHistogram single(6);
  std::vector<LatencyHistogram> shards(4, LatencyHistogram(6));
  Rng rng(7);
  for (int i = 0; i < 8000; ++i) {
    const int64_t micros = static_cast<int64_t>(rng.NextBounded(5'000'000));
    single.RecordMicros(micros);
    shards[static_cast<size_t>(i) % shards.size()].RecordMicros(micros);
  }
  for (const LatencyHistogram& shard : shards) {
    ASSERT_TRUE(merged.Merge(shard).ok());
  }
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_DOUBLE_EQ(merged.Mean(), single.Mean());
  EXPECT_DOUBLE_EQ(merged.Min(), single.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), single.Max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(q), single.Percentile(q)) << "q=" << q;
  }
}

TEST(LoadgenHistogramTest, MergeRejectsMismatchedResolution) {
  LatencyHistogram coarse(4);
  LatencyHistogram fine(8);
  EXPECT_EQ(coarse.Merge(fine).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- runner

std::vector<LoadItem> ScaledPostRecItems(size_t max_items = 0) {
  Dataset dataset =
      MakePostRecommendationDataset(ScaledPostRecommendationConfig());
  std::vector<LoadItem> items;
  for (SimRequest& request : dataset.requests) {
    LoadItem item;
    item.tokens = std::move(request.tokens);
    item.user_id = request.user_id;
    items.push_back(std::move(item));
  }
  if (max_items > 0 && items.size() > max_items) {
    items.resize(max_items);
  }
  return items;
}

ClientOptions TinyClientOptions(int n_replicas = 1) {
  ClientOptions options;
  options.model = "tiny";
  options.max_concurrent_requests = 2;
  options.max_batch_size = 4;
  options.n_replicas = n_replicas;
  return options;
}

TEST(LoadgenRunnerTest, OpenLoopRunLosesNothingAndBalances) {
  auto target = MakeInProcessTarget(TinyClientOptions());
  const auto items = ScaledPostRecItems(24);

  ArrivalOptions arrival;
  arrival.kind = ArrivalKind::kPoisson;
  arrival.qps = 120.0;
  arrival.seed = 3;
  RunOptions options;
  options.concurrency = 4;
  options.allowed = {7, 9};
  const RunReport report =
      RunLoad(*target, items, MakeArrivalSchedule(items.size(), arrival), options);

  EXPECT_EQ(report.dispatched, static_cast<int64_t>(items.size()));
  EXPECT_EQ(report.lost, 0);
  EXPECT_EQ(report.measured, report.ok + report.errors);
  EXPECT_EQ(report.errors, 0) << report.first_error;
  EXPECT_TRUE(report.BalanceOk());
  EXPECT_EQ(report.latency.count(), report.measured);
  EXPECT_GT(report.latency.Percentile(0.99), 0.0);
  EXPECT_GE(report.latency.Percentile(0.99), report.latency.Percentile(0.50));
}

TEST(LoadgenRunnerTest, SweepReportsGateAndSloCurve) {
  auto target = MakeInProcessTarget(TinyClientOptions());
  const auto items = ScaledPostRecItems(16);

  SweepOptions options;
  options.rates = {50.0, 200.0};
  options.seed = 11;
  options.slo_p99_ms = 60000.0;  // generous: every point should attain it
  options.run.concurrency = 4;
  options.run.allowed = {7, 9};
  const SweepReport sweep = RunSweep(*target, "post-rec", items, options);

  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_TRUE(sweep.GatePassed());
  EXPECT_DOUBLE_EQ(sweep.max_qps_slo, 200.0);

  const Json json = sweep.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Find("workload")->AsString(), "post-rec");
  EXPECT_EQ(json.Find("target")->AsString(), "inprocess");
  EXPECT_TRUE(json.Find("gate_passed")->AsBool());
  const Json* points = json.Find("points");
  ASSERT_TRUE(points != nullptr && points->is_array());
  for (const Json& point : points->AsArray()) {
    for (const char* key : {"rate_qps", "p99_ms", "mean_ms", "goodput_qps",
                            "lost", "shed", "balance_ok"}) {
      EXPECT_NE(point.Find(key), nullptr) << key;
    }
    EXPECT_EQ(point.Find("lost")->AsInt(), 0);
  }
}

// ------------------------------------------------------------------- parity

TEST(RemoteParityTest, RemoteAndInProcessScoresAreBitwiseIdentical) {
  // One engine configuration, two transports.
  EngineOptions engine_options;
  engine_options.model = ModelConfig::Tiny();
  engine_options.max_concurrent_requests = 2;
  engine_options.max_batch_size = 4;
  ScoringService service(engine_options);
  ASSERT_TRUE(service.Start(0).ok());

  auto inprocess = MakeInProcessTarget(TinyClientOptions());
  ClientOptions remote_options;
  remote_options.model = "tiny";
  auto remote = MakeRemoteTarget("127.0.0.1:" + std::to_string(service.port()),
                                 remote_options);

  const auto items = ScaledPostRecItems(12);
  ScoreOptions score_options;
  const ClientStats remote_before = remote->Stats();
  for (const LoadItem& item : items) {
    score_options.user_id = item.user_id;
    const ScoreResult local = inprocess->Score(item.tokens, {7, 9}, score_options);
    const ScoreResult wire = remote->Score(item.tokens, {7, 9}, score_options);
    ASSERT_TRUE(local.ok) << local.error_message;
    ASSERT_TRUE(wire.ok) << wire.error_message;
    // BITWISE equality across the HTTP boundary: deterministic engine plus
    // shortest-round-trip JSON doubles. EXPECT_EQ on doubles, not NEAR.
    EXPECT_EQ(local.score, wire.score);
    ASSERT_EQ(local.probabilities.size(), wire.probabilities.size());
    for (size_t i = 0; i < local.probabilities.size(); ++i) {
      EXPECT_EQ(local.probabilities[i].token, wire.probabilities[i].token);
      EXPECT_EQ(local.probabilities[i].probability,
                wire.probabilities[i].probability);
    }
    EXPECT_EQ(local.n_input, wire.n_input);
  }

  // The balance invariant holds on both sides of the wire.
  const ClientStats local_stats = inprocess->Stats();
  EXPECT_EQ(local_stats.submitted,
            local_stats.completed + local_stats.failed + local_stats.cancelled +
                local_stats.cancelled_in_flight + local_stats.deadline_expired +
                local_stats.deadline_expired_in_flight);
  const ClientStats remote_after = remote->Stats();
  EXPECT_EQ(remote_after.submitted - remote_before.submitted,
            static_cast<int64_t>(items.size()));
  EXPECT_EQ(remote_after.submitted - remote_before.submitted,
            (remote_after.completed - remote_before.completed) +
                (remote_after.failed - remote_before.failed));
  service.Stop();
}

TEST(RemoteParityTest, ErrorCodesCrossTheWireUnchanged) {
  EngineOptions engine_options;
  engine_options.model = ModelConfig::Tiny();
  ScoringService service(engine_options);
  ASSERT_TRUE(service.Start(0).ok());
  ClientOptions remote_options;
  remote_options.model = "tiny";
  auto remote = MakeRemoteTarget("127.0.0.1:" + std::to_string(service.port()),
                                 remote_options);

  // Out-of-vocabulary token: 400 on the wire, "invalid_argument" here —
  // exactly what the in-process engine reports.
  ScoreResult result = remote->Score({100000}, {7}, {});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, "invalid_argument");

  // Already-expired deadline: 504 on the wire, "deadline_exceeded" here.
  ScoreOptions expired;
  expired.deadline_ms = 0;
  result = remote->Score({1, 2, 3}, {7}, expired);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, "deadline_exceeded");
  service.Stop();
}

TEST(RemoteParityTest, RemoteTargetToDeadEndpointIsUnavailable) {
  uint16_t free_port = 0;
  {
    EngineOptions engine_options;
    engine_options.model = ModelConfig::Tiny();
    ScoringService probe(engine_options);
    ASSERT_TRUE(probe.Start(0).ok());
    free_port = probe.port();
    probe.Stop();
  }
  ClientOptions remote_options;
  remote_options.model = "tiny";
  auto remote = MakeRemoteTarget("127.0.0.1:" + std::to_string(free_port),
                                 remote_options);
  const ScoreResult result = remote->Score({1, 2, 3}, {7}, {});
  EXPECT_FALSE(result.ok);
  // The transient class the RetryPolicy understands, same as a drained
  // in-process cluster.
  EXPECT_EQ(result.error_code, "unavailable");
}

// -------------------------------------------------------------------- chaos

// Both fault domains at once under open-loop load: the FIRST replica
// hand-off fails (cluster must fail over or surface a retryable error) and
// an early server-side socket read takes a transient EINTR (the read loop
// must absorb it). The books must still reconcile with /v1/stats.
TEST(ChaosLoadgenTest, FaultsUnderLoadReconcileWithServerStats) {
  EngineOptions engine_options;
  engine_options.model = ModelConfig::Tiny();
  engine_options.max_concurrent_requests = 2;
  ScoringServiceOptions service_options;
  service_options.cluster.n_replicas = 2;
  ScoringService service(engine_options, service_options);
  ASSERT_TRUE(service.Start(0).ok());

  ClientOptions remote_options;
  remote_options.model = "tiny";
  remote_options.retry.max_retries = 2;
  remote_options.retry.initial_backoff_ms = 5;
  remote_options.retry.retry_after_floor_ms = 10;
  auto remote = MakeRemoteTarget("127.0.0.1:" + std::to_string(service.port()),
                                 remote_options);

  const auto items = ScaledPostRecItems(24);
  ArrivalOptions arrival;
  arrival.kind = ArrivalKind::kPoisson;
  arrival.qps = 150.0;
  arrival.seed = 13;
  RunOptions run_options;
  run_options.concurrency = 4;
  run_options.allowed = {7, 9};

  RunReport report;
  int64_t fires = 0;
  {
    FaultScope scope("seed=7;replica.submit=@1;socket.recv=@2");
    report = RunLoad(*remote, items, MakeArrivalSchedule(items.size(), arrival),
                     run_options);
    fires = FaultInjector::Global().total_fires();
  }

  // The chaos contract: faults really fired, yet no request vanished and
  // the server's ledger (read back over /v1/stats) still balances.
  EXPECT_GE(fires, 1);
  EXPECT_EQ(report.dispatched, static_cast<int64_t>(items.size()));
  EXPECT_EQ(report.lost, 0);
  EXPECT_EQ(report.measured, report.ok + report.errors);
  EXPECT_TRUE(report.BalanceOk())
      << "submitted delta "
      << report.stats_after.submitted - report.stats_before.submitted;
  // Every client-side success required a successful engine submission, so
  // the server-side ledger must cover at least the successes (retries and
  // failures only add to it).
  EXPECT_GE(report.stats_after.submitted - report.stats_before.submitted,
            report.ok);
  EXPECT_GT(report.ok, 0);
  service.Stop();
}

}  // namespace
}  // namespace prefillonly
