#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/metrics/regression.h"
#include "src/metrics/stats.h"

namespace prefillonly {
namespace {

// ----------------------------------------------------------- OnlineStats

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, SingleSampleVarianceZero) {
  OnlineStats s;
  s.Add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

// ------------------------------------------------------------- SampleSet

TEST(SampleSetTest, PercentilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.P50(), 50.5, 1e-9);
  EXPECT_NEAR(s.P99(), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
}

TEST(SampleSetTest, PercentileSingleSample) {
  SampleSet s;
  s.Add(7.0);
  EXPECT_EQ(s.P50(), 7.0);
  EXPECT_EQ(s.P99(), 7.0);
}

TEST(SampleSetTest, MeanUnsortedInput) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(SampleSetTest, PercentileAfterMoreSamples) {
  // EnsureSorted must refresh after additional Adds.
  SampleSet s;
  s.Add(1.0);
  EXPECT_EQ(s.P50(), 1.0);
  s.Add(3.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.P50(), 2.0);
}

TEST(SampleSetTest, CdfIsMonotonic) {
  SampleSet s;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    s.Add(rng.NextDouble() * 10.0);
  }
  const auto cdf = s.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);   // values nondecreasing
    EXPECT_GT(cdf[i].second, cdf[i - 1].second); // fractions increasing
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SampleSetTest, CdfEmpty) {
  SampleSet s;
  EXPECT_TRUE(s.Cdf(10).empty());
}

// --------------------------------------------------------------- Pearson

TEST(PearsonTest, PerfectPositiveCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, MismatchedLengthsIsZero) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, NoisyLinearIsHigh) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.NextDouble() * 100;
    x.push_back(v);
    y.push_back(3 * v + rng.NextGaussian() * 2.0);
  }
  EXPECT_GT(PearsonCorrelation(x, y), 0.99);
}

// ------------------------------------------------------------ Regression

TEST(RegressionTest, RecoversExactLinearModel) {
  // y = 2*a + 3*b + 5
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.NextDouble() * 10;
    const double b = rng.NextDouble() * 10;
    rows.push_back({a, b});
    y.push_back(2 * a + 3 * b + 5);
  }
  auto fit = FitLinear(rows, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.value().coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.value().intercept, 5.0, 1e-9);
  EXPECT_NEAR(RSquared(fit.value(), rows, y), 1.0, 1e-12);
}

TEST(RegressionTest, PredictsNewPoints) {
  std::vector<std::vector<double>> rows{{0}, {1}, {2}, {3}};
  std::vector<double> y{1, 3, 5, 7};  // y = 2x + 1
  auto fit = FitLinear(rows, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().Predict({10}), 21.0, 1e-9);
}

TEST(RegressionTest, RejectsEmptyInput) {
  EXPECT_FALSE(FitLinear({}, {}).ok());
}

TEST(RegressionTest, RejectsUnderdeterminedSystem) {
  // 2 features + intercept needs >= 3 samples.
  EXPECT_FALSE(FitLinear({{1.0, 2.0}}, {3.0}).ok());
}

TEST(RegressionTest, RejectsSingularDesign) {
  // Feature 2 is a constant multiple of feature 1.
  std::vector<std::vector<double>> rows{{1, 2}, {2, 4}, {3, 6}, {4, 8}};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_FALSE(FitLinear(rows, y).ok());
}

TEST(RegressionTest, RejectsRaggedRows) {
  std::vector<std::vector<double>> rows{{1, 2}, {2}};
  std::vector<double> y{1, 2};
  EXPECT_FALSE(FitLinear(rows, y).ok());
}

TEST(RegressionTest, NoisyFitHasReasonableR2) {
  Rng rng(21);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.NextDouble() * 100;
    rows.push_back({a});
    y.push_back(0.5 * a + rng.NextGaussian());
  }
  auto fit = FitLinear(rows, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(RSquared(fit.value(), rows, y), 0.99);
}

}  // namespace
}  // namespace prefillonly
