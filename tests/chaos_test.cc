// Chaos suite (ISSUE 6): deterministic fault injection, cooperative
// in-flight abort, and graceful degradation under pressure.
//
// Two kinds of tests live here:
//  * FaultInjectorTest.* — the schedule grammar and trigger semantics of the
//    process-global injector (fast, deterministic; runs in the main suite);
//  * Chaos*.* — engine/server tests that replay seeded fault schedules and
//    assert the robustness invariants: no crash, no lost or double
//    completion, balanced terminal accounting, every promise fulfilled, and
//    bitwise-unchanged logits whenever injection is disabled. These carry
//    the `chaos` ctest label (CMakeLists.txt) and run as their own CI job.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "prefillonly/client.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/request.h"
#include "src/server/http_server.h"

namespace prefillonly {
namespace {

EngineOptions TinyChaosOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.mode = PrefillMode::kChunked;  // chunk boundaries = abort polls
  options.chunk_size = 32;
  options.num_threads = 2;
  return options;
}

std::vector<int32_t> Tokens(int64_t n, uint64_t seed, int64_t vocab = 256) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

ScoringRequest YesNoRequest(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

::testing::AssertionResult SameBits(const std::vector<TokenProbability>& a,
                                    const std::vector<TokenProbability>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].token != b[i].token ||
        std::memcmp(&a[i].probability, &b[i].probability, sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "probability " << i << ": " << a[i].probability << " vs "
             << b[i].probability;
    }
  }
  return ::testing::AssertionSuccess();
}

// Sum of every terminal-outcome bucket; the balance invariant is
// submitted == Terminal(stats) regardless of which faults fired.
int64_t Terminal(const EngineStats& stats) {
  return stats.completed + stats.failed + stats.cancelled +
         stats.cancelled_in_flight + stats.deadline_expired +
         stats.deadline_expired_in_flight;
}

// ----------------------------------------------- injector grammar & triggers

TEST(FaultInjectorTest, IndexAndFirstNTriggers) {
  FaultScope scope("alloc.kv_block=@2,4;offload.read=x2");
  auto& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.enabled());
  // @2,4: exactly the 2nd and 4th hits fire.
  std::vector<bool> fires;
  for (int i = 0; i < 5; ++i) {
    fires.push_back(injector.Fire(fault::kAllocKvBlock));
  }
  EXPECT_EQ(fires, (std::vector<bool>{false, true, false, true, false}));
  // x2: the first two hits fire.
  EXPECT_TRUE(injector.Fire(fault::kOffloadRead));
  EXPECT_TRUE(injector.Fire(fault::kOffloadRead));
  EXPECT_FALSE(injector.Fire(fault::kOffloadRead));

  const auto stats = injector.SiteStats();
  EXPECT_EQ(stats.at(fault::kAllocKvBlock).hits, 5);
  EXPECT_EQ(stats.at(fault::kAllocKvBlock).fires, 2);
  EXPECT_EQ(stats.at(fault::kOffloadRead).hits, 3);
  EXPECT_EQ(stats.at(fault::kOffloadRead).fires, 2);
  EXPECT_EQ(injector.total_fires(), 4);
}

TEST(FaultInjectorTest, EveryNthTrigger) {
  FaultScope scope("cache.force_miss=n3");
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(FaultInjector::Global().Fire(fault::kCacheForceMiss));
  }
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false, true}));
}

TEST(FaultInjectorTest, ProbabilityStreamIsSeedDeterministic) {
  constexpr int kHits = 64;
  auto sample = [](const std::string& spec) {
    FaultScope scope(spec);
    std::vector<bool> fires;
    for (int i = 0; i < kHits; ++i) {
      fires.push_back(FaultInjector::Global().Fire(fault::kOffloadWrite));
    }
    return fires;
  };
  const auto a = sample("seed=5;offload.write=p0.5");
  const auto b = sample("seed=5;offload.write=p0.5");
  const auto c = sample("seed=6;offload.write=p0.5");
  // Same seed replays the exact same fault sequence; a different seed is a
  // different sequence (64 coin flips colliding is a 2^-64 event).
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const auto fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, kHits);
}

TEST(FaultInjectorTest, MalformedSpecRejectedAndDisabled) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.LoadSchedule("alloc.kv_block=z9").ok());
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.Fire(fault::kAllocKvBlock));
  EXPECT_FALSE(injector.LoadSchedule("not a schedule").ok());
  EXPECT_FALSE(injector.LoadSchedule("seed=notanumber;offload.read=x1").ok());
  EXPECT_FALSE(injector.LoadSchedule("alloc.kv_block=p1.5").ok());
}

TEST(FaultInjectorTest, DisabledInjectorNeverFiresOrCounts) {
  auto& injector = FaultInjector::Global();
  injector.Clear();
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(injector.Fire(fault::kAllocActivation));
  }
  EXPECT_TRUE(injector.SiteStats().empty());
  EXPECT_EQ(injector.total_fires(), 0);
}

TEST(FaultInjectorTest, StallKnobParsed) {
  FaultScope scope("exec.stall=x1;stall_ms=250");
  EXPECT_EQ(FaultInjector::Global().stall_ms(), 250);
}

// --------------------------------------- allocation-failure paths (ISSUE 6)

TEST(ChaosAllocTest, KvBlockAllocFailureSurfacesGracefullyAndRecovers) {
  FaultScope scope("alloc.kv_block=@1");
  Engine engine(TinyChaosOptions());
  // First block allocation of the first request fails (injected): the
  // request surfaces kResourceExhausted — no assert, no leaked pins.
  auto failed = engine.ScoreSync(YesNoRequest(Tokens(96, 1)));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  // The pool recovered: the identical request now succeeds and publishes
  // its KV; a third run hits the cache it left behind.
  auto ok = engine.ScoreSync(YesNoRequest(Tokens(96, 1)));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  auto cached = engine.ScoreSync(YesNoRequest(Tokens(96, 1)));
  ASSERT_TRUE(cached.ok());
  EXPECT_GT(cached.value().n_cached, 0);
  EXPECT_TRUE(SameBits(ok.value().probabilities, cached.value().probabilities));
}

TEST(ChaosAllocTest, TransientKvBlockFailureRetriesAndSucceeds) {
  FaultScope scope("alloc.kv_block=@1");
  EngineOptions options = TinyChaosOptions();
  options.alloc_retry_max = 2;
  options.alloc_retry_backoff_ms = 1;
  Engine engine(options);
  // Same injected failure as above, but the degradation ladder's first rung
  // absorbs it: the acquisition retries after backoff and the request never
  // sees the fault.
  auto response = engine.ScoreSync(YesNoRequest(Tokens(96, 1)));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto stats = engine.stats();
  EXPECT_GE(stats.alloc_retries, 1);
  EXPECT_GE(stats.alloc_retry_successes, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ChaosAllocTest, ActivationArenaFailureIsCpuOom) {
  FaultScope scope("alloc.activation=@1");
  Engine engine(TinyChaosOptions());
  auto failed = engine.ScoreSync(YesNoRequest(Tokens(64, 2)));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  auto ok = engine.ScoreSync(YesNoRequest(Tokens(64, 2)));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ChaosAllocTest, ForcedCacheMissRecomputesIdenticalBits) {
  Engine engine(TinyChaosOptions());
  const auto tokens = Tokens(96, 3);
  auto primed = engine.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(primed.ok());
  // Every subsequent lookup is forced to miss: the full prompt recomputes,
  // and the determinism contract demands bitwise-identical logits anyway.
  FaultScope scope("cache.force_miss=p1");
  auto missed = engine.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(missed.ok());
  EXPECT_EQ(missed.value().n_cached, 0);
  EXPECT_TRUE(SameBits(primed.value().probabilities, missed.value().probabilities));
}

// ------------------------------------------- cooperative in-flight abort

TEST(ChaosAbortTest, DeadlineLapsingBetweenChunksSkipsRemainingWork) {
  // Baseline: the same request on an uninjected engine, counting the chunk
  // polls a full prefill performs.
  const auto tokens = Tokens(128, 4);
  int64_t baseline_polls = 0;
  {
    Engine engine(TinyChaosOptions());
    ASSERT_TRUE(engine.ScoreSync(YesNoRequest(tokens)).ok());
    baseline_polls = engine.stats().abort_checks;
    ASSERT_GT(baseline_polls, 1) << "chunked prefill must poll per chunk";
  }

  // Injected run: the lane stalls 600 ms after dequeue, so a 150 ms
  // deadline lapses BETWEEN dispatch and the first chunk. The first
  // cooperative poll aborts the pass with kDeadlineExceeded.
  FaultScope scope("exec.stall=x1;stall_ms=600");
  Engine engine(TinyChaosOptions());
  ASSERT_TRUE(engine.StartWorker(/*callback=*/nullptr).ok());
  ScoringRequest request = YesNoRequest(tokens);
  request.deadline_ms = 150;
  auto submitted = engine.SubmitAsyncHandle(std::move(request));
  ASSERT_TRUE(submitted.ok());
  auto result = submitted.value().future.get();
  engine.StopWorker();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const auto stats = engine.stats();
  // The new terminal bucket, disjoint from queued expiry and from failed.
  EXPECT_EQ(stats.deadline_expired_in_flight, 1);
  EXPECT_EQ(stats.deadline_expired, 0);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 0);
  // abort_checks counts only polls that let the prefill CONTINUE: the
  // aborted run stopped at its first poll, so against the baseline's
  // per-chunk count this proves the remaining chunks never executed.
  EXPECT_LT(stats.abort_checks, baseline_polls);
  EXPECT_EQ(Terminal(stats), stats.submitted);
}

TEST(ChaosAbortTest, CancelInFlightStopsAtNextChunkBoundary) {
  const auto tokens = Tokens(128, 5);
  int64_t baseline_polls = 0;
  {
    Engine engine(TinyChaosOptions());
    ASSERT_TRUE(engine.ScoreSync(YesNoRequest(tokens)).ok());
    baseline_polls = engine.stats().abort_checks;
  }

  // The stall opens a deterministic window between dispatch (the request is
  // "running" from the moment it leaves the queue) and the first chunk;
  // cancelling inside it must stop the pass at the first poll.
  FaultScope scope("exec.stall=x1;stall_ms=600");
  Engine engine(TinyChaosOptions());
  ASSERT_TRUE(engine.StartWorker(/*callback=*/nullptr).ok());
  auto submitted = engine.SubmitAsyncHandle(YesNoRequest(tokens));
  ASSERT_TRUE(submitted.ok());
  const int64_t id = submitted.value().id;
  while (engine.Phase(id) != Engine::RequestPhase::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(engine.Cancel(id).ok());
  auto result = submitted.value().future.get();
  engine.StopWorker();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cancelled_in_flight, 1);
  EXPECT_EQ(stats.cancelled, 0);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_LT(stats.abort_checks, baseline_polls);
  EXPECT_EQ(Terminal(stats), stats.submitted);
}

// --------------------------------------------------- graceful degradation

TEST(ChaosDegradeTest, WatchdogFailsStuckPromiseAndTurnsHealthDegraded) {
  // The lane wedges for 800 ms; the 100 ms watchdog must fail the promise
  // long before the lane recovers, so the async client is never left
  // hanging behind it.
  FaultScope scope("exec.stall=x1;stall_ms=800");
  EngineOptions options = TinyChaosOptions();
  options.watchdog_timeout_ms = 100;
  Engine engine(options);
  EXPECT_EQ(engine.Health(), Engine::HealthStatus::kOk);
  ASSERT_TRUE(engine.StartWorker(/*callback=*/nullptr).ok());
  auto submitted = engine.SubmitAsyncHandle(YesNoRequest(Tokens(64, 6)));
  ASSERT_TRUE(submitted.ok());
  auto result = submitted.value().future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("watchdog"), std::string::npos);
  // Delivery-level only: the wedged lane eventually finishes and the
  // request still counts as completed, so terminal accounting balances.
  engine.StopWorker();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.watchdog_stalls, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(Terminal(stats), stats.submitted);
  // Degraded is sticky: the incident stays visible after recovery.
  EXPECT_EQ(engine.Health(), Engine::HealthStatus::kDegraded);
}

TEST(ChaosDegradeTest, ShedHysteresisRejectsAboveHighUntilDrainedBelowLow) {
  EngineOptions options = TinyChaosOptions();
  options.shed_high_watermark = 4;  // low defaults to high/2 = 2
  Engine engine(options);
  // Synchronous mode keeps the queue depth exact: nothing drains between
  // submissions, so the watermark arithmetic is deterministic.
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    auto id = engine.Submit(YesNoRequest(Tokens(32, 100 + i)));
    if (id.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(engine.Health(), Engine::HealthStatus::kOverloaded);
  auto stats = engine.stats();
  // Shed requests were never admitted: they are absent from `submitted`
  // (and from every terminal bucket), counted only in `shed`.
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.shed, 6);

  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(responses.value().size(), 4u);
  // Drained below the low watermark: shedding disengages and new
  // submissions are welcome again.
  EXPECT_EQ(engine.Health(), Engine::HealthStatus::kOk);
  EXPECT_TRUE(engine.Submit(YesNoRequest(Tokens(32, 200))).ok());
  stats = engine.stats();
  EXPECT_EQ(Terminal(stats) + 1, stats.submitted);  // one still queued
}

// ------------------------------------------------ seeded chaos schedules

// Replays one seeded schedule against a concurrent engine under client
// pressure and checks the invariants that must hold under ANY fault
// sequence: every future resolves exactly once, terminal accounting
// balances, and the process neither crashes nor wedges.
void RunSeededSchedule(const std::string& schedule) {
  SCOPED_TRACE(schedule);
  FaultScope scope(schedule);
  EngineOptions options = TinyChaosOptions();
  options.max_concurrent_requests = 4;
  options.max_batch_size = 2;
  options.alloc_retry_max = 2;
  options.alloc_retry_backoff_ms = 1;
  options.cache_budget_tokens = 256;       // small: keeps eviction pressure on
  options.cpu_offload_budget_tokens = 256; // exercises the offload fault sites
  Engine engine(options);
  ASSERT_TRUE(engine.StartWorker(/*callback=*/nullptr).ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::mutex mu;
  std::vector<Engine::ResponseFuture> futures;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&engine, &mu, &futures, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int64_t n = 48 + 16 * ((c + i) % 4);
        auto submitted = engine.SubmitAsyncHandle(
            YesNoRequest(Tokens(n, static_cast<uint64_t>(c * 100 + i)), c));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(submitted.value().future));
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  ASSERT_EQ(futures.size(), static_cast<size_t>(kClients * kPerClient));

  // Every promise must resolve — a lost completion would hang here (and the
  // per-test ctest timeout would flag it).
  int ok_count = 0;
  int failed_count = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++ok_count;
    } else {
      // Injected faults surface as resource exhaustion (allocation sites)
      // after the retry ladder; nothing else can fail these requests.
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << result.status().ToString();
      ++failed_count;
    }
  }
  engine.StopWorker();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_EQ(stats.failed, failed_count);
  EXPECT_EQ(Terminal(stats), stats.submitted) << "terminal accounting must balance";
  // The schedule actually did something: this was not a no-fault run.
  EXPECT_GT(stats.faults_injected, 0);
}

TEST(ChaosScheduleTest, SeededKvAndCacheFaultsKeepInvariants) {
  RunSeededSchedule("seed=1;alloc.kv_block=p0.2;cache.force_miss=p0.3");
}

TEST(ChaosScheduleTest, SeededActivationAndOffloadFaultsKeepInvariants) {
  RunSeededSchedule("seed=2;alloc.activation=@3,7;offload.read=p0.5;offload.write=p0.5");
}

TEST(ChaosScheduleTest, SeededMixedEveryNthFaultsKeepInvariants) {
  RunSeededSchedule("seed=3;alloc.kv_block=n5;cache.force_miss=n2;offload.write=n3");
}

TEST(ChaosScheduleTest, InjectionDisabledIsBitIdenticalAndHealthy) {
  // The robustness machinery armed but NO schedule installed: logits must
  // be bitwise identical to a plain engine, health must read ok, and the
  // injector must have stayed silent — the fault layer is zero-cost off.
  FaultInjector::Global().Clear();
  const auto tokens = Tokens(128, 7);
  std::vector<TokenProbability> golden;
  {
    Engine plain(TinyChaosOptions());
    auto response = plain.ScoreSync(YesNoRequest(tokens));
    ASSERT_TRUE(response.ok());
    golden = response.value().probabilities;
  }
  EngineOptions options = TinyChaosOptions();
  options.alloc_retry_max = 3;
  options.shed_high_watermark = 100;
  options.watchdog_timeout_ms = 10'000;
  Engine armed(options);
  ASSERT_TRUE(armed.StartWorker(/*callback=*/nullptr).ok());
  auto submitted = armed.SubmitAsyncHandle(YesNoRequest(tokens));
  ASSERT_TRUE(submitted.ok());
  auto response = submitted.value().future.get();
  armed.StopWorker();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(SameBits(golden, response.value().probabilities));
  EXPECT_EQ(armed.Health(), Engine::HealthStatus::kOk);
  EXPECT_EQ(armed.stats().faults_injected, 0);
}

// ------------------- offload evict→reload round trip (ISSUE 7 satellite)

TEST(ChaosOffloadTest, EvictReloadRoundTripSurvivesFaultSchedules) {
  // The two-tier cycle — radix-tree eviction demotes to the offload
  // directory, the next match reloads — driven through seeded schedules
  // that drop offload writes, fail offload reads, and force cache misses
  // at the new tree boundaries. These sites may only degrade (recompute),
  // never fail a request or change a bit of output.
  EngineOptions options = TinyChaosOptions();
  options.cache_budget_tokens = 64;         // one profile: B's arrival demotes A
  options.cpu_offload_budget_tokens = 256;

  const auto user_a = Tokens(64, 61);
  const auto user_b = Tokens(64, 62);

  // Fault-free reference. The round trip itself must complete: A demoted
  // when B lands, then served from the CPU tier with the reload counted.
  std::vector<TokenProbability> golden_a, golden_b;
  {
    FaultInjector::Global().Clear();
    Engine engine(options);
    auto first_a = engine.ScoreSync(YesNoRequest(user_a, 1));
    ASSERT_TRUE(first_a.ok());
    golden_a = first_a.value().probabilities;
    auto first_b = engine.ScoreSync(YesNoRequest(user_b, 2));  // demotes A
    ASSERT_TRUE(first_b.ok());
    golden_b = first_b.value().probabilities;
    auto again_a = engine.ScoreSync(YesNoRequest(user_a, 1));
    ASSERT_TRUE(again_a.ok());
    EXPECT_GT(again_a.value().n_cached_offload, 0);
    EXPECT_TRUE(SameBits(golden_a, again_a.value().probabilities));
    const auto stats = engine.stats();
    EXPECT_GT(stats.offload_demotions, 0);
    EXPECT_GT(stats.offload_read_hits, 0);  // the reload, via the new counter
  }

  // The same traffic under fault schedules covering every trigger type at
  // the offload boundary.
  for (const char* schedule :
       {"seed=11;offload.write=p0.5;offload.read=p0.5;cache.force_miss=p0.3",
        "seed=12;offload.read=x1;cache.force_miss=n2",
        "seed=13;offload.write=x1;offload.read=p0.25"}) {
    SCOPED_TRACE(schedule);
    FaultScope scope(schedule);
    Engine engine(options);
    auto a1 = engine.ScoreSync(YesNoRequest(user_a, 1));
    auto b = engine.ScoreSync(YesNoRequest(user_b, 2));
    auto a2 = engine.ScoreSync(YesNoRequest(user_a, 1));
    ASSERT_TRUE(a1.ok()) << a1.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(a2.ok()) << a2.status().ToString();
    EXPECT_TRUE(SameBits(golden_a, a1.value().probabilities));
    EXPECT_TRUE(SameBits(golden_b, b.value().probabilities));
    EXPECT_TRUE(SameBits(golden_a, a2.value().probabilities));

    const auto stats = engine.stats();
    // A dropped write or failed read surfaces as a read miss and a
    // recompute — never as a stale hit, a failed request, or a counter
    // that books tokens it did not serve.
    EXPECT_GT(stats.faults_injected, 0);
    EXPECT_GE(stats.offload_read_misses, 0);
    EXPECT_GE(stats.offload_hit_tokens, 0);
    if (stats.offload_hit_tokens > 0) {
      EXPECT_GT(stats.offload_read_hits, 0);
    }
  }
}

// ----------------------------- facade retry policy (ISSUE 6 satellite)

TEST(ChaosClientTest, RetryPolicyAbsorbsTransientFault) {
  // The first KV block allocation fails (injected). Without a policy the
  // failure surfaces; with one, the blocking call transparently re-submits
  // and the caller never sees the fault.
  std::vector<int32_t> tokens;
  for (int i = 0; i < 48; ++i) {
    tokens.push_back((i * 13 + 5) % 200 + 1);
  }
  {
    FaultScope scope("alloc.kv_block=@1");
    ClientOptions options;
    options.model = "tiny";
    Client client(options);  // default policy: fail fast
    const ScoreResult result = client.Score(tokens, {10, 20});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_code, "resource_exhausted");
    EXPECT_EQ(client.Stats().client_retries, 0);
  }
  {
    FaultScope scope("alloc.kv_block=@1");
    ClientOptions options;
    options.model = "tiny";
    options.retry.max_retries = 2;
    options.retry.initial_backoff_ms = 1;
    Client client(options);
    const ScoreResult result = client.Score(tokens, {10, 20});
    EXPECT_TRUE(result.ok) << result.error_code << ": " << result.error_message;
    EXPECT_EQ(client.Stats().client_retries, 1);
  }
}

// ----------------------------------- HTTP socket faults (ISSUE 6 satellite)

// Minimal blocking client for the loopback chaos test.
int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendRaw(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

// Reads exactly one Content-Length-framed response from `fd`.
std::string ReadFramedResponse(int fd) {
  std::string raw;
  char buffer[2048];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const size_t pos = raw.find("Content-Length: ");
        if (pos != std::string::npos && pos < header_end) {
          content_length = std::stoul(raw.substr(pos + 16));
        }
      }
    }
    if (header_end != std::string::npos &&
        raw.size() >= header_end + 4 + content_length) {
      return raw.substr(0, header_end + 4 + content_length);
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      return raw;
    }
    raw.append(buffer, static_cast<size_t>(n));
  }
}

TEST(ChaosHttpTest, KeepAliveFramingSurvivesShortWritesAndEintr) {
  // Most send() calls are clamped to ONE byte (socket.short_write=p0.8) and
  // sporadic recv/send attempts observe a simulated EINTR — the pre-fix
  // loops would have truncated the framed response or dropped the
  // connection mid-request. Both responses must arrive byte-exact on one
  // keep-alive connection.
  FaultScope scope(
      "seed=11;socket.short_write=p0.8;socket.recv=n7;socket.send=@2,9");
  const std::string body(4000, 'x');
  HttpServer server([&body](const HttpRequest& request) {
    HttpResponse response;
    response.body = "{\"path\":\"" + request.path + "\",\"fill\":\"" + body + "\"}";
    return response;
  });
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  const int fd = ConnectLoopback(server.port());
  for (const std::string path : {"/first", "/second"}) {
    SendRaw(fd, "GET " + path + " HTTP/1.1\r\nHost: x\r\n"
                "Connection: keep-alive\r\n\r\n");
    const std::string response = ReadFramedResponse(fd);
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"path\":\"" + path + "\""), std::string::npos);
    EXPECT_NE(response.find(body), std::string::npos)
        << "framed body truncated at " << response.size() << " bytes";
  }
  ::close(fd);
  server.Stop();
  // The short-write site genuinely exercised the continuation path.
  const auto stats = FaultInjector::Global().SiteStats();
  EXPECT_GT(stats.at(fault::kSocketShortWrite).fires, 0);
}

}  // namespace
}  // namespace prefillonly
