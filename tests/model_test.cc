#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/config.h"
#include "src/model/kv.h"
#include "src/model/llama.h"
#include "src/model/sampler.h"
#include "src/tensor/tracking_allocator.h"

namespace prefillonly {
namespace {

std::vector<int32_t> MakeTokens(int64_t n, int64_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> tokens(static_cast<size_t>(n));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return tokens;
}

const LlamaModel& TinyModel() {
  static const LlamaModel* model = new LlamaModel(ModelConfig::Tiny(), /*seed=*/7);
  return *model;
}

PrefillResult MustPrefill(const LlamaModel& model, std::span<const int32_t> tokens,
                          const KvCacheData* prefix, const PrefillOptions& options,
                          TrackingAllocator& act) {
  auto result = model.Prefill(tokens, prefix, options, act);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

// ------------------------------------------------------------ Equivalence
//
// The paper's central correctness claim (§4.2): hybrid prefilling "will not
// change the LLM inference results". Because every linear layer is
// row-independent and the attention/accumulation order is fixed, the three
// execution strategies must agree BITWISE, for any chunk size.

struct EquivalenceParam {
  PrefillMode mode;
  int64_t chunk;
  bool prealloc;
  bool in_place;
};

class PrefillEquivalenceTest : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(PrefillEquivalenceTest, MatchesStandardBitwise) {
  const auto& model = TinyModel();
  const auto param = GetParam();
  const auto tokens = MakeTokens(97, model.config().vocab_size, 11);

  TrackingAllocator act_ref;
  PrefillOptions reference;
  reference.mode = PrefillMode::kStandard;
  const auto expected = MustPrefill(model, tokens, nullptr, reference, act_ref);

  TrackingAllocator act;
  PrefillOptions options;
  options.mode = param.mode;
  options.chunk_size = param.chunk;
  options.preallocate_outputs = param.prealloc;
  options.in_place = param.in_place;
  const auto got = MustPrefill(model, tokens, nullptr, options, act);

  ASSERT_EQ(expected.last_logits.size(), got.last_logits.size());
  EXPECT_EQ(std::memcmp(expected.last_logits.data(), got.last_logits.data(),
                        expected.last_logits.size() * sizeof(float)),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndChunks, PrefillEquivalenceTest,
    ::testing::Values(
        EquivalenceParam{PrefillMode::kHybrid, 1, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 7, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 16, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 64, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 97, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 128, true, true},
        EquivalenceParam{PrefillMode::kHybrid, 16, true, false},
        EquivalenceParam{PrefillMode::kHybrid, 16, false, false},
        EquivalenceParam{PrefillMode::kChunked, 1, true, true},
        EquivalenceParam{PrefillMode::kChunked, 13, true, true},
        EquivalenceParam{PrefillMode::kChunked, 64, true, true},
        EquivalenceParam{PrefillMode::kChunked, 97, true, true}),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      const auto& p = info.param;
      std::string name = p.mode == PrefillMode::kHybrid ? "Hybrid" : "Chunked";
      name += "Chunk" + std::to_string(p.chunk);
      if (!p.prealloc) {
        name += "NoPrealloc";
      } else if (!p.in_place) {
        name += "NoInPlace";
      }
      return name;
    });

TEST(PrefillEquivalenceSweep, SmallModelManyLengths) {
  LlamaModel model(ModelConfig::Tiny(), 99);
  for (int64_t len : {1, 2, 31, 32, 33, 64}) {
    const auto tokens = MakeTokens(len, model.config().vocab_size, 100 + len);
    TrackingAllocator a1;
    TrackingAllocator a2;
    PrefillOptions standard;
    standard.mode = PrefillMode::kStandard;
    PrefillOptions hybrid;
    hybrid.mode = PrefillMode::kHybrid;
    hybrid.chunk_size = 16;
    const auto e = MustPrefill(model, tokens, nullptr, standard, a1);
    const auto g = MustPrefill(model, tokens, nullptr, hybrid, a2);
    EXPECT_EQ(std::memcmp(e.last_logits.data(), g.last_logits.data(),
                          e.last_logits.size() * sizeof(float)),
              0)
        << "len=" << len;
  }
}

// ------------------------------------------------------ Prefix cache reuse

TEST(PrefixReuseTest, CachedPrefixGivesIdenticalLogits) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(80, model.config().vocab_size, 21);

  // Full pass, keep all KV.
  TrackingAllocator act;
  PrefillOptions keep_all;
  keep_all.mode = PrefillMode::kHybrid;
  keep_all.chunk_size = 16;
  keep_all.retention = KvRetention::kAll;
  const auto full = MustPrefill(model, tokens, nullptr, keep_all, act);
  ASSERT_EQ(full.kv.n_tokens, 80);

  // Reuse the first 48 tokens as a cached prefix; logits must not change.
  TrackingAllocator act2;
  KvCacheData prefix = SliceKv(full.kv, 48, act2);
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.chunk_size = 16;
  const auto cached = MustPrefill(model, tokens, &prefix, options, act2);
  EXPECT_EQ(cached.n_new, 32);
  EXPECT_EQ(std::memcmp(full.last_logits.data(), cached.last_logits.data(),
                        full.last_logits.size() * sizeof(float)),
            0);
}

TEST(PrefixReuseTest, EveryPrefixSplitAgrees) {
  LlamaModel model(ModelConfig::Tiny(), 3);
  const auto tokens = MakeTokens(40, model.config().vocab_size, 33);
  TrackingAllocator act;
  PrefillOptions keep_all;
  keep_all.retention = KvRetention::kAll;
  keep_all.mode = PrefillMode::kStandard;
  const auto full = MustPrefill(model, tokens, nullptr, keep_all, act);

  for (int64_t split : {1, 8, 20, 39}) {
    TrackingAllocator act2;
    KvCacheData prefix = SliceKv(full.kv, split, act2);
    PrefillOptions options;
    options.mode = PrefillMode::kHybrid;
    options.chunk_size = 8;
    const auto got = MustPrefill(model, tokens, &prefix, options, act2);
    EXPECT_EQ(std::memcmp(full.last_logits.data(), got.last_logits.data(),
                          full.last_logits.size() * sizeof(float)),
              0)
        << "split=" << split;
  }
}

// ------------------------------------------------------- Retention policy

TEST(RetentionTest, NoneKeepsNothing) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(32, model.config().vocab_size, 41);
  TrackingAllocator act;
  PrefillOptions options;
  options.retention = KvRetention::kNone;
  const auto result = MustPrefill(model, tokens, nullptr, options, act);
  EXPECT_TRUE(result.kv.empty());
}

TEST(RetentionTest, PrefixBudgetKeepsExactlyBudget) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(64, model.config().vocab_size, 43);
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.retention = KvRetention::kPrefixBudget;
  options.prefix_budget_tokens = 24;
  const auto result = MustPrefill(model, tokens, nullptr, options, act);
  EXPECT_EQ(result.kv.n_tokens, 24);
  EXPECT_EQ(result.kv_start, 0);
}

TEST(RetentionTest, SuffixDiscardedKvMatchesFullKv) {
  // The retained prefix KV must be byte-identical to the same rows of a
  // full-retention pass: discarding the suffix must not perturb the prefix.
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(48, model.config().vocab_size, 45);

  TrackingAllocator a1;
  PrefillOptions keep_all;
  keep_all.mode = PrefillMode::kHybrid;
  keep_all.retention = KvRetention::kAll;
  const auto full = MustPrefill(model, tokens, nullptr, keep_all, a1);

  TrackingAllocator a2;
  PrefillOptions budget;
  budget.mode = PrefillMode::kHybrid;
  budget.retention = KvRetention::kPrefixBudget;
  budget.prefix_budget_tokens = 16;
  const auto partial = MustPrefill(model, tokens, nullptr, budget, a2);

  ASSERT_EQ(partial.kv.n_tokens, 16);
  for (size_t l = 0; l < partial.kv.layers.size(); ++l) {
    EXPECT_EQ(std::memcmp(partial.kv.layers[l].k.data(), full.kv.layers[l].k.data(),
                          partial.kv.layers[l].k.bytes()),
              0);
    EXPECT_EQ(std::memcmp(partial.kv.layers[l].v.data(), full.kv.layers[l].v.data(),
                          partial.kv.layers[l].v.bytes()),
              0);
  }
}

TEST(RetentionTest, BudgetBeyondLengthClampsToAll) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(20, model.config().vocab_size, 47);
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.retention = KvRetention::kPrefixBudget;
  options.prefix_budget_tokens = 10000;
  const auto result = MustPrefill(model, tokens, nullptr, options, act);
  EXPECT_EQ(result.kv.n_tokens, 20);
}

// ------------------------------------------------------- Memory behaviour

TEST(MemoryTest, HybridPeakIsLowerThanStandard) {
  // The headline memory claim at CPU scale: for a long-enough sequence the
  // hybrid pass peaks far below the standard pass.
  LlamaModel model(ModelConfig::Small(), 5);
  const auto tokens = MakeTokens(512, model.config().vocab_size, 51);

  TrackingAllocator std_alloc;
  PrefillOptions standard;
  standard.mode = PrefillMode::kStandard;
  MustPrefill(model, tokens, nullptr, standard, std_alloc);

  TrackingAllocator hyb_alloc;
  PrefillOptions hybrid;
  hybrid.mode = PrefillMode::kHybrid;
  hybrid.chunk_size = 32;
  MustPrefill(model, tokens, nullptr, hybrid, hyb_alloc);

  EXPECT_LT(hyb_alloc.peak_bytes(), std_alloc.peak_bytes() / 2)
      << "hybrid=" << hyb_alloc.peak_bytes() << " standard=" << std_alloc.peak_bytes();
}

TEST(MemoryTest, PreallocationAndInPlaceEachReducePeak) {
  LlamaModel model(ModelConfig::Small(), 5);
  const auto tokens = MakeTokens(512, model.config().vocab_size, 53);

  auto peak_with = [&](bool prealloc, bool in_place) {
    TrackingAllocator alloc;
    PrefillOptions options;
    options.mode = PrefillMode::kHybrid;
    options.chunk_size = 32;
    options.preallocate_outputs = prealloc;
    options.in_place = in_place;
    MustPrefill(model, tokens, nullptr, options, alloc);
    return alloc.peak_bytes();
  };

  const size_t chunking_only = peak_with(false, false);
  const size_t with_prealloc = peak_with(true, false);
  const size_t with_in_place = peak_with(true, true);
  EXPECT_LT(with_prealloc, chunking_only);
  EXPECT_LT(with_in_place, with_prealloc);
}

TEST(MemoryTest, NoLeaksAfterPrefill) {
  LlamaModel model(ModelConfig::Tiny(), 5);
  const auto tokens = MakeTokens(64, model.config().vocab_size, 55);
  TrackingAllocator alloc;
  {
    PrefillOptions options;
    options.retention = KvRetention::kNone;
    MustPrefill(model, tokens, nullptr, options, alloc);
  }
  EXPECT_EQ(alloc.current_bytes(), 0u);
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

TEST(MemoryTest, BudgetedAllocatorFailsGracefully) {
  LlamaModel model(ModelConfig::Small(), 5);
  const auto tokens = MakeTokens(256, model.config().vocab_size, 57);
  TrackingAllocator tight(64 * 1024);  // way below the pass requirement
  PrefillOptions options;
  options.mode = PrefillMode::kStandard;
  auto result = model.Prefill(tokens, nullptr, options, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tight.current_bytes(), 0u);  // everything rolled back
}

TEST(MemoryTest, HybridFitsWhereStandardCannot) {
  // The MIL expansion in miniature: pick a budget between the two peaks.
  LlamaModel model(ModelConfig::Small(), 5);
  const auto tokens = MakeTokens(512, model.config().vocab_size, 59);

  TrackingAllocator probe;
  PrefillOptions standard;
  standard.mode = PrefillMode::kStandard;
  MustPrefill(model, tokens, nullptr, standard, probe);
  const size_t budget = probe.peak_bytes() / 2;

  TrackingAllocator tight_std(budget);
  EXPECT_FALSE(model.Prefill(tokens, nullptr, standard, tight_std).ok());

  TrackingAllocator tight_hyb(budget);
  PrefillOptions hybrid;
  hybrid.mode = PrefillMode::kHybrid;
  hybrid.chunk_size = 32;
  EXPECT_TRUE(model.Prefill(tokens, nullptr, hybrid, tight_hyb).ok());
}

// ------------------------------------------------------------- Validation

TEST(ValidationTest, RejectsEmptyTokens) {
  const auto& model = TinyModel();
  TrackingAllocator act;
  auto result = model.Prefill({}, nullptr, PrefillOptions{}, act);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsOutOfVocabToken) {
  const auto& model = TinyModel();
  TrackingAllocator act;
  std::vector<int32_t> tokens{0, 1, static_cast<int32_t>(model.config().vocab_size)};
  auto result = model.Prefill(tokens, nullptr, PrefillOptions{}, act);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsFullCachedPrefix) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(16, model.config().vocab_size, 61);
  TrackingAllocator act;
  PrefillOptions keep;
  keep.retention = KvRetention::kAll;
  keep.mode = PrefillMode::kStandard;
  const auto full = MustPrefill(model, tokens, nullptr, keep, act);
  // Prefix covering the whole request is invalid: the last token must run.
  auto result = model.Prefill(tokens, &full.kv, PrefillOptions{}, act);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsInPlaceWithoutPrealloc) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(8, model.config().vocab_size, 63);
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.preallocate_outputs = false;
  options.in_place = true;
  auto result = model.Prefill(tokens, nullptr, options, act);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsDropKvWithRetention) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(8, model.config().vocab_size, 65);
  TrackingAllocator act;
  PrefillOptions options;
  options.mode = PrefillMode::kStandard;
  options.drop_kv_in_pass = true;
  options.retention = KvRetention::kAll;
  auto result = model.Prefill(tokens, nullptr, options, act);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, ConfigValidCatchesBadShapes) {
  ModelConfig config = ModelConfig::Tiny();
  EXPECT_TRUE(config.Valid());
  config.n_heads = 3;
  config.n_kv_heads = 2;  // 3 % 2 != 0
  EXPECT_FALSE(config.Valid());
  config = ModelConfig::Tiny();
  config.head_dim = 7;  // odd: RoPE impossible
  EXPECT_FALSE(config.Valid());
}

// ---------------------------------------------------------------- Sampler

TEST(SamplerTest, ProbabilitiesSumToOne) {
  std::vector<float> logits{0.1f, 2.0f, -1.0f, 0.5f};
  std::vector<int32_t> allowed{1, 3};
  auto probs = ConstrainedProbabilities(logits, allowed);
  ASSERT_TRUE(probs.ok());
  ASSERT_EQ(probs.value().size(), 2u);
  EXPECT_NEAR(probs.value()[0].probability + probs.value()[1].probability, 1.0, 1e-12);
  EXPECT_GT(probs.value()[0].probability, probs.value()[1].probability);
}

TEST(SamplerTest, IgnoresDisallowedLogits) {
  // A huge disallowed logit must not influence the constrained softmax.
  std::vector<float> logits{1000.0f, 1.0f, 2.0f};
  std::vector<int32_t> allowed{1, 2};
  auto probs = ConstrainedProbabilities(logits, allowed);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR(probs.value()[1].probability,
              1.0 / (1.0 + std::exp(-1.0)), 1e-6);
}

TEST(SamplerTest, RejectsEmptyAllowed) {
  std::vector<float> logits{1.0f};
  EXPECT_FALSE(ConstrainedProbabilities(logits, {}).ok());
}

TEST(SamplerTest, RejectsOutOfRangeToken) {
  std::vector<float> logits{1.0f, 2.0f};
  std::vector<int32_t> allowed{5};
  EXPECT_FALSE(ConstrainedProbabilities(logits, allowed).ok());
}

TEST(SamplerTest, RejectsDuplicates) {
  std::vector<float> logits{1.0f, 2.0f};
  std::vector<int32_t> allowed{1, 1};
  EXPECT_FALSE(ConstrainedProbabilities(logits, allowed).ok());
}

TEST(SamplerTest, ScoreFirstTokenIsPYes) {
  std::vector<float> logits{0.0f, 0.0f};
  std::vector<int32_t> allowed{0, 1};
  auto score = ScoreFirstToken(logits, allowed);
  ASSERT_TRUE(score.ok());
  EXPECT_NEAR(score.value(), 0.5, 1e-12);
}

// ------------------------------------------------------------ Determinism

TEST(DeterminismTest, SameSeedSameWeightsSameLogits) {
  LlamaModel a(ModelConfig::Tiny(), 1234);
  LlamaModel b(ModelConfig::Tiny(), 1234);
  const auto tokens = MakeTokens(32, a.config().vocab_size, 71);
  TrackingAllocator act_a;
  TrackingAllocator act_b;
  const auto ra = MustPrefill(a, tokens, nullptr, PrefillOptions{}, act_a);
  const auto rb = MustPrefill(b, tokens, nullptr, PrefillOptions{}, act_b);
  EXPECT_EQ(std::memcmp(ra.last_logits.data(), rb.last_logits.data(),
                        ra.last_logits.size() * sizeof(float)),
            0);
}

TEST(DeterminismTest, DifferentSeedDifferentLogits) {
  LlamaModel a(ModelConfig::Tiny(), 1);
  LlamaModel b(ModelConfig::Tiny(), 2);
  const auto tokens = MakeTokens(16, a.config().vocab_size, 73);
  TrackingAllocator act_a;
  TrackingAllocator act_b;
  const auto ra = MustPrefill(a, tokens, nullptr, PrefillOptions{}, act_a);
  const auto rb = MustPrefill(b, tokens, nullptr, PrefillOptions{}, act_b);
  EXPECT_NE(std::memcmp(ra.last_logits.data(), rb.last_logits.data(),
                        ra.last_logits.size() * sizeof(float)),
            0);
}

// ------------------------------------------------- Thread determinism
//
// ISSUE 1's contract: intra-op parallelism partitions work so each output
// element is owned by exactly one thread with a fixed accumulation order,
// so Prefill logits are bitwise identical for every thread count — and
// that holds simultaneously across all three execution strategies.

TEST(ThreadDeterminismTest, LogitsBitwiseIdenticalAcrossThreadCountsAndModes) {
  LlamaModel model(ModelConfig::Tiny(), 17);
  const auto tokens = MakeTokens(97, model.config().vocab_size, 91);

  // Reference: serial, no pool at all (the legacy execution).
  TrackingAllocator act_ref;
  PrefillOptions standard;
  standard.mode = PrefillMode::kStandard;
  const auto expected = MustPrefill(model, tokens, nullptr, standard, act_ref);

  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    model.SetThreadPool(&pool);
    for (PrefillMode mode :
         {PrefillMode::kStandard, PrefillMode::kChunked, PrefillMode::kHybrid}) {
      TrackingAllocator act;
      PrefillOptions options;
      options.mode = mode;
      options.chunk_size = 16;
      const auto got = MustPrefill(model, tokens, nullptr, options, act);
      ASSERT_EQ(expected.last_logits.size(), got.last_logits.size());
      EXPECT_EQ(std::memcmp(expected.last_logits.data(), got.last_logits.data(),
                            expected.last_logits.size() * sizeof(float)),
                0)
          << "threads=" << threads << " mode=" << static_cast<int>(mode);
    }
    model.SetThreadPool(nullptr);
  }
}

TEST(ThreadDeterminismTest, RetainedKvBitwiseIdenticalAcrossThreadCounts) {
  // KV written by the threaded K/V projections + RoPE must match the serial
  // bits too — it is what later cache hits recompute from.
  LlamaModel model(ModelConfig::Tiny(), 19);
  const auto tokens = MakeTokens(64, model.config().vocab_size, 93);

  PrefillOptions keep_all;
  keep_all.mode = PrefillMode::kHybrid;
  keep_all.chunk_size = 16;
  keep_all.retention = KvRetention::kAll;

  TrackingAllocator act_ref;
  const auto expected = MustPrefill(model, tokens, nullptr, keep_all, act_ref);

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    model.SetThreadPool(&pool);
    TrackingAllocator act;
    const auto got = MustPrefill(model, tokens, nullptr, keep_all, act);
    ASSERT_EQ(got.kv.layers.size(), expected.kv.layers.size());
    for (size_t l = 0; l < got.kv.layers.size(); ++l) {
      EXPECT_EQ(std::memcmp(got.kv.layers[l].k.data(), expected.kv.layers[l].k.data(),
                            expected.kv.layers[l].k.bytes()),
                0)
          << "threads=" << threads << " layer=" << l;
      EXPECT_EQ(std::memcmp(got.kv.layers[l].v.data(), expected.kv.layers[l].v.data(),
                            expected.kv.layers[l].v.bytes()),
                0)
          << "threads=" << threads << " layer=" << l;
    }
    model.SetThreadPool(nullptr);
  }
}

TEST(ThreadDeterminismTest, CachedPrefixReuseUnderThreads) {
  LlamaModel model(ModelConfig::Tiny(), 23);
  ThreadPool pool(4);
  model.SetThreadPool(&pool);
  const auto tokens = MakeTokens(80, model.config().vocab_size, 95);

  TrackingAllocator act;
  PrefillOptions keep_all;
  keep_all.mode = PrefillMode::kHybrid;
  keep_all.chunk_size = 16;
  keep_all.retention = KvRetention::kAll;
  const auto full = MustPrefill(model, tokens, nullptr, keep_all, act);

  TrackingAllocator act2;
  KvCacheData prefix = SliceKv(full.kv, 48, act2);
  PrefillOptions options;
  options.mode = PrefillMode::kHybrid;
  options.chunk_size = 16;
  const auto cached = MustPrefill(model, tokens, &prefix, options, act2);
  EXPECT_EQ(std::memcmp(full.last_logits.data(), cached.last_logits.data(),
                        full.last_logits.size() * sizeof(float)),
            0);
}

// -------------------------------------------------------------- KV utils

TEST(KvUtilTest, ConcatThenSliceRoundTrips) {
  const auto& model = TinyModel();
  const auto tokens = MakeTokens(32, model.config().vocab_size, 81);
  TrackingAllocator act;
  PrefillOptions keep;
  keep.retention = KvRetention::kAll;
  keep.mode = PrefillMode::kStandard;
  const auto full = MustPrefill(model, tokens, nullptr, keep, act);

  KvCacheData first_half = SliceKv(full.kv, 16, act);
  // Recompute the second half against the first as prefix, keeping its KV.
  PrefillOptions keep2 = keep;
  const auto second = MustPrefill(model, tokens, &first_half, keep2, act);
  ASSERT_EQ(second.kv.n_tokens, 16);
  KvCacheData rejoined = ConcatKv(&first_half, second.kv, 16, act);
  ASSERT_EQ(rejoined.n_tokens, 32);
  for (size_t l = 0; l < rejoined.layers.size(); ++l) {
    EXPECT_EQ(std::memcmp(rejoined.layers[l].k.data(), full.kv.layers[l].k.data(),
                          full.kv.layers[l].k.bytes()),
              0)
        << "layer " << l;
  }
}

}  // namespace
}  // namespace prefillonly
