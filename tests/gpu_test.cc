#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/gpu/activation_model.h"
#include "src/gpu/cost_model.h"
#include "src/gpu/memory_model.h"
#include "src/gpu/specs.h"
#include "src/model/config.h"
#include "src/model/llama.h"
#include "src/tensor/tracking_allocator.h"

namespace prefillonly {
namespace {

// ------------------------------------------------------------------ Specs

TEST(SpecsTest, Llama8BMatchesPaperArithmetic) {
  const LlmSpec spec = LlmSpec::Llama31_8B();
  // §2.1: "the KV cache size of a request with 100,000 tokens is around
  // 12 GB for Llama-3.1-8B".
  const double kv_100k = 100000.0 * static_cast<double>(spec.kv_bytes_per_token());
  EXPECT_NEAR(kv_100k / 1e9, 12.8, 1.0);
  // 4 KiB per token per layer (2 * 8 KV heads * 128 dim * 2 bytes).
  EXPECT_EQ(spec.kv_bytes_per_token_layer(), 4096);
  // ~8B parameters, ~16 GB bf16.
  EXPECT_NEAR(static_cast<double>(spec.total_params()) / 1e9, 8.0, 0.3);
  EXPECT_NEAR(spec.weight_bytes() / 1e9, 16.1, 0.5);
}

TEST(SpecsTest, MlpIntermediateRatiosMatchFig4) {
  // Fig. 4: intermediate 1 holds 28672 floats/token (14x one-layer KV),
  // intermediate 2 holds 14336 (7x).
  const LlmSpec spec = LlmSpec::Llama31_8B();
  const int64_t one_layer_kv_floats = 2 * spec.kv_width();  // 2048
  EXPECT_EQ(2 * spec.intermediate, 28672);
  EXPECT_EQ(2 * spec.intermediate / one_layer_kv_floats, 14);
  EXPECT_EQ(spec.intermediate / one_layer_kv_floats, 7);
}

TEST(SpecsTest, Fp8ModelsHalveWeightBytes) {
  const LlmSpec qwen = LlmSpec::Qwen_32B_Fp8();
  EXPECT_NEAR(static_cast<double>(qwen.total_params()) / 1e9, 32.5, 1.0);
  EXPECT_NEAR(qwen.weight_bytes() / 1e9, 32.8, 1.0);  // 1 byte/param
  const LlmSpec llama70 = LlmSpec::Llama33_70B_Fp8();
  EXPECT_NEAR(static_cast<double>(llama70.total_params()) / 1e9, 70.5, 1.0);
}

TEST(SpecsTest, HardwareSetupsMatchTable3) {
  const auto all = HardwareSetup::All();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].llm.name, "Llama-3.1-8B");
  EXPECT_EQ(all[1].llm.name, "Qwen-32B-FP8");
  EXPECT_EQ(all[2].llm.name, "Llama-3.3-70B-FP8");
  EXPECT_EQ(all[3].link.name, "NVLink");
  EXPECT_LT(all[2].link.bandwidth, all[3].link.bandwidth);
}

// -------------------------------------------- Walker == measured (property)
//
// The analytic activation walker must replay the REAL allocator schedule of
// LlamaModel::Prefill exactly: for CPU shapes, the predicted peak equals
// the measured TrackingAllocator peak to the byte. This pins the analytic
// models (Table 2, Fig. 10) to the actually-executed code.

ActivationShape ShapeOf(const ModelConfig& config) {
  ActivationShape s;
  s.n_layers = config.n_layers;
  s.hidden = config.hidden_size;
  s.q_size = config.q_size();
  s.kv_width = config.kv_size();
  s.intermediate = config.intermediate_size;
  s.act_bytes = sizeof(float);
  s.kv_bytes = sizeof(float);
  s.score_bytes = sizeof(float);
  return s;
}

struct WalkerParam {
  PrefillMode mode;
  int64_t chunk;
  bool prealloc;
  bool in_place;
  bool drop_kv;
  int64_t n_tokens;
  int64_t n_cached;
  int64_t budget;  // hybrid retained-prefix budget; <0 = keep all (std/chunked)
};

class WalkerMatchesMeasuredTest : public ::testing::TestWithParam<WalkerParam> {};

TEST_P(WalkerMatchesMeasuredTest, PeakBytesExactlyEqual) {
  const auto p = GetParam();
  const ModelConfig config = ModelConfig::Tiny();
  LlamaModel model(config, 7);

  Rng rng(p.n_tokens * 31 + p.n_cached);
  std::vector<int32_t> tokens(static_cast<size_t>(p.n_tokens));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(config.vocab_size)));
  }

  // Cached prefix KV lives in its own allocator so it never pollutes the
  // measured activation peak.
  TrackingAllocator prefix_alloc;
  KvCacheData prefix;
  if (p.n_cached > 0) {
    prefix.n_tokens = p.n_cached;
    prefix.layers.resize(static_cast<size_t>(config.n_layers));
    for (auto& layer : prefix.layers) {
      layer.k = Tensor::Zeros(prefix_alloc, {p.n_cached, config.kv_size()}, "p.k");
      layer.v = Tensor::Zeros(prefix_alloc, {p.n_cached, config.kv_size()}, "p.v");
    }
  }

  PrefillOptions options;
  options.mode = p.mode;
  options.chunk_size = p.chunk;
  options.preallocate_outputs = p.prealloc;
  options.in_place = p.in_place;
  options.drop_kv_in_pass = p.drop_kv;
  if (p.mode == PrefillMode::kHybrid && p.budget >= 0) {
    options.retention = KvRetention::kPrefixBudget;
    options.prefix_budget_tokens = p.budget;
  } else if (p.mode != PrefillMode::kHybrid && !p.drop_kv) {
    options.retention = KvRetention::kAll;
  }

  TrackingAllocator measured;
  auto result = model.Prefill(tokens, p.n_cached > 0 ? &prefix : nullptr, options,
                              measured);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  PassOptions walker;
  walker.strategy = p.mode == PrefillMode::kStandard ? PassStrategy::kStandard
                    : p.mode == PrefillMode::kChunked
                        ? PassStrategy::kChunkedPrefill
                        : PassStrategy::kHybrid;
  walker.chunk = p.chunk;
  walker.preallocate_outputs = p.prealloc;
  walker.in_place = p.in_place;
  walker.drop_kv_in_pass = p.drop_kv;
  const int64_t n_new = p.n_tokens - p.n_cached;
  if (p.mode == PrefillMode::kHybrid && p.budget >= 0) {
    walker.retained_new_tokens =
        std::clamp<int64_t>(p.budget - p.n_cached, 0, n_new);
  }
  const PassPeak predicted =
      SimulatePassMemory(ShapeOf(config), n_new, p.n_cached, walker);

  EXPECT_EQ(static_cast<size_t>(predicted.peak_bytes), measured.peak_bytes())
      << "walker and real allocator disagree";
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, WalkerMatchesMeasuredTest,
    ::testing::Values(
        WalkerParam{PrefillMode::kStandard, 0, true, true, false, 96, 0, -1},
        WalkerParam{PrefillMode::kStandard, 0, true, true, false, 96, 32, -1},
        WalkerParam{PrefillMode::kStandard, 0, true, true, true, 96, 0, -1},
        WalkerParam{PrefillMode::kChunked, 16, true, true, false, 96, 0, -1},
        WalkerParam{PrefillMode::kChunked, 32, true, true, false, 100, 0, -1},
        WalkerParam{PrefillMode::kChunked, 16, true, true, false, 96, 32, -1},
        WalkerParam{PrefillMode::kHybrid, 16, true, true, false, 96, 0, 0},
        WalkerParam{PrefillMode::kHybrid, 16, true, true, false, 96, 0, 48},
        WalkerParam{PrefillMode::kHybrid, 16, true, true, false, 96, 32, 64},
        WalkerParam{PrefillMode::kHybrid, 16, true, false, false, 96, 0, 0},
        WalkerParam{PrefillMode::kHybrid, 16, false, false, false, 96, 0, 0},
        WalkerParam{PrefillMode::kHybrid, 128, true, true, false, 96, 0, 0}),
    [](const ::testing::TestParamInfo<WalkerParam>& info) {
      const auto& p = info.param;
      std::string name = p.mode == PrefillMode::kStandard  ? "Std"
                         : p.mode == PrefillMode::kChunked ? "Chunked"
                                                           : "Hybrid";
      name += "C" + std::to_string(p.chunk) + "N" + std::to_string(p.n_tokens) +
              "P" + std::to_string(p.n_cached);
      if (p.drop_kv) name += "Drop";
      if (!p.prealloc) name += "NoPre";
      else if (!p.in_place) name += "NoIp";
      if (p.budget >= 0) name += "B" + std::to_string(p.budget);
      return name;
    });

// ----------------------------------------------------------- Memory model

TEST(MemoryModelTest, MilOrderingMatchesTable2OnAllHardware) {
  for (const auto& hw : HardwareSetup::All()) {
    MemoryModel mem(hw.llm, hw.gpu);
    const int64_t paged = mem.MaxInputLength(EngineKind::kPagedAttention);
    const int64_t chunked = mem.MaxInputLength(EngineKind::kChunkedPrefill);
    const int64_t naive = mem.MaxInputLength(EngineKind::kKvDropNaive);
    const int64_t po = mem.MaxInputLength(EngineKind::kPrefillOnly);
    const int64_t tp = mem.MaxInputLength(EngineKind::kTensorParallel);

    EXPECT_GT(paged, 0) << hw.name;
    EXPECT_GT(chunked, paged) << hw.name;          // §2.5
    EXPECT_LT(chunked, 3 * paged) << hw.name;      // "less than 2x-3x"
    EXPECT_GT(naive, paged) << hw.name;            // §4.1 naive drop helps...
    EXPECT_LT(naive, 3 * paged) << hw.name;        // ...but only marginally
    EXPECT_GE(po, 4 * paged) << hw.name;           // "up to 5x" headline
    EXPECT_GT(po, chunked * 2) << hw.name;
    EXPECT_GT(tp, po / 2) << hw.name;              // TP competitive via 2nd GPU
  }
}

TEST(MemoryModelTest, KvDropNaiveGainIsMarginal) {
  // §4.1: measured 1.6x on L4 + Llama-8B. Allow [1.3, 2.3].
  const auto hw = HardwareSetup::L4_Llama8B();
  MemoryModel mem(hw.llm, hw.gpu);
  const double ratio =
      static_cast<double>(mem.MaxInputLength(EngineKind::kKvDropNaive)) /
      static_cast<double>(mem.MaxInputLength(EngineKind::kPagedAttention));
  EXPECT_GE(ratio, 1.3);
  EXPECT_LE(ratio, 2.3);
}

TEST(MemoryModelTest, MilScalesWithGpuMemory) {
  const LlmSpec llm = LlmSpec::Llama31_8B();
  MemoryModel small(llm, GpuSpec::L4());
  MemoryModel big(llm, GpuSpec::H100_80G());
  EXPECT_GT(big.MaxInputLength(EngineKind::kPagedAttention),
            small.MaxInputLength(EngineKind::kPagedAttention));
}

TEST(MemoryModelTest, MilZeroWhenWeightsDontFit) {
  MemoryModel mem(LlmSpec::Llama33_70B_Fp8(), GpuSpec::L4());  // 70 GB on 24 GB
  EXPECT_EQ(mem.MaxInputLength(EngineKind::kPagedAttention), 0);
  EXPECT_EQ(mem.MaxInputLength(EngineKind::kPrefillOnly), 0);
}

TEST(MemoryModelTest, PeakMonotonicInLength) {
  const auto hw = HardwareSetup::A100_Qwen32B();
  MemoryModel mem(hw.llm, hw.gpu);
  for (EngineKind kind : {EngineKind::kPagedAttention, EngineKind::kChunkedPrefill,
                          EngineKind::kPrefillOnly}) {
    int64_t prev = 0;
    for (int64_t len : {1000, 4000, 16000, 64000}) {
      const int64_t peak = mem.PassPeakBytes(kind, len).peak_bytes;
      EXPECT_GT(peak, prev) << EngineKindName(kind) << " at " << len;
      prev = peak;
    }
  }
}

TEST(MemoryModelTest, CachePoolShrinksWithReserve) {
  const auto hw = HardwareSetup::H100_Llama70B();
  MemoryModel mem(hw.llm, hw.gpu);
  const double small = mem.CachePoolBytesPerGpu(EngineKind::kPrefillOnly, 10000);
  const double large = mem.CachePoolBytesPerGpu(EngineKind::kPrefillOnly, 60000);
  EXPECT_GT(small, large);
  EXPECT_GE(large, 0.0);
}

TEST(MemoryModelTest, ParallelInstancePoolSpansGpus) {
  const auto hw = HardwareSetup::H100_Llama70B();
  MemoryModel mem(hw.llm, hw.gpu);
  // TP splits KV across 2 GPUs: per-instance token capacity uses both.
  const int64_t tp_pool =
      mem.CachePoolTokensPerInstance(EngineKind::kTensorParallel, 60000);
  const int64_t single_pool =
      mem.CachePoolTokensPerInstance(EngineKind::kPrefillOnly, 60000);
  EXPECT_GT(tp_pool, single_pool);
}

TEST(MemoryModelTest, Fig10AblationIsMonotonic) {
  // Fig. 10: chunking < +preallocation < +in-place, all >> vanilla.
  const auto hw = HardwareSetup::A100_Qwen32B();
  auto mil_with = [&](bool prealloc, bool in_place) {
    MemoryModelConfig config;
    config.hybrid_preallocate = prealloc;
    config.hybrid_in_place = in_place;
    MemoryModel mem(hw.llm, hw.gpu, config);
    return mem.MaxInputLength(EngineKind::kPrefillOnly);
  };
  MemoryModel vanilla(hw.llm, hw.gpu);
  const int64_t base = vanilla.MaxInputLength(EngineKind::kPagedAttention);
  const int64_t chunking = mil_with(false, false);
  const int64_t prealloc = mil_with(true, false);
  const int64_t in_place = mil_with(true, true);
  EXPECT_GT(chunking, 3 * base);
  EXPECT_GT(prealloc, chunking);
  EXPECT_GT(in_place, prealloc);
  // Headline: 7.9x vanilla with everything on; allow [6, 12].
  const double ratio = static_cast<double>(in_place) / static_cast<double>(base);
  EXPECT_GE(ratio, 6.0);
  EXPECT_LE(ratio, 12.0);
}

// ------------------------------------------------------------- Cost model

TEST(CostModelTest, PrefillTimeMonotonicInLength) {
  const auto hw = HardwareSetup::L4_Llama8B();
  CostModel cost(hw.llm, hw.gpu);
  double prev = 0;
  for (int64_t n : {512, 2048, 8192, 32768}) {
    const double t = cost.PrefillTime(n, 0, PassStrategy::kHybrid, 2048);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModelTest, CacheHitsReduceTime) {
  const auto hw = HardwareSetup::H100_Llama70B();
  CostModel cost(hw.llm, hw.gpu);
  const double cold = cost.PrefillTime(14000, 0, PassStrategy::kHybrid, 2048);
  const double warm = cost.PrefillTime(300, 13700, PassStrategy::kHybrid, 2048);
  EXPECT_LT(warm, cold / 10);  // hits make requests an order cheaper
}

TEST(CostModelTest, ChunkedPrefillCostsRoughly14Percent) {
  // §2.5: chunking a 20k-token input at 512 lowers throughput by ~14%.
  const auto hw = HardwareSetup::L4_Llama8B();
  CostModel cost(hw.llm, hw.gpu);
  const double standard = cost.PrefillTime(20000, 0, PassStrategy::kStandard, 0);
  const double chunked = cost.PrefillTime(20000, 0, PassStrategy::kChunkedPrefill, 512);
  const double overhead = chunked / standard - 1.0;
  EXPECT_GE(overhead, 0.08);
  EXPECT_LE(overhead, 0.22);
}

TEST(CostModelTest, HybridChunkingIsNearlyFree) {
  // Hybrid chunks only linear layers with large chunks: <2% overhead.
  const auto hw = HardwareSetup::L4_Llama8B();
  CostModel cost(hw.llm, hw.gpu);
  const double standard = cost.PrefillTime(20000, 0, PassStrategy::kStandard, 0);
  const double hybrid = cost.PrefillTime(20000, 0, PassStrategy::kHybrid, 2048);
  EXPECT_LE(hybrid / standard, 1.02);
}

TEST(CostModelTest, TensorParallelAddsCommunication) {
  const auto hw = HardwareSetup::H100_Llama70B();
  CostModel cost(hw.llm, hw.gpu);
  const int64_t n = 50000;
  const double single = cost.PrefillTime(n, 0, PassStrategy::kHybrid, 2048);
  const double tp_pcie = cost.TensorParallelTime(n, 0, 2, LinkSpec::PcieGen5(),
                                                 PassStrategy::kStandard, 0);
  const double tp_nvlink = cost.TensorParallelTime(n, 0, 2, LinkSpec::NvLink(),
                                                   PassStrategy::kStandard, 0);
  // TP reduces latency (2 GPUs), NVLink more than PCIe...
  EXPECT_LT(tp_nvlink, tp_pcie);
  EXPECT_LT(tp_nvlink, single);
  // ...but never reaches the ideal 2x: communication is not free.
  EXPECT_GT(tp_nvlink, single / 2);
  // And per-GPU THROUGHPUT is worse than one unparallelized GPU (Fig. 8):
  // 2 GPUs x tp_time > 1 GPU x single_time per request.
  EXPECT_GT(2 * tp_pcie, single);
}

TEST(CostModelTest, PipelineStageIsAboutHalfThePass) {
  const auto hw = HardwareSetup::H100_Llama70B();
  CostModel cost(hw.llm, hw.gpu);
  const int64_t n = 40000;
  const double full = cost.PrefillTime(n, 0, PassStrategy::kStandard, 0);
  const double stage = cost.PipelineStageTime(n, 0, 2, hw.link,
                                              PassStrategy::kStandard, 0);
  EXPECT_GT(stage, full / 2 * 0.9);
  EXPECT_LT(stage, full);  // half the layers plus handoff
}

TEST(CostModelTest, PrefillVsDecodeMatches15xClaim) {
  // §2.3: 2048-in/256-out is ~1.5x the service demand of 2048-in/1-out
  // (decode amortized over a continuous batch of 64).
  const LlmSpec llm = LlmSpec::Llama31_8B();
  CostModel cost(llm, GpuSpec::H100_80G());
  const double prefill_only = cost.PrefillTime(2048, 0, PassStrategy::kStandard, 0);
  const int batch = 64;
  const double decode_demand = 256.0 * cost.DecodeStepTime(batch) / batch;
  const double ratio = (prefill_only + decode_demand) / prefill_only;
  EXPECT_GE(ratio, 1.25);
  EXPECT_LE(ratio, 1.8);
}

TEST(CostModelTest, DecodeIsMemoryBoundAtSmallBatch) {
  const LlmSpec llm = LlmSpec::Llama31_8B();
  const GpuSpec gpu = GpuSpec::H100_80G();
  CostModel cost(llm, gpu);
  const double step = cost.DecodeStepTime(1);
  EXPECT_GE(step, llm.weight_bytes() / gpu.hbm_bandwidth);
  // Batching barely changes the step until compute catches up.
  EXPECT_LT(cost.DecodeStepTime(32), step * 1.5);
}

TEST(CostModelTest, AttentionFlopsQuadratic) {
  const LlmSpec llm = LlmSpec::Llama31_8B();
  CostModel cost(llm, GpuSpec::H100_80G());
  const double f1 = cost.AttentionFlops(1000, 0);
  const double f2 = cost.AttentionFlops(2000, 0);
  EXPECT_NEAR(f2 / f1, 4.0, 0.1);  // ~quadratic in sequence length
  // Cached tokens still cost key-attention but not query FLOPs.
  EXPECT_LT(cost.AttentionFlops(1000, 1000), f2);
  EXPECT_GT(cost.AttentionFlops(1000, 1000), f1);
}

}  // namespace
}  // namespace prefillonly
