#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/common/hash.h"
#include "src/common/queue.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace prefillonly {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::ResourceExhausted("pool empty");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "pool empty");
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: pool empty");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                          StatusCode::kNotFound, StatusCode::kResourceExhausted,
                          StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
                          StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.take();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    differing += (a.NextU64() != b.NextU64()) ? 1 : 0;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextInRangeCoversBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(nullptr, 0), kFnvOffset);
}

TEST(HashTest, ChainLengthIsFullBlocksOnly) {
  std::vector<int32_t> tokens(100, 1);
  EXPECT_EQ(BlockHashChain(tokens, 32).size(), 3u);  // 96 tokens hashed
  EXPECT_EQ(BlockHashChain(tokens, 100).size(), 1u);
  EXPECT_EQ(BlockHashChain(tokens, 101).size(), 0u);
}

TEST(HashTest, SharedPrefixSharesChain) {
  std::vector<int32_t> a(256, 5);
  std::vector<int32_t> b = a;
  b.resize(512, 9);  // same first 256 tokens, different rest
  const auto chain_a = BlockHashChain(a, 64);
  const auto chain_b = BlockHashChain(b, 64);
  ASSERT_EQ(chain_a.size(), 4u);
  ASSERT_EQ(chain_b.size(), 8u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chain_a[i], chain_b[i]);
  }
  EXPECT_NE(chain_a[3], chain_b[4]);
}

TEST(HashTest, DifferentPrefixDiffersEverywhere) {
  std::vector<int32_t> a(128, 1);
  std::vector<int32_t> b(128, 2);
  const auto chain_a = BlockHashChain(a, 32);
  const auto chain_b = BlockHashChain(b, 32);
  for (size_t i = 0; i < chain_a.size(); ++i) {
    EXPECT_NE(chain_a[i], chain_b[i]);
  }
}

TEST(HashTest, ChainHashDependsOnPosition) {
  // Two identical blocks at different depths must hash differently (the
  // chain encodes the whole prefix, not the block contents alone).
  std::vector<int32_t> tokens(64, 3);
  const auto chain = BlockHashChain(tokens, 32);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_NE(chain[0], chain[1]);
}

// ----------------------------------------------------------------- Queue

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_EQ(q.TryPop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(QueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&q] { q.Push(99); });
  auto item = q.Pop();
  producer.join();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 99);
}

TEST(QueueTest, CloseDrainsThenSignalsEnd) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(QueueTest, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.Empty());
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
}

}  // namespace
}  // namespace prefillonly
