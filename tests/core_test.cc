#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/core/capacity_planner.h"
#include "src/core/engine.h"
#include "src/core/kv_block_store.h"
#include "src/core/request.h"
#include "src/workload/dataset.h"

namespace prefillonly {
namespace {

EngineOptions TinyEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.chunk_size = 32;
  return options;
}

std::vector<int32_t> Tokens(int64_t n, uint64_t seed, int64_t vocab = 256) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

ScoringRequest YesNoRequest(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};  // "Yes", "No"
  return request;
}

// -------------------------------------------------------------- Scoring

TEST(EngineTest, ScoreSyncReturnsValidProbability) {
  Engine engine(TinyEngineOptions());
  auto response = engine.ScoreSync(YesNoRequest(Tokens(70, 1)));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response.value().score, 0.0);
  EXPECT_LT(response.value().score, 1.0);
  ASSERT_EQ(response.value().probabilities.size(), 2u);
  EXPECT_NEAR(response.value().probabilities[0].probability +
                  response.value().probabilities[1].probability,
              1.0, 1e-9);
  EXPECT_EQ(response.value().n_cached, 0);
  EXPECT_EQ(response.value().n_input, 70);
}

TEST(EngineTest, ScoreMatchesDirectModelInference) {
  // The engine (hybrid + caching + scheduling) must produce exactly the
  // probability a bare standard-prefill + constrained softmax produces.
  EngineOptions options = TinyEngineOptions();
  Engine engine(options);
  const auto tokens = Tokens(90, 2);
  auto via_engine = engine.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(via_engine.ok());

  LlamaModel model(options.model, options.weight_seed);
  TrackingAllocator act;
  PrefillOptions prefill;
  prefill.mode = PrefillMode::kStandard;
  auto direct = model.Prefill(tokens, nullptr, prefill, act);
  ASSERT_TRUE(direct.ok());
  std::vector<int32_t> allowed{10, 20};
  auto probs = ConstrainedProbabilities(direct.value().last_logits, allowed);
  ASSERT_TRUE(probs.ok());
  EXPECT_DOUBLE_EQ(via_engine.value().score, probs.value()[0].probability);
}

TEST(EngineTest, NumThreadsDoesNotChangeScores) {
  // The EngineOptions::num_threads knob (ISSUE 1): thread counts change
  // wall time, never bits.
  const auto tokens = Tokens(85, 7);
  std::vector<double> scores;
  for (int threads : {1, 2, 8}) {
    EngineOptions options = TinyEngineOptions();
    options.num_threads = threads;
    Engine engine(options);
    auto response = engine.ScoreSync(YesNoRequest(tokens));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    scores.push_back(response.value().score);
  }
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(scores[0], scores[2]);
}

TEST(EngineTest, SecondRequestHitsPrefixCache) {
  Engine engine(TinyEngineOptions());
  auto profile = Tokens(64, 3);
  auto post_a = profile;
  post_a.push_back(5);
  post_a.push_back(6);
  auto post_b = profile;
  post_b.push_back(7);
  post_b.push_back(8);

  auto first = engine.ScoreSync(YesNoRequest(post_a));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().n_cached, 0);

  auto second = engine.ScoreSync(YesNoRequest(post_b));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().n_cached, 64);  // whole shared profile reused
}

TEST(EngineTest, CacheHitDoesNotChangeScores) {
  // Cold engine vs warm engine must agree bitwise on the score.
  const auto profile = Tokens(64, 4);
  auto query = profile;
  query.push_back(42);

  EngineOptions options = TinyEngineOptions();
  Engine cold(options);
  auto cold_score = cold.ScoreSync(YesNoRequest(query));
  ASSERT_TRUE(cold_score.ok());

  Engine warm(options);
  auto warm_up = profile;
  warm_up.push_back(99);
  ASSERT_TRUE(warm_up != query);
  ASSERT_TRUE(warm.ScoreSync(YesNoRequest(warm_up)).ok());
  auto warm_score = warm.ScoreSync(YesNoRequest(query));
  ASSERT_TRUE(warm_score.ok());
  EXPECT_GT(warm_score.value().n_cached, 0);
  EXPECT_DOUBLE_EQ(warm_score.value().score, cold_score.value().score);
}

// Two TokenProbability vectors are bitwise identical (memcmp over the
// doubles, not EXPECT_DOUBLE_EQ): the cached path must reproduce the cold
// path exactly, bit for bit.
bool SameProbabilityBits(const std::vector<TokenProbability>& a,
                         const std::vector<TokenProbability>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].token != b[i].token ||
        std::memcmp(&a[i].probability, &b[i].probability, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(KvSharingTest, DivergingRequestsShareBlockAlignedPrefixBitwise) {
  // The ISSUE 7 acceptance scenario: A = P|X and B = P|Y share only the
  // block-aligned prefix P and then genuinely diverge (neither is a prefix
  // of the other). The radix tree must split A's cached run at the
  // divergence point and serve B the shared physical blocks — visible as
  // n_cached == |P| — while B's probabilities stay bitwise identical to a
  // solo cold run.
  const auto shared_prefix = Tokens(48, 11);  // 3 whole blocks at size 16
  auto request_a = shared_prefix;
  for (int32_t t : {31, 32, 33, 34, 35, 36, 37, 38}) {
    request_a.push_back(t);
  }
  auto request_b = shared_prefix;
  for (int32_t t : {131, 132, 133, 134, 135, 136, 137, 138}) {
    request_b.push_back(t);
  }

  EngineOptions options = TinyEngineOptions();
  Engine shared(options);
  auto first = shared.ScoreSync(YesNoRequest(request_a));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().n_cached, 0);

  auto second = shared.ScoreSync(YesNoRequest(request_b));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // B reuses exactly the block-aligned shared prefix, not a token more.
  EXPECT_EQ(second.value().n_cached, 48);

  Engine solo(options);
  auto cold = solo.ScoreSync(YesNoRequest(request_b));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().n_cached, 0);
  EXPECT_TRUE(SameProbabilityBits(second.value().probabilities,
                                  cold.value().probabilities));
  EXPECT_EQ(std::memcmp(&second.value().score, &cold.value().score,
                        sizeof(double)), 0);
}

TEST(KvSharingTest, ThreeWaySharingReusesDeepestSplitPoint) {
  // A third request diverging deeper than the first split still matches the
  // longest cached block-aligned prefix it shares with *any* prior request.
  const auto base = Tokens(80, 12);  // 5 whole blocks
  auto request_a = base;
  request_a.push_back(1);
  auto shallow = std::vector<int32_t>(base.begin(), base.begin() + 48);
  shallow.resize(64, 7);  // diverges after block 3
  auto deep = base;
  deep[78] = (base[78] + 1) % 256;  // diverges in block 5: shares 4 blocks with A

  Engine engine(TinyEngineOptions());
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(request_a)).ok());
  auto mid = engine.ScoreSync(YesNoRequest(shallow));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.value().n_cached, 48);  // split at block 3
  auto late = engine.ScoreSync(YesNoRequest(deep));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value().n_cached, 64);  // matches through the split, 4 blocks
}

TEST(EngineTest, SuffixDiscardingCapsCacheUse) {
  EngineOptions options = TinyEngineOptions();
  options.cache_budget_tokens = 32;  // 2 blocks only
  Engine engine(options);
  const auto tokens = Tokens(100, 5);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(tokens)).ok());
  // Re-scoring the same input can reuse at most the retained prefix.
  auto again = engine.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().n_cached, 32);
  const auto stats = engine.stats();
  EXPECT_LE(static_cast<int64_t>(stats.cache_bytes),
            32 * options.model.kv_bytes_per_token() + 1024);
}

TEST(EngineTest, ZeroCacheBudgetStillCorrect) {
  EngineOptions options = TinyEngineOptions();
  options.cache_budget_tokens = 0;
  Engine engine(options);
  const auto tokens = Tokens(50, 6);
  auto first = engine.ScoreSync(YesNoRequest(tokens));
  auto second = engine.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().n_cached, 0);
  EXPECT_DOUBLE_EQ(first.value().score, second.value().score);
}

TEST(EngineTest, LruEvictionAcrossUsers) {
  EngineOptions options = TinyEngineOptions();
  options.cache_budget_tokens = 64;  // room for ~one profile
  Engine engine(options);
  const auto user_a = Tokens(64, 7);
  const auto user_b = Tokens(64, 8);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(user_a, 1)).ok());
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(user_b, 2)).ok());  // evicts A
  auto again_a = engine.ScoreSync(YesNoRequest(user_a, 1));
  ASSERT_TRUE(again_a.ok());
  EXPECT_EQ(again_a.value().n_cached, 0);  // A was evicted
  const auto stats = engine.stats();
  EXPECT_GT(stats.cache.evictions, 0);
}

// --------------------------------------------------------- Offload tier

TEST(EngineTest, OffloadRecoversEvictedPrefix) {
  // With offload enabled, an LRU-evicted profile is demoted to the CPU
  // tier and reloaded on the next hit instead of being recomputed.
  EngineOptions options = TinyEngineOptions();
  options.cache_budget_tokens = 64;        // one profile fits
  options.cpu_offload_budget_tokens = 256; // plenty of host space
  Engine engine(options);
  const auto user_a = Tokens(64, 7);
  const auto user_b = Tokens(64, 8);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(user_a, 1)).ok());
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(user_b, 2)).ok());  // demotes A

  auto again_a = engine.ScoreSync(YesNoRequest(user_a, 1));
  ASSERT_TRUE(again_a.ok());
  EXPECT_EQ(again_a.value().n_cached, 48);          // (64-1)/16 blocks
  EXPECT_GT(again_a.value().n_cached_offload, 0);   // served from CPU tier
  const auto stats = engine.stats();
  EXPECT_GT(stats.offload_demotions, 0);
  EXPECT_GT(stats.offload_hit_tokens, 0);
  EXPECT_GT(stats.offload_promotions, 0);
}

TEST(EngineTest, OffloadHitScoresBitwiseEqualToCold) {
  const auto query = Tokens(80, 31);

  EngineOptions options = TinyEngineOptions();
  Engine cold(options);
  auto cold_score = cold.ScoreSync(YesNoRequest(query));
  ASSERT_TRUE(cold_score.ok());

  EngineOptions offload = TinyEngineOptions();
  offload.cache_budget_tokens = 80;
  offload.cpu_offload_budget_tokens = 512;
  Engine warm(offload);
  ASSERT_TRUE(warm.ScoreSync(YesNoRequest(query)).ok());      // fill GPU tier
  ASSERT_TRUE(warm.ScoreSync(YesNoRequest(Tokens(80, 32))).ok());  // demote
  auto via_offload = warm.ScoreSync(YesNoRequest(query));
  ASSERT_TRUE(via_offload.ok());
  EXPECT_GT(via_offload.value().n_cached_offload, 0);
  EXPECT_DOUBLE_EQ(via_offload.value().score, cold_score.value().score);
}

TEST(EngineTest, OffloadDisabledByDefault) {
  Engine engine(TinyEngineOptions());
  const auto a = Tokens(64, 7);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(a, 1)).ok());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.offload_bytes, 0u);
  EXPECT_EQ(stats.offload_demotions, 0);
}

TEST(EngineTest, OffloadMemoryAccountedSeparately) {
  EngineOptions options = TinyEngineOptions();
  options.cache_budget_tokens = 32;
  options.cpu_offload_budget_tokens = 128;
  Engine engine(options);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(Tokens(48, 41), 1)).ok());
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(Tokens(48, 42), 2)).ok());
  const auto stats = engine.stats();
  EXPECT_GT(stats.offload_bytes, 0u);
  // Host tier bounded by its own budget.
  EXPECT_LE(static_cast<int64_t>(stats.offload_bytes),
            options.cpu_offload_budget_tokens * options.model.kv_bytes_per_token());
}

// ----------------------------------------------------------- Scheduling

TEST(EngineTest, RunPendingSchedulesShortestFirst) {
  EngineOptions options = TinyEngineOptions();
  options.lambda = 0.0;
  Engine engine(options);
  auto long_id = engine.Submit(YesNoRequest(Tokens(120, 9)));
  auto short_id = engine.Submit(YesNoRequest(Tokens(20, 10)));
  ASSERT_TRUE(long_id.ok());
  ASSERT_TRUE(short_id.ok());
  const auto responses = engine.RunPending().value();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].request_id, short_id.value());
  EXPECT_EQ(responses[1].request_id, long_id.value());
}

TEST(EngineTest, FifoPolicyPreservesSubmissionOrder) {
  EngineOptions options = TinyEngineOptions();
  options.policy = SchedPolicy::kFifo;
  Engine engine(options);
  auto long_id = engine.Submit(YesNoRequest(Tokens(120, 11)));
  auto short_id = engine.Submit(YesNoRequest(Tokens(20, 12)));
  const auto responses = engine.RunPending().value();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].request_id, long_id.value());
  EXPECT_EQ(responses[1].request_id, short_id.value());
}

TEST(EngineTest, CalibrationPrioritizesCacheHitRequest) {
  // Fig. 5's mechanism end-to-end on the REAL engine: after the shared-
  // prefix request runs, its sibling jumps ahead of a shorter stranger.
  EngineOptions options = TinyEngineOptions();
  options.lambda = 0.0;
  Engine engine(options);
  const auto profile = Tokens(96, 13);

  auto first = profile;
  first.push_back(1);
  ASSERT_TRUE(engine.ScoreSync(YesNoRequest(first, 1)).ok());  // warm cache

  auto sibling = profile;  // 96 cached + 3 fresh vs stranger's 48 fresh
  sibling.push_back(2);
  sibling.push_back(3);
  sibling.push_back(4);
  auto stranger_id = engine.Submit(YesNoRequest(Tokens(48, 14), 2));
  auto sibling_id = engine.Submit(YesNoRequest(sibling, 1));
  const auto responses = engine.RunPending().value();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].request_id, sibling_id.value());
  EXPECT_GT(responses[0].n_cached, 0);
  EXPECT_EQ(responses[1].request_id, stranger_id.value());
}

// ----------------------------------------------------------- Validation

TEST(EngineTest, RejectsEmptyRequest) {
  Engine engine(TinyEngineOptions());
  EXPECT_EQ(engine.ScoreSync(YesNoRequest({})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, RejectsOverlongRequest) {
  EngineOptions options = TinyEngineOptions();
  options.max_input_length = 64;
  Engine engine(options);
  EXPECT_EQ(engine.ScoreSync(YesNoRequest(Tokens(65, 15))).status().code(),
            StatusCode::kOutOfRange);
}

TEST(EngineTest, RejectsBadAllowedTokens) {
  Engine engine(TinyEngineOptions());
  ScoringRequest request = YesNoRequest(Tokens(10, 16));
  request.allowed_tokens = {9999};
  EXPECT_EQ(engine.ScoreSync(std::move(request)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, ActivationBudgetFailureIsReported) {
  EngineOptions options = TinyEngineOptions();
  options.activation_budget_bytes = 16 * 1024;  // far too small
  Engine engine(options);
  auto response = engine.ScoreSync(YesNoRequest(Tokens(64, 17)));
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().failed, 1);
}

// ---------------------------------------------------------------- Async

TEST(EngineTest, AsyncWorkerDeliversAllResponses) {
  Engine engine(TinyEngineOptions());
  std::atomic<int> delivered{0};
  std::atomic<int> ok{0};
  engine.StartWorker([&](Result<ScoringResponse> response) {
    if (response.ok()) {
      ++ok;
    }
    ++delivered;
  });
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(engine.Submit(YesNoRequest(Tokens(30 + i, 18 + i), i)).ok());
  }
  engine.StopWorker();  // drains the queue before returning
  EXPECT_EQ(delivered.load(), n);
  EXPECT_EQ(ok.load(), n);
  EXPECT_EQ(engine.stats().completed, n);
}

// ------------------------------------------------------------- Profiling

TEST(EngineTest, ProfileJctFitsTimingModel) {
  EngineOptions options = TinyEngineOptions();
  Engine engine(options);
  auto r2 = engine.ProfileJct(/*max_input_len=*/128, /*granularity=*/32);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  // Real timings are noisy, but the linear fit should explain most of it.
  EXPECT_GT(r2.value(), 0.3);
  // Engine still works after the estimator swap.
  EXPECT_TRUE(engine.ScoreSync(YesNoRequest(Tokens(40, 30))).ok());
}

// ----------------------------------------------------------- KvBlockStore

TEST(KvBlockStoreTest, PutAssembleRoundTrip) {
  const ModelConfig config = ModelConfig::Tiny();
  TrackingAllocator alloc;
  KvBlockStore store(config, /*block_size=*/8, alloc);

  // Source KV covering 16 tokens starting at position 0.
  KvCacheData source;
  source.n_tokens = 16;
  source.layers.resize(static_cast<size_t>(config.n_layers));
  float fill = 1.0f;
  for (auto& layer : source.layers) {
    layer.k = Tensor::Uninit(alloc, {16, config.kv_size()}, "k");
    layer.v = Tensor::Uninit(alloc, {16, config.kv_size()}, "v");
    for (float& x : layer.k.span()) {
      x = fill++;
    }
    for (float& x : layer.v.span()) {
      x = fill++;
    }
  }
  store.Put(1, source, /*source_start=*/0, /*block_index=*/0);
  store.Put(2, source, /*source_start=*/0, /*block_index=*/1);
  EXPECT_EQ(store.block_count(), 2u);

  const KvCacheData assembled = store.AssemblePrefix({1, 2}, 2);
  ASSERT_EQ(assembled.n_tokens, 16);
  for (size_t l = 0; l < assembled.layers.size(); ++l) {
    EXPECT_EQ(std::memcmp(assembled.layers[l].k.data(), source.layers[l].k.data(),
                          source.layers[l].k.bytes()),
              0);
  }
}

TEST(KvBlockStoreTest, DropReleasesMemory) {
  const ModelConfig config = ModelConfig::Tiny();
  TrackingAllocator alloc;
  KvBlockStore store(config, 8, alloc);
  KvCacheData source;
  source.n_tokens = 8;
  source.layers.resize(static_cast<size_t>(config.n_layers));
  for (auto& layer : source.layers) {
    layer.k = Tensor::Zeros(alloc, {8, config.kv_size()}, "k");
    layer.v = Tensor::Zeros(alloc, {8, config.kv_size()}, "v");
  }
  store.Put(5, source, 0, 0);
  const size_t with_block = store.bytes();
  EXPECT_GT(with_block, 0u);
  store.Drop(5);
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_FALSE(store.Contains(5));
}

// ------------------------------------------------------ Capacity planner

TEST(CapacityPlannerTest, RecommendsFeasibleEngine) {
  CreditVerificationConfig config;
  config.n_users = 6;
  const Dataset dataset = MakeCreditVerificationDataset(config);
  const auto plan = PlanCapacity(HardwareSetup::H100_Llama70B(), dataset, 0.02);
  ASSERT_EQ(plan.assessments.size(), 5u);
  // Paged cannot fit 40k-60k requests on H100+70B.
  for (const auto& a : plan.assessments) {
    if (a.kind == EngineKind::kPagedAttention) {
      EXPECT_FALSE(a.fits_workload);
    }
    if (a.kind == EngineKind::kPrefillOnly) {
      EXPECT_TRUE(a.fits_workload);
      EXPECT_GT(a.saturated_throughput, 0.0);
    }
  }
  // The paper's result: PrefillOnly should be the pick for this workload.
  EXPECT_EQ(plan.recommended, EngineKind::kPrefillOnly);
}

}  // namespace
}  // namespace prefillonly
