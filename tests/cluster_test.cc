// Multi-replica serving suite (ISSUE 8): prefix-affinity routing,
// health-gated failover, per-replica circuit breakers, and draining.
//
// Three kinds of tests live here:
//  * AffinityRouterTest.* — the consistent-hash ring in isolation
//    (determinism, first-block keying, minimal disruption);
//  * ReplicaSetTest.* — fault-free cluster behavior: bitwise-identical
//    scoring through the router, affinity concentration, drain/rejoin;
//  * Chaos*.* — seeded fault schedules (src/common/fault.h) driving the
//    breaker state machine, queued-work failover, the monitor thread, and
//    shed hysteresis. These carry the `chaos` ctest label (CMakeLists.txt)
//    and run as their own CI job alongside tests/chaos_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "prefillonly/client.h"
#include "src/cluster/affinity_router.h"
#include "src/cluster/replica_set.h"
#include "src/common/fault.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/core/request.h"

namespace prefillonly {
namespace {

EngineOptions TinyClusterEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.mode = PrefillMode::kChunked;
  options.chunk_size = 32;
  options.num_threads = 2;
  return options;
}

// Fault-free cluster defaults: monitor disabled so no thread races the
// assertions; tests that exercise the monitor opt back in explicitly.
ReplicaSetOptions TinyClusterOptions(int n_replicas) {
  ReplicaSetOptions options;
  options.n_replicas = n_replicas;
  options.engine = TinyClusterEngineOptions();
  options.health_poll_ms = 0;
  return options;
}

std::vector<int32_t> Tokens(int64_t n, uint64_t seed, int64_t vocab = 256) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

ScoringRequest YesNoRequest(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

::testing::AssertionResult SameBits(const std::vector<TokenProbability>& a,
                                    const std::vector<TokenProbability>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].token != b[i].token ||
        std::memcmp(&a[i].probability, &b[i].probability, sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "probability " << i << ": " << a[i].probability << " vs "
             << b[i].probability;
    }
  }
  return ::testing::AssertionSuccess();
}

int64_t Terminal(const EngineStats& stats) {
  return stats.completed + stats.failed + stats.cancelled +
         stats.cancelled_in_flight + stats.deadline_expired +
         stats.deadline_expired_in_flight;
}

// A prompt whose affinity primary is `target` under `ref`: vary the seed
// until the first block hashes there (deterministic, converges in a few
// tries for any reasonable replica count).
std::vector<int32_t> TokensWithPrimary(const AffinityRouter& ref, int target,
                                       int block_size, int64_t n = 48) {
  for (uint64_t seed = 1;; ++seed) {
    std::vector<int32_t> tokens = Tokens(n, seed);
    if (ref.Primary(AffinityKey(tokens, block_size)) == target) {
      return tokens;
    }
  }
}

// ------------------------------------------------- consistent-hash router

TEST(AffinityRouterTest, KeyHashesExactlyTheFirstCacheBlock) {
  const std::vector<int32_t> tokens = Tokens(48, 7);
  const int block = 16;
  // The key is the same chain hash the PrefixCache uses for the first block.
  EXPECT_EQ(AffinityKey(tokens, block),
            HashTokenBlock(kFnvOffset, std::span<const int32_t>(tokens).first(16)));
  // Suffix tokens beyond the first block never move the key...
  std::vector<int32_t> suffix_changed = tokens;
  suffix_changed[20] += 1;
  EXPECT_EQ(AffinityKey(tokens, block), AffinityKey(suffix_changed, block));
  // ...while any first-block token does.
  std::vector<int32_t> prefix_changed = tokens;
  prefix_changed[3] += 1;
  EXPECT_NE(AffinityKey(tokens, block), AffinityKey(prefix_changed, block));
  // Prompts shorter than a block hash whatever they have.
  const std::vector<int32_t> stub(tokens.begin(), tokens.begin() + 5);
  EXPECT_EQ(AffinityKey(stub, block),
            HashTokenBlock(kFnvOffset, std::span<const int32_t>(stub)));
}

TEST(AffinityRouterTest, RingIsDeterministicAndOrderIsAPermutation) {
  const AffinityRouter a(4, 64);
  const AffinityRouter b(4, 64);  // same parameters => same ring, any process
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    const uint64_t key = rng.NextU64();
    EXPECT_EQ(a.Primary(key), b.Primary(key));
    const std::vector<int> order = a.PreferenceOrder(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], a.Primary(key));
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
  }
}

TEST(AffinityRouterTest, AddingAReplicaOnlyMovesKeysToTheNewReplica) {
  // Consistent hashing's whole point: growing 3 -> 4 replicas may steal a
  // key for the newcomer, but never reshuffles keys among the old three.
  const AffinityRouter three(3, 64);
  const AffinityRouter four(4, 64);
  Rng rng(13);
  int moved = 0;
  for (int i = 0; i < 512; ++i) {
    const uint64_t key = rng.NextU64();
    const int before = three.Primary(key);
    const int after = four.Primary(key);
    if (after != before) {
      EXPECT_EQ(after, 3) << "key moved between pre-existing replicas";
      ++moved;
    }
  }
  // The newcomer owns roughly a quarter of the keyspace.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 512 / 2);
}

// ---------------------------------------------------- fault-free ReplicaSet

TEST(ReplicaSetTest, ScoreMatchesSingleEngineBitwise) {
  const ScoringRequest request = YesNoRequest(Tokens(48, 3));

  Engine reference(TinyClusterEngineOptions());
  const auto expected = reference.ScoreSync(request);
  ASSERT_TRUE(expected.ok());

  ReplicaSet set(TinyClusterOptions(3));
  ASSERT_EQ(set.n_replicas(), 3);
  const auto result = set.Score(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SameBits(result.value().probabilities, expected.value().probabilities));
}

TEST(ReplicaSetTest, SamePrefixConcentratesOnItsPrimaryReplica) {
  ReplicaSetOptions options = TinyClusterOptions(3);
  ReplicaSet set(options);
  const AffinityRouter ref(3, options.vnodes_per_replica);

  // Four prefix families, three requests each: same first block, different
  // suffixes. Blocking submission keeps every queue empty, so no spill.
  std::vector<int64_t> expected_per_replica(3, 0);
  for (uint64_t family = 1; family <= 4; ++family) {
    std::vector<int32_t> base = Tokens(48, family);
    const int primary =
        ref.Primary(AffinityKey(base, options.engine.block_size));
    for (int32_t variant = 0; variant < 3; ++variant) {
      std::vector<int32_t> tokens = base;
      tokens[30] = 100 + variant;  // past the first block: key unchanged
      ASSERT_TRUE(set.Score(YesNoRequest(std::move(tokens))).ok());
      ++expected_per_replica[static_cast<size_t>(primary)];
    }
  }

  const ClusterStats stats = set.Stats();
  EXPECT_EQ(stats.cluster.routed_affinity, 12);
  EXPECT_EQ(stats.cluster.routed_spill, 0);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(stats.replicas[static_cast<size_t>(r)].engine.submitted,
              expected_per_replica[static_cast<size_t>(r)])
        << "replica " << r;
  }
}

TEST(ReplicaSetTest, DrainStopsAdmissionAndRejoinRestores) {
  ReplicaSetOptions options = TinyClusterOptions(2);
  ReplicaSet set(options);
  const AffinityRouter ref(2, options.vnodes_per_replica);
  const std::vector<int32_t> tokens =
      TokensWithPrimary(ref, /*target=*/0, options.engine.block_size);

  ASSERT_TRUE(set.Drain(0).ok());
  ASSERT_TRUE(set.Drain(0).ok());  // idempotent
  EXPECT_EQ(set.Health(), Engine::HealthStatus::kDegraded);
  {
    const auto replicas = set.Replicas();
    EXPECT_TRUE(replicas[0].draining);
    EXPECT_TRUE(replicas[0].drained);  // nothing was outstanding
    EXPECT_FALSE(replicas[0].admitting);
    EXPECT_TRUE(replicas[1].admitting);
  }

  // Affinity says replica 0; draining reroutes to its ring successor.
  ASSERT_TRUE(set.Score(YesNoRequest(tokens)).ok());
  EXPECT_EQ(set.engine(0).stats().submitted, 0);
  EXPECT_EQ(set.engine(1).stats().submitted, 1);
  EXPECT_EQ(set.Replicas()[1].counters.routed_spill, 1);

  ASSERT_TRUE(set.Rejoin(0).ok());
  EXPECT_EQ(set.Health(), Engine::HealthStatus::kOk);
  ASSERT_TRUE(set.Score(YesNoRequest(tokens)).ok());
  EXPECT_EQ(set.engine(0).stats().submitted, 1);
  EXPECT_EQ(set.Replicas()[0].counters.routed_affinity, 1);

  // Drain EVERY replica: the cluster stops admitting entirely — the
  // /v1/health 503 shape — and submissions fail structurally, kUnavailable.
  ASSERT_TRUE(set.Drain(0).ok());
  ASSERT_TRUE(set.Drain(1).ok());
  EXPECT_EQ(set.Health(), Engine::HealthStatus::kOverloaded);
  auto rejected = set.Submit(YesNoRequest(tokens));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(set.Stats().cluster.unavailable_rejections, 1);

  // Out-of-range admin indexes are rejected, not UB.
  EXPECT_FALSE(set.Drain(7).ok());
  EXPECT_FALSE(set.Rejoin(-1).ok());
}

TEST(ReplicaSetTest, ClusterIdsResolveAcrossTheWholeLifecycle) {
  ReplicaSet set(TinyClusterOptions(2));
  auto submission = set.Submit(YesNoRequest(Tokens(48, 5)));
  ASSERT_TRUE(submission.ok());
  const int64_t id = submission.value().id;
  ASSERT_TRUE(submission.value().future.get().ok());
  // Finished => the record is gone: Phase says unknown, Cancel says so too.
  EXPECT_EQ(set.Phase(id), Engine::RequestPhase::kUnknown);
  EXPECT_EQ(set.Cancel(id).code(), StatusCode::kNotFound);
  EXPECT_EQ(set.Cancel(999999).code(), StatusCode::kNotFound);
}

// ------------------------------------------------ breaker + failover chaos

TEST(ChaosClusterTest, HandoffFaultTripsBreakerThenHalfOpenProbeRecloses) {
  ReplicaSetOptions options = TinyClusterOptions(3);
  options.breaker_trip_failures = 1;  // one strike opens
  options.breaker_open_ms = 50;
  const AffinityRouter ref(3, options.vnodes_per_replica);
  const std::vector<int32_t> tokens = Tokens(48, 9);
  const int primary =
      ref.Primary(AffinityKey(tokens, options.engine.block_size));

  Engine reference(TinyClusterEngineOptions());
  const auto expected = reference.ScoreSync(YesNoRequest(tokens));
  ASSERT_TRUE(expected.ok());

  ReplicaSet set(options);
  FaultScope scope("replica.submit=@1");

  // Hit 1 fires: the hand-off to the primary fails, its breaker trips, and
  // the SAME submission retries the next ring candidate — the caller only
  // ever sees a bitwise-golden success.
  const auto first = set.Score(YesNoRequest(tokens));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(SameBits(first.value().probabilities, expected.value().probabilities));
  {
    const ClusterStats stats = set.Stats();
    EXPECT_EQ(stats.cluster.breaker_trips, 1);
    EXPECT_EQ(stats.cluster.routed_spill, 1);
    EXPECT_EQ(stats.cluster.routed_affinity, 0);
    const auto& sick = stats.replicas[static_cast<size_t>(primary)];
    EXPECT_EQ(sick.breaker, BreakerState::kOpen);
    EXPECT_FALSE(sick.admitting);
    EXPECT_EQ(sick.counters.admit_failures, 1);
    EXPECT_EQ(sick.engine.submitted, 0);
  }

  // After breaker_open_ms the next same-key submission is admitted to the
  // primary as the half-open probe; its success closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  const auto second = set.Score(YesNoRequest(tokens));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(SameBits(second.value().probabilities, expected.value().probabilities));
  {
    const ClusterStats stats = set.Stats();
    EXPECT_EQ(stats.cluster.half_open_probes, 1);
    const auto& healed = stats.replicas[static_cast<size_t>(primary)];
    EXPECT_EQ(healed.breaker, BreakerState::kClosed);
    EXPECT_TRUE(healed.admitting);
    EXPECT_EQ(healed.engine.submitted, 1);
    EXPECT_EQ(healed.counters.routed_affinity, 1);
  }
}

TEST(ChaosClusterTest, TrippedReplicaFailsOverQueuedWorkExactlyOnce) {
  ReplicaSetOptions options = TinyClusterOptions(3);
  options.engine.max_concurrent_requests = 1;  // one lane => real queueing
  options.spill_margin = 1000;                 // stickiness absolute
  const AffinityRouter ref(3, options.vnodes_per_replica);
  const std::vector<int32_t> base =
      TokensWithPrimary(ref, /*target=*/1, options.engine.block_size);

  // Golden results per request, from a solo engine before any faults.
  constexpr int kRequests = 6;
  std::vector<std::vector<int32_t>> prompts;
  std::vector<std::vector<TokenProbability>> golden;
  {
    Engine reference(TinyClusterEngineOptions());
    for (int32_t i = 0; i < kRequests; ++i) {
      std::vector<int32_t> tokens = base;
      tokens[40] = 100 + i;  // same first block, distinct request
      const auto expected = reference.ScoreSync(YesNoRequest(tokens));
      ASSERT_TRUE(expected.ok());
      golden.push_back(expected.value().probabilities);
      prompts.push_back(std::move(tokens));
    }
  }

  ReplicaSet set(options);
  // Wedge the FIRST execution for 100 ms: request 1 dispatches on the
  // primary and stalls, requests 2..6 stack up queued behind its one lane.
  FaultScope scope("exec.stall=x1;stall_ms=100");
  std::vector<Engine::ResponseFuture> futures;
  for (auto& prompt : prompts) {
    auto submission = set.Submit(YesNoRequest(prompt));
    ASSERT_TRUE(submission.ok());
    futures.push_back(std::move(submission.value().future));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(set.Trip(1, "test kill switch").ok());

  // Every future resolves with the exact solo-engine bits: the queued five
  // were withdrawn and re-ran elsewhere, the dispatched one finished where
  // it was — nothing hung, nothing ran twice, nobody saw the failure.
  for (int i = 0; i < kRequests; ++i) {
    const auto result = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
    EXPECT_TRUE(SameBits(result.value().probabilities,
                         golden[static_cast<size_t>(i)]))
        << "request " << i;
  }

  const ClusterStats stats = set.Stats();
  // 5 queued requests moved (6 if the trip won the race to request 1 too).
  EXPECT_GE(stats.cluster.failovers, 5);
  EXPECT_LE(stats.cluster.failovers, 6);
  EXPECT_EQ(stats.totals.completed, kRequests);          // no double execution
  EXPECT_EQ(stats.totals.cancelled, stats.cluster.failovers);  // withdrawals
  EXPECT_EQ(stats.replicas[1].breaker, BreakerState::kOpen);
  EXPECT_EQ(stats.replicas[1].counters.failed_over_out, stats.cluster.failovers);
  int64_t failed_over_in = 0;
  for (const ReplicaSnapshot& replica : stats.replicas) {
    // Balance holds per replica: everything admitted reached a terminal
    // bucket on the replica that admitted it.
    EXPECT_EQ(replica.engine.submitted, Terminal(replica.engine))
        << "replica " << replica.index;
    failed_over_in += replica.counters.failed_over_in;
  }
  EXPECT_EQ(failed_over_in, stats.cluster.failovers);
  // ...and summed across the cluster.
  EXPECT_EQ(stats.totals.submitted, Terminal(stats.totals));
}

TEST(ChaosClusterTest, MonitorHealthFaultsTripOnlyTheSickReplica) {
  ReplicaSetOptions options = TinyClusterOptions(3);
  options.health_poll_ms = 5;
  options.health_trip_failures = 2;
  options.breaker_open_ms = 40;
  const AffinityRouter ref(3, options.vnodes_per_replica);

  // The monitor fires `replica.health` once per replica per tick in replica
  // order, so hit (tick-1)*3 + replica + 1 probes `replica` at `tick`:
  // @2,5 fails replica 1 on ticks 1 and 2 — a streak of 2, tripping it —
  // and never touches replicas 0 and 2.
  FaultScope scope("replica.health=@2,5");
  ReplicaSet set(options);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (set.Stats().cluster.breaker_trips == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    const ClusterStats stats = set.Stats();
    ASSERT_EQ(stats.cluster.breaker_trips, 1) << "monitor never tripped";
    EXPECT_NE(stats.replicas[1].breaker, BreakerState::kClosed);
    EXPECT_EQ(stats.replicas[0].breaker, BreakerState::kClosed);
    EXPECT_EQ(stats.replicas[2].breaker, BreakerState::kClosed);
  }

  // The same monitor walks the breaker open -> half-open once the window
  // lapses; a request keyed to the sick replica is then its probe, and
  // success recloses it. No operator action anywhere.
  while (set.Replicas()[1].breaker == BreakerState::kOpen &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(set.Replicas()[1].breaker, BreakerState::kHalfOpen);
  const std::vector<int32_t> tokens =
      TokensWithPrimary(ref, /*target=*/1, options.engine.block_size);
  ASSERT_TRUE(set.Score(YesNoRequest(tokens)).ok());
  const ClusterStats stats = set.Stats();
  EXPECT_EQ(stats.replicas[1].breaker, BreakerState::kClosed);
  EXPECT_EQ(stats.cluster.half_open_probes, 1);
  EXPECT_EQ(stats.cluster.breaker_trips, 1);  // no re-trip after healing
}

// ------------------------------------------- degradation chaos (satellite)

TEST(ChaosDegradeClusterTest, ShedHysteresisNeverFlapsAndClusterBalances) {
  ReplicaSetOptions options = TinyClusterOptions(2);
  options.engine.num_threads = 1;
  options.engine.max_concurrent_requests = 1;
  options.engine.shed_high_watermark = 3;  // low defaults to high/2 = 1
  options.spill_margin = 1000000;          // no load spill
  options.breaker_trip_failures = 1000000;  // shed strikes must not trip
  const AffinityRouter ref(2, options.vnodes_per_replica);
  const std::vector<int32_t> prefix_a =
      TokensWithPrimary(ref, /*target=*/0, options.engine.block_size);
  const std::vector<int32_t> prefix_b =
      TokensWithPrimary(ref, /*target=*/1, options.engine.block_size);

  ReplicaSet set(options);
  // Wedge each replica's first execution for 80 ms, then firehose both
  // prefix families: queues blow past the high watermark on both replicas
  // while the lanes are stuck, so both engines engage shedding.
  FaultScope scope("exec.stall=x2;stall_ms=80");
  std::vector<Engine::ResponseFuture> accepted;
  int64_t rejected = 0;
  for (int32_t i = 0; i < 15; ++i) {
    for (const auto* base : {&prefix_a, &prefix_b}) {
      std::vector<int32_t> tokens = *base;
      tokens[44] = i;
      auto submission = set.Submit(YesNoRequest(std::move(tokens)));
      if (submission.ok()) {
        accepted.push_back(std::move(submission.value().future));
      } else {
        // Saturation propagates honestly as the 429 shape, not 503: every
        // replica was TRIED and refused with resource_exhausted.
        EXPECT_EQ(submission.status().code(), StatusCode::kResourceExhausted);
        ++rejected;
      }
    }
  }
  ASSERT_GT(rejected, 0) << "load never saturated the cluster";
  EXPECT_EQ(set.engine(0).Health(), Engine::HealthStatus::kOverloaded);
  EXPECT_EQ(set.engine(1).Health(), Engine::HealthStatus::kOverloaded);
  EXPECT_EQ(set.Health(), Engine::HealthStatus::kOverloaded);

  // Hysteresis: sample each engine while the backlog drains. Once a
  // replica leaves kOverloaded it must never re-enter it (no submissions
  // are arriving, so a re-entry could only be watermark flapping).
  std::vector<bool> was_ok(2, false);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all_ok = true;
    for (int r = 0; r < 2; ++r) {
      const bool overloaded =
          set.engine(r).Health() == Engine::HealthStatus::kOverloaded;
      ASSERT_FALSE(overloaded && was_ok[static_cast<size_t>(r)])
          << "replica " << r << " flapped back to overloaded";
      if (!overloaded) {
        was_ok[static_cast<size_t>(r)] = true;
      }
      all_ok = all_ok && !overloaded;
    }
    if (all_ok) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(was_ok[0] && was_ok[1]) << "backlog never drained";

  // Every accepted request completes; the books balance per replica and
  // summed across the cluster, with shed requests never entering
  // `submitted` (they were refused, not admitted).
  for (auto& future : accepted) {
    const auto result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  const ClusterStats stats = set.Stats();
  EXPECT_EQ(set.Health(), Engine::HealthStatus::kOk);
  EXPECT_GT(stats.totals.shed, 0);
  EXPECT_EQ(stats.cluster.breaker_trips, 0);
  for (const ReplicaSnapshot& replica : stats.replicas) {
    EXPECT_EQ(replica.breaker, BreakerState::kClosed);
    EXPECT_EQ(replica.engine.submitted, Terminal(replica.engine))
        << "replica " << replica.index;
  }
  EXPECT_EQ(stats.totals.submitted, Terminal(stats.totals));
  EXPECT_EQ(stats.totals.completed, static_cast<int64_t>(accepted.size()));
}

// --------------------------------------------- facade retry (satellite)

TEST(ChaosClientTest, RetryPolicyAbsorbsClusterUnavailable) {
  ClientOptions options;
  options.model = "tiny";
  options.block_size = 16;
  options.n_replicas = 2;
  options.retry.max_retries = 2;
  options.retry.initial_backoff_ms = 1;
  options.retry.retry_after_floor_ms = 40;
  options.retry.jitter_seed = 7;
  Client client(options);
  const std::vector<int32_t> tokens = Tokens(48, 21);

  // Hits 1 and 2 are the first submission's hand-offs to BOTH replicas:
  // the cluster answers "unavailable" (the 503 analogue). The facade's
  // retry honors the Retry-After floor and the second attempt sails through.
  FaultScope scope("replica.submit=@1,2");
  const auto start = std::chrono::steady_clock::now();
  const ScoreResult result = client.Score(tokens, {10, 20});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(result.ok) << result.error_code << ": " << result.error_message;
  EXPECT_EQ(client.Stats().client_retries, 1);
  EXPECT_GE(elapsed.count(), 40);
}

TEST(ChaosClientTest, WithoutRetriesClusterUnavailableSurfacesStructured) {
  ClientOptions options;
  options.model = "tiny";
  options.block_size = 16;
  options.n_replicas = 2;  // max_retries defaults to 0: fail fast
  Client client(options);

  FaultScope scope("replica.submit=@1,2");
  const ScoreResult result = client.Score(Tokens(48, 22), {10, 20});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_code, "unavailable");
  EXPECT_NE(result.error_message.find("replica"), std::string::npos);
  EXPECT_EQ(client.Stats().client_retries, 0);
}

}  // namespace
}  // namespace prefillonly
