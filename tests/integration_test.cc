// Cross-module integration tests: the real engine, the analytic models and
// the simulator exercised against each other.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/capacity_planner.h"
#include "src/core/engine.h"
#include "src/engine/cluster.h"
#include "src/gpu/activation_model.h"
#include "src/gpu/memory_model.h"
#include "src/workload/dataset.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {
namespace {

std::vector<int32_t> Tokens(int64_t n, uint64_t seed, int64_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

ScoringRequest Request(std::vector<int32_t> tokens, int64_t user = 0) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

// ------------------------------------------------ Walker predicts real OOM
//
// The activation walker says how many bytes a pass needs; the real engine
// under exactly that budget must succeed, and under one byte less (well,
// one tensor less) must fail. This welds Table 2's MIL logic to the real
// execution path.

TEST(ModelIntegrationTest, WalkerPredictsRealEngineFeasibility) {
  const ModelConfig config = ModelConfig::Tiny();
  const int64_t n_tokens = 128;

  ActivationShape shape;
  shape.n_layers = config.n_layers;
  shape.hidden = config.hidden_size;
  shape.q_size = config.q_size();
  shape.kv_width = config.kv_size();
  shape.intermediate = config.intermediate_size;
  shape.act_bytes = sizeof(float);
  shape.kv_bytes = sizeof(float);
  shape.score_bytes = sizeof(float);

  PassOptions pass;
  pass.strategy = PassStrategy::kHybrid;
  pass.chunk = 32;
  const int64_t predicted =
      SimulatePassMemory(shape, n_tokens, 0, pass).peak_bytes;

  EngineOptions exact;
  exact.model = config;
  exact.chunk_size = 32;
  exact.cache_budget_tokens = 0;
  exact.activation_budget_bytes = static_cast<size_t>(predicted);
  Engine fits(exact);
  EXPECT_TRUE(fits.ScoreSync(Request(Tokens(n_tokens, 1, config.vocab_size))).ok());

  EngineOptions tight = exact;
  tight.activation_budget_bytes = static_cast<size_t>(predicted - 64);
  Engine fails(tight);
  auto result = fails.ScoreSync(Request(Tokens(n_tokens, 1, config.vocab_size)));
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  // Thread count must not perturb the walker contract: attention's extra
  // per-thread score rows are untracked host scratch, so the same exact
  // budget still fits at 8 threads (regardless of how many cores the test
  // machine has).
  EngineOptions threaded = exact;
  threaded.num_threads = 8;
  Engine fits_threaded(threaded);
  EXPECT_TRUE(
      fits_threaded.ScoreSync(Request(Tokens(n_tokens, 1, config.vocab_size))).ok());
}

// ----------------------------------------- Engine modes agree on decisions
//
// The same engine configured as the chunked-prefill or standard baseline
// must produce the exact same probabilities as the hybrid engine: the
// execution strategy is a performance choice, never a quality choice.

class EngineModeTest : public ::testing::TestWithParam<PrefillMode> {};

TEST_P(EngineModeTest, ScoresMatchHybridBitwise) {
  const auto tokens = Tokens(100, 5, 256);

  EngineOptions hybrid_options;
  hybrid_options.model = ModelConfig::Tiny();
  hybrid_options.block_size = 16;
  Engine hybrid(hybrid_options);
  auto expected = hybrid.ScoreSync(Request(tokens));
  ASSERT_TRUE(expected.ok());

  EngineOptions options = hybrid_options;
  options.mode = GetParam();
  Engine engine(options);
  auto got = engine.ScoreSync(Request(tokens));
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(got.value().score, expected.value().score);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineModeTest,
                         ::testing::Values(PrefillMode::kStandard,
                                           PrefillMode::kChunked,
                                           PrefillMode::kHybrid),
                         [](const ::testing::TestParamInfo<PrefillMode>& info) {
                           switch (info.param) {
                             case PrefillMode::kStandard:
                               return "Standard";
                             case PrefillMode::kChunked:
                               return "Chunked";
                             case PrefillMode::kHybrid:
                               return "Hybrid";
                           }
                           return "?";
                         });

// -------------------------------------------------- Fig. 5 on real compute
//
// The A/B/C/D walkthrough with actual prefills: a tiny cache holds one
// request's prefix; calibrated SRJF finds both possible hits.

TEST(RealFig5Test, CalibratedSrjfGetsBothHits) {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 208;  // holds one 200-ish-token prefix
  options.lambda = 0.0;
  Engine engine(options);
  const int64_t vocab = options.model.vocab_size;

  // Shared prefixes: {A, D} and {B, C}; lengths A<C<B<D.
  const auto prefix_ad = Tokens(144, 100, vocab);
  const auto prefix_bc = Tokens(176, 200, vocab);
  auto make = [&](const std::vector<int32_t>& prefix, int64_t len, int64_t user) {
    auto tokens = prefix;
    tokens.resize(static_cast<size_t>(len));
    for (size_t i = prefix.size(); i < tokens.size(); ++i) {
      tokens[i] = static_cast<int32_t>((i * 13 + user) % vocab);
    }
    return Request(std::move(tokens), user);
  };

  const auto id_a = engine.Submit(make(prefix_ad, 150, 1)).value();
  const auto id_b = engine.Submit(make(prefix_bc, 190, 2)).value();
  const auto id_c = engine.Submit(make(prefix_bc, 180, 2)).value();
  const auto id_d = engine.Submit(make(prefix_ad, 200, 1)).value();
  const auto responses = engine.RunPending().value();
  ASSERT_EQ(responses.size(), 4u);

  // Expected order: A (shortest), D (hits A's prefix), C, B (hits C's).
  EXPECT_EQ(responses[0].request_id, id_a);
  EXPECT_EQ(responses[1].request_id, id_d);
  EXPECT_GT(responses[1].n_cached, 0);
  EXPECT_EQ(responses[2].request_id, id_c);
  EXPECT_EQ(responses[3].request_id, id_b);
  EXPECT_GT(responses[3].n_cached, 0);
  int hits = 0;
  for (const auto& r : responses) {
    hits += r.n_cached > 0 ? 1 : 0;
  }
  EXPECT_EQ(hits, 2);
}

// ---------------------------------------------- Tokenizer -> engine -> score

TEST(TextPipelineTest, SharedTextPrefixProducesCacheHits) {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 8;
  Engine engine(options);
  HashTokenizer tokenizer(static_cast<int32_t>(options.model.vocab_size));

  const std::string profile =
      "user profile : reads systems papers , bakes bread , rides gravel "
      "bikes , follows distributed databases and storage engines closely";
  ScoringRequest first;
  first.tokens = tokenizer.Encode(profile + " article : cats answer :");
  first.allowed_tokens = {tokenizer.TokenFor("yes"), tokenizer.TokenFor("no")};
  auto r1 = engine.ScoreSync(std::move(first));
  ASSERT_TRUE(r1.ok());

  ScoringRequest second;
  second.tokens = tokenizer.Encode(profile + " article : compilers answer :");
  second.allowed_tokens = {tokenizer.TokenFor("yes"), tokenizer.TokenFor("no")};
  auto r2 = engine.ScoreSync(std::move(second));
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2.value().n_cached, 0);
  EXPECT_GT(r2.value().score, 0.0);
  EXPECT_LT(r2.value().score, 1.0);
}

// ------------------------------------------------- Planner <-> sim agreement

TEST(PlannerIntegrationTest, RecommendationHasHighestThroughputAmongFeasible) {
  CreditVerificationConfig config;
  config.n_users = 5;
  const Dataset dataset = MakeCreditVerificationDataset(config);
  const auto plan = PlanCapacity(HardwareSetup::A100_Qwen32B(), dataset, 0.01);
  double best = 0.0;
  for (const auto& a : plan.assessments) {
    if (a.fits_workload) {
      best = std::max(best, a.saturated_throughput);
    }
    if (a.kind == plan.recommended) {
      EXPECT_TRUE(a.fits_workload);
    }
  }
  for (const auto& a : plan.assessments) {
    if (a.kind == plan.recommended) {
      EXPECT_DOUBLE_EQ(a.saturated_throughput, best);
    }
  }
}

// ------------------------------------------ Determinism across whole stacks

TEST(DeterminismIntegrationTest, RealEngineRepeatable) {
  auto run = [] {
    EngineOptions options;
    options.model = ModelConfig::Tiny();
    Engine engine(options);
    std::vector<double> scores;
    for (int i = 0; i < 5; ++i) {
      auto r = engine.ScoreSync(Request(Tokens(40 + i * 7, 50 + i, 256), i));
      scores.push_back(r.ok() ? r.value().score : -1.0);
    }
    return scores;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace prefillonly
