// Batched-vs-solo bitwise parity suite (ISSUE 4).
//
// The determinism contract, third extension: WITHIN a kernel backend, a
// request's logits (and retained KV) are bitwise identical whether it
// prefilled solo, concurrently, or stacked into a batch of any composition.
// This file proves it at the model layer (LlamaModel::PrefillBatch against
// solo Prefill, randomized compositions, per backend x thread count x
// prefill mode) and at the engine layer (max_batch_size > 1 against the
// serial single-thread reference), plus the admission/occupancy accounting
// and the checked-misuse errors of the batch API.
//
// The heavier randomized sweep lives in BatchingSweepSlowTest.* — labeled
// `slow` in ctest (CMakeLists.txt), so `ctest -LE slow` gives a fast
// tier-1 iteration loop while CI still runs it per backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/engine.h"
#include "src/core/request.h"
#include "src/model/llama.h"
#include "src/sched/batch_cost.h"

namespace prefillonly {
namespace {

// ------------------------------------------------------------ shared bits

::testing::AssertionResult SameFloatBits(const std::vector<float>& a,
                                         const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a[i] << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameKvBits(const KvCacheData& a, const KvCacheData& b) {
  if (a.n_tokens != b.n_tokens || a.layers.size() != b.layers.size()) {
    return ::testing::AssertionFailure()
           << "kv shape: " << a.n_tokens << "x" << a.layers.size() << " vs "
           << b.n_tokens << "x" << b.layers.size();
  }
  for (size_t l = 0; l < a.layers.size(); ++l) {
    if (a.layers[l].k.bytes() != b.layers[l].k.bytes() ||
        std::memcmp(a.layers[l].k.data(), b.layers[l].k.data(),
                    a.layers[l].k.bytes()) != 0 ||
        std::memcmp(a.layers[l].v.data(), b.layers[l].v.data(),
                    a.layers[l].v.bytes()) != 0) {
      return ::testing::AssertionFailure() << "kv layer " << l << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<int32_t> RandomTokens(Rng& rng, int64_t n, int64_t vocab = 256) {
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (auto& t : out) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return out;
}

std::vector<KernelBackend> BackendsUnderTest() {
  std::vector<KernelBackend> backends{KernelBackend::kScalar};
  if (Avx2Available()) {
    backends.push_back(KernelBackend::kAvx2);
  }
  return backends;
}

PrefillOptions ModeOptions(PrefillMode mode) {
  PrefillOptions options;
  options.mode = mode;
  options.chunk_size = 16;  // several chunk boundaries inside small batches
  return options;
}

constexpr PrefillMode kAllModes[] = {PrefillMode::kStandard, PrefillMode::kChunked,
                                     PrefillMode::kHybrid};

// One randomly drawn request: tokens, an optional cached prefix (built the
// way the engine builds one: the KV of tokens [0, n_cached) produced by a
// budgeted solo prefill), and a retention budget of its own.
struct DrawnRequest {
  std::vector<int32_t> tokens;
  KvCacheData prefix;  // empty = no cached prefix
  int64_t prefix_budget_tokens = 0;
};

DrawnRequest Draw(Rng& rng, const LlamaModel& model, int64_t max_len,
                  TrackingAllocator& arena, const PrefillOptions& mode_options) {
  DrawnRequest drawn;
  const int64_t len = 1 + static_cast<int64_t>(rng.NextBounded(
                              static_cast<uint64_t>(max_len)));
  drawn.tokens = RandomTokens(rng, len);
  drawn.prefix_budget_tokens =
      static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(len + 8)));
  // Half the requests carry a cached prefix of random length < len.
  if (len > 1 && rng.NextBounded(2) == 0) {
    const int64_t n_cached =
        1 + static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(len - 1)));
    PrefillOptions warm = mode_options;
    warm.retention = KvRetention::kPrefixBudget;
    warm.prefix_budget_tokens = n_cached;
    const std::span<const int32_t> head(drawn.tokens);
    auto pass = model.Prefill(head.subspan(0, static_cast<size_t>(n_cached + 1)),
                              nullptr, warm, arena);
    EXPECT_TRUE(pass.ok()) << pass.status().ToString();
    drawn.prefix = std::move(pass.value().kv);
    EXPECT_EQ(drawn.prefix.n_tokens, n_cached);
  }
  return drawn;
}

PrefillSequence SequenceOf(const DrawnRequest& drawn) {
  PrefillSequence seq;
  seq.tokens = drawn.tokens;
  seq.cached_prefix = drawn.prefix.empty() ? nullptr : &drawn.prefix;
  seq.retention = KvRetention::kPrefixBudget;
  seq.prefix_budget_tokens = drawn.prefix_budget_tokens;
  return seq;
}

// Runs `rounds` random compositions on one (backend, threads, mode) cell and
// asserts solo == batched, bitwise, for logits and retained KV.
void RunCompositions(KernelBackend backend, int threads, PrefillMode mode,
                     uint64_t seed, int rounds, int max_batch, int64_t max_len) {
  LlamaModel model(ModelConfig::Tiny(), /*seed=*/42, backend);
  ThreadPool pool(threads);
  model.SetThreadPool(&pool);
  TrackingAllocator arena;
  Rng rng(seed);
  PrefillOptions options = ModeOptions(mode);

  for (int round = 0; round < rounds; ++round) {
    const int batch =
        1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_batch)));
    std::vector<DrawnRequest> drawn;
    drawn.reserve(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      drawn.push_back(Draw(rng, model, max_len, arena, options));
    }

    // Solo reference for every member.
    std::vector<PrefillResult> solo;
    for (const DrawnRequest& d : drawn) {
      PrefillOptions solo_options = options;
      solo_options.retention = KvRetention::kPrefixBudget;
      solo_options.prefix_budget_tokens = d.prefix_budget_tokens;
      auto pass = model.Prefill(d.tokens, d.prefix.empty() ? nullptr : &d.prefix,
                                solo_options, arena);
      ASSERT_TRUE(pass.ok()) << pass.status().ToString();
      solo.push_back(pass.take());
    }

    std::vector<PrefillSequence> sequences;
    for (const DrawnRequest& d : drawn) {
      sequences.push_back(SequenceOf(d));
    }
    auto batched = model.PrefillBatch(sequences, options, arena);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ASSERT_EQ(batched.value().size(), drawn.size());

    for (size_t i = 0; i < drawn.size(); ++i) {
      const PrefillResult& b = batched.value()[i];
      SCOPED_TRACE("backend=" + std::string(KernelBackendName(backend)) +
                   " threads=" + std::to_string(threads) +
                   " mode=" + std::to_string(static_cast<int>(mode)) +
                   " round=" + std::to_string(round) + " member=" +
                   std::to_string(i) + "/" + std::to_string(drawn.size()));
      EXPECT_EQ(b.n_new, solo[i].n_new);
      EXPECT_EQ(b.kv_start, solo[i].kv_start);
      EXPECT_TRUE(SameFloatBits(b.last_logits, solo[i].last_logits));
      EXPECT_TRUE(SameKvBits(b.kv, solo[i].kv));
    }
  }
}

// ------------------------------------------------- model-layer parity

TEST(BatchingParityTest, SingleSequenceBatchMatchesSoloExactly) {
  for (KernelBackend backend : BackendsUnderTest()) {
    for (PrefillMode mode : kAllModes) {
      RunCompositions(backend, /*threads=*/1, mode, /*seed=*/11, /*rounds=*/2,
                      /*max_batch=*/1, /*max_len=*/40);
    }
  }
}

TEST(BatchingParityTest, RandomCompositionsMatchSoloBitwise) {
  // The tier-1 slice of the sweep: every backend and mode, thread counts
  // {1, 2, 8}, batch sizes 1..4, lengths 1..max (so the m == 1 GEMV path,
  // chunk-boundary-straddling sequences and cached prefixes all occur).
  for (KernelBackend backend : BackendsUnderTest()) {
    for (int threads : {1, 2, 8}) {
      for (PrefillMode mode : kAllModes) {
        RunCompositions(backend, threads, mode,
                        /*seed=*/1000 + static_cast<uint64_t>(threads),
                        /*rounds=*/2, /*max_batch=*/4, /*max_len=*/48);
      }
    }
  }
}

TEST(BatchingParityTest, HybridAblationLevelsStayExact) {
  // preallocate/in_place off is the §4.3 ablation path of the hybrid pass;
  // the batched implementation mirrors it and must stay bit-exact too.
  for (KernelBackend backend : BackendsUnderTest()) {
    LlamaModel model(ModelConfig::Tiny(), 42, backend);
    ThreadPool pool(2);
    model.SetThreadPool(&pool);
    TrackingAllocator arena;
    Rng rng(77);
    for (const bool prealloc : {true, false}) {
      PrefillOptions options = ModeOptions(PrefillMode::kHybrid);
      options.preallocate_outputs = prealloc;
      options.in_place = prealloc;  // in_place requires preallocation
      std::vector<DrawnRequest> drawn;
      for (int i = 0; i < 3; ++i) {
        drawn.push_back(Draw(rng, model, 40, arena, options));
      }
      std::vector<PrefillSequence> sequences;
      std::vector<PrefillResult> solo;
      for (const DrawnRequest& d : drawn) {
        PrefillOptions solo_options = options;
        solo_options.retention = KvRetention::kPrefixBudget;
        solo_options.prefix_budget_tokens = d.prefix_budget_tokens;
        auto pass = model.Prefill(d.tokens, d.prefix.empty() ? nullptr : &d.prefix,
                                  solo_options, arena);
        ASSERT_TRUE(pass.ok()) << pass.status().ToString();
        solo.push_back(pass.take());
        sequences.push_back(SequenceOf(d));
      }
      auto batched = model.PrefillBatch(sequences, options, arena);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      for (size_t i = 0; i < drawn.size(); ++i) {
        EXPECT_TRUE(SameFloatBits(batched.value()[i].last_logits,
                                  solo[i].last_logits))
            << "prealloc=" << prealloc << " member " << i;
        EXPECT_TRUE(SameKvBits(batched.value()[i].kv, solo[i].kv));
      }
    }
  }
}

TEST(BatchingParityTest, BatchApiChecksMisuse) {
  LlamaModel model(ModelConfig::Tiny(), 42, KernelBackend::kScalar);
  TrackingAllocator arena;
  PrefillOptions options;

  auto empty = model.PrefillBatch({}, options, arena);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const std::vector<int32_t> tokens{1, 2, 3};
  std::vector<PrefillSequence> one(1);
  one[0].tokens = tokens;
  PrefillOptions drop = options;
  drop.mode = PrefillMode::kStandard;
  drop.drop_kv_in_pass = true;
  auto dropped = model.PrefillBatch(one, drop, arena);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kInvalidArgument);

  const std::vector<int32_t> bad_tokens{1, 999999};
  std::vector<PrefillSequence> bad(1);
  bad[0].tokens = bad_tokens;
  auto invalid = model.PrefillBatch(bad, options, arena);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- engine-layer parity

EngineOptions BatchEngineOptions() {
  EngineOptions options;
  options.model = ModelConfig::Tiny();
  options.block_size = 16;
  options.cache_budget_tokens = 512;
  options.chunk_size = 32;
  options.num_threads = 4;
  return options;
}

ScoringRequest YesNoRequest(std::vector<int32_t> tokens, int64_t user) {
  ScoringRequest request;
  request.user_id = user;
  request.tokens = std::move(tokens);
  request.allowed_tokens = {10, 20};
  return request;
}

TEST(BatchingEngineTest, RunPendingBatchesMatchSerialReferenceBitwise) {
  // 8 same-length-bucket requests (lengths 33..47 all land in bucket 5), so
  // a max_batch_size = 4 drain forms two full batches.
  std::vector<ScoringRequest> requests;
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    requests.push_back(YesNoRequest(RandomTokens(rng, 33 + 2 * i), i));
  }

  // Serial single-thread solo reference.
  std::vector<std::vector<TokenProbability>> expected;
  {
    EngineOptions options = BatchEngineOptions();
    options.num_threads = 1;
    Engine engine(options);
    for (const auto& request : requests) {
      auto response = engine.ScoreSync(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      expected.push_back(response.value().probabilities);
    }
  }

  for (int max_batch : {1, 2, 4}) {
    EngineOptions options = BatchEngineOptions();
    options.max_batch_size = max_batch;
    Engine engine(options);
    for (const auto& request : requests) {
      ASSERT_TRUE(engine.Submit(request).ok());
    }
    auto responses = engine.RunPending();
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses.value().size(), requests.size());
    for (const ScoringResponse& response : responses.value()) {
      const auto user = static_cast<size_t>(response.user_id);
      ASSERT_LT(user, expected.size());
      ASSERT_EQ(response.probabilities.size(), expected[user].size());
      for (size_t p = 0; p < expected[user].size(); ++p) {
        EXPECT_EQ(response.probabilities[p].token, expected[user][p].token);
        EXPECT_EQ(std::memcmp(&response.probabilities[p].probability,
                              &expected[user][p].probability, sizeof(double)),
                  0)
            << "user " << user << " prob " << p << " at max_batch " << max_batch;
      }
      EXPECT_LE(response.batch_size, max_batch);
      EXPECT_GE(response.batch_size, 1);
    }

    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.completed, 8);
    EXPECT_EQ(stats.batched_requests, 8);
    EXPECT_LE(stats.peak_batch_size, max_batch);
    if (max_batch == 1) {
      EXPECT_EQ(stats.batches_dispatched, 8);  // exact legacy: all solo
    } else if (max_batch == 4) {
      // Homogeneous backlog, deep queue: the drain forms full batches.
      EXPECT_EQ(stats.batches_dispatched, 2);
      EXPECT_EQ(stats.peak_batch_size, 4);
    }
  }
}

TEST(BatchingEngineTest, PrefixCacheHitsInsideBatchesKeepBits) {
  // Warm a shared 32-token prefix, then drain sibling requests both solo and
  // batched: block-aligned cache hits must not change any probability bit,
  // and the batch path must publish KV the same way the solo path does.
  Rng rng(9);
  const std::vector<int32_t> profile = RandomTokens(rng, 32);
  auto sibling = [&](int32_t tail, int64_t user) {
    std::vector<int32_t> tokens = profile;
    tokens.push_back(tail);
    tokens.push_back(tail + 1);
    return YesNoRequest(std::move(tokens), user);
  };

  std::vector<std::vector<TokenProbability>> expected;
  {
    EngineOptions options = BatchEngineOptions();
    options.num_threads = 1;
    Engine engine(options);
    for (int i = 0; i < 4; ++i) {
      auto response = engine.ScoreSync(sibling(static_cast<int32_t>(i), i));
      ASSERT_TRUE(response.ok());
      expected.push_back(response.value().probabilities);
    }
  }

  EngineOptions options = BatchEngineOptions();
  options.max_batch_size = 4;
  Engine engine(options);
  // Warm pass, then a batched drain of the four siblings.
  ASSERT_TRUE(engine.ScoreSync(sibling(0, 0)).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.Submit(sibling(static_cast<int32_t>(i), i)).ok());
  }
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses.value().size(), 4u);
  for (const ScoringResponse& response : responses.value()) {
    const auto user = static_cast<size_t>(response.user_id);
    for (size_t p = 0; p < expected[user].size(); ++p) {
      EXPECT_EQ(std::memcmp(&response.probabilities[p].probability,
                            &expected[user][p].probability, sizeof(double)),
                0)
          << "user " << user;
    }
    // The warmed 32-token prefix is two 16-token blocks; every sibling
    // should reuse it.
    EXPECT_EQ(response.n_cached, 32);
  }
}

TEST(BatchingEngineTest, PoolContentionFallsBackToSoloNotFailure) {
  // A block pool of 4 blocks and two 80-token batchmates that each want all
  // of it: the second member's acquisition fails while the first holds its
  // pins. Co-batching must never fail a request that succeeds alone — the
  // contended member retries solo on the same lane after the batch
  // releases, and both complete with reference bits.
  Rng rng(31);
  std::vector<ScoringRequest> requests{YesNoRequest(RandomTokens(rng, 80), 0),
                                       YesNoRequest(RandomTokens(rng, 80), 1)};
  std::vector<std::vector<TokenProbability>> expected;
  {
    EngineOptions options = BatchEngineOptions();
    options.num_threads = 1;
    options.cache_budget_tokens = 64;  // 4 blocks of 16
    Engine engine(options);
    for (const auto& request : requests) {
      auto response = engine.ScoreSync(request);
      ASSERT_TRUE(response.ok());
      expected.push_back(response.value().probabilities);
    }
  }

  EngineOptions options = BatchEngineOptions();
  options.cache_budget_tokens = 64;
  options.max_batch_size = 2;
  Engine engine(options);
  for (const auto& request : requests) {
    ASSERT_TRUE(engine.Submit(request).ok());
  }
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses.value().size(), 2u);
  for (const ScoringResponse& response : responses.value()) {
    const auto user = static_cast<size_t>(response.user_id);
    for (size_t p = 0; p < expected[user].size(); ++p) {
      EXPECT_EQ(std::memcmp(&response.probabilities[p].probability,
                            &expected[user][p].probability, sizeof(double)),
                0)
          << "user " << user;
    }
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 0);
  // One dispatch decision carried both requests even though they executed
  // solo-after-contention.
  EXPECT_EQ(stats.batches_dispatched, 1);
  EXPECT_EQ(stats.batched_requests, 2);
}

// ------------------------------------- length-aware packing (ISSUE 9)

// Mixed-length compositions through the packed (first-fit) engine, compared
// bitwise against a single-thread solo reference. Lengths span several
// power-of-two LengthBuckets on purpose: under the legacy bucket rule these
// requests could never co-batch, so `batch_size == n` proves cross-bucket
// welding actually happened.
void RunMixedLengthPacked(KernelBackend backend, int threads, PrefillMode mode,
                          uint64_t seed, int rounds) {
  EngineOptions ref_options = BatchEngineOptions();
  ref_options.kernel_backend = backend;
  ref_options.mode = mode;
  ref_options.num_threads = 1;
  Engine reference(ref_options);

  EngineOptions packed_options = BatchEngineOptions();
  packed_options.kernel_backend = backend;
  packed_options.mode = mode;
  packed_options.num_threads = threads;
  packed_options.max_batch_size = 6;
  Engine packed(packed_options);
  ASSERT_EQ(packed.options().batch_packing, BatchPacking::kFirstFit);

  Rng rng(seed);
  int64_t user = 0;
  for (int round = 0; round < rounds; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBounded(5));  // 2..6
    std::vector<ScoringRequest> requests;
    for (int i = 0; i < n; ++i) {
      const int len = 1 + static_cast<int>(rng.NextBounded(96));
      requests.push_back(YesNoRequest(RandomTokens(rng, len), user++));
    }

    std::map<int64_t, std::vector<TokenProbability>> expected;
    for (const auto& request : requests) {
      auto solo = reference.ScoreSync(request);
      ASSERT_TRUE(solo.ok()) << solo.status().ToString();
      expected[request.user_id] = solo.value().probabilities;
    }

    const EngineStats before = packed.stats();
    for (const auto& request : requests) {
      ASSERT_TRUE(packed.Submit(request).ok());
    }
    auto responses = packed.RunPending();
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses.value().size(), requests.size());
    for (const ScoringResponse& response : responses.value()) {
      const auto& want = expected.at(response.user_id);
      ASSERT_EQ(response.probabilities.size(), want.size());
      for (size_t p = 0; p < want.size(); ++p) {
        EXPECT_EQ(response.probabilities[p].token, want[p].token);
        EXPECT_EQ(std::memcmp(&response.probabilities[p].probability,
                              &want[p].probability, sizeof(double)),
                  0)
            << "user " << response.user_id << " prob " << p << " round "
            << round << " threads " << threads << " mode "
            << static_cast<int>(mode);
      }
      // Every length landed in ONE batch: mixed lengths co-batched.
      EXPECT_EQ(response.batch_size, n) << "round " << round;
    }
    const EngineStats after = packed.stats();
    EXPECT_EQ(after.batches_dispatched - before.batches_dispatched, 1);
    EXPECT_EQ(after.batched_requests - before.batched_requests, n);
    EXPECT_EQ(after.packing_skips - before.packing_skips, 0);
  }
}

TEST(BatchingEngineTest, MixedLengthPackedBatchesMatchSoloBitwise) {
  // Tier-1 slice of the matrix; the full sweep lives in the slow suite.
  for (KernelBackend backend : BackendsUnderTest()) {
    for (PrefillMode mode : kAllModes) {
      RunMixedLengthPacked(backend, /*threads=*/2, mode,
                           /*seed=*/9100 + static_cast<uint64_t>(mode),
                           /*rounds=*/2);
    }
  }
}

TEST(BatchingEngineTest, BudgetSkipStillDispatchesTheSmallerRider) {
  // Regression for the first-overflow `break` bug: an oversized rider must
  // be skipped — not truncate the tail — so a smaller rider behind it still
  // co-batches with the seed. The budget is sized from the engine's own
  // admission cost model: seed(8) + rider(16) fits, seed(8) + rider(24)
  // does not.
  const EngineOptions base = BatchEngineOptions();
  const BatchBudget projector =
      MakeBatchBudget(base.model, base.mode, /*activation_budget_bytes=*/0,
                      base.block_size);
  Rng rng(7);
  std::vector<ScoringRequest> requests{YesNoRequest(RandomTokens(rng, 8), 0),
                                       YesNoRequest(RandomTokens(rng, 16), 1),
                                       YesNoRequest(RandomTokens(rng, 24), 2)};

  std::map<int64_t, std::vector<TokenProbability>> expected;
  {
    EngineOptions ref = base;
    ref.num_threads = 1;
    Engine reference(ref);
    for (const auto& request : requests) {
      auto solo = reference.ScoreSync(request);
      ASSERT_TRUE(solo.ok()) << solo.status().ToString();
      expected[request.user_id] = solo.value().probabilities;
    }
  }

  EngineOptions options = base;
  options.max_batch_size = 3;
  options.activation_budget_bytes =
      projector.SequenceBytes(8, 0) + projector.SequenceBytes(16, 0);
  Engine engine(options);
  for (const auto& request : requests) {
    ASSERT_TRUE(engine.Submit(request).ok());
  }
  auto responses = engine.RunPending();
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses.value().size(), 3u);
  for (const ScoringResponse& response : responses.value()) {
    const auto& want = expected.at(response.user_id);
    ASSERT_EQ(response.probabilities.size(), want.size());
    for (size_t p = 0; p < want.size(); ++p) {
      EXPECT_EQ(std::memcmp(&response.probabilities[p].probability,
                            &want[p].probability, sizeof(double)),
                0)
          << "user " << response.user_id;
    }
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.failed, 0);
  // Seed(8) + rider(16) in batch one, the skipped 24-token request seeds
  // batch two. Before the fix the 16-token rider was dropped too and three
  // batches dispatched.
  EXPECT_EQ(stats.batches_dispatched, 2);
  EXPECT_EQ(stats.batched_requests, 3);
  EXPECT_EQ(stats.peak_batch_size, 2);
  EXPECT_EQ(stats.packing_skips, 1);
}

TEST(BatchingEngineTest, PackedAdmissionProjectionNeverOptimistic) {
  // The scheduler admits batches against projected bytes; the lane arena
  // measures actual bytes. Admission is only sound if projected >= actual
  // for every composition, so sweep random cold compositions per prefill
  // mode and compare against the engine's tracked peak.
  Rng rng(2024);
  for (PrefillMode mode : kAllModes) {
    const BatchBudget projector = MakeBatchBudget(
        ModelConfig::Tiny(), mode, /*activation_budget_bytes=*/0,
        /*block_tokens=*/16);
    for (int round = 0; round < 6; ++round) {
      EngineOptions options = BatchEngineOptions();
      options.mode = mode;
      options.cache_budget_tokens = 4096;
      options.max_batch_size = 8;
      options.num_threads = 2;
      Engine engine(options);

      const int n = 1 + static_cast<int>(rng.NextBounded(6));
      size_t projected = 0;
      for (int i = 0; i < n; ++i) {
        const int len = 1 + static_cast<int>(rng.NextBounded(96));
        ASSERT_TRUE(engine.Submit(YesNoRequest(RandomTokens(rng, len), i)).ok());
        projected += projector.SequenceBytes(len, /*n_cached_now=*/0);
      }
      auto responses = engine.RunPending();
      ASSERT_TRUE(responses.ok()) << responses.status().ToString();
      ASSERT_EQ(responses.value().size(), static_cast<size_t>(n));

      const EngineStats stats = engine.stats();
      EXPECT_EQ(stats.batches_dispatched, 1);
      EXPECT_LE(stats.peak_activation_bytes, projected)
          << "mode " << static_cast<int>(mode) << " round " << round << " n "
          << n << ": projection must never be optimistic";
    }
  }
}

TEST(BatchingEngineTest, PackedProjectionCoversWarmedPrefixes) {
  // Same soundness bound with prefix hits in play: cached tokens are charged
  // at the (cheaper) retained-KV rate, and the projection's block-aligned
  // rounding of n_cached must stay conservative against what the engine
  // actually assembles.
  for (PrefillMode mode : kAllModes) {
    const BatchBudget projector = MakeBatchBudget(
        ModelConfig::Tiny(), mode, /*activation_budget_bytes=*/0,
        /*block_tokens=*/16);
    EngineOptions options = BatchEngineOptions();
    options.mode = mode;
    options.cache_budget_tokens = 4096;
    options.max_batch_size = 8;
    Engine engine(options);

    Rng rng(77 + static_cast<uint64_t>(mode));
    const std::vector<int32_t> prefix = RandomTokens(rng, 48);
    std::vector<int32_t> warm = prefix;
    for (int32_t tail : RandomTokens(rng, 16)) warm.push_back(tail);
    ASSERT_TRUE(engine.ScoreSync(YesNoRequest(warm, 100)).ok());
    const size_t projected_warm = projector.SequenceBytes(64, 0);

    size_t projected_batch = 0;
    std::vector<int> lengths;
    for (int i = 0; i < 3; ++i) {
      std::vector<int32_t> tokens = prefix;
      const int tail = 1 + static_cast<int>(rng.NextBounded(32));
      for (int32_t t : RandomTokens(rng, tail)) tokens.push_back(t);
      lengths.push_back(static_cast<int>(tokens.size()));
      ASSERT_TRUE(engine.Submit(YesNoRequest(std::move(tokens), i)).ok());
    }
    auto responses = engine.RunPending();
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses.value().size(), 3u);
    for (size_t i = 0; i < responses.value().size(); ++i) {
      const ScoringResponse& response = responses.value()[i];
      EXPECT_EQ(response.n_cached, 48) << "mode " << static_cast<int>(mode);
      const auto user = static_cast<size_t>(response.user_id);
      projected_batch +=
          projector.SequenceBytes(lengths[user], response.n_cached);
    }

    const EngineStats stats = engine.stats();
    EXPECT_LE(stats.peak_activation_bytes,
              std::max(projected_warm, projected_batch))
        << "mode " << static_cast<int>(mode);
  }
}

// ---------------------------------------------- randomized slow sweep
//
// The full composition sweep: more rounds, larger batches, all cells. ~a few
// seconds of Tiny-model prefills; labeled `slow` in ctest so fast local
// iterations can `ctest -LE slow`.

TEST(BatchingSweepSlowTest, RandomizedCompositionSweep) {
  for (KernelBackend backend : BackendsUnderTest()) {
    for (int threads : {1, 2, 8}) {
      for (PrefillMode mode : kAllModes) {
        RunCompositions(backend, threads, mode,
                        /*seed=*/5000 + static_cast<uint64_t>(threads) * 31 +
                            static_cast<uint64_t>(mode),
                        /*rounds=*/5, /*max_batch=*/6, /*max_len=*/72);
      }
    }
  }
}

TEST(BatchingSweepSlowTest, MixedLengthPackedSweep) {
  // Full ISSUE 9 matrix: engine-level first-fit packing of mixed-length
  // compositions, bitwise vs solo, across backends x threads x modes.
  for (KernelBackend backend : BackendsUnderTest()) {
    for (int threads : {1, 2, 8}) {
      for (PrefillMode mode : kAllModes) {
        RunMixedLengthPacked(backend, threads, mode,
                             /*seed=*/9500 +
                                 static_cast<uint64_t>(threads) * 17 +
                                 static_cast<uint64_t>(mode),
                             /*rounds=*/3);
      }
    }
  }
}

}  // namespace
}  // namespace prefillonly
