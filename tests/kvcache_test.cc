#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/kvcache/block_allocator.h"
#include "src/kvcache/offload_directory.h"
#include "src/kvcache/prefix_cache.h"

namespace prefillonly {
namespace {

// Builds a chain of n distinct hashes rooted at `seed` (stands in for a
// token sequence's block hash chain).
std::vector<uint64_t> Chain(uint64_t seed, int64_t n) {
  std::vector<uint64_t> chain;
  uint64_t h = kFnvOffset ^ seed;
  for (int64_t i = 0; i < n; ++i) {
    h = HashCombine(h, seed * 1315423911ULL + static_cast<uint64_t>(i) + 1);
    chain.push_back(h);
  }
  return chain;
}

// -------------------------------------------------------- BlockAllocator

TEST(BlockAllocatorTest, AllocatesUntilExhausted) {
  BlockAllocator alloc(3);
  EXPECT_EQ(alloc.free_blocks(), 3);
  std::set<BlockId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = alloc.Allocate();
    ASSERT_TRUE(id.ok());
    ids.insert(id.value());
  }
  EXPECT_EQ(ids.size(), 3u);  // distinct ids
  EXPECT_EQ(alloc.free_blocks(), 0);
  EXPECT_EQ(alloc.Allocate().status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockAllocatorTest, RefCountingSharesBlocks) {
  BlockAllocator alloc(1);
  const BlockId id = alloc.Allocate().value();
  alloc.IncRef(id);
  EXPECT_EQ(alloc.RefCount(id), 2);
  EXPECT_FALSE(alloc.DecRef(id));  // still referenced
  EXPECT_EQ(alloc.free_blocks(), 0);
  EXPECT_TRUE(alloc.DecRef(id));  // last reference frees
  EXPECT_EQ(alloc.free_blocks(), 1);
}

TEST(BlockAllocatorTest, FreedBlockIsReusable) {
  BlockAllocator alloc(1);
  const BlockId a = alloc.Allocate().value();
  alloc.DecRef(a);
  const BlockId b = alloc.Allocate().value();
  EXPECT_EQ(a, b);
}

TEST(BlockAllocatorTest, UsedBlocksAccounting) {
  BlockAllocator alloc(4);
  auto a = alloc.Allocate().value();
  auto b = alloc.Allocate().value();
  (void)b;
  EXPECT_EQ(alloc.used_blocks(), 2);
  alloc.DecRef(a);
  EXPECT_EQ(alloc.used_blocks(), 1);
}

// ----------------------------------------------------------- PrefixCache

TEST(PrefixCacheTest, MissThenHitAfterRelease) {
  PrefixCache cache(/*block_size=*/16, /*capacity=*/10);
  const auto chain = Chain(1, 4);
  EXPECT_EQ(cache.MatchTokens(chain), 0);

  auto acq = cache.Acquire(chain, 4);
  ASSERT_TRUE(acq.ok());
  EXPECT_EQ(acq.value().matched_blocks, 0);
  cache.Release(acq.value(), 4);

  EXPECT_EQ(cache.MatchTokens(chain), 4 * 16);
  EXPECT_EQ(cache.cached_blocks(), 4);
}

TEST(PrefixCacheTest, PartialPrefixMatch) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(2, 6);
  auto acq = cache.Acquire(chain, 6);
  ASSERT_TRUE(acq.ok());
  cache.Release(acq.value(), 3);  // cache only 3 blocks (suffix discarded)

  EXPECT_EQ(cache.MatchTokens(chain), 3 * 16);
  // A different sequence sharing the first 3 blocks also hits.
  auto shared = chain;
  shared.resize(3);
  EXPECT_EQ(cache.MatchTokens(shared), 3 * 16);
}

TEST(PrefixCacheTest, AcquireCountsHitTokens) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(3, 4);
  auto first = cache.Acquire(chain, 4);
  cache.Release(first.value(), 4);
  auto second = cache.Acquire(chain, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().matched_blocks, 4);
  cache.Release(second.value(), 4);
  EXPECT_EQ(cache.stats().hit_tokens, 4 * 16);
  EXPECT_EQ(cache.stats().lookup_tokens, 8 * 16);
  EXPECT_NEAR(cache.stats().HitRate(), 0.5, 1e-12);
}

TEST(PrefixCacheTest, EvictsLruWhenFull) {
  PrefixCache cache(16, 4);
  const auto a = Chain(10, 2);
  const auto b = Chain(11, 2);
  const auto c = Chain(12, 2);

  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);
  auto acq_b = cache.Acquire(b, 2);
  cache.Release(acq_b.value(), 2);
  EXPECT_EQ(cache.cached_blocks(), 4);

  // Touch `a` so `b` becomes LRU.
  auto touch = cache.Acquire(a, 2);
  cache.Release(touch.value(), 2);

  auto acq_c = cache.Acquire(c, 2);  // must evict b's blocks
  ASSERT_TRUE(acq_c.ok());
  cache.Release(acq_c.value(), 2);

  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);
  EXPECT_EQ(cache.MatchTokens(b), 0);
  EXPECT_EQ(cache.MatchTokens(c), 2 * 16);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(PrefixCacheTest, PinnedBlocksAreNotEvicted) {
  PrefixCache cache(16, 4);
  const auto a = Chain(20, 2);
  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);

  // Re-acquire `a` (pins its 2 blocks) and hold it while filling the pool.
  auto held = cache.Acquire(a, 2);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held.value().matched_blocks, 2);

  const auto b = Chain(21, 3);  // needs 3 fresh; only 2 free
  auto acq_b = cache.Acquire(b, 3);
  EXPECT_EQ(acq_b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().failed_acquires, 1);

  // Cached `a` must have survived the eviction pressure.
  cache.Release(held.value(), 2);
  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);
}

TEST(PrefixCacheTest, FailedAcquireRollsBackPins) {
  PrefixCache cache(16, 3);
  const auto a = Chain(30, 2);
  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);

  // Request shares `a`'s prefix but needs 4 blocks > capacity.
  auto extended = Chain(30, 2);
  extended.push_back(777);
  extended.push_back(888);
  auto fail = cache.Acquire(extended, 4);
  EXPECT_FALSE(fail.ok());
  // The matched pins must have been rolled back: `a` remains evictable.
  const auto b = Chain(31, 3);
  auto acq_b = cache.Acquire(b, 3);
  EXPECT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 0);
}

TEST(PrefixCacheTest, RequestLargerThanPoolIsRejected) {
  PrefixCache cache(16, 2);
  const auto chain = Chain(40, 5);
  auto acq = cache.Acquire(chain, 5);
  EXPECT_EQ(acq.status().code(), StatusCode::kResourceExhausted);
}

TEST(PrefixCacheTest, NeedBeyondChainAllocatesAnonymousBlocks) {
  // A 70-token request at block 16 has 4 chain blocks + 1 partial: the
  // partial block is anonymous (never cached).
  PrefixCache cache(16, 10);
  const auto chain = Chain(50, 4);
  auto acq = cache.Acquire(chain, 5);
  ASSERT_TRUE(acq.ok());
  EXPECT_EQ(acq.value().blocks.size(), 5u);
  cache.Release(acq.value(), 4);
  EXPECT_EQ(cache.cached_blocks(), 4);
  EXPECT_EQ(cache.free_blocks(), 6);  // partial block went back to the pool
}

TEST(PrefixCacheTest, NeedSmallerThanChainIsInvalid) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(55, 4);
  auto acq = cache.Acquire(chain, 2);
  EXPECT_EQ(acq.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrefixCacheTest, ConcurrentDuplicateInsertIsDeduplicated) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(60, 2);
  auto acq1 = cache.Acquire(chain, 2);
  auto acq2 = cache.Acquire(chain, 2);  // same prefix, in flight together
  ASSERT_TRUE(acq1.ok());
  ASSERT_TRUE(acq2.ok());
  EXPECT_EQ(acq2.value().matched_blocks, 0);  // acq1 not yet released

  const auto ins1 = cache.Release(acq1.value(), 2);
  const auto ins2 = cache.Release(acq2.value(), 2);
  EXPECT_EQ(ins1.size(), 2u);
  EXPECT_EQ(ins2.size(), 0u);  // duplicate blocks freed, not double-cached
  EXPECT_EQ(cache.cached_blocks(), 2);
  EXPECT_EQ(cache.free_blocks(), 8);
}

TEST(PrefixCacheTest, SuffixEvictedBeforePrefix) {
  // Same stamp => deeper blocks evicted first, keeping the shareable
  // prefix alive longest.
  PrefixCache cache(16, 4);
  const auto a = Chain(70, 4);
  auto acq = cache.Acquire(a, 4);
  cache.Release(acq.value(), 4);

  const auto b = Chain(71, 1);
  auto acq_b = cache.Acquire(b, 1);
  ASSERT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 1);

  // One of a's blocks was evicted; it must be the deepest one.
  EXPECT_EQ(cache.MatchTokens(a), 3 * 16);
}

TEST(PrefixCacheTest, EvictionListenerFires) {
  PrefixCache cache(16, 2);
  std::vector<BlockId> evicted;
  cache.SetEvictionListener(
      [&](uint64_t /*hash*/, BlockId block, int64_t /*depth*/) { evicted.push_back(block); });
  const auto a = Chain(80, 2);
  auto acq = cache.Acquire(a, 2);
  cache.Release(acq.value(), 2);
  const auto b = Chain(81, 2);
  auto acq_b = cache.Acquire(b, 2);  // evicts both of a's blocks
  ASSERT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 0);
  EXPECT_EQ(evicted.size(), 2u);
}

TEST(PrefixCacheTest, ClearDropsUnpinnedOnly) {
  PrefixCache cache(16, 4);
  const auto a = Chain(90, 2);
  auto acq = cache.Acquire(a, 2);
  cache.Release(acq.value(), 2);
  auto pinned = cache.Acquire(a, 2);  // re-pin
  cache.Clear();
  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);  // survived (pinned)
  cache.Release(pinned.value(), 2);
  cache.Clear();
  EXPECT_EQ(cache.MatchTokens(a), 0);
}

TEST(PrefixCacheTest, ZeroCapacityAlwaysMissesGracefully) {
  PrefixCache cache(16, 0);
  std::vector<uint64_t> empty_chain;
  auto acq = cache.Acquire(empty_chain, 0);
  ASSERT_TRUE(acq.ok());
  cache.Release(acq.value(), 0);
  EXPECT_EQ(cache.MatchTokens(Chain(1, 3)), 0);
}

TEST(PrefixCacheTest, ClockDrivesLruOrder) {
  PrefixCache cache(16, 2);
  const auto a = Chain(100, 1);
  const auto b = Chain(101, 1);
  cache.SetClock(100);
  auto acq_a = cache.Acquire(a, 1);
  cache.Release(acq_a.value(), 1);
  cache.SetClock(200);
  auto acq_b = cache.Acquire(b, 1);
  cache.Release(acq_b.value(), 1);
  cache.SetClock(300);
  const auto c = Chain(102, 1);
  auto acq_c = cache.Acquire(c, 1);  // must evict a (older stamp)
  ASSERT_TRUE(acq_c.ok());
  cache.Release(acq_c.value(), 1);
  EXPECT_EQ(cache.MatchTokens(a), 0);
  EXPECT_EQ(cache.MatchTokens(b), 16);
}

// Invariant sweep: after arbitrary operation sequences, block accounting
// stays consistent (no leaks, no double frees).
TEST(PrefixCacheTest, AccountingInvariantUnderChurn) {
  PrefixCache cache(8, 16);
  for (int round = 0; round < 50; ++round) {
    const auto chain = Chain(static_cast<uint64_t>(round % 7), 1 + round % 5);
    const auto need = static_cast<int64_t>(chain.size()) + round % 2;
    auto acq = cache.Acquire(chain, need);
    if (!acq.ok()) {
      continue;
    }
    cache.Release(acq.value(), static_cast<int64_t>(chain.size()) - round % 3);
    EXPECT_EQ(cache.cached_blocks() + cache.free_blocks(), 16)
        << "round " << round;
  }
}


// ------------------------------------------- Model-based property check
//
// Drives PrefixCache with a random Acquire/Release workload and checks it
// against a simple reference model of what must hold: matches only ever
// report prefixes that were cached and not evicted; accounting stays
// consistent; pinned entries survive arbitrary pressure.

TEST(PrefixCachePropertyTest, RandomWorkloadAgainstReferenceModel) {
  Rng rng(2025);
  PrefixCache cache(8, 24);
  // Ten distinct chains of 1..6 blocks, some sharing roots.
  std::vector<std::vector<uint64_t>> chains;
  for (uint64_t u = 0; u < 5; ++u) {
    const auto full = Chain(u, 6);
    for (int64_t len : {3, 6}) {
      chains.emplace_back(full.begin(), full.begin() + len);
    }
  }

  std::vector<Acquisition> in_flight;
  for (int step = 0; step < 400; ++step) {
    const bool do_acquire = in_flight.size() < 2 && rng.NextDouble() < 0.7;
    if (do_acquire) {
      const auto& chain = chains[rng.NextBounded(chains.size())];
      const int64_t need = static_cast<int64_t>(chain.size()) +
                           static_cast<int64_t>(rng.NextBounded(2));
      const int64_t match_before = cache.MatchTokens(chain);
      auto acq = cache.Acquire(chain, need);
      if (acq.ok()) {
        // The acquire must serve at least the previously visible prefix:
        // nothing between MatchTokens and Acquire could evict it.
        EXPECT_GE(acq.value().matched_blocks * 8, match_before);
        in_flight.push_back(std::move(acq.value()));
      }
    } else if (!in_flight.empty()) {
      const size_t idx = rng.NextBounded(in_flight.size());
      Acquisition acq = std::move(in_flight[idx]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(idx));
      const auto chain_len = static_cast<int64_t>(acq.chain.size());
      const auto keep = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(chain_len) + 1));
      const std::vector<uint64_t> chain_copy = acq.chain;
      cache.Release(acq, keep);
      // Everything retained must now be visible.
      EXPECT_GE(cache.MatchTokens(chain_copy), keep * 8);
    }
    // Invariants after every step.
    const int64_t pinned = [&] {
      int64_t total = 0;
      for (const auto& acq : in_flight) {
        total += static_cast<int64_t>(acq.blocks.size());
      }
      return total;
    }();
    EXPECT_LE(cache.cached_blocks(), 24);
    EXPECT_GE(cache.free_blocks(), 0);
    EXPECT_LE(cache.cached_blocks() + pinned, 24 + pinned);  // no phantom blocks
    // Every in-flight matched prefix must still be visible (pinned).
    for (const auto& acq : in_flight) {
      EXPECT_GE(cache.MatchTokens(acq.chain), acq.matched_blocks * 8);
    }
  }
  for (auto& acq : in_flight) {
    cache.Release(acq, 0);
  }
  // Drain: everything evictable, accounting returns to full pool.
  cache.Clear();
  EXPECT_EQ(cache.free_blocks(), 24);
  EXPECT_EQ(cache.cached_blocks(), 0);
}

// ------------------------------------------------------ OffloadDirectory

TEST(OffloadDirectoryTest, InsertAndMatchContinuation) {
  OffloadDirectory dir(4);
  const auto chain = Chain(200, 4);
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(dir.Insert(chain[i], static_cast<int64_t>(i)), 0u);
  }
  EXPECT_EQ(dir.size(), 4);
  EXPECT_EQ(dir.MatchContinuation(chain, 0), 4);
  EXPECT_EQ(dir.MatchContinuation(chain, 2), 2);
  EXPECT_EQ(dir.PeekContinuation(chain, 1), 3);
}

TEST(OffloadDirectoryTest, LruEvictionOnOverflow) {
  OffloadDirectory dir(2);
  dir.SetClock(1);
  dir.Insert(100, 0);
  dir.SetClock(2);
  dir.Insert(200, 0);
  dir.SetClock(3);
  const uint64_t evicted = dir.Insert(300, 0);
  EXPECT_EQ(evicted, 100u);  // oldest entry displaced
  EXPECT_FALSE(dir.Contains(100));
  EXPECT_TRUE(dir.Contains(200));
  EXPECT_TRUE(dir.Contains(300));
  EXPECT_EQ(dir.evictions(), 1);
}

TEST(OffloadDirectoryTest, ZeroCapacityDropsEverything) {
  OffloadDirectory dir(0);
  EXPECT_EQ(dir.Insert(1, 0), 0u);
  EXPECT_FALSE(dir.Contains(1));
  EXPECT_EQ(dir.size(), 0);
}

TEST(OffloadDirectoryTest, ReinsertRefreshesLru) {
  OffloadDirectory dir(2);
  dir.SetClock(1);
  dir.Insert(100, 0);
  dir.SetClock(2);
  dir.Insert(200, 0);
  dir.SetClock(3);
  dir.Insert(100, 0);  // refresh
  dir.SetClock(4);
  const uint64_t evicted = dir.Insert(300, 0);
  EXPECT_EQ(evicted, 200u);
}

TEST(OffloadDirectoryTest, MatchTouchesLru) {
  OffloadDirectory dir(2);
  const auto a = Chain(300, 1);
  const auto b = Chain(301, 1);
  dir.SetClock(1);
  dir.Insert(a[0], 0);
  dir.SetClock(2);
  dir.Insert(b[0], 0);
  dir.SetClock(3);
  dir.MatchContinuation(a, 0);  // a becomes most recent
  dir.SetClock(4);
  const auto c = Chain(302, 1);
  EXPECT_EQ(dir.Insert(c[0], 0), b[0]);
}

}  // namespace
}  // namespace prefillonly
