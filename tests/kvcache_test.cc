#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/kvcache/block_allocator.h"
#include "src/kvcache/offload_directory.h"
#include "src/kvcache/prefix_cache.h"

namespace prefillonly {
namespace {

// Builds a chain of n distinct hashes rooted at `seed` (stands in for a
// token sequence's block hash chain).
std::vector<uint64_t> Chain(uint64_t seed, int64_t n) {
  std::vector<uint64_t> chain;
  uint64_t h = kFnvOffset ^ seed;
  for (int64_t i = 0; i < n; ++i) {
    h = HashCombine(h, seed * 1315423911ULL + static_cast<uint64_t>(i) + 1);
    chain.push_back(h);
  }
  return chain;
}

// -------------------------------------------------------- BlockAllocator

TEST(BlockAllocatorTest, AllocatesUntilExhausted) {
  BlockAllocator alloc(3);
  EXPECT_EQ(alloc.free_blocks(), 3);
  std::set<BlockId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = alloc.Allocate();
    ASSERT_TRUE(id.ok());
    ids.insert(id.value());
  }
  EXPECT_EQ(ids.size(), 3u);  // distinct ids
  EXPECT_EQ(alloc.free_blocks(), 0);
  EXPECT_EQ(alloc.Allocate().status().code(), StatusCode::kResourceExhausted);
}

TEST(BlockAllocatorTest, RefCountingSharesBlocks) {
  BlockAllocator alloc(1);
  const BlockId id = alloc.Allocate().value();
  alloc.IncRef(id);
  EXPECT_EQ(alloc.RefCount(id), 2);
  EXPECT_FALSE(alloc.DecRef(id));  // still referenced
  EXPECT_EQ(alloc.free_blocks(), 0);
  EXPECT_TRUE(alloc.DecRef(id));  // last reference frees
  EXPECT_EQ(alloc.free_blocks(), 1);
}

TEST(BlockAllocatorTest, FreedBlockIsReusable) {
  BlockAllocator alloc(1);
  const BlockId a = alloc.Allocate().value();
  alloc.DecRef(a);
  const BlockId b = alloc.Allocate().value();
  EXPECT_EQ(a, b);
}

TEST(BlockAllocatorTest, UsedBlocksAccounting) {
  BlockAllocator alloc(4);
  auto a = alloc.Allocate().value();
  auto b = alloc.Allocate().value();
  (void)b;
  EXPECT_EQ(alloc.used_blocks(), 2);
  alloc.DecRef(a);
  EXPECT_EQ(alloc.used_blocks(), 1);
}

// ----------------------------------------------------------- PrefixCache

TEST(PrefixCacheTest, MissThenHitAfterRelease) {
  PrefixCache cache(/*block_size=*/16, /*capacity=*/10);
  const auto chain = Chain(1, 4);
  EXPECT_EQ(cache.MatchTokens(chain), 0);

  auto acq = cache.Acquire(chain, 4);
  ASSERT_TRUE(acq.ok());
  EXPECT_EQ(acq.value().matched_blocks, 0);
  cache.Release(acq.value(), 4);

  EXPECT_EQ(cache.MatchTokens(chain), 4 * 16);
  EXPECT_EQ(cache.cached_blocks(), 4);
}

TEST(PrefixCacheTest, PartialPrefixMatch) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(2, 6);
  auto acq = cache.Acquire(chain, 6);
  ASSERT_TRUE(acq.ok());
  cache.Release(acq.value(), 3);  // cache only 3 blocks (suffix discarded)

  EXPECT_EQ(cache.MatchTokens(chain), 3 * 16);
  // A different sequence sharing the first 3 blocks also hits.
  auto shared = chain;
  shared.resize(3);
  EXPECT_EQ(cache.MatchTokens(shared), 3 * 16);
}

TEST(PrefixCacheTest, AcquireCountsHitTokens) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(3, 4);
  auto first = cache.Acquire(chain, 4);
  cache.Release(first.value(), 4);
  auto second = cache.Acquire(chain, 4);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().matched_blocks, 4);
  cache.Release(second.value(), 4);
  EXPECT_EQ(cache.stats().hit_tokens, 4 * 16);
  EXPECT_EQ(cache.stats().lookup_tokens, 8 * 16);
  EXPECT_NEAR(cache.stats().HitRate(), 0.5, 1e-12);
}

TEST(PrefixCacheTest, EvictsLruWhenFull) {
  PrefixCache cache(16, 4);
  const auto a = Chain(10, 2);
  const auto b = Chain(11, 2);
  const auto c = Chain(12, 2);

  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);
  auto acq_b = cache.Acquire(b, 2);
  cache.Release(acq_b.value(), 2);
  EXPECT_EQ(cache.cached_blocks(), 4);

  // Touch `a` so `b` becomes LRU.
  auto touch = cache.Acquire(a, 2);
  cache.Release(touch.value(), 2);

  auto acq_c = cache.Acquire(c, 2);  // must evict b's blocks
  ASSERT_TRUE(acq_c.ok());
  cache.Release(acq_c.value(), 2);

  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);
  EXPECT_EQ(cache.MatchTokens(b), 0);
  EXPECT_EQ(cache.MatchTokens(c), 2 * 16);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(PrefixCacheTest, PinnedBlocksAreNotEvicted) {
  PrefixCache cache(16, 4);
  const auto a = Chain(20, 2);
  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);

  // Re-acquire `a` (pins its 2 blocks) and hold it while filling the pool.
  auto held = cache.Acquire(a, 2);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held.value().matched_blocks, 2);

  const auto b = Chain(21, 3);  // needs 3 fresh; only 2 free
  auto acq_b = cache.Acquire(b, 3);
  EXPECT_EQ(acq_b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cache.stats().failed_acquires, 1);

  // Cached `a` must have survived the eviction pressure.
  cache.Release(held.value(), 2);
  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);
}

TEST(PrefixCacheTest, FailedAcquireRollsBackPins) {
  PrefixCache cache(16, 3);
  const auto a = Chain(30, 2);
  auto acq_a = cache.Acquire(a, 2);
  cache.Release(acq_a.value(), 2);

  // Request shares `a`'s prefix but needs 4 blocks > capacity.
  auto extended = Chain(30, 2);
  extended.push_back(777);
  extended.push_back(888);
  auto fail = cache.Acquire(extended, 4);
  EXPECT_FALSE(fail.ok());
  // The matched pins must have been rolled back: `a` remains evictable.
  const auto b = Chain(31, 3);
  auto acq_b = cache.Acquire(b, 3);
  EXPECT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 0);
}

TEST(PrefixCacheTest, RequestLargerThanPoolIsRejected) {
  PrefixCache cache(16, 2);
  const auto chain = Chain(40, 5);
  auto acq = cache.Acquire(chain, 5);
  EXPECT_EQ(acq.status().code(), StatusCode::kResourceExhausted);
}

TEST(PrefixCacheTest, NeedBeyondChainAllocatesAnonymousBlocks) {
  // A 70-token request at block 16 has 4 chain blocks + 1 partial: the
  // partial block is anonymous (never cached).
  PrefixCache cache(16, 10);
  const auto chain = Chain(50, 4);
  auto acq = cache.Acquire(chain, 5);
  ASSERT_TRUE(acq.ok());
  EXPECT_EQ(acq.value().blocks.size(), 5u);
  cache.Release(acq.value(), 4);
  EXPECT_EQ(cache.cached_blocks(), 4);
  EXPECT_EQ(cache.free_blocks(), 6);  // partial block went back to the pool
}

TEST(PrefixCacheTest, NeedSmallerThanChainIsInvalid) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(55, 4);
  auto acq = cache.Acquire(chain, 2);
  EXPECT_EQ(acq.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrefixCacheTest, ConcurrentDuplicateInsertIsDeduplicated) {
  PrefixCache cache(16, 10);
  const auto chain = Chain(60, 2);
  auto acq1 = cache.Acquire(chain, 2);
  auto acq2 = cache.Acquire(chain, 2);  // same prefix, in flight together
  ASSERT_TRUE(acq1.ok());
  ASSERT_TRUE(acq2.ok());
  EXPECT_EQ(acq2.value().matched_blocks, 0);  // acq1 not yet released

  const auto ins1 = cache.Release(acq1.value(), 2);
  const auto ins2 = cache.Release(acq2.value(), 2);
  EXPECT_EQ(ins1.size(), 2u);
  EXPECT_EQ(ins2.size(), 0u);  // duplicate blocks freed, not double-cached
  EXPECT_EQ(cache.cached_blocks(), 2);
  EXPECT_EQ(cache.free_blocks(), 8);
}

TEST(PrefixCacheTest, SuffixEvictedBeforePrefix) {
  // Same stamp => deeper blocks evicted first, keeping the shareable
  // prefix alive longest.
  PrefixCache cache(16, 4);
  const auto a = Chain(70, 4);
  auto acq = cache.Acquire(a, 4);
  cache.Release(acq.value(), 4);

  const auto b = Chain(71, 1);
  auto acq_b = cache.Acquire(b, 1);
  ASSERT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 1);

  // One of a's blocks was evicted; it must be the deepest one.
  EXPECT_EQ(cache.MatchTokens(a), 3 * 16);
}

TEST(PrefixCacheTest, EvictionListenerFires) {
  PrefixCache cache(16, 2);
  std::vector<BlockId> evicted;
  cache.SetEvictionListener(
      [&](uint64_t /*hash*/, BlockId block, int64_t /*depth*/) { evicted.push_back(block); });
  const auto a = Chain(80, 2);
  auto acq = cache.Acquire(a, 2);
  cache.Release(acq.value(), 2);
  const auto b = Chain(81, 2);
  auto acq_b = cache.Acquire(b, 2);  // evicts both of a's blocks
  ASSERT_TRUE(acq_b.ok());
  cache.Release(acq_b.value(), 0);
  EXPECT_EQ(evicted.size(), 2u);
}

TEST(PrefixCacheTest, ClearDropsUnpinnedOnly) {
  PrefixCache cache(16, 4);
  const auto a = Chain(90, 2);
  auto acq = cache.Acquire(a, 2);
  cache.Release(acq.value(), 2);
  auto pinned = cache.Acquire(a, 2);  // re-pin
  cache.Clear();
  EXPECT_EQ(cache.MatchTokens(a), 2 * 16);  // survived (pinned)
  cache.Release(pinned.value(), 2);
  cache.Clear();
  EXPECT_EQ(cache.MatchTokens(a), 0);
}

TEST(PrefixCacheTest, ZeroCapacityAlwaysMissesGracefully) {
  PrefixCache cache(16, 0);
  std::vector<uint64_t> empty_chain;
  auto acq = cache.Acquire(empty_chain, 0);
  ASSERT_TRUE(acq.ok());
  cache.Release(acq.value(), 0);
  EXPECT_EQ(cache.MatchTokens(Chain(1, 3)), 0);
}

TEST(PrefixCacheTest, ClockDrivesLruOrder) {
  PrefixCache cache(16, 2);
  const auto a = Chain(100, 1);
  const auto b = Chain(101, 1);
  cache.SetClock(100);
  auto acq_a = cache.Acquire(a, 1);
  cache.Release(acq_a.value(), 1);
  cache.SetClock(200);
  auto acq_b = cache.Acquire(b, 1);
  cache.Release(acq_b.value(), 1);
  cache.SetClock(300);
  const auto c = Chain(102, 1);
  auto acq_c = cache.Acquire(c, 1);  // must evict a (older stamp)
  ASSERT_TRUE(acq_c.ok());
  cache.Release(acq_c.value(), 1);
  EXPECT_EQ(cache.MatchTokens(a), 0);
  EXPECT_EQ(cache.MatchTokens(b), 16);
}

// Invariant sweep: after arbitrary operation sequences, block accounting
// stays consistent (no leaks, no double frees).
TEST(PrefixCacheTest, AccountingInvariantUnderChurn) {
  PrefixCache cache(8, 16);
  for (int round = 0; round < 50; ++round) {
    const auto chain = Chain(static_cast<uint64_t>(round % 7), 1 + round % 5);
    const auto need = static_cast<int64_t>(chain.size()) + round % 2;
    auto acq = cache.Acquire(chain, need);
    if (!acq.ok()) {
      continue;
    }
    cache.Release(acq.value(), static_cast<int64_t>(chain.size()) - round % 3);
    EXPECT_EQ(cache.cached_blocks() + cache.free_blocks(), 16)
        << "round " << round;
  }
}


// ------------------------------------------- Model-based property check
//
// Drives PrefixCache with a random Acquire/Release workload and checks it
// against a simple reference model of what must hold: matches only ever
// report prefixes that were cached and not evicted; accounting stays
// consistent; pinned entries survive arbitrary pressure.

TEST(PrefixCachePropertyTest, RandomWorkloadAgainstReferenceModel) {
  Rng rng(2025);
  PrefixCache cache(8, 24);
  // Ten distinct chains of 1..6 blocks, some sharing roots.
  std::vector<std::vector<uint64_t>> chains;
  for (uint64_t u = 0; u < 5; ++u) {
    const auto full = Chain(u, 6);
    for (int64_t len : {3, 6}) {
      chains.emplace_back(full.begin(), full.begin() + len);
    }
  }

  std::vector<Acquisition> in_flight;
  for (int step = 0; step < 400; ++step) {
    const bool do_acquire = in_flight.size() < 2 && rng.NextDouble() < 0.7;
    if (do_acquire) {
      const auto& chain = chains[rng.NextBounded(chains.size())];
      const int64_t need = static_cast<int64_t>(chain.size()) +
                           static_cast<int64_t>(rng.NextBounded(2));
      const int64_t match_before = cache.MatchTokens(chain);
      auto acq = cache.Acquire(chain, need);
      if (acq.ok()) {
        // The acquire must serve at least the previously visible prefix:
        // nothing between MatchTokens and Acquire could evict it.
        EXPECT_GE(acq.value().matched_blocks * 8, match_before);
        in_flight.push_back(std::move(acq.value()));
      }
    } else if (!in_flight.empty()) {
      const size_t idx = rng.NextBounded(in_flight.size());
      Acquisition acq = std::move(in_flight[idx]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(idx));
      const auto chain_len = static_cast<int64_t>(acq.chain.size());
      const auto keep = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(chain_len) + 1));
      const std::vector<uint64_t> chain_copy = acq.chain;
      cache.Release(acq, keep);
      // Everything retained must now be visible.
      EXPECT_GE(cache.MatchTokens(chain_copy), keep * 8);
    }
    // Invariants after every step.
    const int64_t pinned = [&] {
      int64_t total = 0;
      for (const auto& acq : in_flight) {
        total += static_cast<int64_t>(acq.blocks.size());
      }
      return total;
    }();
    EXPECT_LE(cache.cached_blocks(), 24);
    EXPECT_GE(cache.free_blocks(), 0);
    EXPECT_LE(cache.cached_blocks() + pinned, 24 + pinned);  // no phantom blocks
    // Every in-flight matched prefix must still be visible (pinned).
    for (const auto& acq : in_flight) {
      EXPECT_GE(cache.MatchTokens(acq.chain), acq.matched_blocks * 8);
    }
  }
  for (auto& acq : in_flight) {
    cache.Release(acq, 0);
  }
  // Drain: everything evictable, accounting returns to full pool.
  cache.Clear();
  EXPECT_EQ(cache.free_blocks(), 24);
  EXPECT_EQ(cache.cached_blocks(), 0);
}

// ------------------------------------------------------- PrefixTreeTest
//
// Radix-tree specifics (ISSUE 7): split-on-common-prefix, block-id sharing
// between requests that agree on any block-aligned prefix, leaf-only
// eviction (no orphaned descendants), token-accurate hit accounting, and a
// randomized interleaving sweep over the refcount/listener invariants.

// Chains derived from real token sequences, so two sequences that agree on
// a token prefix produce chains that agree exactly up to the divergence
// block — the case the tree must split on.
std::vector<uint64_t> TokenChain(uint64_t seed, int64_t n_tokens, int block_size,
                                 int64_t diverge_at = -1, int32_t delta = 0) {
  Rng rng(seed);
  std::vector<int32_t> tokens(static_cast<size_t>(n_tokens));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(1000));
  }
  if (diverge_at >= 0 && diverge_at < n_tokens) {
    tokens[static_cast<size_t>(diverge_at)] += delta;
  }
  return BlockHashChain(tokens, block_size);
}

TEST(PrefixTreeTest, SplitOnCommonPrefixSharesBlockIds) {
  PrefixCache cache(/*block_size=*/16, /*capacity=*/16);
  // a and b agree on blocks 0..1 and diverge inside block 2.
  const auto a = TokenChain(1, 4 * 16, 16);
  const auto b = TokenChain(1, 4 * 16, 16, /*diverge_at=*/2 * 16 + 3, /*delta=*/7);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_TRUE(std::equal(a.begin(), a.begin() + 2, b.begin()));
  ASSERT_NE(a[2], b[2]);

  auto acq_a = cache.Acquire(a, 4);
  ASSERT_TRUE(acq_a.ok());
  const std::vector<BlockId> a_blocks = acq_a.value().blocks;
  cache.Release(acq_a.value(), 4);
  EXPECT_EQ(cache.num_nodes(), 1);  // one run-compressed node

  auto acq_b = cache.Acquire(b, 4);
  ASSERT_TRUE(acq_b.ok());
  // Block-aligned sharing, NOT identical-full-prefix sharing: b reuses a's
  // physical blocks for the common prefix even though the chains differ.
  EXPECT_EQ(acq_b.value().matched_blocks, 2);
  EXPECT_EQ(acq_b.value().blocks[0], a_blocks[0]);
  EXPECT_EQ(acq_b.value().blocks[1], a_blocks[1]);
  cache.Release(acq_b.value(), 4);

  // The insert split a's node at the divergence point: prefix node plus the
  // two diverging suffix runs.
  EXPECT_EQ(cache.num_nodes(), 3);
  EXPECT_EQ(cache.cached_blocks(), 6);
  EXPECT_EQ(cache.MatchTokens(a), 4 * 16);
  EXPECT_EQ(cache.MatchTokens(b), 4 * 16);
}

TEST(PrefixTreeTest, SecondSplitNestsUnderFirst) {
  PrefixCache cache(16, 32);
  const auto a = TokenChain(2, 6 * 16, 16);
  const auto b = TokenChain(2, 6 * 16, 16, 4 * 16, 5);  // shares 4 blocks
  const auto c = TokenChain(2, 6 * 16, 16, 2 * 16, 9);  // shares 2 blocks

  for (const auto& chain : {a, b, c}) {
    auto acq = cache.Acquire(chain, 6);
    ASSERT_TRUE(acq.ok());
    cache.Release(acq.value(), 6);
  }
  // root -> [0,1] -> {[2..3] -> {[4..5]_a, [4..5]_b}, [2..5]_c}
  EXPECT_EQ(cache.num_nodes(), 5);
  EXPECT_EQ(cache.cached_blocks(), 6 + 2 + 4);
  for (const auto& chain : {a, b, c}) {
    EXPECT_EQ(cache.MatchTokens(chain), 6 * 16);
  }
}

TEST(PrefixTreeTest, OrphanFreeEvictionKeepsBlocksReachable) {
  // The flat-map pathology this tree exists to fix: when a shared prefix
  // carries an OLDER stamp than its suffix blocks (two in-flight requests,
  // the shorter one released first), global block-LRU evicts the prefix and
  // strands the suffix — cached but unreachable. Leaf-only eviction makes
  // that impossible: a node with children is never a victim.
  PrefixCache cache(16, 6);
  const auto full = TokenChain(3, 4 * 16, 16);
  const std::vector<uint64_t> prefix(full.begin(), full.begin() + 2);

  cache.SetClock(1);
  auto long_acq = cache.Acquire(full, 4);     // in flight, nothing cached yet
  auto short_acq = cache.Acquire(prefix, 2);  // concurrent, matches nothing
  ASSERT_TRUE(long_acq.ok());
  ASSERT_TRUE(short_acq.ok());
  cache.Release(short_acq.value(), 2);  // prefix blocks cached at t=1
  cache.SetClock(2);
  cache.Release(long_acq.value(), 4);  // dedups the prefix, suffix cached at t=2

  // Cached: 2 prefix blocks stamped t=1, 2 suffix blocks stamped t=2.
  ASSERT_EQ(cache.cached_blocks(), 4);
  ASSERT_EQ(cache.free_blocks(), 2);

  // A 4-block request must evict 2 of them. The t=1 prefix blocks are the
  // LRU victims under a flat per-block policy — evicting them would strand
  // the t=2 suffix blocks as cached-but-unreachable garbage.
  cache.SetClock(3);
  const auto other = TokenChain(4, 4 * 16, 16);
  auto acq = cache.Acquire(other, 4);
  ASSERT_TRUE(acq.ok());
  cache.Release(acq.value(), 4);

  // The tree trimmed the suffix leaf instead (a node with children is never
  // a victim): the surviving prefix is still reachable, nothing is orphaned.
  EXPECT_EQ(cache.stats().evictions, 2);
  EXPECT_EQ(cache.MatchTokens(prefix), 2 * 16);
  EXPECT_EQ(cache.MatchTokens(full), 2 * 16);  // suffix evicted, prefix intact
  EXPECT_EQ(cache.MatchTokens(other), 4 * 16);
  EXPECT_EQ(cache.cached_blocks(), 6);  // 2 prefix + 4 other, no orphans
}

TEST(PrefixTreeTest, TokenAccurateHitAccounting) {
  // A 70-token request at block 16 presents 70 tokens but only 4 whole
  // blocks can ever hit; the old whole-block accounting credited 64 lookup
  // tokens and could push HitRate past 1.0 from the other direction.
  PrefixCache cache(16, 10);
  const auto chain = Chain(300, 4);
  auto first = cache.Acquire(chain, 5, /*lookup_tokens=*/70);
  ASSERT_TRUE(first.ok());
  cache.Release(first.value(), 4);
  EXPECT_EQ(cache.stats().lookup_tokens, 70);
  EXPECT_EQ(cache.stats().hit_tokens, 0);

  auto second = cache.Acquire(chain, 5, /*lookup_tokens=*/70);
  ASSERT_TRUE(second.ok());
  cache.Release(second.value(), 4);
  EXPECT_EQ(cache.stats().lookup_tokens, 140);
  EXPECT_EQ(cache.stats().hit_tokens, 64);  // 4 whole blocks, not 70
  EXPECT_LE(cache.stats().HitRate(), 1.0);

  // Hit tokens are clamped to what was presented even when the cached
  // prefix is longer than the lookup.
  auto clamped = cache.Acquire(chain, 4, /*lookup_tokens=*/50);
  ASSERT_TRUE(clamped.ok());
  cache.Release(clamped.value(), 4);
  EXPECT_EQ(cache.stats().hit_tokens, 64 + 50);
  EXPECT_LE(cache.stats().HitRate(), 1.0);
}

TEST(PrefixTreeTest, RandomizedInterleavingsKeepInvariants) {
  // Randomized acquire/release/evict interleavings over a family of chains
  // with genuine shared prefixes and mid-chain divergences (so splits,
  // partial matches, pinned-leaf trims and node removals all occur), with
  // every structural invariant checked after every step.
  Rng rng(777);
  constexpr int64_t kCapacity = 32;
  constexpr int kBlock = 8;
  PrefixCache cache(kBlock, kCapacity);

  int64_t listener_evictions = 0;
  std::vector<Acquisition> in_flight;
  cache.SetEvictionListener([&](uint64_t, BlockId block, int64_t) {
    ++listener_evictions;
    // An evicted block can never be one an in-flight request still pins.
    for (const auto& acq : in_flight) {
      for (int64_t m = 0; m < acq.matched_blocks; ++m) {
        EXPECT_NE(acq.blocks[static_cast<size_t>(m)], block);
      }
    }
  });

  std::vector<std::vector<uint64_t>> chains;
  for (uint64_t family = 0; family < 4; ++family) {
    for (int64_t diverge : {-1, 2 * kBlock, 4 * kBlock + 1}) {
      for (int64_t blocks : {3, 6}) {
        chains.push_back(TokenChain(family, blocks * kBlock, kBlock, diverge,
                                    static_cast<int32_t>(diverge + 3)));
      }
    }
  }

  for (int step = 0; step < 3000; ++step) {
    const bool do_acquire = in_flight.size() < 3 && rng.NextDouble() < 0.6;
    if (do_acquire) {
      const auto& chain = chains[rng.NextBounded(chains.size())];
      const int64_t extra = static_cast<int64_t>(rng.NextBounded(2));
      const int64_t lookup =
          static_cast<int64_t>(chain.size()) * kBlock + extra * (kBlock / 2);
      auto acq = cache.Acquire(chain, static_cast<int64_t>(chain.size()) + extra,
                               lookup);
      if (acq.ok()) {
        EXPECT_EQ(cache.MatchTokens(chain), acq.value().matched_blocks * kBlock);
        in_flight.push_back(std::move(acq.value()));
      }
    } else if (!in_flight.empty()) {
      const size_t idx = rng.NextBounded(in_flight.size());
      Acquisition acq = std::move(in_flight[idx]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(idx));
      const auto chain_len = static_cast<int64_t>(acq.chain.size());
      const int64_t keep = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(chain_len) + 1));
      const std::vector<uint64_t> chain_copy = acq.chain;
      cache.Release(acq, keep);
      EXPECT_GE(cache.MatchTokens(chain_copy), keep * kBlock);
    }
    if (step % 97 == 0) {
      cache.Clear();  // eviction storm: only pinned paths may survive
    }

    // --- invariants, every step ---------------------------------------
    int64_t held_fresh = 0;
    for (const auto& acq : in_flight) {
      held_fresh += static_cast<int64_t>(acq.blocks.size()) - acq.matched_blocks;
      // Pinned prefixes stay visible under arbitrary pressure.
      EXPECT_GE(cache.MatchTokens(acq.chain), acq.matched_blocks * kBlock);
    }
    // Exact pool accounting: tree-owned + request-owned + free = capacity.
    EXPECT_EQ(cache.cached_blocks() + held_fresh + cache.free_blocks(), kCapacity);
    EXPECT_EQ(listener_evictions, cache.stats().evictions);
    EXPECT_LE(cache.stats().HitRate(), 1.0);
  }

  for (auto& acq : in_flight) {
    cache.Release(acq, 0);
  }
  in_flight.clear();
  cache.Clear();
  EXPECT_EQ(cache.cached_blocks(), 0);
  EXPECT_EQ(cache.num_nodes(), 0);
  EXPECT_EQ(cache.free_blocks(), kCapacity);
}

// ------------------------------------------------------ OffloadDirectory

TEST(OffloadDirectoryTest, InsertAndMatchContinuation) {
  OffloadDirectory dir(4);
  const auto chain = Chain(200, 4);
  for (size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(dir.Insert(chain[i], static_cast<int64_t>(i)), std::nullopt);
  }
  EXPECT_EQ(dir.size(), 4);
  EXPECT_EQ(dir.MatchContinuation(chain, 0), 4);
  EXPECT_EQ(dir.MatchContinuation(chain, 2), 2);
  EXPECT_EQ(dir.PeekContinuation(chain, 1), 3);
}

TEST(OffloadDirectoryTest, LruEvictionOnOverflow) {
  OffloadDirectory dir(2);
  dir.SetClock(1);
  dir.Insert(100, 0);
  dir.SetClock(2);
  dir.Insert(200, 0);
  dir.SetClock(3);
  const std::optional<uint64_t> evicted = dir.Insert(300, 0);
  EXPECT_EQ(evicted, std::optional<uint64_t>(100u));  // oldest entry displaced
  EXPECT_FALSE(dir.Contains(100));
  EXPECT_TRUE(dir.Contains(200));
  EXPECT_TRUE(dir.Contains(300));
  EXPECT_EQ(dir.evictions(), 1);
}

TEST(OffloadDirectoryTest, ZeroCapacityDropsEverything) {
  OffloadDirectory dir(0);
  EXPECT_EQ(dir.Insert(1, 0), std::nullopt);
  EXPECT_FALSE(dir.Contains(1));
  EXPECT_EQ(dir.size(), 0);
}

TEST(OffloadDirectoryTest, ReinsertRefreshesLru) {
  OffloadDirectory dir(2);
  dir.SetClock(1);
  dir.Insert(100, 0);
  dir.SetClock(2);
  dir.Insert(200, 0);
  dir.SetClock(3);
  dir.Insert(100, 0);  // refresh
  dir.SetClock(4);
  const std::optional<uint64_t> evicted = dir.Insert(300, 0);
  EXPECT_EQ(evicted, std::optional<uint64_t>(200u));
}

TEST(OffloadDirectoryTest, MatchTouchesLru) {
  OffloadDirectory dir(2);
  const auto a = Chain(300, 1);
  const auto b = Chain(301, 1);
  dir.SetClock(1);
  dir.Insert(a[0], 0);
  dir.SetClock(2);
  dir.Insert(b[0], 0);
  dir.SetClock(3);
  dir.MatchContinuation(a, 0);  // a becomes most recent
  dir.SetClock(4);
  const auto c = Chain(302, 1);
  EXPECT_EQ(dir.Insert(c[0], 0), std::optional<uint64_t>(b[0]));
}

}  // namespace
}  // namespace prefillonly
