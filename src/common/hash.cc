#include "src/common/hash.h"

#include <cassert>

namespace prefillonly {

std::vector<uint64_t> BlockHashChain(std::span<const int32_t> tokens, int block_size) {
  assert(block_size > 0);
  const size_t n_blocks = tokens.size() / static_cast<size_t>(block_size);
  std::vector<uint64_t> chain;
  chain.reserve(n_blocks);
  uint64_t parent = kFnvOffset;
  for (size_t b = 0; b < n_blocks; ++b) {
    parent = HashTokenBlock(parent, tokens.subspan(b * block_size, block_size));
    chain.push_back(parent);
  }
  return chain;
}

}  // namespace prefillonly
