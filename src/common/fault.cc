#include "src/common/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace prefillonly {

namespace {

// Parses "key=value" clauses out of "a=b;c=d". Whitespace around clauses and
// around '=' is tolerated so schedules can be written readably in tests.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("PREFILLONLY_FAULT_SCHEDULE");
  if (env != nullptr && env[0] != '\0') {
    Status status = LoadSchedule(env);
    if (!status.ok()) {
      PO_LOG_WARNING << "PREFILLONLY_FAULT_SCHEDULE ignored: " << status.message();
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::LoadSchedule(const std::string& spec) {
  std::map<std::string, Trigger> sites;
  uint64_t seed = 0x5eed5eed5eedULL;
  int stall_ms = 0;

  // The whole spec parses or nothing installs: a malformed schedule leaves
  // the injector DISABLED (not running a stale or partial one) so a typo'd
  // chaos test cannot silently become a no-fault test.
  Status parsed = [&]() -> Status {
  std::stringstream stream(spec);
  std::string clause;
  while (std::getline(stream, clause, ';')) {
    clause = Trim(clause);
    if (clause.empty()) {
      continue;
    }
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault schedule clause missing '=': " + clause);
    }
    const std::string key = Trim(clause.substr(0, eq));
    const std::string value = Trim(clause.substr(eq + 1));
    if (key == "seed") {
      if (!ParseU64(value, &seed)) {
        return Status::InvalidArgument("fault schedule: bad seed: " + value);
      }
      continue;
    }
    if (key == "stall_ms") {
      uint64_t ms = 0;
      if (!ParseU64(value, &ms) || ms > 600000) {
        return Status::InvalidArgument("fault schedule: bad stall_ms: " + value);
      }
      stall_ms = static_cast<int>(ms);
      continue;
    }
    if (value.empty()) {
      return Status::InvalidArgument("fault schedule: empty trigger for " + key);
    }
    Trigger trigger;
    const char tag = value[0];
    const std::string body = value.substr(1);
    switch (tag) {
      case 'p': {
        double p = 0.0;
        if (!ParseDouble(body, &p) || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("fault schedule: bad probability for " +
                                         key + ": " + value);
        }
        trigger.kind = TriggerKind::kProbability;
        trigger.probability = p;
        break;
      }
      case 'n': {
        uint64_t n = 0;
        if (!ParseU64(body, &n) || n == 0) {
          return Status::InvalidArgument("fault schedule: bad period for " + key +
                                         ": " + value);
        }
        trigger.kind = TriggerKind::kEveryNth;
        trigger.n = n;
        break;
      }
      case 'x': {
        uint64_t n = 0;
        if (!ParseU64(body, &n)) {
          return Status::InvalidArgument("fault schedule: bad count for " + key +
                                         ": " + value);
        }
        trigger.kind = TriggerKind::kFirstN;
        trigger.n = n;
        break;
      }
      case '@': {
        std::stringstream list(body);
        std::string item;
        while (std::getline(list, item, ',')) {
          uint64_t index = 0;
          if (!ParseU64(Trim(item), &index) || index == 0) {
            return Status::InvalidArgument("fault schedule: bad hit index for " +
                                           key + ": " + value);
          }
          trigger.indices.push_back(index);
        }
        if (trigger.indices.empty()) {
          return Status::InvalidArgument("fault schedule: empty index list for " +
                                         key);
        }
        std::sort(trigger.indices.begin(), trigger.indices.end());
        trigger.kind = TriggerKind::kIndices;
        break;
      }
      default:
        return Status::InvalidArgument("fault schedule: unknown trigger for " +
                                       key + ": " + value);
    }
    sites[key] = trigger;
  }
  return Status::Ok();
  }();
  if (!parsed.ok()) {
    Clear();
    return parsed;
  }

  std::lock_guard<std::mutex> lock(mu_);
  sites_ = std::move(sites);
  stall_ms_ = stall_ms;
  // Each probabilistic site gets an independent stream derived from the
  // schedule seed and the site name, so adding a site to a schedule does not
  // perturb the fault sequence of the others.
  for (auto& [name, trigger] : sites_) {
    uint64_t sm = seed ^ Fnv1a64(name.data(), name.size());
    trigger.rng_state = SplitMix64(sm);
  }
  total_fires_.store(0, std::memory_order_relaxed);
  enabled_.store(!sites_.empty(), std::memory_order_release);
  return Status::Ok();
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  sites_.clear();
  stall_ms_ = 0;
  total_fires_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::Fire(const char* site) {
  if (!enabled_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return false;
  }
  Trigger& trigger = it->second;
  const uint64_t hit = static_cast<uint64_t>(++trigger.stats.hits);
  bool fire = false;
  switch (trigger.kind) {
    case TriggerKind::kProbability: {
      const uint64_t z = SplitMix64(trigger.rng_state);
      fire = static_cast<double>(z >> 11) * 0x1.0p-53 < trigger.probability;
      break;
    }
    case TriggerKind::kEveryNth:
      fire = hit % trigger.n == 0;
      break;
    case TriggerKind::kFirstN:
      fire = hit <= trigger.n;
      break;
    case TriggerKind::kIndices:
      fire = std::binary_search(trigger.indices.begin(), trigger.indices.end(), hit);
      break;
  }
  if (fire) {
    ++trigger.stats.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

int FaultInjector::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_ms_;
}

std::map<std::string, FaultSiteStats> FaultInjector::SiteStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, FaultSiteStats> out;
  for (const auto& [name, trigger] : sites_) {
    out[name] = trigger.stats;
  }
  return out;
}

FaultScope::FaultScope(const std::string& spec) {
  Status status = FaultInjector::Global().LoadSchedule(spec);
  if (!status.ok()) {
    PO_LOG_ERROR << "FaultScope: " << status.message();
    std::abort();
  }
}

FaultScope::~FaultScope() { FaultInjector::Global().Clear(); }

}  // namespace prefillonly
