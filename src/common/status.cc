#include "src/common/status.h"

namespace prefillonly {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace prefillonly
