// Unbounded MPMC blocking queue used by the asynchronous engine frontend
// (request submission thread -> scheduler thread), mirroring the paper's
// ZeroMQ RPC hop between the HTTP frontend and the scheduler process.
#ifndef SRC_COMMON_QUEUE_H_
#define SRC_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace prefillonly {

template <typename T>
class BlockingQueue {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or Close() is called.
  // Returns nullopt iff the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace prefillonly

#endif  // SRC_COMMON_QUEUE_H_
