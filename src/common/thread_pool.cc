#include "src/common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace prefillonly {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::pair<int64_t, int64_t> ThreadPool::ShardRange(int64_t n, int shards, int shard) {
  assert(shards > 0 && shard >= 0 && shard < shards);
  const int64_t base = n / shards;
  const int64_t rem = n % shards;
  const int64_t begin = shard * base + std::min<int64_t>(shard, rem);
  const int64_t end = begin + base + (shard < rem ? 1 : 0);
  return {begin, end};
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain, const RangeFn& fn) {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int shards = static_cast<int>(
      std::clamp<int64_t>(n / grain, 1, static_cast<int64_t>(num_threads_)));
  if (shards == 1 || workers_.empty()) {
    fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    task_n_ = n;
    task_shards_ = shards;
    // Only participating workers join the rendezvous; workers with index
    // >= shards are off the critical path (they may even sleep through the
    // whole epoch — WorkerLoop guards against reading a stale task).
    pending_ = shards - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  // The caller is worker 0 and always participates.
  const auto [begin, end] = ShardRange(n, shards, 0);
  fn(begin, end, 0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  task_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) {
      return;
    }
    seen = epoch_;
    const RangeFn* fn = task_;
    const int64_t n = task_n_;
    const int shards = task_shards_;
    // worker >= shards: not a participant this epoch. fn may even be null
    // here if this worker slept through the epoch it was excluded from and
    // woke after the caller cleared task_ — the guard makes that benign.
    if (worker >= shards) {
      continue;
    }
    lock.unlock();
    const auto [begin, end] = ShardRange(n, shards, worker);
    if (begin < end) {
      (*fn)(begin, end, worker);
    }
    lock.lock();
    if (--pending_ == 0) {
      cv_done_.notify_all();
    }
  }
}

}  // namespace prefillonly
