#include "src/common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace prefillonly {

thread_local ThreadPool::Lease* ThreadPool::tls_lease_ = nullptr;

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(num_threads, 1);
  const int spawned = num_threads_ - 1;
  slots_ = std::make_unique<Slot[]>(static_cast<size_t>(spawned));
  free_workers_.reserve(static_cast<size_t>(spawned));
  for (int w = 0; w < spawned; ++w) {
    free_workers_.push_back(w);
  }
  workers_.reserve(static_cast<size_t>(spawned));
  for (int w = 0; w < spawned; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  for (int w = 0; w < num_threads_ - 1; ++w) {
    slots_[w].cv.notify_one();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool::Lease::Lease(ThreadPool& pool, int want) : pool_(pool) {
  want = std::clamp(want, 0, pool_.num_threads_ - 1);
  {
    std::lock_guard<std::mutex> lock(pool_.mu_);
    while (want > 0 && !pool_.free_workers_.empty()) {
      workers_.push_back(pool_.free_workers_.back());
      pool_.free_workers_.pop_back();
      --want;
    }
  }
  prev_ = tls_lease_;
  tls_lease_ = this;
}

ThreadPool::Lease::~Lease() {
  assert(tls_lease_ == this && "Lease must be destroyed on its binding thread");
  tls_lease_ = prev_;
  if (!workers_.empty()) {
    std::lock_guard<std::mutex> lock(pool_.mu_);
    pool_.free_workers_.insert(pool_.free_workers_.end(), workers_.begin(),
                               workers_.end());
  }
}

std::pair<int64_t, int64_t> ThreadPool::ShardRange(int64_t n, int shards, int shard) {
  assert(shards > 0 && shard >= 0 && shard < shards);
  const int64_t base = n / shards;
  const int64_t rem = n % shards;
  const int64_t begin = shard * base + std::min<int64_t>(shard, rem);
  const int64_t end = begin + base + (shard < rem ? 1 : 0);
  return {begin, end};
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain, const RangeFn& fn) {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int max_shards = static_cast<int>(
      std::clamp<int64_t>(n / grain, 1, static_cast<int64_t>(num_threads_)));
  if (max_shards == 1 || workers_.empty()) {
    fn(0, n, 0);
    return;
  }
  // Workers for this call: the calling thread's reserved lease (if any) plus
  // whatever is idle right now, up to max_shards - 1. The actual shard count
  // never changes results — kernels are element-owned — only wall time.
  Lease* lease =
      (tls_lease_ != nullptr && &tls_lease_->pool_ == this) ? tls_lease_ : nullptr;
  Latch latch;
  const int max_helpers = max_shards - 1;
  std::vector<int> helpers;
  helpers.reserve(static_cast<size_t>(max_helpers));
  int n_borrowed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lease != nullptr) {
      for (int w : lease->workers_) {
        if (static_cast<int>(helpers.size()) >= max_helpers) {
          break;
        }
        helpers.push_back(w);
      }
    }
    while (static_cast<int>(helpers.size()) < max_helpers && !free_workers_.empty()) {
      helpers.push_back(free_workers_.back());
      free_workers_.pop_back();
      ++n_borrowed;
    }
    const int n_helpers = static_cast<int>(helpers.size());
    if (n_helpers > 0) {
      const int shards = n_helpers + 1;
      latch.pending = n_helpers;
      for (int i = 0; i < n_helpers; ++i) {
        Slot& slot = slots_[helpers[static_cast<size_t>(i)]];
        assert(slot.latch == nullptr && "worker handed a task while busy");
        slot.fn = &fn;
        slot.n = n;
        slot.shards = shards;
        slot.shard = i + 1;
        slot.latch = &latch;
        ++slot.epoch;
      }
    }
  }
  const int n_helpers = static_cast<int>(helpers.size());
  if (n_helpers == 0) {
    fn(0, n, 0);
    return;
  }
  // Wake exactly the assigned workers — each sleeps on its own cv.
  for (int i = 0; i < n_helpers; ++i) {
    slots_[helpers[static_cast<size_t>(i)]].cv.notify_one();
  }
  // The caller is always shard 0 of its own call.
  const auto [begin, end] = ShardRange(n, n_helpers + 1, 0);
  fn(begin, end, 0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&latch] { return latch.pending == 0; });
  // Borrowed workers (the last n_borrowed in helpers) rejoin the free set;
  // reserved ones stay with the lease.
  for (int i = n_helpers - n_borrowed; i < n_helpers; ++i) {
    free_workers_.push_back(helpers[static_cast<size_t>(i)]);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  Slot& slot = slots_[worker];
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    slot.cv.wait(lock, [&] { return stop_ || slot.epoch != seen; });
    if (stop_) {
      return;
    }
    seen = slot.epoch;
    const RangeFn* fn = slot.fn;
    const int64_t n = slot.n;
    const int shards = slot.shards;
    const int shard = slot.shard;
    Latch* latch = slot.latch;
    lock.unlock();
    const auto [begin, end] = ShardRange(n, shards, shard);
    if (begin < end) {
      (*fn)(begin, end, shard);
    }
    lock.lock();
    slot.fn = nullptr;
    slot.latch = nullptr;
    if (--latch->pending == 0) {
      cv_done_.notify_all();
    }
  }
}

}  // namespace prefillonly
