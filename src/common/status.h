// Lightweight status / result types used across the PrefillOnly libraries.
//
// The library does not throw for recoverable conditions (allocation budget
// exhausted, request over the maximum input length, cache miss, ...).
// Functions that can fail return Status or Result<T> instead.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace prefillonly {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // Request-lifecycle outcomes (ISSUE 5): a caller withdrew the request, or
  // its deadline lapsed before (or while) it could be served.
  kCancelled,
  kDeadlineExceeded,
  // Cluster serving (ISSUE 8): no replica can take the request right now
  // (every candidate tripped, draining, or unreachable). Transient by
  // definition — the honest client reaction is to back off and retry, so
  // the HTTP mapping is 503 + Retry-After and the facade RetryPolicy
  // treats it like overload shedding.
  kUnavailable,
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor. An engaged message is only kept for
// non-OK statuses.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  // Precondition: ok().
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const T& value_or(const T& fallback) const { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> data_;
};

}  // namespace prefillonly

#endif  // SRC_COMMON_STATUS_H_
