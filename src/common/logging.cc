#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace prefillonly {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace internal
}  // namespace prefillonly
