// Persistent worker pool with deterministic range partitioning.
//
// The engine's intra-op parallelism contract: ParallelFor splits [0, n) into
// at most num_threads() CONTIGUOUS ranges with a fixed arithmetic rule, and
// each range is executed by exactly one thread. Because every kernel built on
// top of it computes each output element with a code path that depends only on
// the element's own coordinates (never on the range boundaries), results are
// bitwise identical for every thread count — including num_threads == 1,
// which runs the body inline on the caller with no pool machinery at all.
// tests/kernel_parity_test.cc and tests/model_test.cc assert this property.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prefillonly {

class ThreadPool {
 public:
  // The body of a parallel loop: called as fn(begin, end, worker) with
  // 0 <= worker < num_threads(); worker 0 is always the calling thread.
  // Distinct calls receive disjoint [begin, end) ranges.
  using RangeFn = std::function<void(int64_t begin, int64_t end, int worker)>;

  // num_threads <= 0 resolves to std::thread::hardware_concurrency().
  // num_threads == 1 spawns no workers: every ParallelFor runs inline,
  // which is exactly the legacy single-threaded execution.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn over a deterministic partition of [0, n). `grain` is the minimum
  // number of iterations worth shipping to a thread: fewer than 2*grain total
  // iterations run inline on the caller. The partition rule (ShardRange) does
  // not affect results for kernels that are element-owned, so the grain is a
  // pure performance knob.
  void ParallelFor(int64_t n, int64_t grain, const RangeFn& fn);

  // The range worker `shard` of `shards` owns: floor-balanced contiguous
  // blocks, first `n % shards` blocks one element larger.
  static std::pair<int64_t, int64_t> ShardRange(int64_t n, int shards, int shard);

 private:
  void WorkerLoop(int worker);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const RangeFn* task_ = nullptr;  // valid while an epoch is in flight
  int64_t task_n_ = 0;
  int task_shards_ = 0;
  uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace prefillonly

#endif  // SRC_COMMON_THREAD_POOL_H_
