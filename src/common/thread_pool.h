// Persistent worker pool with deterministic range partitioning and elastic
// worker-subset views (ISSUE 2).
//
// The engine's intra-op parallelism contract: ParallelFor splits [0, n) into
// CONTIGUOUS ranges with a fixed arithmetic rule, and each range is executed
// by exactly one thread. Because every kernel built on top of it computes
// each output element with a code path that depends only on the element's own
// coordinates (never on the range boundaries), results are bitwise identical
// for every thread count AND for every worker-subset width — including
// num_threads == 1, which runs the body inline on the caller with no pool
// machinery at all. tests/kernel_parity_test.cc, tests/model_test.cc and
// tests/concurrency_test.cc assert this property.
//
// Concurrency model (docs/CONCURRENCY.md): each spawned worker has its own
// task mailbox, so SEVERAL client threads may issue ParallelFor calls at the
// same time as long as they use disjoint workers. Disjointness is arranged
// by Lease: a client thread reserves a set of workers for itself (its
// guaranteed floor share); every ParallelFor call it issues uses those
// reserved workers plus however many currently-idle workers it can borrow.
// Borrowed workers return to the shared free set when the call completes, so
// a lone request elastically expands to the whole machine while N concurrent
// requests settle at ~num_threads/N workers each.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace prefillonly {

class ThreadPool {
 public:
  // The body of a parallel loop: called as fn(begin, end, worker) with
  // 0 <= worker < num_threads(); worker 0 is always the calling thread.
  // Distinct calls receive disjoint [begin, end) ranges.
  using RangeFn = std::function<void(int64_t begin, int64_t end, int worker)>;

  // num_threads <= 0 resolves to std::thread::hardware_concurrency().
  // num_threads == 1 spawns no workers: every ParallelFor runs inline,
  // which is exactly the legacy single-threaded execution.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Reserves up to `want` spawned workers for the calling thread until the
  // Lease is destroyed. While bound, every ParallelFor the thread issues on
  // this pool is guaranteed its reserved workers and may additionally borrow
  // idle ones; other threads can never be handed the reserved workers. The
  // lease binds the CONSTRUCTING thread only and must be destroyed on it
  // (stack object in the executor loop). Fewer than `want` workers — possibly
  // zero — are reserved when the free set is smaller; the request still runs,
  // just narrower. Reserving never blocks.
  class Lease {
   public:
    Lease(ThreadPool& pool, int want);
    ~Lease();

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    // Workers this lease holds exclusively (not counting the caller).
    int reserved() const { return static_cast<int>(workers_.size()); }

   private:
    friend class ThreadPool;
    ThreadPool& pool_;
    std::vector<int> workers_;  // spawned-worker indices, exclusively held
    Lease* prev_ = nullptr;     // restores the previous binding on unwind
  };

  // Runs fn over a deterministic partition of [0, n). `grain` is the minimum
  // number of iterations worth shipping to a thread: fewer than 2*grain total
  // iterations run inline on the caller. The partition rule (ShardRange) does
  // not affect results for kernels that are element-owned, so the grain —
  // like the number of workers that happen to be available — is a pure
  // performance knob.
  void ParallelFor(int64_t n, int64_t grain, const RangeFn& fn);

  // The range worker `shard` of `shards` owns: floor-balanced contiguous
  // blocks, first `n % shards` blocks one element larger.
  static std::pair<int64_t, int64_t> ShardRange(int64_t n, int shards, int shard);

 private:
  // Rendezvous for one ParallelFor call; lives on the issuing thread's stack.
  struct Latch {
    int pending = 0;
  };
  // Per-spawned-worker task mailbox, guarded by mu_. `latch != nullptr`
  // means the worker is running (or about to run) a shard; a worker is never
  // handed a task while busy — the free set / lease bookkeeping guarantees
  // each worker has at most one issuer at a time. Each worker sleeps on its
  // own condition variable so an assignment wakes exactly the assigned
  // workers, not the whole pool (no thundering herd per kernel launch).
  struct Slot {
    std::condition_variable cv;
    const RangeFn* fn = nullptr;
    int64_t n = 0;
    int shards = 0;
    int shard = 0;
    Latch* latch = nullptr;
    uint64_t epoch = 0;  // bumped on every assignment; workers wait on it
  };

  void WorkerLoop(int worker);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_done_;
  std::unique_ptr<Slot[]> slots_;  // one per spawned worker
  std::vector<int> free_workers_;  // spawned workers not held by any lease
  bool stop_ = false;

  static thread_local Lease* tls_lease_;
};

}  // namespace prefillonly

#endif  // SRC_COMMON_THREAD_POOL_H_
