// Hashing utilities for prefix caching.
//
// Prefix caches identify shared prefixes by hashing token blocks into a
// chain: hash(block_i) = Mix(hash(block_{i-1}), tokens of block_i). Two
// sequences share a prefix of k blocks iff their first k chain hashes match
// (modulo negligible collision probability), which is exactly the scheme
// vLLM-style engines use for block-granular prefix caching.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace prefillonly {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = kFnvOffset) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine style mixing with 64-bit constants.
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

// Chain hash for one token block given the previous block's chain hash.
inline uint64_t HashTokenBlock(uint64_t parent_hash, std::span<const int32_t> tokens) {
  uint64_t h = Fnv1a64(tokens.data(), tokens.size() * sizeof(int32_t));
  return HashCombine(parent_hash, h);
}

// Chain hashes for all complete blocks of a token sequence. The trailing
// partial block (if any) is not hashed: partial blocks are never shared.
std::vector<uint64_t> BlockHashChain(std::span<const int32_t> tokens, int block_size);

}  // namespace prefillonly

#endif  // SRC_COMMON_HASH_H_
