// Deterministic fault injection.
//
// Production serving stacks are judged on how they degrade, not on their
// happy path — but failures (allocation exhaustion, I/O errors, wedged
// executors) are rare and nondeterministic in the wild, so nothing exercises
// the recovery code. This module makes failure a *reproducible input*: the
// runtime is instrumented with named injection sites, and a seeded schedule
// decides, purely as a function of (seed, site, hit index), which hits fire.
// Replaying the same schedule replays the exact same fault sequence, so chaos
// tests can assert invariants (no lost completion, balanced accounting)
// instead of merely hoping.
//
// Activation: injection is OFF by default and the instrumented fast path is a
// single relaxed atomic load, so the default build is bit-identical. A
// schedule is installed either via EngineOptions::fault_schedule, the
// PREFILLONLY_FAULT_SCHEDULE environment variable (read once, at first use),
// or a FaultScope in tests. The injector is process-global — one schedule at
// a time — mirroring how a real fault (a failing disk, a flaky NIC) is a
// property of the process's environment, not of one engine instance.
//
// Schedule grammar (semicolon-separated clauses):
//
//   seed=<u64>            RNG seed shared by all probabilistic triggers
//   stall_ms=<ms>         duration used by the exec.stall site
//   <site>=<trigger>;...  which hits of `site` fire:
//       p<float>   each hit fires with probability p (seeded Bernoulli)
//       n<k>       every k-th hit fires (k >= 1)
//       @i,j,...   exactly the listed 1-based hit indices fire
//       x<k>       the first k hits fire
//
//   e.g.  "seed=7;alloc.kv_block=p0.25;offload.read=@1,3;exec.stall=x1;stall_ms=300"
//
// Site catalog (see docs/ROBUSTNESS.md for what each failure means):
//   alloc.activation   TrackingAllocator::Allocate returns nullptr (arena OOM)
//   alloc.kv_block     BlockAllocator::Allocate returns kResourceExhausted
//   cache.force_miss   PrefixCache::Acquire matches zero blocks
//   offload.read       OffloadDirectory::MatchContinuation reads nothing
//   offload.write      demotion to the offload tier is dropped (write error)
//   socket.recv        HttpServer read() observes a transient EINTR
//   socket.send        HttpServer send() fails mid-response (connection lost)
//   socket.short_write HttpServer send() accepts only a few bytes per call
//   exec.stall         an executor lane sleeps stall_ms before prefilling
//   replica.submit     ReplicaSet hand-off to a replica fails (transport lost)
//   replica.health     a replica's health probe fails (monitor strike)
//   replica.stall      the router sleeps stall_ms before handing a request off
#ifndef SRC_COMMON_FAULT_H_
#define SRC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace prefillonly {

namespace fault {
inline constexpr char kAllocActivation[] = "alloc.activation";
inline constexpr char kAllocKvBlock[] = "alloc.kv_block";
inline constexpr char kCacheForceMiss[] = "cache.force_miss";
inline constexpr char kOffloadRead[] = "offload.read";
inline constexpr char kOffloadWrite[] = "offload.write";
inline constexpr char kSocketRecv[] = "socket.recv";
inline constexpr char kSocketSend[] = "socket.send";
inline constexpr char kSocketShortWrite[] = "socket.short_write";
inline constexpr char kExecStall[] = "exec.stall";
inline constexpr char kReplicaSubmit[] = "replica.submit";
inline constexpr char kReplicaHealth[] = "replica.health";
inline constexpr char kReplicaStall[] = "replica.stall";
}  // namespace fault

struct FaultSiteStats {
  int64_t hits = 0;   // times the site was reached with injection enabled
  int64_t fires = 0;  // times the site actually failed
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  // Installs a schedule (replacing any current one). An empty spec disables
  // injection. Returns kInvalidArgument on a malformed spec, leaving the
  // injector disabled.
  Status LoadSchedule(const std::string& spec);
  void Clear();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Counts a hit at `site` and returns true if the schedule fires the fault.
  // Hot-path cost when disabled: one relaxed atomic load, no lock.
  bool Fire(const char* site);

  // Duration knob for exec.stall (0 unless the schedule sets stall_ms).
  int stall_ms() const;

  // Per-site counters since the last LoadSchedule/Clear. Sites never reached
  // are absent; sites present in the schedule start at zero.
  std::map<std::string, FaultSiteStats> SiteStats() const;
  int64_t total_fires() const { return total_fires_.load(std::memory_order_relaxed); }

 private:
  enum class TriggerKind { kProbability, kEveryNth, kIndices, kFirstN };

  struct Trigger {
    TriggerKind kind;
    double probability = 0.0;        // kProbability
    uint64_t n = 0;                  // kEveryNth / kFirstN
    std::vector<uint64_t> indices;   // kIndices (sorted, 1-based)
    uint64_t rng_state = 0;          // per-site seeded stream (kProbability)
    FaultSiteStats stats;
  };

  FaultInjector();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> total_fires_{0};
  mutable std::mutex mu_;
  std::map<std::string, Trigger> sites_;
  int stall_ms_ = 0;
};

// RAII schedule installation for tests: installs on construction, clears on
// destruction. Aborts the test (CHECK-style) if the spec is malformed so a
// typo'd schedule cannot silently run a no-fault "chaos" test.
class FaultScope {
 public:
  explicit FaultScope(const std::string& spec);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace prefillonly

#endif  // SRC_COMMON_FAULT_H_
