// Deterministic random number generation.
//
// Everything in this repository that involves randomness (synthetic datasets,
// Poisson arrivals, random weight initialization) goes through these
// generators so that every test, example and benchmark is reproducible from
// a seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace prefillonly {

// SplitMix64: used to expand a single seed into stream seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Small, fast, high-quality, and fully
// deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Exponential with the given rate (events per unit time); used for Poisson
  // inter-arrival gaps.
  double NextExponential(double rate) {
    double u = NextDouble();
    if (u < 1e-300) {
      u = 1e-300;
    }
    return -std::log(u) / rate;
  }

  // Uniform float in [-scale, scale); used for weight initialization.
  float NextUniformFloat(float scale) {
    return static_cast<float>((NextDouble() * 2.0 - 1.0) * scale);
  }

  // Derive an independent child generator (e.g. one stream per user).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace prefillonly

#endif  // SRC_COMMON_RNG_H_
