// Minimal leveled logging to stderr.
//
// The engine code logs sparingly (scheduling decisions at kDebug, lifecycle
// at kInfo, recoverable failures at kWarning). Benchmarks and tests default
// to kWarning so their stdout stays machine-parseable.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace prefillonly {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level. Not synchronized: set it once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PO_LOG_DEBUG                                                      \
  if (static_cast<int>(::prefillonly::GetLogLevel()) <=                   \
      static_cast<int>(::prefillonly::LogLevel::kDebug))                  \
  ::prefillonly::internal::LogMessage(::prefillonly::LogLevel::kDebug,    \
                                      __FILE__, __LINE__)                 \
      .stream()
#define PO_LOG_INFO                                                       \
  if (static_cast<int>(::prefillonly::GetLogLevel()) <=                   \
      static_cast<int>(::prefillonly::LogLevel::kInfo))                   \
  ::prefillonly::internal::LogMessage(::prefillonly::LogLevel::kInfo,     \
                                      __FILE__, __LINE__)                 \
      .stream()
#define PO_LOG_WARNING                                                    \
  if (static_cast<int>(::prefillonly::GetLogLevel()) <=                   \
      static_cast<int>(::prefillonly::LogLevel::kWarning))                \
  ::prefillonly::internal::LogMessage(::prefillonly::LogLevel::kWarning,  \
                                      __FILE__, __LINE__)                 \
      .stream()
#define PO_LOG_ERROR                                                      \
  if (static_cast<int>(::prefillonly::GetLogLevel()) <=                   \
      static_cast<int>(::prefillonly::LogLevel::kError))                  \
  ::prefillonly::internal::LogMessage(::prefillonly::LogLevel::kError,    \
                                      __FILE__, __LINE__)                 \
      .stream()

}  // namespace prefillonly

#endif  // SRC_COMMON_LOGGING_H_
