// Llama-architecture transformer with three prefill execution strategies.
//
// This is the real-computation half of the reproduction: a from-scratch
// CPU implementation of the model family the paper serves (RMSNorm + RoPE +
// grouped-query attention + SwiGLU MLP), with the execution strategies the
// paper contrasts:
//
//  - kStandard: full-sequence forward, one layer at a time. Linear-layer
//    intermediates are materialized for the whole sequence — the memory
//    spikes of Fig. 3a. KV for all layers is held for the whole pass (what
//    vanilla engines do), unless `drop_kv_in_pass` models the naive
//    "just drop KV" ablation of §4.1.
//  - kChunked: chunked prefill (Sarathi-style baseline). Tokens advance
//    through all layers chunk-by-chunk, so the KV cache of every layer must
//    stay resident between chunks — the reason chunked prefill only buys
//    ~2x max input length (§2.5).
//  - kHybrid: the paper's hybrid prefilling (§4.2). Attention runs over the
//    full sequence; every linear layer runs chunk-by-chunk. Only the
//    current layer's KV is alive during the pass, plus whatever prefix the
//    retention policy keeps. `preallocate_outputs` and `in_place` are the
//    two optimizations of §4.3.
//
// All three strategies produce bitwise identical logits (linear layers are
// row-independent and the attention summation order is fixed); the test
// suite asserts exact equality. The same row-independence is what makes
// PrefillBatch exact (ISSUE 4): stacking several sequences' rows into one
// activation matrix with block-diagonal attention reproduces each
// sequence's solo logits bit for bit, in every mode.
#ifndef SRC_MODEL_LLAMA_H_
#define SRC_MODEL_LLAMA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/model/config.h"
#include "src/model/kv.h"
#include "src/model/rope_table.h"
#include "src/tensor/ops_dispatch.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"

namespace prefillonly {

class ThreadPool;

enum class PrefillMode { kStandard, kChunked, kHybrid };

enum class KvRetention {
  kNone,          // discard everything (pure prefill-only execution)
  kAll,           // keep KV of all new tokens, all layers (vanilla engine)
  kPrefixBudget,  // suffix KV discarding: keep new tokens' KV only up to a
                  // global prefix budget (absolute token position)
};

struct PrefillOptions {
  PrefillMode mode = PrefillMode::kHybrid;
  int64_t chunk_size = 64;

  // Hybrid-only optimizations (§4.3). Disabling them reproduces the
  // Fig. 10 ablation bars.
  bool preallocate_outputs = true;
  bool in_place = true;

  // Standard-only: free each layer's KV right after its attention instead
  // of keeping all layers resident (the naive §4.1 ablation; incompatible
  // with retention != kNone).
  bool drop_kv_in_pass = false;

  KvRetention retention = KvRetention::kNone;
  // Absolute token position up to which KV is retained under kPrefixBudget.
  int64_t prefix_budget_tokens = 0;

  // Cooperative in-flight abort: when set, the pass calls this at work
  // boundaries — between chunks (kChunked, and every chunked linear of
  // kHybrid) and between layers (kStandard) — and a non-OK status aborts the
  // prefill immediately, returning that status with the remaining work
  // skipped. The check must be cheap and must not touch model state. Unset
  // (the default) adds no work to the pass, and the checks never alter the
  // computation itself, so logits stay bit-identical either way.
  std::function<Status()> abort_check;
};

struct PrefillResult {
  // Logits of the final position — all a prefill-only request needs.
  std::vector<float> last_logits;
  // Newly computed KV, starting at absolute position `kv_start`, covering
  // `kv.n_tokens` tokens (per the retention policy). Empty for kNone.
  KvCacheData kv;
  int64_t kv_start = 0;
  int64_t n_new = 0;  // tokens actually computed (input minus cached prefix)
};

// One sequence of a batched prefill (ISSUE 4). Retention is per sequence
// (each request brings its own suffix-discarding budget); everything else —
// mode, chunking, the §4.3 optimizations — comes from the shared
// PrefillOptions, whose own retention fields are ignored by PrefillBatch.
struct PrefillSequence {
  std::span<const int32_t> tokens;
  // KV of tokens [0, cached_prefix->n_tokens); may be null.
  const KvCacheData* cached_prefix = nullptr;
  KvRetention retention = KvRetention::kNone;
  // Absolute token position up to which KV is retained under kPrefixBudget.
  int64_t prefix_budget_tokens = 0;
};

class LlamaModel {
 public:
  // Deterministically random-initialized weights (scaled uniform).
  // `backend` picks the kernel backend for every op of the forward pass
  // (ISSUE 3): kAuto resolves PREFILLONLY_KERNEL_BACKEND, then the best
  // available. When the resolved backend packs weights (kAvx2), each weight
  // matrix is repacked once, here, into the panel-major layout its GEMM
  // sweeps (src/tensor/prepack.h); the packed image replaces the row-major
  // one, so weight_bytes() stays ~flat (panel zero-padding only).
  explicit LlamaModel(ModelConfig config, uint64_t seed,
                      KernelBackend backend = KernelBackend::kAuto);

  LlamaModel(const LlamaModel&) = delete;
  LlamaModel& operator=(const LlamaModel&) = delete;

  const ModelConfig& config() const { return config_; }
  size_t weight_bytes() const { return weight_alloc_->current_bytes(); }

  // The resolved kernel backend (never kAuto) and its op table.
  KernelBackend kernel_backend() const { return kops_->backend; }
  const KernelOps* kernel_ops() const { return kops_; }

  // Intra-op parallelism. The pool (not owned; may be null = serial) is used
  // by every kernel of the forward pass. Work is partitioned so each output
  // element is owned by exactly one thread with a fixed accumulation order,
  // so logits are bitwise identical for every thread count and every
  // PrefillMode (tests/model_test.cc asserts this). Not thread-safe against
  // concurrent Prefill calls; set it once at wiring time.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  // Runs the prefill phase over `tokens`, reusing `cached_prefix` (KV of
  // tokens [0, cached_prefix->n_tokens), may be null) and allocating all
  // activations from `activations` — which may carry a byte budget, in
  // which case exceeding it returns kResourceExhausted.
  //
  // Requires cached_prefix->n_tokens < tokens.size(): the last token's
  // logits must be computed, so at least one token is always prefilled.
  Result<PrefillResult> Prefill(std::span<const int32_t> tokens,
                                const KvCacheData* cached_prefix,
                                const PrefillOptions& options,
                                TrackingAllocator& activations) const;

  // Continuous batching inside one executor lane (ISSUE 4): prefills all
  // `sequences` in one pass by stacking their new-token rows into a single
  // activation matrix. Linear layers (and their chunking) run over the
  // stacked rows — one GEMM of sum(n_new) rows instead of B small ones —
  // while attention stays block-diagonal: each sequence's query rows attend
  // only its own prefix + new keys, via per-sequence row-slice calls into
  // the same dispatched kernels. RoPE positions and KV/logit writeback are
  // per sequence. Returns one PrefillResult per sequence, in order.
  //
  // Determinism contract: because every kernel computes each output row from
  // that row's inputs alone (fixed ascending-k accumulation, no
  // cross-sequence reduction), sequence i's logits and retained KV are
  // BITWISE identical to a solo Prefill(sequences[i]) with the same options,
  // for every batch composition, thread count, and prefill mode — within a
  // kernel backend (tests/batching_test.cc).
  //
  // drop_kv_in_pass is rejected (a solo-ablation knob); options.retention /
  // options.prefix_budget_tokens are ignored in favor of the per-sequence
  // fields.
  Result<std::vector<PrefillResult>> PrefillBatch(
      std::span<const PrefillSequence> sequences, const PrefillOptions& options,
      TrackingAllocator& activations) const;

 private:
  // One weight matrix, in exactly one layout: row-major `dense` for
  // backends that read it in place, or the panel-major `packed` image for
  // backends that pack (the dense image is released right after the pack —
  // keeping both would double resident weight memory).
  struct Weight {
    Tensor dense;         // [k, n] row-major; empty when packed is engaged
    PackedMatrix packed;  // engaged iff kops_->gemm_layout == kPacked
  };

  struct LayerWeights {
    Tensor attn_norm;  // [h]
    Weight wq;         // [h, q_size]
    Weight wk;         // [h, kv_size]
    Weight wv;         // [h, kv_size]
    Weight wo;         // [q_size, h]
    Tensor mlp_norm;   // [h]
    Weight w_gate_up;  // [h, 2*intermediate]  (fused gate/up projection)
    Weight w_down;     // [intermediate, h]
  };

  // MatMul against a weight matrix, taking the packed path when the weight
  // carries a packed image.
  void MatMulW(const float* a, const Weight& w, float* c, int64_t m) const;

  Status Validate(std::span<const int32_t> tokens, const KvCacheData* cached_prefix,
                  const PrefillOptions& options) const;

  Result<PrefillResult> PrefillStandard(std::span<const int32_t> tokens,
                                        const KvCacheData* prefix,
                                        const PrefillOptions& options,
                                        TrackingAllocator& act) const;
  Result<PrefillResult> PrefillChunked(std::span<const int32_t> tokens,
                                       const KvCacheData* prefix,
                                       const PrefillOptions& options,
                                       TrackingAllocator& act) const;
  Result<PrefillResult> PrefillHybrid(std::span<const int32_t> tokens,
                                      const KvCacheData* prefix,
                                      const PrefillOptions& options,
                                      TrackingAllocator& act) const;

  // Where one sequence's new-token rows live inside the stacked batch
  // matrix: rows [row0, row0 + n_new).
  struct SeqLayout {
    int64_t n_total = 0;   // tokens.size()
    int64_t n_cached = 0;  // cached prefix length
    int64_t n_new = 0;     // n_total - n_cached
    int64_t row0 = 0;      // first stacked row
  };

  Result<std::vector<PrefillResult>> PrefillBatchStandard(
      std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
      const PrefillOptions& options, TrackingAllocator& act) const;
  Result<std::vector<PrefillResult>> PrefillBatchChunked(
      std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
      const PrefillOptions& options, TrackingAllocator& act) const;
  Result<std::vector<PrefillResult>> PrefillBatchHybrid(
      std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
      const PrefillOptions& options, TrackingAllocator& act) const;

  // Causal attention for query rows at absolute positions
  // [q_pos0, q_pos0 + q_rows) over prefix KV (may be null) plus the first
  // `new_rows` rows of k_new/v_new (absolute positions n_prefix..). Raw
  // row pointers (strides implied by the config: q/out q_size, k/v
  // kv_size) so batched callers can pass row slices of stacked buffers.
  // Parallel over (query row, head) pairs; each pair is computed start to
  // finish by one thread, so results are bitwise independent of the thread
  // count. `scores` is worker 0's scratch row (scores_stride >= q_pos0 +
  // q_rows floats, budget-tracked — the one row the activation walker
  // models); `extra_scores` is untracked host scratch of (workers() - 1)
  // more rows at the same stride, null when workers() == 1. Keeping the
  // extra rows out of the tracked budget keeps activation accounting and
  // MIL predictions machine-independent. Writes [q_rows, q_size] into
  // `out`.
  void Attention(const float* q, int64_t q_rows, int64_t q_pos0, const LayerKv* prefix,
                 const float* k_new, const float* v_new, int64_t new_rows, float* out,
                 float* scores, float* extra_scores, int64_t scores_stride) const;

  // Number of score-scratch rows Attention may use (= pool threads).
  int64_t workers() const;

  // Final RMSNorm + LM head for a single hidden row.
  std::vector<float> LastLogits(const float* hidden_row,
                                TrackingAllocator& act) const;

  ModelConfig config_;
  std::unique_ptr<TrackingAllocator> weight_alloc_;
  ThreadPool* pool_ = nullptr;         // not owned; null = serial
  const KernelOps* kops_ = nullptr;    // resolved kernel backend table
  // Precomputed RoPE cos/sin rows, grown lazily to the longest position a
  // pass has seen (mutable: growth is a cache fill, logically const).
  mutable RopeTable rope_table_;
  Tensor embedding_;   // [vocab, h]
  std::vector<LayerWeights> layers_;
  Tensor final_norm_;  // [h]
  Weight lm_head_;     // [h, vocab]
};

}  // namespace prefillonly

#endif  // SRC_MODEL_LLAMA_H_
