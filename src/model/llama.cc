#include "src/model/llama.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"

namespace prefillonly {

namespace {

Status Oom(const char* tag) {
  return Status::ResourceExhausted(std::string("activation allocation failed: ") + tag);
}

// Cooperative abort poll (PrefillOptions::abort_check), called at chunk and
// layer boundaries. Ok when no check is installed.
Status CheckAbort(const PrefillOptions& options) {
  if (!options.abort_check) {
    return Status::Ok();
  }
  return options.abort_check();
}

// Fills a tensor with deterministic uniform values in [-scale, scale).
void InitUniform(Tensor& t, Rng& rng, float scale) {
  for (float& v : t.span()) {
    v = rng.NextUniformFloat(scale);
  }
}

}  // namespace

// Declares `var` as a budget-checked activation tensor; returns
// kResourceExhausted from the enclosing function when the allocator budget
// would be exceeded. The shape goes last so brace-lists with commas work.
#define PO_TRY_ALLOC(var, alloc, tag, ...)                 \
  Tensor var = Tensor::TryCreate(alloc, __VA_ARGS__, tag); \
  if (var.empty()) {                                       \
    return Oom(tag);                                       \
  }

LlamaModel::LlamaModel(ModelConfig config, uint64_t seed, KernelBackend backend)
    : config_(std::move(config)),
      weight_alloc_(std::make_unique<TrackingAllocator>()),
      kops_(GetKernelOps(backend)),
      rope_table_(config_.head_dim, config_.rope_theta) {
  assert(config_.Valid());
  // Warm the RoPE table for typical request lengths; longer passes grow it
  // lazily (and exactly once) in Prefill.
  rope_table_.EnsureCapacity(1024);
  Rng rng(seed);
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kv = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  auto& wa = *weight_alloc_;

  embedding_ = Tensor::Uninit(wa, {config_.vocab_size, h}, "w.embedding");
  InitUniform(embedding_, rng, 0.05f);

  const auto fan = [](int64_t fan_in) {
    return 1.0f / std::sqrt(static_cast<float>(fan_in));
  };

  // Initializes a weight matrix and — when the backend wants it — repacks
  // it into its panel-major image right away (the one-time prepack of
  // ISSUE 3), then releases the dense image: the packed GEMM is the only
  // reader, and keeping both would double resident weight memory — memory
  // the engine would rather spend on KV cache. The rng is consumed
  // identically either way, so weights are seed-deterministic across
  // backends; the transient dense+packed overlap is one matrix wide.
  const auto make_weight = [&](std::vector<int64_t> shape, const char* tag,
                               float scale) {
    Weight w;
    w.dense = Tensor::Uninit(wa, std::move(shape), tag);
    InitUniform(w.dense, rng, scale);
    if (kops_->gemm_layout == GemmLayout::kPacked) {
      w.packed = PackWeights(wa, w.dense.data(), w.dense.dim(0), w.dense.dim(1),
                             std::string(tag) + ".packed");
      w.dense = Tensor();
    }
    return w;
  };

  layers_.resize(static_cast<size_t>(config_.n_layers));
  for (auto& layer : layers_) {
    layer.attn_norm = Tensor::Uninit(wa, {h}, "w.attn_norm");
    for (float& v : layer.attn_norm.span()) {
      v = 1.0f + rng.NextUniformFloat(0.02f);
    }
    layer.wq = make_weight({h, qs}, "w.wq", fan(h));
    layer.wk = make_weight({h, kv}, "w.wk", fan(h));
    layer.wv = make_weight({h, kv}, "w.wv", fan(h));
    layer.wo = make_weight({qs, h}, "w.wo", fan(qs));
    layer.mlp_norm = Tensor::Uninit(wa, {h}, "w.mlp_norm");
    for (float& v : layer.mlp_norm.span()) {
      v = 1.0f + rng.NextUniformFloat(0.02f);
    }
    layer.w_gate_up = make_weight({h, 2 * inter}, "w.gate_up", fan(h));
    layer.w_down = make_weight({inter, h}, "w.down", fan(inter));
  }

  final_norm_ = Tensor::Uninit(wa, {h}, "w.final_norm");
  for (float& v : final_norm_.span()) {
    v = 1.0f + rng.NextUniformFloat(0.02f);
  }
  lm_head_ = make_weight({h, config_.vocab_size}, "w.lm_head", fan(h));
}

void LlamaModel::MatMulW(const float* a, const Weight& w, float* c,
                         int64_t m) const {
  if (!w.packed.empty()) {
    MatMulPacked(a, w.packed, c, m, pool_, kops_);
  } else {
    MatMul(a, w.dense.data(), c, m, w.dense.dim(0), w.dense.dim(1), pool_, kops_);
  }
}

Status LlamaModel::Validate(std::span<const int32_t> tokens,
                            const KvCacheData* cached_prefix,
                            const PrefillOptions& options) const {
  if (tokens.empty()) {
    return Status::InvalidArgument("empty token sequence");
  }
  for (int32_t t : tokens) {
    if (t < 0 || t >= config_.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary range");
    }
  }
  if (cached_prefix != nullptr && !cached_prefix->empty()) {
    if (cached_prefix->n_tokens >= static_cast<int64_t>(tokens.size())) {
      return Status::InvalidArgument(
          "cached prefix must be shorter than the request: the last token's "
          "logits are always recomputed");
    }
    if (cached_prefix->layers.size() != layers_.size()) {
      return Status::InvalidArgument("cached prefix layer count mismatch");
    }
  }
  if (options.chunk_size <= 0 &&
      (options.mode == PrefillMode::kChunked || options.mode == PrefillMode::kHybrid)) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  if (options.in_place && !options.preallocate_outputs) {
    return Status::InvalidArgument("in_place requires preallocate_outputs");
  }
  if (options.drop_kv_in_pass) {
    if (options.mode != PrefillMode::kStandard) {
      return Status::InvalidArgument("drop_kv_in_pass only applies to kStandard");
    }
    if (options.retention != KvRetention::kNone) {
      return Status::InvalidArgument("drop_kv_in_pass cannot retain KV");
    }
  }
  if (options.retention == KvRetention::kPrefixBudget &&
      options.prefix_budget_tokens < 0) {
    return Status::InvalidArgument("negative prefix budget");
  }
  return Status::Ok();
}

Result<PrefillResult> LlamaModel::Prefill(std::span<const int32_t> tokens,
                                          const KvCacheData* cached_prefix,
                                          const PrefillOptions& options,
                                          TrackingAllocator& activations) const {
  if (Status s = Validate(tokens, cached_prefix, options); !s.ok()) {
    return s;
  }
  const KvCacheData* prefix =
      (cached_prefix != nullptr && !cached_prefix->empty()) ? cached_prefix : nullptr;
  switch (options.mode) {
    case PrefillMode::kStandard:
      return PrefillStandard(tokens, prefix, options, activations);
    case PrefillMode::kChunked:
      return PrefillChunked(tokens, prefix, options, activations);
    case PrefillMode::kHybrid:
      return PrefillHybrid(tokens, prefix, options, activations);
  }
  return Status::Internal("unknown prefill mode");
}

int64_t LlamaModel::workers() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

void LlamaModel::Attention(const float* q, int64_t q_rows, int64_t q_pos0,
                           const LayerKv* prefix, const float* k_new,
                           const float* v_new, int64_t new_rows, float* out,
                           float* scores, float* extra_scores,
                           int64_t scores_stride) const {
  const int64_t head_dim = config_.head_dim;
  const int64_t n_heads = config_.n_heads;
  const int64_t group = n_heads / config_.n_kv_heads;
  const int64_t qs = config_.q_size();
  const int64_t n_prefix = (prefix != nullptr) ? prefix->k.rows() : 0;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
  assert(q_pos0 + q_rows <= scores_stride);

  // One work item = one (query row, head) pair. Each pair owns the disjoint
  // output slice out[i*qs + head*head_dim, +head_dim) and runs the full
  // score/softmax/weighted-sum sequence on a single thread, in the same
  // order as the serial loop — bitwise identical for every thread count.
  const auto body = [&](int64_t begin, int64_t end, int worker) {
    float* my_scores =
        worker == 0 ? scores : extra_scores + (worker - 1) * scores_stride;
    for (int64_t idx = begin; idx < end; ++idx) {
      const int64_t i = idx / n_heads;
      const int64_t head = idx % n_heads;
      const int64_t abs_pos = q_pos0 + i;  // query i attends keys [0, abs_pos]
      const int64_t n_keys = abs_pos + 1;
      assert(n_keys - n_prefix <= new_rows);
      const int64_t kv_head = head / group;
      const int64_t kvw = config_.kv_size();
      const float* q_vec = q + i * qs + head * head_dim;
      for (int64_t j = 0; j < n_keys; ++j) {
        const float* k_vec = (j < n_prefix)
                                 ? prefix->k.row(j) + kv_head * head_dim
                                 : k_new + (j - n_prefix) * kvw + kv_head * head_dim;
        my_scores[j] = Dot(q_vec, k_vec, head_dim, kops_) * inv_sqrt_d;
      }
      SoftmaxRow(my_scores, n_keys, kops_);
      float* o_vec = out + i * qs + head * head_dim;
      std::memset(o_vec, 0, static_cast<size_t>(head_dim) * sizeof(float));
      for (int64_t j = 0; j < n_keys; ++j) {
        const float* v_vec = (j < n_prefix)
                                 ? prefix->v.row(j) + kv_head * head_dim
                                 : v_new + (j - n_prefix) * kvw + kv_head * head_dim;
        Axpy(o_vec, v_vec, my_scores[j], head_dim, kops_);
      }
    }
  };
  const int64_t work = q_rows * n_heads;
  const int shards = pool_ != nullptr ? pool_->num_threads() : 1;
  if (shards == 1 || work < 2) {
    body(0, work, 0);
    return;
  }
  // Causal attention cost is triangular: row i costs ~(q_pos0 + i + 1)
  // keys per head. Equal-size index ranges would hand the last thread ~2x
  // the average work, so shard by equal AREA instead, at (row, head)
  // granularity so even a 1-row chunk still spreads its heads across
  // threads. Cumulative cost before flat index idx = (i, h):
  //   C(idx) = W(i) * n_heads + h * (q_pos0 + i + 1),
  // with W(i) = i*q_pos0 + i*(i+1)/2 the per-head cost of rows [0, i).
  // Ownership stays unique and per-element computation untouched, so bits
  // are identical to any other partition — purely a load-balance choice.
  const auto weight_before = [&](int64_t i) { return i * q_pos0 + i * (i + 1) / 2; };
  const auto cum_cost = [&](int64_t idx) {
    const int64_t i = idx / n_heads;
    const int64_t h = idx % n_heads;
    return weight_before(i) * n_heads + h * (q_pos0 + i + 1);
  };
  const int64_t total = weight_before(q_rows) * n_heads;
  std::vector<int64_t> bounds(static_cast<size_t>(shards) + 1, 0);
  bounds[static_cast<size_t>(shards)] = work;
  for (int s = 1; s < shards; ++s) {
    const int64_t target = total * s / shards;
    int64_t lo = bounds[static_cast<size_t>(s) - 1];  // monotone bounds
    int64_t hi = work;
    while (lo < hi) {  // smallest idx with cum_cost(idx) >= target
      const int64_t mid = lo + (hi - lo) / 2;
      if (cum_cost(mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    bounds[static_cast<size_t>(s)] = lo;
  }
  pool_->ParallelFor(shards, /*grain=*/1, [&](int64_t s0, int64_t s1, int worker) {
    for (int64_t s = s0; s < s1; ++s) {
      body(bounds[static_cast<size_t>(s)], bounds[static_cast<size_t>(s) + 1], worker);
    }
  });
}

std::vector<float> LlamaModel::LastLogits(const float* hidden_row,
                                          TrackingAllocator& act) const {
  (void)act;  // the two row-sized buffers below are negligible
  const int64_t h = config_.hidden_size;
  std::vector<float> normed(static_cast<size_t>(h));
  RmsNormRows(hidden_row, final_norm_.data(), normed.data(), 1, h, config_.rms_eps,
              nullptr, kops_);
  std::vector<float> logits(static_cast<size_t>(config_.vocab_size));
  MatMulW(normed.data(), lm_head_, logits.data(), 1);
  return logits;
}

namespace {

// Shared retention bookkeeping: how many of the `n_new` freshly computed
// tokens (starting at absolute position n_cached) should be kept.
int64_t RetainedNewTokens(const PrefillOptions& options, int64_t n_cached,
                          int64_t n_new) {
  switch (options.retention) {
    case KvRetention::kNone:
      return 0;
    case KvRetention::kAll:
      return n_new;
    case KvRetention::kPrefixBudget:
      return std::clamp<int64_t>(options.prefix_budget_tokens - n_cached, 0, n_new);
  }
  return 0;
}

}  // namespace

Result<PrefillResult> LlamaModel::PrefillStandard(std::span<const int32_t> tokens,
                                                  const KvCacheData* prefix,
                                                  const PrefillOptions& options,
                                                  TrackingAllocator& act) const {
  const int64_t n_total = static_cast<int64_t>(tokens.size());
  const int64_t n_cached = (prefix != nullptr) ? prefix->n_tokens : 0;
  const int64_t n_new = n_total - n_cached;
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;

  std::vector<int32_t> positions(static_cast<size_t>(n_new));
  for (int64_t i = 0; i < n_new; ++i) {
    positions[static_cast<size_t>(i)] = static_cast<int32_t>(n_cached + i);
  }
  rope_table_.EnsureCapacity(n_total);

  PO_TRY_ALLOC(hidden, act, "act.hidden", {n_new, h});
  EmbeddingLookup(embedding_.data(), tokens.subspan(static_cast<size_t>(n_cached)),
                  hidden.data(), h);

  // Vanilla engines allocate KV for every layer for the whole pass.
  std::vector<LayerKv> pass_kv;
  if (!options.drop_kv_in_pass) {
    pass_kv.resize(layers_.size());
    for (size_t l = 0; l < layers_.size(); ++l) {
      pass_kv[l].k = Tensor::TryCreate(act, {n_new, kvw}, "kv.k");
      pass_kv[l].v = Tensor::TryCreate(act, {n_new, kvw}, "kv.v");
      if (pass_kv[l].k.empty() || pass_kv[l].v.empty()) {
        return Oom("kv.all_layers");
      }
    }
  }

  // The modeled score-scratch row (matches the seed trace and the
  // activation walker); extra per-thread rows are untracked host scratch so
  // budgets stay machine-independent.
  PO_TRY_ALLOC(scores, act, "attn.scores", {n_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * n_total));

  for (size_t l = 0; l < layers_.size(); ++l) {
    if (Status abort = CheckAbort(options); !abort.ok()) {
      return abort;
    }
    const LayerWeights& w = layers_[l];
    const LayerKv* layer_prefix = (prefix != nullptr) ? &prefix->layers[l] : nullptr;

    PO_TRY_ALLOC(normed, act, "act.normed", {n_new, h});
    RmsNormRows(hidden.data(), w.attn_norm.data(), normed.data(), n_new, h,
                config_.rms_eps, pool_, kops_);

    PO_TRY_ALLOC(q, act, "act.q", {n_new, qs});
    MatMulW(normed.data(), w.wq, q.data(), n_new);

    Tensor k_local;
    Tensor v_local;
    Tensor* k_layer = nullptr;
    Tensor* v_layer = nullptr;
    if (options.drop_kv_in_pass) {
      k_local = Tensor::TryCreate(act, {n_new, kvw}, "kv.k");
      v_local = Tensor::TryCreate(act, {n_new, kvw}, "kv.v");
      if (k_local.empty() || v_local.empty()) {
        return Oom("kv.layer");
      }
      k_layer = &k_local;
      v_layer = &v_local;
    } else {
      k_layer = &pass_kv[l].k;
      v_layer = &pass_kv[l].v;
    }
    MatMulW(normed.data(), w.wk, k_layer->data(), n_new);
    MatMulW(normed.data(), w.wv, v_layer->data(), n_new);
    normed = Tensor();  // free before attention

    ApplyRopeWithTable(q.data(), n_new, config_.n_heads, config_.head_dim, positions,
                       rope_table_, pool_);
    ApplyRopeWithTable(k_layer->data(), n_new, config_.n_kv_heads, config_.head_dim,
                       positions, rope_table_, pool_);

    PO_TRY_ALLOC(attn_out, act, "act.attn_out", {n_new, qs});
    Attention(q.data(), n_new, n_cached, layer_prefix, k_layer->data(),
              v_layer->data(), n_new, attn_out.data(), scores.data(),
              extra_scores.empty() ? nullptr : extra_scores.data(), n_total);
    q = Tensor();

    PO_TRY_ALLOC(attn_proj, act, "act.attn_proj", {n_new, h});
    MatMulW(attn_out.data(), w.wo, attn_proj.data(), n_new);
    attn_out = Tensor();
    AddInPlace(hidden.data(), attn_proj.data(), n_new * h, pool_, kops_);
    attn_proj = Tensor();

    PO_TRY_ALLOC(normed2, act, "act.normed", {n_new, h});
    RmsNormRows(hidden.data(), w.mlp_norm.data(), normed2.data(), n_new, h,
                config_.rms_eps, pool_, kops_);
    // The Fig. 3/4 spike: [n_new, 2*intermediate] = 28672 floats/token at
    // Llama-3.1-8B scale, 14x one layer's KV cache.
    PO_TRY_ALLOC(gate_up, act, "mlp.intermediate1", {n_new, 2 * inter});
    MatMulW(normed2.data(), w.w_gate_up, gate_up.data(), n_new);
    normed2 = Tensor();
    PO_TRY_ALLOC(mlp_act, act, "mlp.intermediate2", {n_new, inter});
    SwiGluRows(gate_up.data(), mlp_act.data(), n_new, inter, pool_, kops_);
    gate_up = Tensor();
    PO_TRY_ALLOC(down, act, "mlp.down", {n_new, h});
    MatMulW(mlp_act.data(), w.w_down, down.data(), n_new);
    mlp_act = Tensor();
    AddInPlace(hidden.data(), down.data(), n_new * h, pool_, kops_);
  }

  PrefillResult result;
  result.n_new = n_new;
  result.kv_start = n_cached;
  result.last_logits = LastLogits(hidden.row(n_new - 1), act);

  const int64_t retained = RetainedNewTokens(options, n_cached, n_new);
  if (retained > 0) {
    KvCacheData fresh;
    fresh.n_tokens = n_new;
    fresh.layers = std::move(pass_kv);
    if (retained == n_new) {
      result.kv = std::move(fresh);
    } else {
      result.kv = SliceKv(fresh, retained, act);
    }
  }
  return result;
}

Result<PrefillResult> LlamaModel::PrefillChunked(std::span<const int32_t> tokens,
                                                 const KvCacheData* prefix,
                                                 const PrefillOptions& options,
                                                 TrackingAllocator& act) const {
  const int64_t n_total = static_cast<int64_t>(tokens.size());
  const int64_t n_cached = (prefix != nullptr) ? prefix->n_tokens : 0;
  const int64_t n_new = n_total - n_cached;
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  const int64_t chunk = std::min(options.chunk_size, n_new);

  // Chunked prefill must keep the KV cache of EVERY layer resident between
  // chunks — later chunks attend to it. This is why it only marginally
  // raises the maximum input length (§2.5).
  std::vector<LayerKv> pass_kv(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    pass_kv[l].k = Tensor::TryCreate(act, {n_new, kvw}, "kv.k");
    pass_kv[l].v = Tensor::TryCreate(act, {n_new, kvw}, "kv.v");
    if (pass_kv[l].k.empty() || pass_kv[l].v.empty()) {
      return Oom("kv.all_layers");
    }
  }

  rope_table_.EnsureCapacity(n_total);
  PO_TRY_ALLOC(scores, act, "attn.scores", {n_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * n_total));

  std::vector<float> last_logits;
  for (int64_t r0 = 0; r0 < n_new; r0 += chunk) {
    if (Status abort = CheckAbort(options); !abort.ok()) {
      return abort;
    }
    const int64_t r1 = std::min(r0 + chunk, n_new);
    const int64_t cs = r1 - r0;

    std::vector<int32_t> positions(static_cast<size_t>(cs));
    for (int64_t i = 0; i < cs; ++i) {
      positions[static_cast<size_t>(i)] = static_cast<int32_t>(n_cached + r0 + i);
    }

    PO_TRY_ALLOC(hidden_c, act, "act.hidden", {cs, h});
    EmbeddingLookup(embedding_.data(),
                    tokens.subspan(static_cast<size_t>(n_cached + r0),
                                   static_cast<size_t>(cs)),
                    hidden_c.data(), h);

    for (size_t l = 0; l < layers_.size(); ++l) {
      const LayerWeights& w = layers_[l];
      const LayerKv* layer_prefix = (prefix != nullptr) ? &prefix->layers[l] : nullptr;

      PO_TRY_ALLOC(normed, act, "act.normed", {cs, h});
      RmsNormRows(hidden_c.data(), w.attn_norm.data(), normed.data(), cs, h,
                  config_.rms_eps, pool_, kops_);

      PO_TRY_ALLOC(q, act, "act.q", {cs, qs});
      MatMulW(normed.data(), w.wq, q.data(), cs);
      // K/V of this chunk go straight into the resident per-layer cache.
      MatMulW(normed.data(), w.wk, pass_kv[l].k.row(r0), cs);
      MatMulW(normed.data(), w.wv, pass_kv[l].v.row(r0), cs);
      normed = Tensor();

      ApplyRopeWithTable(q.data(), cs, config_.n_heads, config_.head_dim, positions,
                         rope_table_, pool_);
      ApplyRopeWithTable(pass_kv[l].k.row(r0), cs, config_.n_kv_heads,
                         config_.head_dim, positions, rope_table_, pool_);

      PO_TRY_ALLOC(attn_out, act, "act.attn_out", {cs, qs});
      Attention(q.data(), cs, n_cached + r0, layer_prefix, pass_kv[l].k.data(),
                pass_kv[l].v.data(), r1, attn_out.data(), scores.data(),
                extra_scores.empty() ? nullptr : extra_scores.data(), n_total);
      q = Tensor();

      PO_TRY_ALLOC(attn_proj, act, "act.attn_proj", {cs, h});
      MatMulW(attn_out.data(), w.wo, attn_proj.data(), cs);
      attn_out = Tensor();
      AddInPlace(hidden_c.data(), attn_proj.data(), cs * h, pool_, kops_);
      attn_proj = Tensor();

      PO_TRY_ALLOC(normed2, act, "act.normed", {cs, h});
      RmsNormRows(hidden_c.data(), w.mlp_norm.data(), normed2.data(), cs, h,
                  config_.rms_eps, pool_, kops_);
      PO_TRY_ALLOC(gate_up, act, "mlp.intermediate1", {cs, 2 * inter});
      MatMulW(normed2.data(), w.w_gate_up, gate_up.data(), cs);
      normed2 = Tensor();
      PO_TRY_ALLOC(mlp_act, act, "mlp.intermediate2", {cs, inter});
      SwiGluRows(gate_up.data(), mlp_act.data(), cs, inter, pool_, kops_);
      gate_up = Tensor();
      PO_TRY_ALLOC(down, act, "mlp.down", {cs, h});
      MatMulW(mlp_act.data(), w.w_down, down.data(), cs);
      mlp_act = Tensor();
      AddInPlace(hidden_c.data(), down.data(), cs * h, pool_, kops_);
    }

    if (r1 == n_new) {
      last_logits = LastLogits(hidden_c.row(cs - 1), act);
    }
  }

  PrefillResult result;
  result.n_new = n_new;
  result.kv_start = n_cached;
  result.last_logits = std::move(last_logits);

  const int64_t retained = RetainedNewTokens(options, n_cached, n_new);
  if (retained > 0) {
    KvCacheData fresh;
    fresh.n_tokens = n_new;
    fresh.layers = std::move(pass_kv);
    if (retained == n_new) {
      result.kv = std::move(fresh);
    } else {
      result.kv = SliceKv(fresh, retained, act);
    }
  }
  return result;
}

Result<PrefillResult> LlamaModel::PrefillHybrid(std::span<const int32_t> tokens,
                                                const KvCacheData* prefix,
                                                const PrefillOptions& options,
                                                TrackingAllocator& act) const {
  const int64_t n_total = static_cast<int64_t>(tokens.size());
  const int64_t n_cached = (prefix != nullptr) ? prefix->n_tokens : 0;
  const int64_t n_new = n_total - n_cached;
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  const int64_t chunk = std::min(options.chunk_size, n_new);
  const bool prealloc = options.preallocate_outputs;
  const bool in_place = options.in_place;

  std::vector<int32_t> positions(static_cast<size_t>(n_new));
  for (int64_t i = 0; i < n_new; ++i) {
    positions[static_cast<size_t>(i)] = static_cast<int32_t>(n_cached + i);
  }
  rope_table_.EnsureCapacity(n_total);

  PO_TRY_ALLOC(hidden, act, "act.hidden", {n_new, h});
  EmbeddingLookup(embedding_.data(), tokens.subspan(static_cast<size_t>(n_cached)),
                  hidden.data(), h);

  // Retained-prefix KV (suffix discarding): allocated up front, filled per
  // layer, survives the pass. Everything else KV-related is transient.
  const int64_t retained = RetainedNewTokens(options, n_cached, n_new);
  KvCacheData result_kv;
  if (retained > 0) {
    result_kv.n_tokens = retained;
    result_kv.layers.resize(layers_.size());
    for (auto& lkv : result_kv.layers) {
      lkv.k = Tensor::TryCreate(act, {retained, kvw}, "kvcache.k");
      lkv.v = Tensor::TryCreate(act, {retained, kvw}, "kvcache.v");
      if (lkv.k.empty() || lkv.v.empty()) {
        return Oom("kvcache.retained");
      }
    }
  }

  // Whole-sequence buffers reused across layers: one layer's K/V at a time
  // (the paper's "KV cache of only the last computed layer"), plus Q and
  // the attention output.
  PO_TRY_ALLOC(k_buf, act, "kv.k.current_layer", {n_new, kvw});
  PO_TRY_ALLOC(v_buf, act, "kv.v.current_layer", {n_new, kvw});
  PO_TRY_ALLOC(q_buf, act, "act.q", {n_new, qs});
  PO_TRY_ALLOC(attn_out, act, "act.attn_out", {n_new, qs});
  PO_TRY_ALLOC(normed, act, "act.normed", {n_new, h});
  PO_TRY_ALLOC(scores, act, "attn.scores", {n_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * n_total));

  // Without in-place reuse, linear-layer outputs need their own
  // full-sequence buffer.
  Tensor proj_buf;
  if (prealloc && !in_place) {
    proj_buf = Tensor::TryCreate(act, {n_new, h}, "act.proj");
    if (proj_buf.empty()) {
      return Oom("act.proj");
    }
  }

  // Runs `fn(r0, cs, out_rows)` for each row chunk, where out_rows points at
  // the output buffer's chunk rows. Emulates the three ablation levels:
  //  - prealloc: write chunks straight into the final buffer;
  //  - no prealloc: materialize per-chunk outputs, then concatenate — the
  //    transient 2x output footprint hybrid prefilling's preallocation
  //    optimization removes (§4.3).
  // Returns the buffer holding the full [n_new, width] output.
  auto chunked_linear = [&](int64_t width, Tensor* reuse, const char* tag,
                            auto&& fn) -> Result<Tensor*> {
    if (prealloc) {
      Tensor* out = reuse;
      for (int64_t r0 = 0; r0 < n_new; r0 += chunk) {
        if (Status abort = CheckAbort(options); !abort.ok()) {
          return abort;
        }
        const int64_t cs = std::min(chunk, n_new - r0);
        if (Status s = fn(r0, cs, out->row(r0)); !s.ok()) {
          return s;
        }
      }
      return out;
    }
    // Ablation path: per-chunk tensors then concatenate.
    std::vector<Tensor> pieces;
    for (int64_t r0 = 0; r0 < n_new; r0 += chunk) {
      if (Status abort = CheckAbort(options); !abort.ok()) {
        return abort;
      }
      const int64_t cs = std::min(chunk, n_new - r0);
      Tensor piece = Tensor::TryCreate(act, {cs, width}, tag);
      if (piece.empty()) {
        return Oom(tag);
      }
      if (Status s = fn(r0, cs, piece.data()); !s.ok()) {
        return s;
      }
      pieces.push_back(std::move(piece));
    }
    *reuse = Tensor();  // mirror: reuse target not used on this path
    Tensor full = Tensor::TryCreate(act, {n_new, width}, tag);
    if (full.empty()) {
      return Oom(tag);
    }
    int64_t r0 = 0;
    for (Tensor& piece : pieces) {
      std::memcpy(full.row(r0), piece.data(), piece.bytes());
      r0 += piece.rows();
      piece = Tensor();
    }
    *reuse = std::move(full);
    return reuse;
  };

  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerWeights& w = layers_[l];
    const LayerKv* layer_prefix = (prefix != nullptr) ? &prefix->layers[l] : nullptr;

    RmsNormRows(hidden.data(), w.attn_norm.data(), normed.data(), n_new, h,
                config_.rms_eps, pool_, kops_);

    // QKV projections: linear, so chunked; outputs written directly into the
    // preallocated whole-sequence buffers (chunking + preallocation).
    for (int64_t r0 = 0; r0 < n_new; r0 += chunk) {
      if (Status abort = CheckAbort(options); !abort.ok()) {
        return abort;
      }
      const int64_t cs = std::min(chunk, n_new - r0);
      MatMulW(normed.row(r0), w.wq, q_buf.row(r0), cs);
      MatMulW(normed.row(r0), w.wk, k_buf.row(r0), cs);
      MatMulW(normed.row(r0), w.wv, v_buf.row(r0), cs);
    }
    ApplyRopeWithTable(q_buf.data(), n_new, config_.n_heads, config_.head_dim,
                       positions, rope_table_, pool_);
    ApplyRopeWithTable(k_buf.data(), n_new, config_.n_kv_heads, config_.head_dim,
                       positions, rope_table_, pool_);

    // Attention runs UNCHUNKED over the full sequence — the "hybrid" in
    // hybrid prefilling: chunking attention would degrade kernel efficiency
    // (the chunked-prefill baseline's flaw), while linear layers chunk for
    // free.
    Attention(q_buf.data(), n_new, n_cached, layer_prefix, k_buf.data(), v_buf.data(),
              n_new, attn_out.data(), scores.data(),
              extra_scores.empty() ? nullptr : extra_scores.data(), n_total);

    // Retain the prefix slice of this layer's KV before the buffers are
    // reused: this is suffix KV cache discarding in action.
    if (retained > 0) {
      std::memcpy(result_kv.layers[l].k.data(), k_buf.data(),
                  static_cast<size_t>(retained) * kvw * sizeof(float));
      std::memcpy(result_kv.layers[l].v.data(), v_buf.data(),
                  static_cast<size_t>(retained) * kvw * sizeof(float));
    }

    // Output projection: linear -> chunked. With in_place, the `normed`
    // buffer (dead after QKV) is reused as the output.
    Tensor* o_target = in_place ? &normed : &proj_buf;
    auto o_proj =
        chunked_linear(h, o_target, "act.attn_proj",
                       [&](int64_t r0, int64_t cs, float* out) -> Status {
                         MatMulW(attn_out.row(r0), w.wo, out, cs);
                         return Status::Ok();
                       });
    if (!o_proj.ok()) {
      return o_proj.status();
    }
    AddInPlace(hidden.data(), o_proj.value()->data(), n_new * h, pool_, kops_);

    RmsNormRows(hidden.data(), w.mlp_norm.data(), normed.data(), n_new, h,
                config_.rms_eps, pool_, kops_);

    // MLP virtual layer (gate_up -> SwiGLU -> down), chunk-by-chunk. The
    // [chunk, 2*intermediate] temporaries replace the [n_new, 2*inter]
    // spike of the standard path.
    PO_TRY_ALLOC(gate_up_c, act, "mlp.intermediate1.chunk", {chunk, 2 * inter});
    PO_TRY_ALLOC(mlp_act_c, act, "mlp.intermediate2.chunk", {chunk, inter});
    Tensor* mlp_target = in_place ? &normed : &proj_buf;
    auto mlp_out = chunked_linear(
        h, mlp_target, "mlp.down",
        [&](int64_t r0, int64_t cs, float* out) -> Status {
          // When in_place, `out` aliases normed.row(r0): gate_up reads the
          // chunk's normed rows BEFORE down writes over them, so the
          // aliasing is safe — this is the relative-position argument of
          // §4.3 (chunk i of the output lands exactly where chunk i of the
          // input lived).
          MatMulW(normed.row(r0), w.w_gate_up, gate_up_c.data(), cs);
          SwiGluRows(gate_up_c.data(), mlp_act_c.data(), cs, inter, pool_, kops_);
          MatMulW(mlp_act_c.data(), w.w_down, out, cs);
          return Status::Ok();
        });
    if (!mlp_out.ok()) {
      return mlp_out.status();
    }
    AddInPlace(hidden.data(), mlp_out.value()->data(), n_new * h, pool_, kops_);
  }

  PrefillResult result;
  result.n_new = n_new;
  result.kv_start = n_cached;
  result.last_logits = LastLogits(hidden.row(n_new - 1), act);
  if (retained > 0) {
    result.kv = std::move(result_kv);
  }
  return result;
}

// ------------------------------------------------------------------------
// Continuous batching (ISSUE 4): stacked-row prefill over several sequences.
// ------------------------------------------------------------------------

namespace {

// Per-sequence retention under the PrefillSequence fields (the batch
// analogue of RetainedNewTokens over PrefillOptions).
int64_t RetainedNewTokens(const PrefillSequence& seq, int64_t n_cached,
                          int64_t n_new) {
  switch (seq.retention) {
    case KvRetention::kNone:
      return 0;
    case KvRetention::kAll:
      return n_new;
    case KvRetention::kPrefixBudget:
      return std::clamp<int64_t>(seq.prefix_budget_tokens - n_cached, 0, n_new);
  }
  return 0;
}

// Normalized prefix pointer: null when absent or empty.
const KvCacheData* SeqPrefix(const PrefillSequence& seq) {
  return (seq.cached_prefix != nullptr && !seq.cached_prefix->empty())
             ? seq.cached_prefix
             : nullptr;
}

// The stacked-row geometry every batched mode shares: the new tokens of all
// sequences in layout order, each row's absolute (per-sequence) RoPE
// position, and the longest sequence (the score-scratch stride).
struct BatchStack {
  int64_t m_rows = 0;
  int64_t max_total = 0;
  std::vector<int32_t> tokens;
  std::vector<int32_t> positions;
};

BatchStack StackNewRows(std::span<const PrefillSequence> sequences) {
  BatchStack stack;
  for (const PrefillSequence& seq : sequences) {
    const KvCacheData* prefix = SeqPrefix(seq);
    const auto n_total = static_cast<int64_t>(seq.tokens.size());
    const int64_t n_cached = (prefix != nullptr) ? prefix->n_tokens : 0;
    stack.max_total = std::max(stack.max_total, n_total);
    for (int64_t i = n_cached; i < n_total; ++i) {
      stack.tokens.push_back(seq.tokens[static_cast<size_t>(i)]);
      stack.positions.push_back(static_cast<int32_t>(i));
    }
  }
  stack.m_rows = static_cast<int64_t>(stack.tokens.size());
  return stack;
}

// Copies stacked pass-KV rows [row0, row0 + retained) of every layer into a
// fresh per-sequence KvCacheData; false on arena exhaustion.
bool SliceRetainedKv(const std::vector<LayerKv>& pass_kv, int64_t row0,
                     int64_t retained, int64_t kvw, TrackingAllocator& act,
                     KvCacheData& out) {
  out.n_tokens = retained;
  out.layers.resize(pass_kv.size());
  for (size_t l = 0; l < pass_kv.size(); ++l) {
    LayerKv& lkv = out.layers[l];
    lkv.k = Tensor::TryCreate(act, {retained, kvw}, "kvcache.k");
    lkv.v = Tensor::TryCreate(act, {retained, kvw}, "kvcache.v");
    if (lkv.k.empty() || lkv.v.empty()) {
      return false;
    }
    std::memcpy(lkv.k.data(), pass_kv[l].k.row(row0),
                static_cast<size_t>(retained) * kvw * sizeof(float));
    std::memcpy(lkv.v.data(), pass_kv[l].v.row(row0),
                static_cast<size_t>(retained) * kvw * sizeof(float));
  }
  return true;
}

}  // namespace

Result<std::vector<PrefillResult>> LlamaModel::PrefillBatch(
    std::span<const PrefillSequence> sequences, const PrefillOptions& options,
    TrackingAllocator& activations) const {
  if (sequences.empty()) {
    return Status::InvalidArgument("empty prefill batch");
  }
  if (options.drop_kv_in_pass) {
    return Status::InvalidArgument(
        "drop_kv_in_pass is a solo-pass ablation; invalid in a batch");
  }
  std::vector<SeqLayout> layouts;
  layouts.reserve(sequences.size());
  int64_t row0 = 0;
  for (const PrefillSequence& seq : sequences) {
    // Per-sequence validation reuses the solo rules with this sequence's
    // retention substituted into the shared options.
    PrefillOptions seq_options = options;
    seq_options.retention = seq.retention;
    seq_options.prefix_budget_tokens = seq.prefix_budget_tokens;
    const KvCacheData* prefix = SeqPrefix(seq);
    if (Status s = Validate(seq.tokens, prefix, seq_options); !s.ok()) {
      return s;
    }
    SeqLayout layout;
    layout.n_total = static_cast<int64_t>(seq.tokens.size());
    layout.n_cached = (prefix != nullptr) ? prefix->n_tokens : 0;
    layout.n_new = layout.n_total - layout.n_cached;
    layout.row0 = row0;
    row0 += layout.n_new;
    layouts.push_back(layout);
  }
  switch (options.mode) {
    case PrefillMode::kStandard:
      return PrefillBatchStandard(sequences, layouts, options, activations);
    case PrefillMode::kChunked:
      return PrefillBatchChunked(sequences, layouts, options, activations);
    case PrefillMode::kHybrid:
      return PrefillBatchHybrid(sequences, layouts, options, activations);
  }
  return Status::Internal("unknown prefill mode");
}

Result<std::vector<PrefillResult>> LlamaModel::PrefillBatchStandard(
    std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
    const PrefillOptions& options, TrackingAllocator& act) const {
  (void)options;
  const size_t n_seqs = sequences.size();
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  const int64_t m_rows = layouts.back().row0 + layouts.back().n_new;

  const BatchStack stack = StackNewRows(sequences);
  assert(stack.m_rows == m_rows);
  const std::vector<int32_t>& tokens = stack.tokens;
  const std::vector<int32_t>& positions = stack.positions;
  const int64_t max_total = stack.max_total;
  rope_table_.EnsureCapacity(max_total);

  PO_TRY_ALLOC(hidden, act, "act.hidden", {m_rows, h});
  EmbeddingLookup(embedding_.data(), tokens, hidden.data(), h);

  std::vector<LayerKv> pass_kv(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    pass_kv[l].k = Tensor::TryCreate(act, {m_rows, kvw}, "kv.k");
    pass_kv[l].v = Tensor::TryCreate(act, {m_rows, kvw}, "kv.v");
    if (pass_kv[l].k.empty() || pass_kv[l].v.empty()) {
      return Oom("kv.all_layers");
    }
  }

  PO_TRY_ALLOC(scores, act, "attn.scores", {max_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * max_total));

  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerWeights& w = layers_[l];

    PO_TRY_ALLOC(normed, act, "act.normed", {m_rows, h});
    RmsNormRows(hidden.data(), w.attn_norm.data(), normed.data(), m_rows, h,
                config_.rms_eps, pool_, kops_);

    PO_TRY_ALLOC(q, act, "act.q", {m_rows, qs});
    MatMulW(normed.data(), w.wq, q.data(), m_rows);
    MatMulW(normed.data(), w.wk, pass_kv[l].k.data(), m_rows);
    MatMulW(normed.data(), w.wv, pass_kv[l].v.data(), m_rows);
    normed = Tensor();

    ApplyRopeWithTable(q.data(), m_rows, config_.n_heads, config_.head_dim, positions,
                       rope_table_, pool_);
    ApplyRopeWithTable(pass_kv[l].k.data(), m_rows, config_.n_kv_heads,
                       config_.head_dim, positions, rope_table_, pool_);

    // Block-diagonal attention: each sequence's query rows see only its own
    // prefix + new keys. Per-element computation identical to the solo pass.
    PO_TRY_ALLOC(attn_out, act, "act.attn_out", {m_rows, qs});
    for (size_t s = 0; s < n_seqs; ++s) {
      const SeqLayout& lo = layouts[s];
      const KvCacheData* prefix = SeqPrefix(sequences[s]);
      const LayerKv* layer_prefix = (prefix != nullptr) ? &prefix->layers[l] : nullptr;
      Attention(q.row(lo.row0), lo.n_new, lo.n_cached, layer_prefix,
                pass_kv[l].k.row(lo.row0), pass_kv[l].v.row(lo.row0), lo.n_new,
                attn_out.row(lo.row0), scores.data(),
                extra_scores.empty() ? nullptr : extra_scores.data(), max_total);
    }
    q = Tensor();

    PO_TRY_ALLOC(attn_proj, act, "act.attn_proj", {m_rows, h});
    MatMulW(attn_out.data(), w.wo, attn_proj.data(), m_rows);
    attn_out = Tensor();
    AddInPlace(hidden.data(), attn_proj.data(), m_rows * h, pool_, kops_);
    attn_proj = Tensor();

    PO_TRY_ALLOC(normed2, act, "act.normed", {m_rows, h});
    RmsNormRows(hidden.data(), w.mlp_norm.data(), normed2.data(), m_rows, h,
                config_.rms_eps, pool_, kops_);
    PO_TRY_ALLOC(gate_up, act, "mlp.intermediate1", {m_rows, 2 * inter});
    MatMulW(normed2.data(), w.w_gate_up, gate_up.data(), m_rows);
    normed2 = Tensor();
    PO_TRY_ALLOC(mlp_act, act, "mlp.intermediate2", {m_rows, inter});
    SwiGluRows(gate_up.data(), mlp_act.data(), m_rows, inter, pool_, kops_);
    gate_up = Tensor();
    PO_TRY_ALLOC(down, act, "mlp.down", {m_rows, h});
    MatMulW(mlp_act.data(), w.w_down, down.data(), m_rows);
    mlp_act = Tensor();
    AddInPlace(hidden.data(), down.data(), m_rows * h, pool_, kops_);
  }

  std::vector<PrefillResult> results(n_seqs);
  for (size_t s = 0; s < n_seqs; ++s) {
    const SeqLayout& lo = layouts[s];
    PrefillResult& result = results[s];
    result.n_new = lo.n_new;
    result.kv_start = lo.n_cached;
    result.last_logits = LastLogits(hidden.row(lo.row0 + lo.n_new - 1), act);
    const int64_t retained = RetainedNewTokens(sequences[s], lo.n_cached, lo.n_new);
    if (retained > 0 &&
        !SliceRetainedKv(pass_kv, lo.row0, retained, kvw, act, result.kv)) {
      return Oom("kvcache.retained");
    }
  }
  return results;
}

Result<std::vector<PrefillResult>> LlamaModel::PrefillBatchChunked(
    std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
    const PrefillOptions& options, TrackingAllocator& act) const {
  const size_t n_seqs = sequences.size();
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  const int64_t m_rows = layouts.back().row0 + layouts.back().n_new;
  const int64_t chunk = std::min(options.chunk_size, m_rows);

  const BatchStack stack = StackNewRows(sequences);
  assert(stack.m_rows == m_rows);
  const std::vector<int32_t>& tokens = stack.tokens;
  const std::vector<int32_t>& positions = stack.positions;
  const int64_t max_total = stack.max_total;
  rope_table_.EnsureCapacity(max_total);

  // Like the solo chunked pass, every layer's (stacked) KV stays resident
  // between chunks — later chunks attend to it.
  std::vector<LayerKv> pass_kv(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    pass_kv[l].k = Tensor::TryCreate(act, {m_rows, kvw}, "kv.k");
    pass_kv[l].v = Tensor::TryCreate(act, {m_rows, kvw}, "kv.v");
    if (pass_kv[l].k.empty() || pass_kv[l].v.empty()) {
      return Oom("kv.all_layers");
    }
  }

  PO_TRY_ALLOC(scores, act, "attn.scores", {max_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * max_total));

  std::vector<PrefillResult> results(n_seqs);
  // Chunks are global over the stacked rows and may span sequence
  // boundaries; linear layers don't care (row-independent) and attention is
  // applied per sequence fragment.
  for (int64_t r0 = 0; r0 < m_rows; r0 += chunk) {
    const int64_t r1 = std::min(r0 + chunk, m_rows);
    const int64_t cs = r1 - r0;
    const std::span<const int32_t> positions_c(positions);
    const auto chunk_positions =
        positions_c.subspan(static_cast<size_t>(r0), static_cast<size_t>(cs));

    PO_TRY_ALLOC(hidden_c, act, "act.hidden", {cs, h});
    EmbeddingLookup(embedding_.data(),
                    std::span<const int32_t>(tokens).subspan(
                        static_cast<size_t>(r0), static_cast<size_t>(cs)),
                    hidden_c.data(), h);

    for (size_t l = 0; l < layers_.size(); ++l) {
      const LayerWeights& w = layers_[l];

      PO_TRY_ALLOC(normed, act, "act.normed", {cs, h});
      RmsNormRows(hidden_c.data(), w.attn_norm.data(), normed.data(), cs, h,
                  config_.rms_eps, pool_, kops_);

      PO_TRY_ALLOC(q, act, "act.q", {cs, qs});
      MatMulW(normed.data(), w.wq, q.data(), cs);
      MatMulW(normed.data(), w.wk, pass_kv[l].k.row(r0), cs);
      MatMulW(normed.data(), w.wv, pass_kv[l].v.row(r0), cs);
      normed = Tensor();

      ApplyRopeWithTable(q.data(), cs, config_.n_heads, config_.head_dim,
                         chunk_positions, rope_table_, pool_);
      ApplyRopeWithTable(pass_kv[l].k.row(r0), cs, config_.n_kv_heads,
                         config_.head_dim, chunk_positions, rope_table_, pool_);

      PO_TRY_ALLOC(attn_out, act, "act.attn_out", {cs, qs});
      for (size_t s = 0; s < n_seqs; ++s) {
        const SeqLayout& lo = layouts[s];
        const int64_t f0 = std::max(r0, lo.row0);
        const int64_t f1 = std::min(r1, lo.row0 + lo.n_new);
        if (f0 >= f1) {
          continue;  // sequence not in this chunk
        }
        const KvCacheData* prefix = SeqPrefix(sequences[s]);
        const LayerKv* layer_prefix =
            (prefix != nullptr) ? &prefix->layers[l] : nullptr;
        // This fragment's queries attend the sequence's prefix plus its own
        // keys computed so far (rows [lo.row0, f1) of the stacked KV) —
        // exactly what the solo chunked pass sees at the same rows.
        Attention(q.data() + (f0 - r0) * qs, f1 - f0, lo.n_cached + (f0 - lo.row0),
                  layer_prefix, pass_kv[l].k.row(lo.row0), pass_kv[l].v.row(lo.row0),
                  f1 - lo.row0, attn_out.data() + (f0 - r0) * qs, scores.data(),
                  extra_scores.empty() ? nullptr : extra_scores.data(), max_total);
      }
      q = Tensor();

      PO_TRY_ALLOC(attn_proj, act, "act.attn_proj", {cs, h});
      MatMulW(attn_out.data(), w.wo, attn_proj.data(), cs);
      attn_out = Tensor();
      AddInPlace(hidden_c.data(), attn_proj.data(), cs * h, pool_, kops_);
      attn_proj = Tensor();

      PO_TRY_ALLOC(normed2, act, "act.normed", {cs, h});
      RmsNormRows(hidden_c.data(), w.mlp_norm.data(), normed2.data(), cs, h,
                  config_.rms_eps, pool_, kops_);
      PO_TRY_ALLOC(gate_up, act, "mlp.intermediate1", {cs, 2 * inter});
      MatMulW(normed2.data(), w.w_gate_up, gate_up.data(), cs);
      normed2 = Tensor();
      PO_TRY_ALLOC(mlp_act, act, "mlp.intermediate2", {cs, inter});
      SwiGluRows(gate_up.data(), mlp_act.data(), cs, inter, pool_, kops_);
      gate_up = Tensor();
      PO_TRY_ALLOC(down, act, "mlp.down", {cs, h});
      MatMulW(mlp_act.data(), w.w_down, down.data(), cs);
      mlp_act = Tensor();
      AddInPlace(hidden_c.data(), down.data(), cs * h, pool_, kops_);
    }

    // Sequences whose final row falls in this chunk read their logits now,
    // before the chunk buffer dies.
    for (size_t s = 0; s < n_seqs; ++s) {
      const SeqLayout& lo = layouts[s];
      const int64_t last = lo.row0 + lo.n_new - 1;
      if (last >= r0 && last < r1) {
        results[s].last_logits = LastLogits(hidden_c.row(last - r0), act);
      }
    }
  }

  for (size_t s = 0; s < n_seqs; ++s) {
    const SeqLayout& lo = layouts[s];
    PrefillResult& result = results[s];
    result.n_new = lo.n_new;
    result.kv_start = lo.n_cached;
    const int64_t retained = RetainedNewTokens(sequences[s], lo.n_cached, lo.n_new);
    if (retained > 0 &&
        !SliceRetainedKv(pass_kv, lo.row0, retained, kvw, act, result.kv)) {
      return Oom("kvcache.retained");
    }
  }
  return results;
}

Result<std::vector<PrefillResult>> LlamaModel::PrefillBatchHybrid(
    std::span<const PrefillSequence> sequences, std::span<const SeqLayout> layouts,
    const PrefillOptions& options, TrackingAllocator& act) const {
  const size_t n_seqs = sequences.size();
  const int64_t h = config_.hidden_size;
  const int64_t qs = config_.q_size();
  const int64_t kvw = config_.kv_size();
  const int64_t inter = config_.intermediate_size;
  const int64_t m_rows = layouts.back().row0 + layouts.back().n_new;
  const int64_t chunk = std::min(options.chunk_size, m_rows);
  const bool prealloc = options.preallocate_outputs;
  const bool in_place = options.in_place;

  const BatchStack stack = StackNewRows(sequences);
  assert(stack.m_rows == m_rows);
  const std::vector<int32_t>& tokens = stack.tokens;
  const std::vector<int32_t>& positions = stack.positions;
  const int64_t max_total = stack.max_total;
  rope_table_.EnsureCapacity(max_total);

  PO_TRY_ALLOC(hidden, act, "act.hidden", {m_rows, h});
  EmbeddingLookup(embedding_.data(), tokens, hidden.data(), h);

  // Per-sequence retained-prefix KV (suffix discarding), allocated up front
  // and filled per layer before the stacked buffers are reused.
  std::vector<int64_t> retained(n_seqs, 0);
  std::vector<KvCacheData> result_kv(n_seqs);
  for (size_t s = 0; s < n_seqs; ++s) {
    const SeqLayout& lo = layouts[s];
    retained[s] = RetainedNewTokens(sequences[s], lo.n_cached, lo.n_new);
    if (retained[s] > 0) {
      result_kv[s].n_tokens = retained[s];
      result_kv[s].layers.resize(layers_.size());
      for (auto& lkv : result_kv[s].layers) {
        lkv.k = Tensor::TryCreate(act, {retained[s], kvw}, "kvcache.k");
        lkv.v = Tensor::TryCreate(act, {retained[s], kvw}, "kvcache.v");
        if (lkv.k.empty() || lkv.v.empty()) {
          return Oom("kvcache.retained");
        }
      }
    }
  }

  PO_TRY_ALLOC(k_buf, act, "kv.k.current_layer", {m_rows, kvw});
  PO_TRY_ALLOC(v_buf, act, "kv.v.current_layer", {m_rows, kvw});
  PO_TRY_ALLOC(q_buf, act, "act.q", {m_rows, qs});
  PO_TRY_ALLOC(attn_out, act, "act.attn_out", {m_rows, qs});
  PO_TRY_ALLOC(normed, act, "act.normed", {m_rows, h});
  PO_TRY_ALLOC(scores, act, "attn.scores", {max_total});
  std::vector<float> extra_scores(static_cast<size_t>((workers() - 1) * max_total));

  Tensor proj_buf;
  if (prealloc && !in_place) {
    proj_buf = Tensor::TryCreate(act, {m_rows, h}, "act.proj");
    if (proj_buf.empty()) {
      return Oom("act.proj");
    }
  }

  // Same three ablation levels as the solo hybrid pass; chunks are global
  // over the stacked rows (row-independent linear layers make the chunk
  // grid a pure performance choice, bitwise-invisible).
  auto chunked_linear = [&](int64_t width, Tensor* reuse, const char* tag,
                            auto&& fn) -> Result<Tensor*> {
    if (prealloc) {
      Tensor* out = reuse;
      for (int64_t r0 = 0; r0 < m_rows; r0 += chunk) {
        const int64_t cs = std::min(chunk, m_rows - r0);
        if (Status s = fn(r0, cs, out->row(r0)); !s.ok()) {
          return s;
        }
      }
      return out;
    }
    std::vector<Tensor> pieces;
    for (int64_t r0 = 0; r0 < m_rows; r0 += chunk) {
      const int64_t cs = std::min(chunk, m_rows - r0);
      Tensor piece = Tensor::TryCreate(act, {cs, width}, tag);
      if (piece.empty()) {
        return Oom(tag);
      }
      if (Status s = fn(r0, cs, piece.data()); !s.ok()) {
        return s;
      }
      pieces.push_back(std::move(piece));
    }
    *reuse = Tensor();
    Tensor full = Tensor::TryCreate(act, {m_rows, width}, tag);
    if (full.empty()) {
      return Oom(tag);
    }
    int64_t r0 = 0;
    for (Tensor& piece : pieces) {
      std::memcpy(full.row(r0), piece.data(), piece.bytes());
      r0 += piece.rows();
      piece = Tensor();
    }
    *reuse = std::move(full);
    return reuse;
  };

  for (size_t l = 0; l < layers_.size(); ++l) {
    const LayerWeights& w = layers_[l];

    RmsNormRows(hidden.data(), w.attn_norm.data(), normed.data(), m_rows, h,
                config_.rms_eps, pool_, kops_);

    for (int64_t r0 = 0; r0 < m_rows; r0 += chunk) {
      const int64_t cs = std::min(chunk, m_rows - r0);
      MatMulW(normed.row(r0), w.wq, q_buf.row(r0), cs);
      MatMulW(normed.row(r0), w.wk, k_buf.row(r0), cs);
      MatMulW(normed.row(r0), w.wv, v_buf.row(r0), cs);
    }
    ApplyRopeWithTable(q_buf.data(), m_rows, config_.n_heads, config_.head_dim,
                       positions, rope_table_, pool_);
    ApplyRopeWithTable(k_buf.data(), m_rows, config_.n_kv_heads, config_.head_dim,
                       positions, rope_table_, pool_);

    // Attention stays UNCHUNKED per sequence (the "hybrid" property) and
    // block-diagonal across sequences.
    for (size_t s = 0; s < n_seqs; ++s) {
      const SeqLayout& lo = layouts[s];
      const KvCacheData* prefix = SeqPrefix(sequences[s]);
      const LayerKv* layer_prefix = (prefix != nullptr) ? &prefix->layers[l] : nullptr;
      Attention(q_buf.row(lo.row0), lo.n_new, lo.n_cached, layer_prefix,
                k_buf.row(lo.row0), v_buf.row(lo.row0), lo.n_new,
                attn_out.row(lo.row0), scores.data(),
                extra_scores.empty() ? nullptr : extra_scores.data(), max_total);
    }

    for (size_t s = 0; s < n_seqs; ++s) {
      if (retained[s] > 0) {
        const SeqLayout& lo = layouts[s];
        std::memcpy(result_kv[s].layers[l].k.data(), k_buf.row(lo.row0),
                    static_cast<size_t>(retained[s]) * kvw * sizeof(float));
        std::memcpy(result_kv[s].layers[l].v.data(), v_buf.row(lo.row0),
                    static_cast<size_t>(retained[s]) * kvw * sizeof(float));
      }
    }

    Tensor* o_target = in_place ? &normed : &proj_buf;
    auto o_proj =
        chunked_linear(h, o_target, "act.attn_proj",
                       [&](int64_t r0, int64_t cs, float* out) -> Status {
                         MatMulW(attn_out.row(r0), w.wo, out, cs);
                         return Status::Ok();
                       });
    if (!o_proj.ok()) {
      return o_proj.status();
    }
    AddInPlace(hidden.data(), o_proj.value()->data(), m_rows * h, pool_, kops_);

    RmsNormRows(hidden.data(), w.mlp_norm.data(), normed.data(), m_rows, h,
                config_.rms_eps, pool_, kops_);

    PO_TRY_ALLOC(gate_up_c, act, "mlp.intermediate1.chunk", {chunk, 2 * inter});
    PO_TRY_ALLOC(mlp_act_c, act, "mlp.intermediate2.chunk", {chunk, inter});
    Tensor* mlp_target = in_place ? &normed : &proj_buf;
    auto mlp_out = chunked_linear(
        h, mlp_target, "mlp.down",
        [&](int64_t r0, int64_t cs, float* out) -> Status {
          MatMulW(normed.row(r0), w.w_gate_up, gate_up_c.data(), cs);
          SwiGluRows(gate_up_c.data(), mlp_act_c.data(), cs, inter, pool_, kops_);
          MatMulW(mlp_act_c.data(), w.w_down, out, cs);
          return Status::Ok();
        });
    if (!mlp_out.ok()) {
      return mlp_out.status();
    }
    AddInPlace(hidden.data(), mlp_out.value()->data(), m_rows * h, pool_, kops_);
  }

  std::vector<PrefillResult> results(n_seqs);
  for (size_t s = 0; s < n_seqs; ++s) {
    const SeqLayout& lo = layouts[s];
    PrefillResult& result = results[s];
    result.n_new = lo.n_new;
    result.kv_start = lo.n_cached;
    result.last_logits = LastLogits(hidden.row(lo.row0 + lo.n_new - 1), act);
    if (retained[s] > 0) {
      result.kv = std::move(result_kv[s]);
    }
  }
  return results;
}

#undef PO_TRY_ALLOC

}  // namespace prefillonly
