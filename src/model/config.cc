#include "src/model/config.h"

namespace prefillonly {

int64_t ModelConfig::ApproxParams() const {
  const int64_t per_layer = hidden_size * q_size()          // wq
                            + 2 * hidden_size * kv_size()   // wk, wv
                            + q_size() * hidden_size        // wo
                            + 2 * hidden_size * intermediate_size  // gate_up
                            + intermediate_size * hidden_size;     // down
  return n_layers * per_layer + 2 * vocab_size * hidden_size;  // embed + lm head
}

bool ModelConfig::Valid() const {
  if (vocab_size <= 0 || hidden_size <= 0 || n_layers <= 0 || n_heads <= 0 ||
      n_kv_heads <= 0 || head_dim <= 0 || intermediate_size <= 0) {
    return false;
  }
  if (n_heads % n_kv_heads != 0) {
    return false;
  }
  if (head_dim % 2 != 0) {  // RoPE needs even head_dim
    return false;
  }
  return true;
}

ModelConfig ModelConfig::Tiny() {
  ModelConfig c;
  c.name = "tiny";
  return c;
}

ModelConfig ModelConfig::Small() {
  ModelConfig c;
  c.name = "small";
  c.vocab_size = 512;
  c.hidden_size = 128;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.head_dim = 16;
  c.intermediate_size = 448;
  return c;
}

ModelConfig ModelConfig::Medium() {
  ModelConfig c;
  c.name = "medium";
  c.vocab_size = 1024;
  c.hidden_size = 256;
  c.n_layers = 6;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.head_dim = 32;
  c.intermediate_size = 896;
  return c;
}

}  // namespace prefillonly
