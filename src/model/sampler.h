// Constrained output sampling for prefill-only requests.
//
// §2.3: the application passes a list of acceptable tokens (e.g. "Yes",
// "No") and the engine softmaxes the final logits over that list only,
// returning a probability per allowed token — P(Yes) + P(No) = 1. No
// decoding loop, no fine-tuning, no output parsing.
#ifndef SRC_MODEL_SAMPLER_H_
#define SRC_MODEL_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace prefillonly {

struct TokenProbability {
  int32_t token = 0;
  double probability = 0.0;
};

// Softmax of `logits` restricted to `allowed_tokens`. Probabilities sum to
// 1 over the allowed set. Fails on an empty allowed set, duplicate entries,
// or out-of-range token ids.
Result<std::vector<TokenProbability>> ConstrainedProbabilities(
    std::span<const float> logits, std::span<const int32_t> allowed_tokens);

// Convenience: P(allowed_tokens[0]) — e.g. the recommendation score P(Yes).
Result<double> ScoreFirstToken(std::span<const float> logits,
                               std::span<const int32_t> allowed_tokens);

}  // namespace prefillonly

#endif  // SRC_MODEL_SAMPLER_H_
