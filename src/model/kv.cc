#include "src/model/kv.h"

#include <cassert>
#include <cstring>

namespace prefillonly {

namespace {

// Copies the first `rows` rows of `src` into `dst` starting at dst row
// `dst_row`. Both must share the column width.
void CopyRows(const Tensor& src, Tensor& dst, int64_t rows, int64_t dst_row) {
  assert(src.cols() == dst.cols());
  assert(rows <= src.rows());
  assert(dst_row + rows <= dst.rows());
  std::memcpy(dst.row(dst_row), src.data(),
              static_cast<size_t>(rows) * src.cols() * sizeof(float));
}

}  // namespace

KvCacheData ConcatKv(const KvCacheData* prefix, const KvCacheData& fresh,
                     int64_t take_new, TrackingAllocator& alloc) {
  assert(take_new >= 0 && take_new <= fresh.n_tokens);
  const int64_t n_prefix = (prefix != nullptr) ? prefix->n_tokens : 0;
  const int64_t n_total = n_prefix + take_new;

  KvCacheData out;
  out.n_tokens = n_total;
  out.layers.resize(fresh.layers.size());
  for (size_t l = 0; l < fresh.layers.size(); ++l) {
    const int64_t width = fresh.layers[l].k.cols();
    out.layers[l].k = Tensor::Uninit(alloc, {n_total, width}, "kvcache.k");
    out.layers[l].v = Tensor::Uninit(alloc, {n_total, width}, "kvcache.v");
    if (n_prefix > 0) {
      CopyRows(prefix->layers[l].k, out.layers[l].k, n_prefix, 0);
      CopyRows(prefix->layers[l].v, out.layers[l].v, n_prefix, 0);
    }
    if (take_new > 0) {
      assert(fresh.layers[l].k.cols() == width);
      std::memcpy(out.layers[l].k.row(n_prefix), fresh.layers[l].k.data(),
                  static_cast<size_t>(take_new) * width * sizeof(float));
      std::memcpy(out.layers[l].v.row(n_prefix), fresh.layers[l].v.data(),
                  static_cast<size_t>(take_new) * width * sizeof(float));
    }
  }
  return out;
}

KvBlock CopyBlockFrom(const KvCacheData& source, int64_t source_start,
                      int64_t block_index, int64_t block_size,
                      TrackingAllocator& alloc) {
  const int64_t row_begin = block_index * block_size - source_start;
  assert(row_begin >= 0);
  assert(row_begin + block_size <= source.n_tokens);
  KvBlock block;
  block.layers.resize(source.layers.size());
  const size_t bytes =
      static_cast<size_t>(block_size) * source.layers[0].k.cols() * sizeof(float);
  for (size_t l = 0; l < source.layers.size(); ++l) {
    const int64_t width = source.layers[l].k.cols();
    block.layers[l].k = Tensor::Uninit(alloc, {block_size, width}, "kvblock.k");
    block.layers[l].v = Tensor::Uninit(alloc, {block_size, width}, "kvblock.v");
    std::memcpy(block.layers[l].k.data(), source.layers[l].k.row(row_begin), bytes);
    std::memcpy(block.layers[l].v.data(), source.layers[l].v.row(row_begin), bytes);
  }
  return block;
}

KvBlock CloneBlock(const KvBlock& block, TrackingAllocator& alloc) {
  KvBlock out;
  out.layers.resize(block.layers.size());
  for (size_t l = 0; l < block.layers.size(); ++l) {
    out.layers[l].k = Tensor::Uninit(alloc, {block.layers[l].k.rows(),
                                             block.layers[l].k.cols()},
                                     "kvblock.k");
    out.layers[l].v = Tensor::Uninit(alloc, {block.layers[l].v.rows(),
                                             block.layers[l].v.cols()},
                                     "kvblock.v");
    std::memcpy(out.layers[l].k.data(), block.layers[l].k.data(),
                block.layers[l].k.bytes());
    std::memcpy(out.layers[l].v.data(), block.layers[l].v.data(),
                block.layers[l].v.bytes());
  }
  return out;
}

void CopyBlockInto(const KvBlock& block, KvCacheData& dst, int64_t dst_block_index,
                   int64_t block_size) {
  assert(block.layers.size() == dst.layers.size());
  const int64_t dst_row = dst_block_index * block_size;
  for (size_t l = 0; l < block.layers.size(); ++l) {
    assert(dst_row + block_size <= dst.n_tokens);
    const size_t bytes = block.layers[l].k.bytes();
    std::memcpy(dst.layers[l].k.row(dst_row), block.layers[l].k.data(), bytes);
    std::memcpy(dst.layers[l].v.row(dst_row), block.layers[l].v.data(), bytes);
  }
}

KvCacheData SliceKv(const KvCacheData& source, int64_t n_tokens, TrackingAllocator& alloc) {
  assert(n_tokens <= source.n_tokens);
  KvCacheData out;
  out.n_tokens = n_tokens;
  out.layers.resize(source.layers.size());
  for (size_t l = 0; l < source.layers.size(); ++l) {
    const int64_t width = source.layers[l].k.cols();
    out.layers[l].k = Tensor::Uninit(alloc, {n_tokens, width}, "kvcache.k");
    out.layers[l].v = Tensor::Uninit(alloc, {n_tokens, width}, "kvcache.v");
    CopyRows(source.layers[l].k, out.layers[l].k, n_tokens, 0);
    CopyRows(source.layers[l].v, out.layers[l].v, n_tokens, 0);
  }
  return out;
}

}  // namespace prefillonly
