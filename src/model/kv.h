// KV cache data for the real (CPU) model path.
//
// Holds the per-layer key/value tensors for a contiguous token range
// starting at position 0 — i.e. a *prefix*. PrefillOnly's suffix KV cache
// discarding (§5.1) manifests here as a KvCacheData that covers fewer
// tokens than were prefilled: the suffix KV existed only transiently inside
// the forward pass and was never materialized into the result.
#ifndef SRC_MODEL_KV_H_
#define SRC_MODEL_KV_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace prefillonly {

struct LayerKv {
  Tensor k;  // [n_tokens, kv_size]
  Tensor v;  // [n_tokens, kv_size]
};

struct KvCacheData {
  std::vector<LayerKv> layers;
  int64_t n_tokens = 0;

  bool empty() const { return n_tokens == 0; }
  size_t bytes() const {
    size_t total = 0;
    for (const auto& layer : layers) {
      total += layer.k.bytes() + layer.v.bytes();
    }
    return total;
  }
};

// Concatenates `prefix` (may be null/empty) with the first `take_new` token
// rows of `fresh` into a new KvCacheData covering
// [0, prefix.n_tokens + take_new). Both inputs must have the same layer
// count and kv width. Used by the engine to extend cache entries.
KvCacheData ConcatKv(const KvCacheData* prefix, const KvCacheData& fresh,
                     int64_t take_new, TrackingAllocator& alloc);

// Deep copy of the first `n_tokens` rows of every layer.
KvCacheData SliceKv(const KvCacheData& source, int64_t n_tokens,
                    TrackingAllocator& alloc);

// One block-size chunk of all-layer KV — the payload unit of the prefix
// cache tiers (GPU-resident KvBlockStore, CPU-resident OffloadStore).
struct KvBlock {
  std::vector<LayerKv> layers;  // each [block_size, kv_width]

  bool empty() const { return layers.empty(); }
  size_t bytes() const {
    size_t total = 0;
    for (const auto& layer : layers) {
      total += layer.k.bytes() + layer.v.bytes();
    }
    return total;
  }
};

// Extracts block `block_index` (token range [block_index * block_size,
// (block_index + 1) * block_size)) from `source`, whose row 0 sits at
// absolute position `source_start`.
KvBlock CopyBlockFrom(const KvCacheData& source, int64_t source_start,
                      int64_t block_index, int64_t block_size,
                      TrackingAllocator& alloc);

// Deep copy into a (possibly different) allocator — this is the simulated
// GPU<->CPU transfer of KV offloading.
KvBlock CloneBlock(const KvBlock& block, TrackingAllocator& alloc);

// Writes `block` into `dst` at block position `dst_block_index`.
void CopyBlockInto(const KvBlock& block, KvCacheData& dst, int64_t dst_block_index,
                   int64_t block_size);

}  // namespace prefillonly

#endif  // SRC_MODEL_KV_H_
