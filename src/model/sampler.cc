#include "src/model/sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace prefillonly {

Result<std::vector<TokenProbability>> ConstrainedProbabilities(
    std::span<const float> logits, std::span<const int32_t> allowed_tokens) {
  if (allowed_tokens.empty()) {
    return Status::InvalidArgument("allowed token list is empty");
  }
  std::unordered_set<int32_t> seen;
  for (int32_t t : allowed_tokens) {
    if (t < 0 || static_cast<size_t>(t) >= logits.size()) {
      return Status::InvalidArgument("allowed token out of vocabulary range");
    }
    if (!seen.insert(t).second) {
      return Status::InvalidArgument("duplicate allowed token");
    }
  }

  double max_logit = logits[static_cast<size_t>(allowed_tokens[0])];
  for (int32_t t : allowed_tokens) {
    max_logit = std::max(max_logit, static_cast<double>(logits[static_cast<size_t>(t)]));
  }
  double sum = 0.0;
  std::vector<TokenProbability> out;
  out.reserve(allowed_tokens.size());
  for (int32_t t : allowed_tokens) {
    const double e = std::exp(static_cast<double>(logits[static_cast<size_t>(t)]) - max_logit);
    out.push_back(TokenProbability{t, e});
    sum += e;
  }
  for (auto& tp : out) {
    tp.probability /= sum;
  }
  return out;
}

Result<double> ScoreFirstToken(std::span<const float> logits,
                               std::span<const int32_t> allowed_tokens) {
  auto probs = ConstrainedProbabilities(logits, allowed_tokens);
  if (!probs.ok()) {
    return probs.status();
  }
  return probs.value()[0].probability;
}

}  // namespace prefillonly
