#include "src/model/rope_table.h"

#include <cassert>
#include <cmath>

#include "src/common/thread_pool.h"

namespace prefillonly {

RopeTable::RopeTable(int64_t head_dim, float theta)
    : head_dim_(head_dim), half_(head_dim / 2), theta_(theta) {
  assert(head_dim_ > 0 && head_dim_ % 2 == 0);
  inv_freq_ = std::make_unique<float[]>(static_cast<size_t>(half_));
  for (int64_t j = 0; j < half_; ++j) {
    // Exactly the seed kernel's expression, hoisted out of the inner loop.
    inv_freq_[j] =
        std::pow(theta_, -2.0f * static_cast<float>(j) / static_cast<float>(head_dim_));
  }
  blocks_ = std::make_unique<std::atomic<float*>[]>(static_cast<size_t>(kMaxBlocks));
  for (int64_t b = 0; b < kMaxBlocks; ++b) {
    blocks_[b].store(nullptr, std::memory_order_relaxed);
  }
}

RopeTable::~RopeTable() {
  for (int64_t b = 0; b < kMaxBlocks; ++b) {
    delete[] blocks_[b].load(std::memory_order_relaxed);
  }
}

void RopeTable::EnsureCapacity(int64_t n_positions) {
  // Beyond the hard cap ApplyRopeWithTable recomputes per element; never
  // index past the block-pointer array.
  n_positions = std::min(n_positions, kMaxBlocks * kBlockPositions);
  if (n_positions <= capacity()) {
    return;
  }
  std::lock_guard<std::mutex> lock(grow_mu_);
  const int64_t have_blocks = (capacity_.load(std::memory_order_relaxed) +
                               kBlockPositions - 1) / kBlockPositions;
  const int64_t want_blocks = (n_positions + kBlockPositions - 1) / kBlockPositions;
  for (int64_t b = have_blocks; b < want_blocks; ++b) {
    const size_t floats = static_cast<size_t>(2 * kBlockPositions * half_);
    float* block = new float[floats];
    float* cos_part = block;
    float* sin_part = block + kBlockPositions * half_;
    for (int64_t p = 0; p < kBlockPositions; ++p) {
      const auto pos = static_cast<float>(b * kBlockPositions + p);
      for (int64_t j = 0; j < half_; ++j) {
        const float angle = pos * inv_freq_[j];
        cos_part[p * half_ + j] = std::cos(angle);
        sin_part[p * half_ + j] = std::sin(angle);
      }
    }
    blocks_[b].store(block, std::memory_order_release);
  }
  if (want_blocks > have_blocks) {
    capacity_.store(want_blocks * kBlockPositions, std::memory_order_release);
  }
}

const float* RopeTable::cos_row(int64_t pos) const {
  assert(pos >= 0 && pos < capacity());
  const float* block = blocks_[pos / kBlockPositions].load(std::memory_order_acquire);
  return block + (pos % kBlockPositions) * half_;
}

const float* RopeTable::sin_row(int64_t pos) const {
  assert(pos >= 0 && pos < capacity());
  const float* block = blocks_[pos / kBlockPositions].load(std::memory_order_acquire);
  return block + kBlockPositions * half_ + (pos % kBlockPositions) * half_;
}

void ApplyRopeWithTable(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
                        std::span<const int32_t> positions, const RopeTable& table,
                        ThreadPool* pool) {
  assert(static_cast<int64_t>(positions.size()) == rows);
  assert(head_dim == table.head_dim());
  const int64_t half = head_dim / 2;
  const int64_t work = rows * n_heads;
  const int64_t table_capacity = table.capacity();
  const auto body = [&](int64_t begin, int64_t end, int /*worker*/) {
    for (int64_t idx = begin; idx < end; ++idx) {
      const int64_t r = idx / n_heads;
      const int64_t head = idx % n_heads;
      const int64_t pos = positions[static_cast<size_t>(r)];
      float* __restrict v = x + r * n_heads * head_dim + head * head_dim;
      if (pos < table_capacity) {
        const float* __restrict c_row = table.cos_row(pos);
        const float* __restrict s_row = table.sin_row(pos);
        for (int64_t j = 0; j < half; ++j) {
          const float c = c_row[j];
          const float s = s_row[j];
          const float x0 = v[j];
          const float x1 = v[j + half];
          v[j] = x0 * c - x1 * s;
          v[j + half] = x0 * s + x1 * c;
        }
      } else {
        // Past the materialized table: recompute with the table's own
        // frequencies — identical expressions, identical bits.
        const float* __restrict freqs = table.inv_freq();
        const auto fpos = static_cast<float>(pos);
        for (int64_t j = 0; j < half; ++j) {
          const float angle = fpos * freqs[j];
          const float c = std::cos(angle);
          const float s = std::sin(angle);
          const float x0 = v[j];
          const float x1 = v[j + half];
          v[j] = x0 * c - x1 * s;
          v[j + half] = x0 * s + x1 * c;
        }
      }
    }
  };
  if (pool == nullptr) {
    body(0, work, 0);
  } else {
    pool->ParallelFor(work, /*grain=*/8, body);
  }
}

}  // namespace prefillonly
