// Precomputed rotary-embedding cos/sin table.
//
// The seed ApplyRope recomputed `pow(theta, -2j/d)`, `cos`, and `sin` for
// every element of every row on every layer of every pass — three libm calls
// per rotated pair. A prefill pass touches each absolute position
// n_layers * 2 (Q and K) times, and the engine sees the same positions on
// every request, so the table is computed once per (position, frequency)
// pair and reused forever.
//
// Bitwise contract: the table stores exactly the values the seed kernel
// computed — same float expressions, same libm calls — so switching the
// model to the table path changes no logit bit (asserted by
// tests/kernel_parity_test.cc against ref::ApplyRope).
//
// Growth is lazy and thread-safe: positions are materialized in fixed-size
// blocks published through atomic pointers, so readers of already-ensured
// positions never race with a concurrent EnsureCapacity and no pointer is
// ever invalidated by growth.
#ifndef SRC_MODEL_ROPE_TABLE_H_
#define SRC_MODEL_ROPE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

namespace prefillonly {

class ThreadPool;

class RopeTable {
 public:
  RopeTable(int64_t head_dim, float theta);
  ~RopeTable();

  RopeTable(const RopeTable&) = delete;
  RopeTable& operator=(const RopeTable&) = delete;

  // Materializes rows for positions [0, n_positions), clamped to the table's
  // hard cap (kMaxBlocks * kBlockPositions = 8M positions). Prefill calls
  // this once per pass with the pass's maximum absolute position; positions
  // beyond capacity() are handled by ApplyRopeWithTable's bitwise-identical
  // recompute fallback, never by reading past the table.
  void EnsureCapacity(int64_t n_positions);

  int64_t capacity() const { return capacity_.load(std::memory_order_acquire); }
  int64_t head_dim() const { return head_dim_; }

  // cos/sin of `pos * freq_j` for j in [0, head_dim/2); valid for
  // pos < capacity().
  const float* cos_row(int64_t pos) const;
  const float* sin_row(int64_t pos) const;

  // freq_j = theta^(-2j/head_dim), j in [0, head_dim/2): the exact values
  // the table rows were computed from (used by the fallback path).
  const float* inv_freq() const { return inv_freq_.get(); }

 private:
  static constexpr int64_t kBlockPositions = 1024;
  static constexpr int64_t kMaxBlocks = 8192;  // 8M positions

  const int64_t head_dim_;
  const int64_t half_;
  const float theta_;
  std::unique_ptr<float[]> inv_freq_;  // [half_]

  std::mutex grow_mu_;
  std::atomic<int64_t> capacity_{0};
  // blocks_[b] holds cos rows for positions [b*kBlockPositions, ...) in the
  // first kBlockPositions*half_ floats, sin rows in the second.
  std::unique_ptr<std::atomic<float*>[]> blocks_;
};

// In-place RoPE over a [rows, n_heads*head_dim] matrix using the table;
// positions[i] is the absolute position of row i. Positions beyond
// table.capacity() (possible past the table's 8M-position hard cap) fall
// back to recomputing cos/sin from table.inv_freq() — the same float
// expressions, so the fallback is bitwise identical to the table rows.
// Parallel over row*head pairs; each pair is rotated by exactly one thread,
// so results are bitwise identical for every thread count and match
// ref::ApplyRope.
void ApplyRopeWithTable(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
                        std::span<const int32_t> positions, const RopeTable& table,
                        ThreadPool* pool = nullptr);

}  // namespace prefillonly

#endif  // SRC_MODEL_ROPE_TABLE_H_
