// Transformer architecture configuration.
//
// The shapes follow the Llama family: RMSNorm, rotary embeddings,
// grouped-query attention, SwiGLU MLP with a fused gate_up projection.
// Presets are scaled-down (the real CPU engine runs these); the full-size
// production shapes (Llama-3.1-8B etc.) live in src/gpu/specs.h where they
// feed the analytic cost and memory models.
#ifndef SRC_MODEL_CONFIG_H_
#define SRC_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace prefillonly {

struct ModelConfig {
  std::string name = "tiny";
  int64_t vocab_size = 256;
  int64_t hidden_size = 64;
  int64_t n_layers = 2;
  int64_t n_heads = 4;
  int64_t n_kv_heads = 2;
  int64_t head_dim = 16;
  int64_t intermediate_size = 224;  // 3.5x hidden, like Llama
  float rope_theta = 10000.0f;
  float rms_eps = 1e-5f;

  int64_t q_size() const { return n_heads * head_dim; }
  int64_t kv_size() const { return n_kv_heads * head_dim; }
  // Bytes of K+V per token per layer at float32 (CPU engine precision).
  int64_t kv_bytes_per_token_layer() const {
    return 2 * kv_size() * static_cast<int64_t>(sizeof(float));
  }
  int64_t kv_bytes_per_token() const { return kv_bytes_per_token_layer() * n_layers; }

  // Approximate parameter count of all linear layers (used for sanity
  // checks; the exact count is LlamaModel::weight_bytes()).
  int64_t ApproxParams() const;

  // Validation for user-supplied configs.
  bool Valid() const;

  // 2-layer, hidden-64 model for unit tests (fast even in debug builds).
  static ModelConfig Tiny();
  // 4-layer, hidden-128 model for examples and measured benchmarks; keeps
  // the Llama ratios (intermediate = 3.5x hidden, 4 Q heads per KV head) so
  // the MLP-dominates-memory effect is visible.
  static ModelConfig Small();
  // 6-layer, hidden-256: the "scaled Llama" used by the measured memory
  // trace benchmark (Fig. 3 analogue).
  static ModelConfig Medium();
};

}  // namespace prefillonly

#endif  // SRC_MODEL_CONFIG_H_
