// Implementation of the stable client facade (include/prefillonly/client.h):
// the only translation unit that couples the facade types to the internal
// engine headers. Two transports behind one surface (ISSUE 10): an
// in-process ReplicaSet (the default), or — when ClientOptions::endpoint is
// set — a remote v1 server reached through keep-alive HTTP/1.1 connections,
// with the api_error status<->HTTP table applied in reverse so both
// transports report identical error codes.
#include "prefillonly/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "src/client/http_client.h"
#include "src/cluster/replica_set.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/server/api_error.h"
#include "src/server/json.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {

namespace {

ReplicaSetOptions ToReplicaSetOptions(const ClientOptions& options) {
  ReplicaSetOptions cluster;
  cluster.n_replicas = std::max(1, options.n_replicas);
  EngineOptions& engine = cluster.engine;
  if (options.model == "tiny") {
    engine.model = ModelConfig::Tiny();
  } else {
    if (options.model != "small") {
      PO_LOG_WARNING << "unknown model preset '" << options.model
                     << "'; using 'small'";
    }
    engine.model = ModelConfig::Small();
  }
  if (options.prefill_mode == "standard") {
    engine.mode = PrefillMode::kStandard;
  } else if (options.prefill_mode == "chunked") {
    engine.mode = PrefillMode::kChunked;
  } else {
    if (options.prefill_mode != "hybrid") {
      PO_LOG_WARNING << "unknown prefill mode '" << options.prefill_mode
                     << "'; using 'hybrid'";
    }
    engine.mode = PrefillMode::kHybrid;
  }
  engine.chunk_size = options.chunk_size;
  engine.num_threads = options.num_threads;
  engine.max_concurrent_requests = options.max_concurrent_requests;
  engine.max_batch_size = options.max_batch_size;
  engine.activation_budget_bytes = static_cast<size_t>(options.activation_budget_bytes);
  engine.cache_budget_tokens = options.cache_budget_tokens;
  engine.cpu_offload_budget_tokens = options.cpu_offload_budget_tokens;
  engine.block_size = options.block_size;
  return cluster;
}

ScoreResult ToScoreResult(const Result<ScoringResponse>& result) {
  ScoreResult out;
  if (!result.ok()) {
    out.ok = false;
    out.error_code = ApiErrorCodeFor(result.status().code());
    out.error_message = result.status().message();
    return out;
  }
  const ScoringResponse& response = result.value();
  out.ok = true;
  out.score = response.score;
  out.probabilities.reserve(response.probabilities.size());
  for (const auto& p : response.probabilities) {
    out.probabilities.push_back({p.token, p.probability});
  }
  out.n_input = response.n_input;
  out.n_cached = response.n_cached;
  out.n_cached_offload = response.n_cached_offload;
  out.batch_size = response.batch_size;
  out.queue_time_s = response.queue_time_s;
  out.execute_time_s = response.execute_time_s;
  return out;
}

ScoringRequest ToScoringRequest(std::vector<int32_t> tokens,
                                std::vector<int32_t> allowed,
                                const ScoreOptions& options) {
  ScoringRequest request;
  request.tokens = std::move(tokens);
  request.allowed_tokens = std::move(allowed);
  request.user_id = options.user_id;
  request.priority = options.priority;
  request.deadline_ms = options.deadline_ms < 0 ? ScoringRequest::kNoDeadline
                                                : options.deadline_ms;
  return request;
}

// --- Remote-mode JSON plumbing ------------------------------------------

Json ScoringRequestJson(const ScoringRequest& request) {
  Json::Array tokens;
  tokens.reserve(request.tokens.size());
  for (int32_t t : request.tokens) {
    tokens.push_back(Json(static_cast<int64_t>(t)));
  }
  Json::Array allowed;
  allowed.reserve(request.allowed_tokens.size());
  for (int32_t t : request.allowed_tokens) {
    allowed.push_back(Json(static_cast<int64_t>(t)));
  }
  Json::Object item;
  item.emplace("tokens", Json(std::move(tokens)));
  item.emplace("allowed_tokens", Json(std::move(allowed)));
  item.emplace("user_id", Json(request.user_id));
  Json::Object options;
  options.emplace("priority", Json(static_cast<int64_t>(request.priority)));
  if (request.deadline_ms >= 0) {
    options.emplace("deadline_ms", Json(request.deadline_ms));
  }
  item.emplace("options", Json(std::move(options)));
  return Json(std::move(item));
}

int64_t JsonInt(const Json& object, const std::string& key, int64_t fallback = 0) {
  const Json* field = object.Find(key);
  return field != nullptr && field->is_number() ? field->AsInt() : fallback;
}

double JsonDouble(const Json& object, const std::string& key, double fallback = 0.0) {
  const Json* field = object.Find(key);
  return field != nullptr && field->is_number() ? field->AsDouble() : fallback;
}

Result<ScoringResponse> ParseScoringResponse(const Json& body) {
  if (!body.is_object() || body.Find("score") == nullptr) {
    return Status::Internal("remote response missing 'score': " + body.Serialize());
  }
  ScoringResponse response;
  response.score = JsonDouble(body, "score");
  if (const Json* probs = body.Find("probabilities");
      probs != nullptr && probs->is_array()) {
    for (const Json& p : probs->AsArray()) {
      if (p.is_object()) {
        response.probabilities.push_back(
            {static_cast<int32_t>(JsonInt(p, "token")), JsonDouble(p, "probability")});
      }
    }
  }
  response.n_input = JsonInt(body, "n_input");
  response.n_cached = JsonInt(body, "n_cached");
  response.n_cached_offload = JsonInt(body, "n_cached_offload");
  response.batch_size = JsonInt(body, "batch_size", 1);
  response.queue_time_s = JsonDouble(body, "queue_time_s");
  response.execute_time_s = JsonDouble(body, "execute_time_s");
  return response;
}

// A non-200 response -> the Status the in-process engine would have
// returned: error.code through the reverse table, with the HTTP status as
// the fallback when the body isn't the structured shape.
Status StatusFromErrorResponse(const HttpClientResponse& response) {
  StatusCode code = StatusCodeForHttpStatus(response.status);
  std::string message = "HTTP " + std::to_string(response.status);
  if (auto body = Json::Parse(response.body); body.ok()) {
    if (const Json* error = body.value().Find("error");
        error != nullptr && error->is_object()) {
      if (const Json* c = error->Find("code"); c != nullptr && c->is_string()) {
        code = StatusCodeForApiErrorCode(c->AsString());
      }
      if (const Json* m = error->Find("message"); m != nullptr && m->is_string()) {
        message = m->AsString();
      }
    }
  }
  if (code == StatusCode::kOk) {
    code = StatusCode::kInternal;
  }
  return Status(code, std::move(message));
}

// Transient = worth retrying: the engine may well succeed on the next
// attempt (load dropped, blocks freed, a breaker's half-open probe
// reclosed it). Everything else is permanent for this exact request.
bool IsTransient(const ScoreResult& result) {
  return !result.ok && (result.error_code == "resource_exhausted" ||
                        result.error_code == "unavailable");
}

// Failures the server pairs with a Retry-After hint: an overload shed (the
// 429 path, as opposed to a per-request budget failure) or a cluster
// unavailable (the 503 path). Both honor the Retry-After floor.
bool HonorsRetryAfterFloor(const ScoreResult& result) {
  return result.error_code == "unavailable" ||
         result.error_message.find("engine overloaded") != std::string::npos;
}

// Backoff for retry attempt `attempt` (1-based): exponential with
// deterministic jitter in [0, base/2].
int64_t BackoffMs(const RetryPolicy& policy, int attempt, bool shed,
                  uint64_t& jitter_state) {
  double base = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) {
    base *= policy.multiplier;
  }
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  int64_t backoff = static_cast<int64_t>(base);
  if (backoff > 0) {
    backoff += static_cast<int64_t>(SplitMix64(jitter_state) %
                                    static_cast<uint64_t>(backoff / 2 + 1));
  }
  if (shed) {
    backoff = std::max(backoff, policy.retry_after_floor_ms);
  }
  return backoff;
}

}  // namespace

// ---------------------------------------------------------------- handles

struct RequestHandle::State {
  int64_t id = -1;  // cluster id, stable across failover; -1 for remote
  ReplicaSet* set = nullptr;  // null for submission-failure and remote handles
  Engine::ResponseFuture future;
  bool resolved = false;
  ScoreResult result;  // valid once resolved
};

RequestHandle::RequestHandle() : state_(std::make_unique<State>()) {
  state_->resolved = true;
  state_->result.ok = false;
  state_->result.error_code = "invalid_argument";
  state_->result.error_message = "empty request handle";
}
RequestHandle::~RequestHandle() = default;
RequestHandle::RequestHandle(RequestHandle&&) noexcept = default;
RequestHandle& RequestHandle::operator=(RequestHandle&&) noexcept = default;

int64_t RequestHandle::id() const { return state_->id; }

bool RequestHandle::Done() const {
  if (state_->resolved) {
    return true;
  }
  return state_->future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

ScoreResult RequestHandle::Wait() {
  if (!state_->resolved) {
    state_->result = ToScoreResult(state_->future.get());
    state_->resolved = true;
  }
  return state_->result;
}

bool RequestHandle::Cancel() {
  if (state_->resolved || state_->set == nullptr || Done()) {
    return false;
  }
  return state_->set->Cancel(state_->id).ok();
}

// ----------------------------------------------------------------- client

struct Client::Impl {
  // The ReplicaSetOptions conversion runs once, in a delegating step, so
  // preset warnings fire once and tokenizer/replicas agree on the resolved
  // model. The ReplicaSet starts every replica's concurrent runtime itself.
  // In remote mode no ReplicaSet (and no engine) is built at all — the
  // tokenizer still resolves from the model preset so ScoreText works.
  explicit Impl(const ClientOptions& options)
      : tokenizer(options.model == "tiny"
                      ? static_cast<int32_t>(ModelConfig::Tiny().vocab_size)
                      : static_cast<int32_t>(ModelConfig::Small().vocab_size)) {
    retry = options.retry;
    if (options.endpoint.empty()) {
      set = std::make_unique<ReplicaSet>(ToReplicaSetOptions(options));
      return;
    }
    remote = true;  // endpoint requested: never build a local engine
    auto parsed = ParseEndpoint(options.endpoint);
    if (!parsed.ok()) {
      PO_LOG_WARNING << "invalid endpoint '" << options.endpoint
                     << "': " << parsed.status().message()
                     << "; every call will fail with invalid_argument";
      endpoint_error = parsed.status();
      return;
    }
    remote_options = parsed.value();
  }

  // --- Remote connection pool -----------------------------------------
  // One HttpClient per concurrent caller: a connection is checked out for
  // the duration of one exchange and parked afterwards, so K parallel
  // loadgen workers settle on K persistent sockets.
  std::unique_ptr<HttpClient> AcquireConnection() {
    {
      std::lock_guard<std::mutex> lock(pool_mu);
      if (!idle_connections.empty()) {
        auto connection = std::move(idle_connections.back());
        idle_connections.pop_back();
        return connection;
      }
    }
    return std::make_unique<HttpClient>(remote_options);
  }

  void ReleaseConnection(std::unique_ptr<HttpClient> connection) {
    std::lock_guard<std::mutex> lock(pool_mu);
    idle_connections.push_back(std::move(connection));
  }

  Result<ScoringResponse> RemoteScoreOnce(const ScoringRequest& request) {
    if (!endpoint_error.ok()) {
      return endpoint_error;
    }
    auto connection = AcquireConnection();
    auto response = connection->Post("/v1/score",
                                     ScoringRequestJson(request).Serialize());
    // A connection that failed transport-level is NOT returned to the pool;
    // the next caller starts fresh instead of inheriting a wedged socket.
    if (response.ok()) {
      ReleaseConnection(std::move(connection));
    }
    if (!response.ok()) {
      return response.status();
    }
    if (response.value().status != 200) {
      return StatusFromErrorResponse(response.value());
    }
    auto body = Json::Parse(response.value().body);
    if (!body.ok()) {
      return Status::Internal("remote response is not JSON: " +
                              body.status().message());
    }
    return ParseScoringResponse(body.value());
  }

  Result<ScoringResponse> ScoreOnce(const ScoringRequest& request) {
    return remote ? RemoteScoreOnce(request) : set->Score(request);
  }

  RequestHandle MakeHandle(Result<ReplicaSet::Submission> submission) {
    RequestHandle handle;
    if (!submission.ok()) {
      handle.state_->result.error_code = ApiErrorCodeFor(submission.status().code());
      handle.state_->result.error_message = submission.status().message();
      return handle;
    }
    handle.state_->id = submission.value().id;
    handle.state_->set = set.get();
    handle.state_->future = std::move(submission.value().future);
    handle.state_->resolved = false;
    return handle;
  }

  // Remote submission: the blocking exchange runs on its own thread and the
  // handle waits on its future. Cancel() has nothing to withdraw (the v1
  // blocking route has no cancellation token), so it reports false.
  RequestHandle MakeRemoteHandle(ScoringRequest request) {
    RequestHandle handle;
    handle.state_->id = -1;
    handle.state_->set = nullptr;
    handle.state_->future =
        std::async(std::launch::async, [this, request = std::move(request)] {
          return RemoteScoreOnce(request);
        });
    handle.state_->resolved = false;
    return handle;
  }

  // Blocking call with the transient-failure RetryPolicy applied: each
  // attempt re-submits a fresh copy of the request; sleeps between attempts
  // are exponential with deterministic jitter (and floored at the
  // Retry-After hint after an overload shed or a cluster unavailable).
  ScoreResult ScoreWithRetry(const ScoringRequest& request) {
    uint64_t jitter_state = retry.jitter_seed;
    ScoreResult result = ToScoreResult(ScoreOnce(request));
    for (int attempt = 1; attempt <= retry.max_retries && IsTransient(result);
         ++attempt) {
      const int64_t backoff =
          BackoffMs(retry, attempt, HonorsRetryAfterFloor(result), jitter_state);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      client_retries.fetch_add(1, std::memory_order_relaxed);
      result = ToScoreResult(ScoreOnce(request));
    }
    return result;
  }

  ClientStats RemoteStats() {
    ClientStats out;
    if (!endpoint_error.ok()) {
      return out;
    }
    auto connection = AcquireConnection();
    auto response = connection->Get("/v1/stats");
    if (response.ok()) {
      ReleaseConnection(std::move(connection));
    }
    if (!response.ok() || response.value().status != 200) {
      return out;
    }
    auto body = Json::Parse(response.value().body);
    if (!body.ok() || !body.value().is_object()) {
      return out;
    }
    const Json& stats = body.value();
    out.submitted = JsonInt(stats, "submitted");
    out.completed = JsonInt(stats, "completed");
    out.failed = JsonInt(stats, "failed");
    out.cancelled = JsonInt(stats, "cancelled");
    out.cancelled_in_flight = JsonInt(stats, "cancelled_in_flight");
    out.deadline_expired = JsonInt(stats, "deadline_expired");
    out.deadline_expired_in_flight = JsonInt(stats, "deadline_expired_in_flight");
    out.shed = JsonInt(stats, "shed");
    out.client_retries = client_retries.load(std::memory_order_relaxed);
    out.batches_dispatched = JsonInt(stats, "batches_dispatched");
    out.batched_requests = JsonInt(stats, "batched_requests");
    out.cache_hit_rate = JsonDouble(stats, "cache_hit_rate");
    out.cache_bytes = static_cast<uint64_t>(JsonInt(stats, "cache_bytes"));
    out.peak_activation_bytes =
        static_cast<uint64_t>(JsonInt(stats, "peak_activation_bytes"));
    return out;
  }

  HashTokenizer tokenizer;
  std::unique_ptr<ReplicaSet> set;  // null in remote mode
  bool remote = false;
  HttpClientOptions remote_options;
  Status endpoint_error;  // non-OK when the endpoint failed to parse

  std::mutex pool_mu;
  std::vector<std::unique_ptr<HttpClient>> idle_connections;

  RetryPolicy retry;
  std::atomic<int64_t> client_retries{0};
};

Client::Client(const ClientOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}
Client::~Client() = default;

ScoreResult Client::Score(const std::vector<int32_t>& tokens,
                          const std::vector<int32_t>& allowed,
                          const ScoreOptions& options) {
  return impl_->ScoreWithRetry(ToScoringRequest(tokens, allowed, options));
}

ScoreResult Client::ScoreText(const std::string& text,
                              const std::vector<std::string>& allowed_words,
                              const ScoreOptions& options) {
  std::vector<int32_t> allowed;
  allowed.reserve(allowed_words.size());
  for (const std::string& word : allowed_words) {
    allowed.push_back(impl_->tokenizer.TokenFor(word));
  }
  return impl_->ScoreWithRetry(
      ToScoringRequest(impl_->tokenizer.Encode(text), std::move(allowed), options));
}

RequestHandle Client::Submit(std::vector<int32_t> tokens,
                             std::vector<int32_t> allowed,
                             const ScoreOptions& options) {
  ScoringRequest request =
      ToScoringRequest(std::move(tokens), std::move(allowed), options);
  if (impl_->remote) {
    return impl_->MakeRemoteHandle(std::move(request));
  }
  return impl_->MakeHandle(impl_->set->Submit(std::move(request)));
}

std::vector<RequestHandle> Client::SubmitBatch(
    std::vector<std::vector<int32_t>> items, const std::vector<int32_t>& allowed,
    const ScoreOptions& options) {
  std::vector<ScoringRequest> requests;
  requests.reserve(items.size());
  for (std::vector<int32_t>& tokens : items) {
    requests.push_back(ToScoringRequest(std::move(tokens), allowed, options));
  }
  std::vector<RequestHandle> handles;
  if (impl_->remote) {
    // Remote co-batching would need the multi-item route with per-item
    // handles; submitting individually keeps handle semantics identical
    // and lets the server's scheduler still co-batch what arrives together.
    handles.reserve(requests.size());
    for (ScoringRequest& request : requests) {
      handles.push_back(impl_->MakeRemoteHandle(std::move(request)));
    }
    return handles;
  }
  auto submitted = impl_->set->SubmitGroup(std::move(requests));
  if (!submitted.ok()) {
    // All-or-nothing admission: every handle reports the submission error.
    for (size_t i = 0; i < items.size(); ++i) {
      handles.push_back(impl_->MakeHandle(submitted.status()));
    }
    return handles;
  }
  handles.reserve(submitted.value().size());
  for (ReplicaSet::Submission& submission : submitted.value()) {
    handles.push_back(impl_->MakeHandle(std::move(submission)));
  }
  return handles;
}

int32_t Client::TokenForWord(const std::string& word) const {
  return impl_->tokenizer.TokenFor(word);
}

ClientStats Client::Stats() const {
  if (impl_->remote) {
    return impl_->RemoteStats();
  }
  const EngineStats stats = impl_->set->Stats().totals;
  ClientStats out;
  out.submitted = stats.submitted;
  out.completed = stats.completed;
  out.failed = stats.failed;
  out.cancelled = stats.cancelled;
  out.cancelled_in_flight = stats.cancelled_in_flight;
  out.deadline_expired = stats.deadline_expired;
  out.deadline_expired_in_flight = stats.deadline_expired_in_flight;
  out.shed = stats.shed;
  out.client_retries = impl_->client_retries.load(std::memory_order_relaxed);
  out.batches_dispatched = stats.batches_dispatched;
  out.batched_requests = stats.batched_requests;
  out.cache_hit_rate = stats.cache.HitRate();
  out.cache_bytes = stats.cache_bytes;
  out.peak_activation_bytes = stats.peak_activation_bytes;
  return out;
}

}  // namespace prefillonly
