// Implementation of the stable client facade (include/prefillonly/client.h):
// the only translation unit that couples the facade types to the internal
// engine headers.
#include "prefillonly/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "src/cluster/replica_set.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/core/engine.h"
#include "src/server/api_error.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {

namespace {

ReplicaSetOptions ToReplicaSetOptions(const ClientOptions& options) {
  ReplicaSetOptions cluster;
  cluster.n_replicas = std::max(1, options.n_replicas);
  EngineOptions& engine = cluster.engine;
  if (options.model == "tiny") {
    engine.model = ModelConfig::Tiny();
  } else {
    if (options.model != "small") {
      PO_LOG_WARNING << "unknown model preset '" << options.model
                     << "'; using 'small'";
    }
    engine.model = ModelConfig::Small();
  }
  if (options.prefill_mode == "standard") {
    engine.mode = PrefillMode::kStandard;
  } else if (options.prefill_mode == "chunked") {
    engine.mode = PrefillMode::kChunked;
  } else {
    if (options.prefill_mode != "hybrid") {
      PO_LOG_WARNING << "unknown prefill mode '" << options.prefill_mode
                     << "'; using 'hybrid'";
    }
    engine.mode = PrefillMode::kHybrid;
  }
  engine.chunk_size = options.chunk_size;
  engine.num_threads = options.num_threads;
  engine.max_concurrent_requests = options.max_concurrent_requests;
  engine.max_batch_size = options.max_batch_size;
  engine.activation_budget_bytes = static_cast<size_t>(options.activation_budget_bytes);
  engine.cache_budget_tokens = options.cache_budget_tokens;
  engine.cpu_offload_budget_tokens = options.cpu_offload_budget_tokens;
  engine.block_size = options.block_size;
  return cluster;
}

ScoreResult ToScoreResult(const Result<ScoringResponse>& result) {
  ScoreResult out;
  if (!result.ok()) {
    out.ok = false;
    out.error_code = ApiErrorCodeFor(result.status().code());
    out.error_message = result.status().message();
    return out;
  }
  const ScoringResponse& response = result.value();
  out.ok = true;
  out.score = response.score;
  out.probabilities.reserve(response.probabilities.size());
  for (const auto& p : response.probabilities) {
    out.probabilities.push_back({p.token, p.probability});
  }
  out.n_input = response.n_input;
  out.n_cached = response.n_cached;
  out.n_cached_offload = response.n_cached_offload;
  out.batch_size = response.batch_size;
  out.queue_time_s = response.queue_time_s;
  out.execute_time_s = response.execute_time_s;
  return out;
}

ScoringRequest ToScoringRequest(std::vector<int32_t> tokens,
                                std::vector<int32_t> allowed,
                                const ScoreOptions& options) {
  ScoringRequest request;
  request.tokens = std::move(tokens);
  request.allowed_tokens = std::move(allowed);
  request.user_id = options.user_id;
  request.priority = options.priority;
  request.deadline_ms = options.deadline_ms < 0 ? ScoringRequest::kNoDeadline
                                                : options.deadline_ms;
  return request;
}

// Transient = worth retrying: the engine may well succeed on the next
// attempt (load dropped, blocks freed, a breaker's half-open probe
// reclosed it). Everything else is permanent for this exact request.
bool IsTransient(const ScoreResult& result) {
  return !result.ok && (result.error_code == "resource_exhausted" ||
                        result.error_code == "unavailable");
}

// Failures the server pairs with a Retry-After hint: an overload shed (the
// 429 path, as opposed to a per-request budget failure) or a cluster
// unavailable (the 503 path). Both honor the Retry-After floor.
bool HonorsRetryAfterFloor(const ScoreResult& result) {
  return result.error_code == "unavailable" ||
         result.error_message.find("engine overloaded") != std::string::npos;
}

// Backoff for retry attempt `attempt` (1-based): exponential with
// deterministic jitter in [0, base/2].
int64_t BackoffMs(const RetryPolicy& policy, int attempt, bool shed,
                  uint64_t& jitter_state) {
  double base = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) {
    base *= policy.multiplier;
  }
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  int64_t backoff = static_cast<int64_t>(base);
  if (backoff > 0) {
    backoff += static_cast<int64_t>(SplitMix64(jitter_state) %
                                    static_cast<uint64_t>(backoff / 2 + 1));
  }
  if (shed) {
    backoff = std::max(backoff, policy.retry_after_floor_ms);
  }
  return backoff;
}

}  // namespace

// ---------------------------------------------------------------- handles

struct RequestHandle::State {
  int64_t id = -1;  // cluster id, stable across failover
  ReplicaSet* set = nullptr;  // null for submission-failure handles
  Engine::ResponseFuture future;
  bool resolved = false;
  ScoreResult result;  // valid once resolved
};

RequestHandle::RequestHandle() : state_(std::make_unique<State>()) {
  state_->resolved = true;
  state_->result.ok = false;
  state_->result.error_code = "invalid_argument";
  state_->result.error_message = "empty request handle";
}
RequestHandle::~RequestHandle() = default;
RequestHandle::RequestHandle(RequestHandle&&) noexcept = default;
RequestHandle& RequestHandle::operator=(RequestHandle&&) noexcept = default;

int64_t RequestHandle::id() const { return state_->id; }

bool RequestHandle::Done() const {
  if (state_->resolved) {
    return true;
  }
  return state_->future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

ScoreResult RequestHandle::Wait() {
  if (!state_->resolved) {
    state_->result = ToScoreResult(state_->future.get());
    state_->resolved = true;
  }
  return state_->result;
}

bool RequestHandle::Cancel() {
  if (state_->resolved || state_->set == nullptr || Done()) {
    return false;
  }
  return state_->set->Cancel(state_->id).ok();
}

// ----------------------------------------------------------------- client

struct Client::Impl {
  // The ReplicaSetOptions conversion runs once, in a delegating step, so
  // preset warnings fire once and tokenizer/replicas agree on the resolved
  // model. The ReplicaSet starts every replica's concurrent runtime itself.
  explicit Impl(const ClientOptions& options)
      : Impl(ToReplicaSetOptions(options)) {
    retry = options.retry;
  }

  explicit Impl(ReplicaSetOptions cluster_options)
      : tokenizer(static_cast<int32_t>(cluster_options.engine.model.vocab_size)),
        set(std::move(cluster_options)) {}

  RequestHandle MakeHandle(Result<ReplicaSet::Submission> submission) {
    RequestHandle handle;
    if (!submission.ok()) {
      handle.state_->result.error_code = ApiErrorCodeFor(submission.status().code());
      handle.state_->result.error_message = submission.status().message();
      return handle;
    }
    handle.state_->id = submission.value().id;
    handle.state_->set = &set;
    handle.state_->future = std::move(submission.value().future);
    handle.state_->resolved = false;
    return handle;
  }

  // Blocking call with the transient-failure RetryPolicy applied: each
  // attempt re-submits a fresh copy of the request; sleeps between attempts
  // are exponential with deterministic jitter (and floored at the
  // Retry-After hint after an overload shed or a cluster unavailable).
  ScoreResult ScoreWithRetry(const ScoringRequest& request) {
    uint64_t jitter_state = retry.jitter_seed;
    ScoreResult result = ToScoreResult(set.Score(request));
    for (int attempt = 1; attempt <= retry.max_retries && IsTransient(result);
         ++attempt) {
      const int64_t backoff =
          BackoffMs(retry, attempt, HonorsRetryAfterFloor(result), jitter_state);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      client_retries.fetch_add(1, std::memory_order_relaxed);
      result = ToScoreResult(set.Score(request));
    }
    return result;
  }

  HashTokenizer tokenizer;
  ReplicaSet set;
  RetryPolicy retry;
  std::atomic<int64_t> client_retries{0};
};

Client::Client(const ClientOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}
Client::~Client() = default;

ScoreResult Client::Score(const std::vector<int32_t>& tokens,
                          const std::vector<int32_t>& allowed,
                          const ScoreOptions& options) {
  return impl_->ScoreWithRetry(ToScoringRequest(tokens, allowed, options));
}

ScoreResult Client::ScoreText(const std::string& text,
                              const std::vector<std::string>& allowed_words,
                              const ScoreOptions& options) {
  std::vector<int32_t> allowed;
  allowed.reserve(allowed_words.size());
  for (const std::string& word : allowed_words) {
    allowed.push_back(impl_->tokenizer.TokenFor(word));
  }
  return impl_->ScoreWithRetry(
      ToScoringRequest(impl_->tokenizer.Encode(text), std::move(allowed), options));
}

RequestHandle Client::Submit(std::vector<int32_t> tokens,
                             std::vector<int32_t> allowed,
                             const ScoreOptions& options) {
  return impl_->MakeHandle(impl_->set.Submit(
      ToScoringRequest(std::move(tokens), std::move(allowed), options)));
}

std::vector<RequestHandle> Client::SubmitBatch(
    std::vector<std::vector<int32_t>> items, const std::vector<int32_t>& allowed,
    const ScoreOptions& options) {
  std::vector<ScoringRequest> requests;
  requests.reserve(items.size());
  for (std::vector<int32_t>& tokens : items) {
    requests.push_back(ToScoringRequest(std::move(tokens), allowed, options));
  }
  auto submitted = impl_->set.SubmitGroup(std::move(requests));
  std::vector<RequestHandle> handles;
  if (!submitted.ok()) {
    // All-or-nothing admission: every handle reports the submission error.
    for (size_t i = 0; i < items.size(); ++i) {
      handles.push_back(impl_->MakeHandle(submitted.status()));
    }
    return handles;
  }
  handles.reserve(submitted.value().size());
  for (ReplicaSet::Submission& submission : submitted.value()) {
    handles.push_back(impl_->MakeHandle(std::move(submission)));
  }
  return handles;
}

int32_t Client::TokenForWord(const std::string& word) const {
  return impl_->tokenizer.TokenFor(word);
}

ClientStats Client::Stats() const {
  const EngineStats stats = impl_->set.Stats().totals;
  ClientStats out;
  out.submitted = stats.submitted;
  out.completed = stats.completed;
  out.failed = stats.failed;
  out.cancelled = stats.cancelled;
  out.cancelled_in_flight = stats.cancelled_in_flight;
  out.deadline_expired = stats.deadline_expired;
  out.deadline_expired_in_flight = stats.deadline_expired_in_flight;
  out.shed = stats.shed;
  out.client_retries = impl_->client_retries.load(std::memory_order_relaxed);
  out.batches_dispatched = stats.batches_dispatched;
  out.batched_requests = stats.batched_requests;
  out.cache_hit_rate = stats.cache.HitRate();
  out.cache_bytes = stats.cache_bytes;
  out.peak_activation_bytes = stats.peak_activation_bytes;
  return out;
}

}  // namespace prefillonly
