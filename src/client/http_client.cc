#include "src/client/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace prefillonly {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Strict decimal parse mirroring the server's ParseContentLength: garbage in
// a length header must become a framing error, never an exception or a
// huge allocation.
bool ParseDecimal(const std::string& value, size_t max, size_t& out) {
  if (value.empty() || value.size() > 19) {
    return false;
  }
  size_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    parsed = parsed * 10 + static_cast<size_t>(c - '0');
  }
  if (parsed > max) {
    return false;
  }
  out = parsed;
  return true;
}

}  // namespace

Result<HttpClientOptions> ParseEndpoint(const std::string& endpoint) {
  HttpClientOptions options;
  std::string port_part = endpoint;
  const size_t colon = endpoint.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) {
      options.host = endpoint.substr(0, colon);
    }
    port_part = endpoint.substr(colon + 1);
  }
  size_t port = 0;
  if (!ParseDecimal(port_part, 65535, port) || port == 0) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not host:port with a port in [1, 65535]");
  }
  options.port = static_cast<uint16_t>(port);
  return options;
}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residue_.clear();
}

Status HttpClient::Connect() {
  Disconnect();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable("socket() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("host '" + options_.host +
                                   "' is not an IPv4 address");
  }
  if (options_.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((options_.io_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  // Scoring requests are single small writes; waiting for more payload
  // (Nagle) only adds latency the histogram would then blame on the server.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::Unavailable("connect to " + options_.host + ":" +
                               std::to_string(options_.port) +
                               " failed: " + std::string(std::strerror(saved)));
  }
  fd_ = fd;
  if (++connects_ > 1) {
    ++reconnects_;
  }
  return Status::Ok();
}

Result<HttpClientResponse> HttpClient::RoundTrip(const std::string& raw,
                                                 bool& got_response_bytes) {
  got_response_bytes = !residue_.empty();
  // Send, surviving EINTR and short writes (mirror of the server's SendAll).
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd_, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable("send failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed while sending");
    }
    sent += static_cast<size_t>(n);
  }

  // Frame exactly one response: status line + headers, then Content-Length
  // bytes of body (the in-repo server always sends a length; a length-less
  // close-delimited response is read to EOF).
  std::string buffer = std::move(residue_);
  residue_.clear();
  char chunk[4096];
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable("recv failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (buffer.empty()) {
        // Clean close before any response byte: the stale keep-alive case.
        return Status::Unavailable("connection closed before response");
      }
      got_response_bytes = true;
      return Status::Internal("connection closed mid-headers");
    }
    got_response_bytes = true;
    buffer.append(chunk, static_cast<size_t>(n));
  }

  HttpClientResponse response;
  {
    const std::string head = buffer.substr(0, header_end);
    size_t line_end = head.find("\r\n");
    const std::string status_line =
        head.substr(0, line_end == std::string::npos ? head.size() : line_end);
    // "HTTP/1.1 200 OK"
    const size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
      return Status::Internal("malformed status line: " + status_line);
    }
    int status = 0;
    for (size_t i = sp1 + 1; i < status_line.size() && status_line[i] != ' '; ++i) {
      if (!std::isdigit(static_cast<unsigned char>(status_line[i]))) {
        return Status::Internal("malformed status code: " + status_line);
      }
      status = status * 10 + (status_line[i] - '0');
    }
    if (status < 100 || status > 599) {
      return Status::Internal("implausible status code: " + status_line);
    }
    response.status = status;
    size_t line_start = line_end == std::string::npos ? head.size() : line_end + 2;
    while (line_start < head.size()) {
      line_end = head.find("\r\n", line_start);
      const std::string line =
          head.substr(line_start, (line_end == std::string::npos ? head.size()
                                                                 : line_end) -
                                      line_start);
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string key = ToLower(line.substr(0, colon));
        size_t value_start = colon + 1;
        while (value_start < line.size() && line[value_start] == ' ') {
          ++value_start;
        }
        response.headers[key] = line.substr(value_start);
      }
      line_start = line_end == std::string::npos ? head.size() : line_end + 2;
    }
  }

  constexpr size_t kMaxBodyBytes = 64u << 20;
  const size_t body_start = header_end + 4;
  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    size_t content_length = 0;
    if (!ParseDecimal(it->second, kMaxBodyBytes, content_length)) {
      return Status::Internal("invalid Content-Length: " + it->second);
    }
    while (buffer.size() < body_start + content_length) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::Unavailable("recv failed: " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        return Status::Internal("connection closed mid-body");
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    response.body = buffer.substr(body_start, content_length);
    residue_ = buffer.substr(body_start + content_length);
  } else {
    // Close-delimited: read to EOF (legacy framing; never keep-alive).
    ssize_t n;
    while ((n = ::read(fd_, chunk, sizeof(chunk))) != 0) {
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::Unavailable("recv failed: " + std::string(std::strerror(errno)));
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    response.body = buffer.substr(body_start);
  }

  // Honor the server's connection disposition.
  auto conn = response.headers.find("connection");
  if (it == response.headers.end() ||
      (conn != response.headers.end() && ToLower(conn->second) == "close")) {
    Disconnect();
  }
  return response;
}

Result<HttpClientResponse> HttpClient::Request(
    const std::string& method, const std::string& path, const std::string& body,
    const std::map<std::string, std::string>& headers) {
  std::string raw = method + " " + path + " HTTP/1.1\r\nHost: " + options_.host +
                    "\r\nConnection: keep-alive\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n";
  for (const auto& [key, value] : headers) {
    raw += key + ": " + value + "\r\n";
  }
  raw += "\r\n" + body;

  bool fresh_connection = false;
  if (fd_ < 0) {
    if (Status status = Connect(); !status.ok()) {
      return status;
    }
    fresh_connection = true;
  }
  bool got_response_bytes = false;
  auto result = RoundTrip(raw, got_response_bytes);
  if (result.ok()) {
    return result;
  }
  Disconnect();
  // Resend exactly once, and only when the request provably never executed:
  // the connection was a reused keep-alive socket (the server may have
  // closed it while idle) and it died before a single response byte.
  if (!fresh_connection && !got_response_bytes) {
    if (Status status = Connect(); !status.ok()) {
      return status;
    }
    auto retried = RoundTrip(raw, got_response_bytes);
    if (!retried.ok()) {
      Disconnect();
    }
    return retried;
  }
  return result;
}

}  // namespace prefillonly
