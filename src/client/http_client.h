// Blocking HTTP/1.1 client with keep-alive (ISSUE 10).
//
// The transport behind the facade's remote mode (ClientOptions::endpoint)
// and the loadgen's remote target: one TCP connection to one host:port,
// reused across requests exactly the way the in-repo HttpServer persists
// them — every request carries `Connection: keep-alive`, every response is
// Content-Length-framed, so request after request rides the same socket
// and a polling or load-generating client never pays a connect per call.
//
// Scope is deliberately the mirror image of src/server/http_server.h: no
// TLS, no chunked transfer, no redirects — the v1 API emits none of those.
// What it does handle it handles carefully:
//
//   * RECONNECT-ON-STALE: a keep-alive peer may close the socket between
//     requests (server restart, idle reap). If the failure happens before
//     any response byte arrived, the request provably never executed, so
//     the client transparently reconnects and resends ONCE. A failure
//     mid-response is NOT retried — the request may have executed, and
//     at-most-once delivery is the cluster's contract (docs/CLUSTER.md).
//   * EINTR/short-write safety on both directions, same as the server.
//   * Transport failures surface as Status codes, not sentinel bodies:
//     kUnavailable for connect/send/recv failures (the retryable class the
//     facade's RetryPolicy already understands), kInternal for responses
//     that violate HTTP framing.
//
// One HttpClient = one connection = one thread at a time. Concurrent
// callers hold one HttpClient each (see the facade's connection pool in
// src/client/client.cc).
#ifndef SRC_CLIENT_HTTP_CLIENT_H_
#define SRC_CLIENT_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"

namespace prefillonly {

struct HttpClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Socket-level send/receive timeout. A server that goes silent for this
  // long mid-exchange fails the request with kUnavailable; 0 = no timeout.
  int64_t io_timeout_ms = 30000;
};

// "host:port" (or ":port" / "port", defaulting the host to loopback).
Result<HttpClientOptions> ParseEndpoint(const std::string& endpoint);

struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

class HttpClient {
 public:
  explicit HttpClient(HttpClientOptions options) : options_(std::move(options)) {}
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Sends one request and reads one framed response on the persistent
  // connection (connecting on first use, reconnecting once if the pooled
  // connection turned out stale). Content-Length and Connection: keep-alive
  // are added by the client; `headers` may add more.
  Result<HttpClientResponse> Request(
      const std::string& method, const std::string& path, const std::string& body,
      const std::map<std::string, std::string>& headers = {});

  Result<HttpClientResponse> Get(const std::string& path) {
    return Request("GET", path, "");
  }
  Result<HttpClientResponse> Post(const std::string& path, const std::string& body) {
    return Request("POST", path, body);
  }

  const HttpClientOptions& options() const { return options_; }
  bool connected() const { return fd_ >= 0; }
  // Connections established beyond the first (stale keep-alive sockets
  // replaced). Zero after N requests == the keep-alive path actually held.
  int64_t reconnects() const { return reconnects_; }

 private:
  Status Connect();
  void Disconnect();
  // One request/response exchange on the current connection.
  // `got_response_bytes` reports whether any response data arrived before a
  // failure — the resend-safety predicate.
  Result<HttpClientResponse> RoundTrip(const std::string& raw,
                                       bool& got_response_bytes);

  HttpClientOptions options_;
  int fd_ = -1;
  int64_t connects_ = 0;
  int64_t reconnects_ = 0;
  // Unparsed bytes read past the previous response's frame (a pipelining
  // server could legally send ahead; keeping them preserves framing).
  std::string residue_;
};

}  // namespace prefillonly

#endif  // SRC_CLIENT_HTTP_CLIENT_H_
