#include "src/kvcache/prefix_cache.h"

#include <algorithm>
#include <cassert>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace prefillonly {

PrefixCache::PrefixCache(int block_size_tokens, int64_t capacity_blocks)
    : block_size_(block_size_tokens), allocator_(capacity_blocks) {
  assert(block_size_tokens > 0);
  lru_head_.lru_next = &lru_tail_;
  lru_tail_.lru_prev = &lru_head_;
}

PrefixCache::~PrefixCache() = default;

void PrefixCache::LruUnlink(Node* node) {
  node->lru_prev->lru_next = node->lru_next;
  node->lru_next->lru_prev = node->lru_prev;
  node->lru_prev = nullptr;
  node->lru_next = nullptr;
}

void PrefixCache::LruInsertSorted(Node* node) {
  // The simulator drives stamps through SetClock and may present them out
  // of order, so position by stamp rather than blindly appending; with the
  // monotone auto-stamp this loop never iterates.
  Node* pos = lru_tail_.lru_prev;
  while (pos != &lru_head_ &&
         (pos->last_use > node->last_use ||
          (pos->last_use == node->last_use && pos->base_depth < node->base_depth))) {
    pos = pos->lru_prev;
  }
  node->lru_prev = pos;
  node->lru_next = pos->lru_next;
  pos->lru_next->lru_prev = node;
  pos->lru_next = node;
}

void PrefixCache::Touch(Node* node, uint64_t stamp) {
  node->last_use = stamp;
  LruUnlink(node);
  LruInsertSorted(node);
}

PrefixCache::Walk PrefixCache::WalkPrefix(std::span<const uint64_t> chain) const {
  auto* node = const_cast<Node*>(&root_);
  size_t offset = 0;
  int64_t matched = 0;
  while (matched < static_cast<int64_t>(chain.size())) {
    auto it = node->children.find(chain[static_cast<size_t>(matched)]);
    if (it == node->children.end()) {
      break;
    }
    Node* child = it->second.get();
    size_t i = 0;  // first element matches by key
    while (i < child->run.size() && matched < static_cast<int64_t>(chain.size()) &&
           child->run[i] == chain[static_cast<size_t>(matched)]) {
      ++i;
      ++matched;
    }
    node = child;
    offset = i;
    if (i < child->run.size()) {
      break;  // diverged (or chain ended) inside this node's run
    }
  }
  return Walk{node, offset, matched};
}

int64_t PrefixCache::MatchTokens(std::span<const uint64_t> chain) const {
  return WalkPrefix(chain).matched * block_size_;
}

void PrefixCache::EvictTailBlock(Node* node) {
  const int64_t depth = node->base_depth + static_cast<int64_t>(node->run.size()) - 1;
  if (eviction_listener_) {
    eviction_listener_(node->run.back(), node->blocks.back(), depth);
  }
  const bool freed = allocator_.DecRef(node->blocks.back());
  assert(freed);
  (void)freed;
  node->run.pop_back();
  node->blocks.pop_back();
  --cached_blocks_;
  ++stats_.evictions;
}

void PrefixCache::RemoveEmptyLeaf(Node* node) {
  assert(node->children.empty() && node->blocks.empty());
  LruUnlink(node);
  --num_nodes_;
  node->parent->children.erase(node->edge_key);  // destroys `node`
}

bool PrefixCache::EvictUntilFree(int64_t needed) {
  // Walk the LRU list oldest-first, trimming unpinned blocks from the
  // tails of leaf nodes. Removing a node can turn its parent into a leaf
  // anywhere in the list, so sweep again while progress is being made —
  // each sweep frees at least one block, so the total work is bounded by
  // the blocks actually evicted, not the table size.
  bool progress = true;
  while (allocator_.free_blocks() < needed && progress) {
    progress = false;
    Node* node = lru_head_.lru_next;
    while (node != &lru_tail_) {
      Node* next = node->lru_next;
      if (node->children.empty()) {
        // Pins are root-contiguous along the path, so within a node they
        // are front-contiguous: an unpinned tail block never hides a
        // pinned deeper one.
        while (allocator_.free_blocks() < needed && !node->blocks.empty() &&
               allocator_.RefCount(node->blocks.back()) == 1) {
          EvictTailBlock(node);
          progress = true;
        }
        if (node->blocks.empty()) {
          RemoveEmptyLeaf(node);
        }
        if (allocator_.free_blocks() >= needed) {
          return true;
        }
      }
      node = next;
    }
  }
  return allocator_.free_blocks() >= needed;
}

Result<Acquisition> PrefixCache::Acquire(std::span<const uint64_t> chain,
                                         int64_t need_blocks, int64_t lookup_tokens) {
  if (need_blocks < static_cast<int64_t>(chain.size())) {
    return Status::InvalidArgument("need_blocks smaller than the hash chain");
  }
  ++stats_.lookups;
  // Token-accurate accounting: the caller tells us how many tokens it
  // actually presented (including a trailing partial block); -1 keeps the
  // whole-block approximation for callers without token counts.
  const int64_t looked_up =
      lookup_tokens >= 0 ? lookup_tokens
                         : static_cast<int64_t>(chain.size()) * block_size_;
  stats_.lookup_tokens += looked_up;

  Acquisition acq;
  acq.chain.assign(chain.begin(), chain.end());

  // Pin the cached prefix so eviction (below) cannot take it. A forced miss
  // (fault injection) skips the match entirely: the request recomputes
  // every block, as if the cache held nothing for this chain.
  const bool force_miss = FaultInjector::Global().Fire(fault::kCacheForceMiss);
  const uint64_t stamp = NextStamp();
  if (!force_miss) {
    const Walk walk = WalkPrefix(chain);
    // Collect the matched path root-first so acq.blocks stays in chain
    // order, pinning every matched block and refreshing node recency.
    std::vector<Node*> path;
    for (Node* n = walk.node; n != &root_; n = n->parent) {
      path.push_back(n);
    }
    std::reverse(path.begin(), path.end());
    for (Node* n : path) {
      const size_t count = (n == walk.node) ? walk.offset : n->run.size();
      for (size_t i = 0; i < count; ++i) {
        allocator_.IncRef(n->blocks[i]);
        acq.blocks.push_back(n->blocks[i]);
      }
      Touch(n, stamp);
    }
    acq.matched_blocks = walk.matched;
  }
  stats_.hit_tokens += std::min(acq.matched_blocks * block_size_, looked_up);

  const int64_t fresh_needed = need_blocks - acq.matched_blocks;
  if (!EvictUntilFree(fresh_needed)) {
    for (int64_t i = 0; i < acq.matched_blocks; ++i) {
      allocator_.DecRef(acq.blocks[static_cast<size_t>(i)]);
    }
    ++stats_.failed_acquires;
    return Status::ResourceExhausted("request KV does not fit in the block pool");
  }
  for (int64_t i = 0; i < fresh_needed; ++i) {
    auto block = allocator_.Allocate();
    if (!block.ok()) {
      // EvictUntilFree guarantees free blocks exist, so this only happens
      // under fault injection — but the rollback must still be exact: drop
      // the fresh blocks already taken, then the pins on the matched prefix,
      // leaving the cache exactly as before the call.
      while (static_cast<int64_t>(acq.blocks.size()) > acq.matched_blocks) {
        allocator_.DecRef(acq.blocks.back());
        acq.blocks.pop_back();
      }
      for (int64_t m = 0; m < acq.matched_blocks; ++m) {
        allocator_.DecRef(acq.blocks[static_cast<size_t>(m)]);
      }
      ++stats_.failed_acquires;
      return block.status();
    }
    acq.blocks.push_back(block.value());
  }
  acq.active = true;
  return acq;
}

PrefixCache::Node* PrefixCache::SplitNode(Node* node, size_t offset) {
  assert(offset > 0 && offset < node->run.size());
  auto child = std::make_unique<Node>();
  child->run.assign(node->run.begin() + static_cast<std::ptrdiff_t>(offset),
                    node->run.end());
  child->blocks.assign(node->blocks.begin() + static_cast<std::ptrdiff_t>(offset),
                       node->blocks.end());
  child->base_depth = node->base_depth + static_cast<int64_t>(offset);
  child->edge_key = child->run.front();
  child->parent = node;
  child->children = std::move(node->children);
  for (auto& [key, grandchild] : child->children) {
    grandchild->parent = child.get();
  }
  child->last_use = node->last_use;
  node->run.resize(offset);
  node->blocks.resize(offset);
  node->children.clear();
  Node* child_ptr = child.get();
  node->children.emplace(child_ptr->edge_key, std::move(child));
  ++num_nodes_;
  LruInsertSorted(child_ptr);  // same stamp, deeper → evicted before `node`
  return node;
}

std::vector<std::pair<int64_t, BlockId>> PrefixCache::Release(Acquisition& acq,
                                                              int64_t cache_blocks) {
  assert(acq.active);
  std::vector<std::pair<int64_t, BlockId>> inserted_blocks;
  const auto chain_len = static_cast<int64_t>(acq.chain.size());
  cache_blocks = std::clamp<int64_t>(cache_blocks, 0, chain_len);
  const uint64_t stamp = NextStamp();

  // Re-walk: a concurrent request may have cached more of this chain since
  // the acquire (never less — our pins kept the matched path alive).
  const Walk walk = WalkPrefix(acq.chain);
  const int64_t matched_now = walk.matched;
  assert(matched_now >= acq.matched_blocks);

  for (int64_t i = 0; i < static_cast<int64_t>(acq.blocks.size()); ++i) {
    const BlockId block = acq.blocks[static_cast<size_t>(i)];
    if (i < acq.matched_blocks) {
      // Was cached before we pinned it; drop only our pin.
      allocator_.DecRef(block);
      continue;
    }
    if (i < cache_blocks && i >= matched_now) {
      continue;  // freshly computed retained-prefix block: inserted below
    }
    // Duplicate of a concurrently cached block, suffix beyond the retained
    // prefix, or the trailing partial block: discarded.
    allocator_.DecRef(block);
  }

  if (matched_now < cache_blocks) {
    // Attach the new run at the divergence point, splitting mid-run if the
    // walk stopped inside an existing node.
    Node* parent = walk.node;
    if (parent != &root_ && walk.offset < parent->run.size()) {
      parent = SplitNode(parent, walk.offset);
    }
    auto node = std::make_unique<Node>();
    node->base_depth = matched_now;
    node->parent = parent;
    node->last_use = stamp;
    for (int64_t i = matched_now; i < cache_blocks; ++i) {
      node->run.push_back(acq.chain[static_cast<size_t>(i)]);
      node->blocks.push_back(acq.blocks[static_cast<size_t>(i)]);
      inserted_blocks.emplace_back(i, acq.blocks[static_cast<size_t>(i)]);
    }
    node->edge_key = node->run.front();
    Node* node_ptr = node.get();
    parent->children.emplace(node_ptr->edge_key, std::move(node));
    ++num_nodes_;
    cached_blocks_ += cache_blocks - matched_now;
    stats_.insertions += cache_blocks - matched_now;
    LruInsertSorted(node_ptr);
  }

  acq.blocks.clear();
  acq.matched_blocks = 0;
  acq.active = false;
  return inserted_blocks;
}

void PrefixCache::Clear() {
  bool progress = true;
  while (progress) {
    progress = false;
    Node* node = lru_head_.lru_next;
    while (node != &lru_tail_) {
      Node* next = node->lru_next;
      if (node->children.empty()) {
        while (!node->blocks.empty() &&
               allocator_.RefCount(node->blocks.back()) == 1) {
          EvictTailBlock(node);
          progress = true;
        }
        if (node->blocks.empty()) {
          RemoveEmptyLeaf(node);
        }
      }
      node = next;
    }
  }
}

}  // namespace prefillonly
