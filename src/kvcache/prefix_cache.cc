#include "src/kvcache/prefix_cache.h"

#include <algorithm>
#include <cassert>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace prefillonly {

PrefixCache::PrefixCache(int block_size_tokens, int64_t capacity_blocks)
    : block_size_(block_size_tokens), allocator_(capacity_blocks) {
  assert(block_size_tokens > 0);
}

int64_t PrefixCache::MatchTokens(std::span<const uint64_t> chain) const {
  int64_t matched = 0;
  for (uint64_t hash : chain) {
    if (!entries_.contains(hash)) {
      break;
    }
    ++matched;
  }
  return matched * block_size_;
}

bool PrefixCache::EvictUntilFree(int64_t needed) {
  while (allocator_.free_blocks() < needed) {
    // LRU victim; deeper blocks first so a chain's suffix dies before its
    // prefix (the prefix is the shareable part).
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (allocator_.RefCount(it->second.block) != 1) {
        continue;  // pinned by an in-flight request
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use ||
          (it->second.last_use == victim->second.last_use &&
           it->second.depth > victim->second.depth)) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return false;
    }
    if (eviction_listener_) {
      eviction_listener_(victim->first, victim->second.block, victim->second.depth);
    }
    const bool freed = allocator_.DecRef(victim->second.block);
    assert(freed);
    (void)freed;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  return true;
}

Result<Acquisition> PrefixCache::Acquire(std::span<const uint64_t> chain,
                                         int64_t need_blocks) {
  if (need_blocks < static_cast<int64_t>(chain.size())) {
    return Status::InvalidArgument("need_blocks smaller than the hash chain");
  }
  ++stats_.lookups;
  stats_.lookup_tokens += static_cast<int64_t>(chain.size()) * block_size_;

  Acquisition acq;
  acq.chain.assign(chain.begin(), chain.end());

  // Pin the cached prefix so eviction (below) cannot take it. A forced miss
  // (fault injection) skips the pin loop entirely: the request recomputes
  // every block, as if the cache held nothing for this chain.
  const bool force_miss = FaultInjector::Global().Fire(fault::kCacheForceMiss);
  const uint64_t stamp = NextStamp();
  for (uint64_t hash : chain) {
    if (force_miss) {
      break;
    }
    auto it = entries_.find(hash);
    if (it == entries_.end()) {
      break;
    }
    allocator_.IncRef(it->second.block);
    it->second.last_use = stamp;
    acq.blocks.push_back(it->second.block);
    ++acq.matched_blocks;
  }
  stats_.hit_tokens += acq.matched_blocks * block_size_;

  const int64_t fresh_needed = need_blocks - acq.matched_blocks;
  if (!EvictUntilFree(fresh_needed)) {
    for (int64_t i = 0; i < acq.matched_blocks; ++i) {
      allocator_.DecRef(acq.blocks[static_cast<size_t>(i)]);
    }
    ++stats_.failed_acquires;
    return Status::ResourceExhausted("request KV does not fit in the block pool");
  }
  for (int64_t i = 0; i < fresh_needed; ++i) {
    auto block = allocator_.Allocate();
    if (!block.ok()) {
      // EvictUntilFree guarantees free blocks exist, so this only happens
      // under fault injection — but the rollback must still be exact: drop
      // the fresh blocks already taken, then the pins on the matched prefix,
      // leaving the cache exactly as before the call.
      while (static_cast<int64_t>(acq.blocks.size()) > acq.matched_blocks) {
        allocator_.DecRef(acq.blocks.back());
        acq.blocks.pop_back();
      }
      for (int64_t m = 0; m < acq.matched_blocks; ++m) {
        allocator_.DecRef(acq.blocks[static_cast<size_t>(m)]);
      }
      ++stats_.failed_acquires;
      return block.status();
    }
    acq.blocks.push_back(block.value());
  }
  acq.active = true;
  return acq;
}

std::vector<std::pair<int64_t, BlockId>> PrefixCache::Release(Acquisition& acq,
                                                              int64_t cache_blocks) {
  assert(acq.active);
  std::vector<std::pair<int64_t, BlockId>> inserted_blocks;
  const auto chain_len = static_cast<int64_t>(acq.chain.size());
  cache_blocks = std::clamp<int64_t>(cache_blocks, 0, chain_len);
  const uint64_t stamp = NextStamp();

  for (int64_t i = 0; i < static_cast<int64_t>(acq.blocks.size()); ++i) {
    const BlockId block = acq.blocks[static_cast<size_t>(i)];
    if (i < acq.matched_blocks) {
      // Was cached before we pinned it; drop only our pin.
      allocator_.DecRef(block);
      continue;
    }
    if (i < cache_blocks) {
      // Freshly computed block that falls inside the retained prefix:
      // hand ownership to the cache (suffix KV discarding caps
      // cache_blocks for PrefillOnly; baselines cache everything).
      const uint64_t hash = acq.chain[static_cast<size_t>(i)];
      auto [it, inserted] = entries_.try_emplace(hash, Entry{block, i, stamp});
      if (inserted) {
        ++stats_.insertions;
        inserted_blocks.emplace_back(i, block);
      } else {
        // A concurrent request already cached this prefix block; ours is a
        // duplicate.
        allocator_.DecRef(block);
      }
      continue;
    }
    // Suffix beyond the retained prefix, or the trailing partial block:
    // discarded.
    allocator_.DecRef(block);
  }
  acq.blocks.clear();
  acq.matched_blocks = 0;
  acq.active = false;
  return inserted_blocks;
}

void PrefixCache::Clear() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (allocator_.RefCount(it->second.block) == 1) {
      if (eviction_listener_) {
        eviction_listener_(it->first, it->second.block, it->second.depth);
      }
      allocator_.DecRef(it->second.block);
      ++stats_.evictions;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace prefillonly
