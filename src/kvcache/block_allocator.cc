#include "src/kvcache/block_allocator.h"

#include <cassert>

#include "src/common/fault.h"

namespace prefillonly {

BlockAllocator::BlockAllocator(int64_t n_blocks) {
  assert(n_blocks >= 0);
  refcounts_.assign(static_cast<size_t>(n_blocks), 0);
  free_list_.reserve(static_cast<size_t>(n_blocks));
  // Hand out low ids first: free list is filled in reverse.
  for (int64_t i = n_blocks - 1; i >= 0; --i) {
    free_list_.push_back(static_cast<BlockId>(i));
  }
}

Result<BlockId> BlockAllocator::Allocate() {
  if (free_list_.empty()) {
    return Status::ResourceExhausted("KV block pool exhausted");
  }
  if (FaultInjector::Global().Fire(fault::kAllocKvBlock)) {
    return Status::ResourceExhausted("KV block allocation failed (injected)");
  }
  const BlockId id = free_list_.back();
  free_list_.pop_back();
  refcounts_[static_cast<size_t>(id)] = 1;
  return id;
}

void BlockAllocator::IncRef(BlockId id) {
  assert(id >= 0 && static_cast<size_t>(id) < refcounts_.size());
  assert(refcounts_[static_cast<size_t>(id)] > 0);
  ++refcounts_[static_cast<size_t>(id)];
}

bool BlockAllocator::DecRef(BlockId id) {
  assert(id >= 0 && static_cast<size_t>(id) < refcounts_.size());
  int32_t& count = refcounts_[static_cast<size_t>(id)];
  assert(count > 0);
  --count;
  if (count == 0) {
    free_list_.push_back(id);
    return true;
  }
  return false;
}

int32_t BlockAllocator::RefCount(BlockId id) const {
  assert(id >= 0 && static_cast<size_t>(id) < refcounts_.size());
  return refcounts_[static_cast<size_t>(id)];
}

}  // namespace prefillonly
