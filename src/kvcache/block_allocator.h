// Fixed-pool block allocator with reference counting.
//
// Models vLLM's PagedAttention block pool: GPU KV memory is carved into
// fixed-size blocks identified by small integer ids; blocks are shared
// between sequences via reference counts (prefix caching holds one
// reference, every in-flight request using a block holds another).
#ifndef SRC_KVCACHE_BLOCK_ALLOCATOR_H_
#define SRC_KVCACHE_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace prefillonly {

using BlockId = int32_t;

class BlockAllocator {
 public:
  explicit BlockAllocator(int64_t n_blocks);

  // Allocates a block with refcount 1; kResourceExhausted when the pool is
  // empty.
  Result<BlockId> Allocate();

  void IncRef(BlockId id);
  // Drops one reference; frees and returns true when it was the last.
  bool DecRef(BlockId id);

  int32_t RefCount(BlockId id) const;
  int64_t total_blocks() const { return static_cast<int64_t>(refcounts_.size()); }
  int64_t free_blocks() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t used_blocks() const { return total_blocks() - free_blocks(); }

 private:
  std::vector<int32_t> refcounts_;
  std::vector<BlockId> free_list_;
};

}  // namespace prefillonly

#endif  // SRC_KVCACHE_BLOCK_ALLOCATOR_H_
