// Radix-tree prefix cache over a fixed KV block pool.
//
// The tree is keyed by chain hashes (src/common/hash.h): block i of a
// token sequence is identified by the hash of blocks 0..i, so equal chain
// elements mean equal token prefixes, and a path from the root spells out
// one block-aligned prefix. This is the prefix-caching scheme of
// vLLM/SGLang that the paper builds on (§2.1) and that continuous JCT
// calibration queries before every scheduling decision (§6.3); the tree
// shape (run-compressed nodes, split-on-common-prefix, LRU list over
// nodes, leaf-only eviction) follows vectorch-ai's prefix_cache.h.
//
// Each node holds a run of consecutive blocks (hash + block id per
// element). Two requests sharing any block-aligned prefix share the same
// path — and therefore the same block ids — up to their divergence point;
// inserting a chain that diverges inside a node's run splits the node at
// the common prefix, pure pointer surgery that never touches KV bytes.
//
// Lifecycle of a request against the cache:
//   1. MatchTokens(chain)          — how much prefix is already cached
//                                    (what the JCT calibrator calls).
//   2. Acquire(chain, need_blocks) — pin the matched prefix and allocate
//                                    the remaining blocks from the pool,
//                                    evicting unpinned LRU leaves; fails
//                                    with kResourceExhausted when the
//                                    request cannot fit (the Table 2 "x").
//   3. Release(acq, cache_blocks)  — unpin; insert the freshly computed
//                                    retained-prefix blocks into the tree
//                                    (suffix KV cache discarding caps
//                                    cache_blocks); free the rest.
//
// Eviction walks the LRU list oldest-first and trims unpinned blocks from
// the *tails of leaf nodes only*: a node with children is by construction
// the prefix of everything below it and cannot be reclaimed first. That
// makes two flat-map pathologies structurally impossible — a hot shared
// prefix can no longer age out underneath its suffixes, and no block is
// ever left cached but unreachable (orphaned descendants). A block is
// pinned iff an in-flight request holds a reference (pool refcount > 1);
// pins are always root-contiguous, so tail-trimming never strands a pin.
#ifndef SRC_KVCACHE_PREFIX_CACHE_H_
#define SRC_KVCACHE_PREFIX_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvcache/block_allocator.h"

namespace prefillonly {

struct PrefixCacheStats {
  int64_t lookups = 0;
  int64_t hit_tokens = 0;     // total tokens served from cache
  int64_t lookup_tokens = 0;  // total tokens looked up
  int64_t evictions = 0;
  int64_t insertions = 0;
  int64_t failed_acquires = 0;

  double HitRate() const {
    return lookup_tokens == 0
               ? 0.0
               : static_cast<double>(hit_tokens) / static_cast<double>(lookup_tokens);
  }
};

// Handle for blocks held by an in-flight request.
struct Acquisition {
  std::vector<uint64_t> chain;   // full chain of the request (copied)
  int64_t matched_blocks = 0;    // prefix blocks served from cache (pinned)
  std::vector<BlockId> blocks;   // all block ids: matched first, then fresh
  bool active = false;
};

class PrefixCache {
 public:
  // `capacity_blocks` is the whole pool: cached + in-flight blocks share it,
  // exactly like KV memory on a GPU.
  PrefixCache(int block_size_tokens, int64_t capacity_blocks);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  int block_size() const { return block_size_; }
  int64_t capacity_blocks() const { return allocator_.total_blocks(); }
  int64_t cached_blocks() const { return cached_blocks_; }
  int64_t free_blocks() const { return allocator_.free_blocks(); }
  // Tree nodes currently live (excluding the root sentinel); a split adds
  // one, evicting a node's last block removes one.
  int64_t num_nodes() const { return num_nodes_; }
  const PrefixCacheStats& stats() const { return stats_; }

  // Longest cached prefix, in tokens (block granularity). Does not touch
  // LRU state — safe to call speculatively from the scheduler.
  int64_t MatchTokens(std::span<const uint64_t> chain) const;

  // Pins the matched prefix of `chain` and allocates `need_blocks` total
  // blocks for the request (matched + fresh), evicting unpinned LRU leaves
  // as necessary. `need_blocks` may exceed the chain length (trailing
  // partial block). `lookup_tokens` is the exact token count the request
  // presented for lookup — hit/lookup accounting is clamped to it so
  // trailing partial blocks can never inflate the hit rate; pass -1 for the
  // legacy whole-block approximation. On failure nothing is held.
  Result<Acquisition> Acquire(std::span<const uint64_t> chain, int64_t need_blocks,
                              int64_t lookup_tokens = -1);

  // Releases an acquisition: unpins matched blocks and caches the first
  // `cache_blocks` chain blocks of the request (including already-matched
  // ones); frees all other fresh blocks. `cache_blocks` beyond the chain
  // length is clamped. Returns the (chain index, block id) pairs newly
  // inserted into the cache — callers that attach real KV data to blocks
  // (src/core) populate exactly those.
  std::vector<std::pair<int64_t, BlockId>> Release(Acquisition& acq,
                                                   int64_t cache_blocks);

  // Invoked whenever a cached block is dropped (eviction or Clear), so a
  // data layer keyed by block id can drop the payload too.
  void SetEvictionListener(
      std::function<void(uint64_t hash, BlockId block, int64_t depth)> listener) {
    eviction_listener_ = std::move(listener);
  }

  // Drops every unpinned cached block (used by failure-injection tests).
  void Clear();

  // Advances the logical clock used for LRU stamping. The simulator calls
  // this with event timestamps so recency follows simulated time.
  void SetClock(uint64_t now) { clock_ = now; }

 private:
  // One run of consecutive blocks. `run[i]` is the chain hash of the block
  // at depth `base_depth + i`; `blocks[i]` is its pool id. Children are
  // keyed by the first hash of their run (`edge_key`). Nodes live in an
  // intrusive LRU list kept sorted by `last_use` (oldest at the head);
  // the root and the two list sentinels never hold blocks.
  struct Node {
    std::vector<uint64_t> run;
    std::vector<BlockId> blocks;
    int64_t base_depth = 0;
    uint64_t edge_key = 0;  // run[0] at creation; survives tail-trimming
    Node* parent = nullptr;
    std::unordered_map<uint64_t, std::unique_ptr<Node>> children;
    uint64_t last_use = 0;
    Node* lru_prev = nullptr;
    Node* lru_next = nullptr;
  };

  // Longest-prefix walk: `node` is the deepest node entered (the root when
  // nothing matched), `offset` how many of its run elements matched
  // (< run.size() means the walk stopped inside the node), `matched` the
  // total matched block count.
  struct Walk {
    Node* node;
    size_t offset;
    int64_t matched;
  };
  Walk WalkPrefix(std::span<const uint64_t> chain) const;

  void LruUnlink(Node* node);
  // Inserts by walking back from the MRU end, keeping the list sorted by
  // stamp (deeper nodes first among equal stamps, so a chain's suffix is
  // evicted before its prefix). O(1) while stamps are monotone.
  void LruInsertSorted(Node* node);
  void Touch(Node* node, uint64_t stamp);

  // Splits `node` so its first `offset` run elements stay in place and the
  // remainder moves into a new child (which inherits the original
  // children). Returns `node`, now ending exactly at the split point.
  Node* SplitNode(Node* node, size_t offset);

  // Drops the deepest block of `node` (listener + refcount + stats).
  void EvictTailBlock(Node* node);
  // Unlinks an empty leaf from the tree and the LRU list, destroying it.
  void RemoveEmptyLeaf(Node* node);

  // Evicts unpinned leaf tails until at least `needed` blocks are free.
  // Returns false if impossible.
  bool EvictUntilFree(int64_t needed);
  uint64_t NextStamp() { return (clock_ != 0) ? clock_ : ++auto_stamp_; }

  int block_size_;
  BlockAllocator allocator_;
  Node root_;
  Node lru_head_;
  Node lru_tail_;
  int64_t cached_blocks_ = 0;
  int64_t num_nodes_ = 0;
  PrefixCacheStats stats_;
  uint64_t clock_ = 0;
  uint64_t auto_stamp_ = 0;
  std::function<void(uint64_t, BlockId, int64_t)> eviction_listener_;
};

}  // namespace prefillonly

#endif  // SRC_KVCACHE_PREFIX_CACHE_H_
