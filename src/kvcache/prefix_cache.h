// Block-granular prefix cache over a fixed KV block pool.
//
// The cache is keyed by chain hashes (src/common/hash.h): block i of a
// token sequence is identified by the hash of blocks 0..i, so equal hashes
// mean equal prefixes. This is the prefix-caching scheme of vLLM/SGLang
// that the paper builds on (§2.1) and that continuous JCT calibration
// queries before every scheduling decision (§6.3).
//
// Lifecycle of a request against the cache:
//   1. MatchTokens(chain)          — how much prefix is already cached
//                                    (what the JCT calibrator calls).
//   2. Acquire(chain, need_blocks) — pin the matched prefix and allocate
//                                    the remaining blocks from the pool,
//                                    evicting unpinned LRU entries; fails
//                                    with kResourceExhausted when the
//                                    request cannot fit (the Table 2 "x").
//   3. Release(acq, cache_blocks)  — unpin; convert the first
//                                    `cache_blocks` of the request into
//                                    cached entries (for PrefillOnly this
//                                    is the retained prefix — suffix KV
//                                    cache discarding caps it); free the
//                                    rest.
//
// Eviction is LRU with deepest-blocks-first tie-breaking, so a chain's
// suffix is evicted before its prefix. Orphaned descendants (child cached,
// parent evicted) are legal: they are unreachable by Match and age out.
#ifndef SRC_KVCACHE_PREFIX_CACHE_H_
#define SRC_KVCACHE_PREFIX_CACHE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/kvcache/block_allocator.h"

namespace prefillonly {

struct PrefixCacheStats {
  int64_t lookups = 0;
  int64_t hit_tokens = 0;     // total tokens served from cache
  int64_t lookup_tokens = 0;  // total tokens looked up
  int64_t evictions = 0;
  int64_t insertions = 0;
  int64_t failed_acquires = 0;

  double HitRate() const {
    return lookup_tokens == 0
               ? 0.0
               : static_cast<double>(hit_tokens) / static_cast<double>(lookup_tokens);
  }
};

// Handle for blocks held by an in-flight request.
struct Acquisition {
  std::vector<uint64_t> chain;   // full chain of the request (copied)
  int64_t matched_blocks = 0;    // prefix blocks served from cache (pinned)
  std::vector<BlockId> blocks;   // all block ids: matched first, then fresh
  bool active = false;
};

class PrefixCache {
 public:
  // `capacity_blocks` is the whole pool: cached + in-flight blocks share it,
  // exactly like KV memory on a GPU.
  PrefixCache(int block_size_tokens, int64_t capacity_blocks);

  int block_size() const { return block_size_; }
  int64_t capacity_blocks() const { return allocator_.total_blocks(); }
  int64_t cached_blocks() const { return static_cast<int64_t>(entries_.size()); }
  int64_t free_blocks() const { return allocator_.free_blocks(); }
  const PrefixCacheStats& stats() const { return stats_; }

  // Longest cached prefix, in tokens (block granularity). Does not touch
  // LRU state — safe to call speculatively from the scheduler.
  int64_t MatchTokens(std::span<const uint64_t> chain) const;

  // Pins the matched prefix of `chain` and allocates `need_blocks` total
  // blocks for the request (matched + fresh), evicting unpinned entries
  // (LRU, deepest first) as necessary. `need_blocks` may exceed the chain
  // length (trailing partial block). On failure nothing is held.
  Result<Acquisition> Acquire(std::span<const uint64_t> chain, int64_t need_blocks);

  // Releases an acquisition: unpins matched blocks and caches the first
  // `cache_blocks` chain blocks of the request (including already-matched
  // ones); frees all other fresh blocks. `cache_blocks` beyond the chain
  // length is clamped. Returns the (chain index, block id) pairs newly
  // inserted into the cache — callers that attach real KV data to blocks
  // (src/core) populate exactly those.
  std::vector<std::pair<int64_t, BlockId>> Release(Acquisition& acq,
                                                   int64_t cache_blocks);

  // Invoked whenever a cached block is dropped (eviction or Clear), so a
  // data layer keyed by block id can drop the payload too.
  void SetEvictionListener(
      std::function<void(uint64_t hash, BlockId block, int64_t depth)> listener) {
    eviction_listener_ = std::move(listener);
  }

  // Drops every unpinned cached entry (used by failure-injection tests).
  void Clear();

  // Advances the logical clock used for LRU stamping. The simulator calls
  // this with event timestamps so recency follows simulated time.
  void SetClock(uint64_t now) { clock_ = now; }

 private:
  struct Entry {
    BlockId block;
    int64_t depth;      // index within its chain
    uint64_t last_use;  // LRU stamp
  };

  // Evicts unpinned entries until at least `needed` blocks are free.
  // Returns false if impossible.
  bool EvictUntilFree(int64_t needed);
  uint64_t NextStamp() { return (clock_ != 0) ? clock_ : ++auto_stamp_; }

  int block_size_;
  BlockAllocator allocator_;
  std::unordered_map<uint64_t, Entry> entries_;
  PrefixCacheStats stats_;
  uint64_t clock_ = 0;
  uint64_t auto_stamp_ = 0;
  std::function<void(uint64_t, BlockId, int64_t)> eviction_listener_;
};

}  // namespace prefillonly

#endif  // SRC_KVCACHE_PREFIX_CACHE_H_
