#include "src/kvcache/offload_directory.h"

#include "src/common/fault.h"

namespace prefillonly {

void OffloadDirectory::Touch(std::unordered_map<uint64_t, Entry>::iterator it,
                             uint64_t stamp) {
  if (it->second.lru_pos != lru_.end()) {
    lru_.erase(it->second.lru_pos);
  }
  it->second.last_use = stamp;
  // Keep the list sorted by stamp (oldest at the front), deepest first on
  // ties so the shareable shallow blocks outlive deep suffix blocks — the
  // same policy the old per-insert victim scan implemented in O(n). The
  // simulator may drive stamps out of order via SetClock; with monotone
  // stamps this walk is O(1).
  auto pos = lru_.end();
  while (pos != lru_.begin()) {
    auto prev = std::prev(pos);
    const Entry& other = entries_.at(*prev);
    if (other.last_use > stamp ||
        (other.last_use == stamp && other.depth < it->second.depth)) {
      pos = prev;
    } else {
      break;
    }
  }
  it->second.lru_pos = lru_.insert(pos, it->first);
}

std::optional<uint64_t> OffloadDirectory::Insert(uint64_t hash, int64_t depth) {
  if (capacity_blocks_ <= 0) {
    return std::nullopt;
  }
  const uint64_t stamp = NextStamp();
  auto [it, inserted] = entries_.try_emplace(hash, Entry{depth, stamp, lru_.end()});
  Touch(it, stamp);
  if (!inserted) {
    return std::nullopt;
  }
  ++insertions_;
  if (static_cast<int64_t>(entries_.size()) <= capacity_blocks_) {
    return std::nullopt;
  }
  // LRU victim in O(1): the front of the stamp-sorted list — skipping the
  // entry just inserted, which is never evicted by its own insert.
  auto victim_pos = lru_.begin();
  if (*victim_pos == hash) {
    ++victim_pos;
  }
  const uint64_t evicted = *victim_pos;
  lru_.erase(victim_pos);
  entries_.erase(evicted);
  ++evictions_;
  return evicted;
}

int64_t OffloadDirectory::MatchContinuation(std::span<const uint64_t> chain,
                                            int64_t start_index) {
  // An injected read error makes the offload tier unreadable for this
  // lookup; the caller treats it as a miss and recomputes the blocks.
  if (FaultInjector::Global().Fire(fault::kOffloadRead)) {
    ++read_misses_;
    return 0;
  }
  const uint64_t stamp = NextStamp();
  int64_t matched = 0;
  for (size_t i = static_cast<size_t>(start_index); i < chain.size(); ++i) {
    auto it = entries_.find(chain[i]);
    if (it == entries_.end()) {
      break;
    }
    Touch(it, stamp);
    ++matched;
  }
  ++(matched > 0 ? read_hits_ : read_misses_);
  return matched;
}

int64_t OffloadDirectory::PeekContinuation(std::span<const uint64_t> chain,
                                           int64_t start_index) const {
  int64_t matched = 0;
  for (size_t i = static_cast<size_t>(start_index); i < chain.size(); ++i) {
    if (!entries_.contains(chain[i])) {
      break;
    }
    ++matched;
  }
  return matched;
}

void OffloadDirectory::Erase(uint64_t hash) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

}  // namespace prefillonly
