#include "src/kvcache/offload_directory.h"

#include "src/common/fault.h"

namespace prefillonly {

uint64_t OffloadDirectory::Insert(uint64_t hash, int64_t depth) {
  if (capacity_blocks_ <= 0) {
    return 0;
  }
  const uint64_t stamp = NextStamp();
  auto [it, inserted] = entries_.try_emplace(hash, Entry{depth, stamp});
  if (!inserted) {
    it->second.last_use = stamp;
    return 0;
  }
  ++insertions_;
  if (static_cast<int64_t>(entries_.size()) <= capacity_blocks_) {
    return 0;
  }
  // LRU victim, deepest first on ties (same policy as the GPU tier).
  auto victim = entries_.end();
  for (auto e = entries_.begin(); e != entries_.end(); ++e) {
    if (e->first == hash) {
      continue;  // never evict what we just inserted
    }
    if (victim == entries_.end() || e->second.last_use < victim->second.last_use ||
        (e->second.last_use == victim->second.last_use &&
         e->second.depth > victim->second.depth)) {
      victim = e;
    }
  }
  if (victim == entries_.end()) {
    return 0;
  }
  const uint64_t evicted = victim->first;
  entries_.erase(victim);
  ++evictions_;
  return evicted;
}

int64_t OffloadDirectory::MatchContinuation(std::span<const uint64_t> chain,
                                            int64_t start_index) {
  // An injected read error makes the offload tier unreadable for this
  // lookup; the caller treats it as a miss and recomputes the blocks.
  if (FaultInjector::Global().Fire(fault::kOffloadRead)) {
    return 0;
  }
  const uint64_t stamp = NextStamp();
  int64_t matched = 0;
  for (size_t i = static_cast<size_t>(start_index); i < chain.size(); ++i) {
    auto it = entries_.find(chain[i]);
    if (it == entries_.end()) {
      break;
    }
    it->second.last_use = stamp;
    ++matched;
  }
  return matched;
}

int64_t OffloadDirectory::PeekContinuation(std::span<const uint64_t> chain,
                                           int64_t start_index) const {
  int64_t matched = 0;
  for (size_t i = static_cast<size_t>(start_index); i < chain.size(); ++i) {
    if (!entries_.contains(chain[i])) {
      break;
    }
    ++matched;
  }
  return matched;
}

}  // namespace prefillonly
