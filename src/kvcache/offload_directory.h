// Second-tier (CPU) KV cache directory.
//
// The paper discards suffix KV because keeping it in GPU memory is what
// limits the maximum input length; §9 notes the discarded KV could instead
// be offloaded to CPU memory (LMCache-style) and reloaded later. This
// directory is the metadata for that tier: chain hashes with LRU stamps
// under a block budget. Payloads live elsewhere (KvBlockStore for the real
// engine; nowhere for the simulator, which only needs hit lengths and
// charges a reload cost per offloaded token).
#ifndef SRC_KVCACHE_OFFLOAD_DIRECTORY_H_
#define SRC_KVCACHE_OFFLOAD_DIRECTORY_H_

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>

namespace prefillonly {

class OffloadDirectory {
 public:
  explicit OffloadDirectory(int64_t capacity_blocks)
      : capacity_blocks_(capacity_blocks) {}

  int64_t capacity_blocks() const { return capacity_blocks_; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t insertions() const { return insertions_; }
  int64_t evictions() const { return evictions_; }
  // Read-side traffic: MatchContinuation calls that found at least one
  // block vs. those that found none (including injected read faults).
  int64_t read_hits() const { return read_hits_; }
  int64_t read_misses() const { return read_misses_; }

  bool Contains(uint64_t hash) const { return entries_.contains(hash); }

  // Records `hash` in the tier, evicting the LRU entry if full. Returns the
  // evicted hash so the payload layer can drop its bytes — nullopt when
  // nothing was displaced. (0 is a valid chain hash, so "no eviction" must
  // be distinguishable from "hash 0 evicted".) A zero-capacity directory
  // drops everything.
  std::optional<uint64_t> Insert(uint64_t hash, int64_t depth);

  // Number of consecutive chain entries present starting at `start_index`
  // (the continuation of a first-tier prefix match). Touches LRU state.
  int64_t MatchContinuation(std::span<const uint64_t> chain, int64_t start_index);

  // Same, without touching LRU stamps (for speculative scheduler probes).
  int64_t PeekContinuation(std::span<const uint64_t> chain, int64_t start_index) const;

  void Erase(uint64_t hash);
  void SetClock(uint64_t now) { clock_ = now; }

 private:
  struct Entry {
    int64_t depth;
    uint64_t last_use;
    std::list<uint64_t>::iterator lru_pos;
  };

  uint64_t NextStamp() { return (clock_ != 0) ? clock_ : ++auto_stamp_; }
  // Repositions `it` in the stamp-sorted LRU list (oldest at the front).
  void Touch(std::unordered_map<uint64_t, Entry>::iterator it, uint64_t stamp);

  int64_t capacity_blocks_;
  std::unordered_map<uint64_t, Entry> entries_;
  // Hashes sorted by last_use ascending: front is the eviction victim.
  // Replaces the old O(n) victim scan per insert.
  std::list<uint64_t> lru_;
  int64_t insertions_ = 0;
  int64_t evictions_ = 0;
  int64_t read_hits_ = 0;
  int64_t read_misses_ = 0;
  uint64_t clock_ = 0;
  uint64_t auto_stamp_ = 0;
};

}  // namespace prefillonly

#endif  // SRC_KVCACHE_OFFLOAD_DIRECTORY_H_
