// Discrete-event simulation core.
//
// A single-threaded event loop with a deterministic total order: events fire
// in (time, insertion sequence) order, so equal-time events run FIFO and
// every simulation is exactly reproducible from its seed. This is the
// substrate under the serving-cluster simulator (src/engine) that reproduces
// the paper's QPS-latency evaluation.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace prefillonly {

class Simulation {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `when` (>= now). Returns an event id.
  uint64_t Schedule(double when, Callback fn);
  // Schedules `fn` at now + delay.
  uint64_t ScheduleAfter(double delay, Callback fn) {
    return Schedule(now_ + delay, std::move(fn));
  }

  // Runs until the event queue drains (or `max_events` fire).
  void Run(uint64_t max_events = UINT64_MAX);
  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` still fire).
  void RunUntil(double deadline);

  double now() const { return now_; }
  uint64_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace prefillonly

#endif  // SRC_SIM_SIMULATION_H_
