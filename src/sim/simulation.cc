#include "src/sim/simulation.h"

#include <cassert>
#include <utility>

namespace prefillonly {

uint64_t Simulation::Schedule(double when, Callback fn) {
  assert(when >= now_);
  const uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(fn)});
  return seq;
}

void Simulation::Run(uint64_t max_events) {
  while (!queue_.empty() && processed_ < max_events) {
    // priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the metadata and steal the function.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    ++processed_;
    event.fn();
  }
}

void Simulation::RunUntil(double deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    ++processed_;
    event.fn();
  }
  now_ = deadline;
}

}  // namespace prefillonly
