#include "src/workload/dataset.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace prefillonly {

int64_t Dataset::TotalTokens() const {
  int64_t total = 0;
  for (const auto& r : requests) {
    total += r.n_tokens;
  }
  return total;
}

int64_t Dataset::MaxTokens() const {
  int64_t max_tokens = 0;
  for (const auto& r : requests) {
    max_tokens = std::max(max_tokens, r.n_tokens);
  }
  return max_tokens;
}

int64_t Dataset::UserCount() const {
  std::unordered_set<int64_t> users;
  for (const auto& r : requests) {
    users.insert(r.user_id);
  }
  return static_cast<int64_t>(users.size());
}

double Dataset::RequestsPerUser() const {
  const int64_t users = UserCount();
  return users == 0 ? 0.0
                    : static_cast<double>(requests.size()) / static_cast<double>(users);
}

namespace {

std::vector<int32_t> RandomTokens(Rng& rng, int64_t count, int32_t vocab) {
  std::vector<int32_t> tokens(static_cast<size_t>(count));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return tokens;
}

}  // namespace

Dataset MakePostRecommendationDataset(const PostRecommendationConfig& config) {
  assert(config.n_users > 0 && config.posts_per_user > 0);
  Dataset dataset;
  dataset.name = "post-recommendation";
  dataset.block_size = config.block_size;
  Rng rng(config.seed);

  int64_t next_id = 0;
  for (int u = 0; u < config.n_users; ++u) {
    Rng user_rng = rng.Fork();
    const double raw = config.profile_mean_tokens +
                       config.profile_std_tokens * user_rng.NextGaussian();
    const int64_t profile_len =
        std::clamp<int64_t>(static_cast<int64_t>(raw), config.profile_min_tokens,
                            config.profile_max_tokens);
    const std::vector<int32_t> profile = RandomTokens(user_rng, profile_len, config.vocab);

    for (int p = 0; p < config.posts_per_user; ++p) {
      std::vector<int32_t> tokens = profile;
      const std::vector<int32_t> post =
          RandomTokens(user_rng, config.post_tokens, config.vocab);
      tokens.insert(tokens.end(), post.begin(), post.end());

      SimRequest request;
      request.id = next_id++;
      request.user_id = u;
      request.n_tokens = static_cast<int64_t>(tokens.size());
      request.block_hashes = BlockHashChain(tokens, config.block_size);
      if (config.keep_tokens) {
        request.tokens = std::move(tokens);
      }
      dataset.requests.push_back(std::move(request));
    }
  }
  return dataset;
}

Dataset MakeCreditVerificationDataset(const CreditVerificationConfig& config) {
  assert(config.n_users > 0);
  Dataset dataset;
  dataset.name = "credit-verification";
  dataset.block_size = config.block_size;
  Rng rng(config.seed);

  for (int u = 0; u < config.n_users; ++u) {
    Rng user_rng = rng.Fork();
    const int64_t len = user_rng.NextInRange(config.min_tokens, config.max_tokens);
    std::vector<int32_t> tokens = RandomTokens(user_rng, len, config.vocab);

    SimRequest request;
    request.id = u;
    request.user_id = u;
    request.n_tokens = len;
    request.block_hashes = BlockHashChain(tokens, config.block_size);
    if (config.keep_tokens) {
      request.tokens = std::move(tokens);
    }
    dataset.requests.push_back(std::move(request));
  }
  return dataset;
}

PostRecommendationConfig ScaledPostRecommendationConfig(uint64_t seed) {
  PostRecommendationConfig config;
  config.n_users = 8;
  config.posts_per_user = 6;
  config.profile_mean_tokens = 140;
  config.profile_std_tokens = 30;
  config.profile_min_tokens = 110;
  config.profile_max_tokens = 170;
  config.post_tokens = 8;
  config.block_size = 32;  // the engine's default KV block size
  config.vocab = 256;
  config.keep_tokens = true;
  config.seed = seed;
  return config;
}

CreditVerificationConfig ScaledCreditVerificationConfig(uint64_t seed) {
  CreditVerificationConfig config;
  config.n_users = 12;
  config.min_tokens = 400;
  config.max_tokens = 600;
  config.block_size = 32;
  config.vocab = 256;
  config.keep_tokens = true;
  config.seed = seed;
  return config;
}

void AssignAllAtOnce(Dataset& dataset) {
  for (auto& r : dataset.requests) {
    r.arrival_time = 0.0;
  }
}

void AssignPoissonArrivals(Dataset& dataset, double qps, uint64_t seed) {
  assert(qps > 0);
  Rng rng(seed);
  double t = 0.0;
  for (auto& r : dataset.requests) {
    t += rng.NextExponential(qps);
    r.arrival_time = t;
  }
}

void AssignUserBurstArrivals(Dataset& dataset, double qps, uint64_t seed,
                             double intra_burst_gap_s) {
  assert(qps > 0);
  const double reqs_per_user = dataset.RequestsPerUser();
  assert(reqs_per_user > 0);
  const double user_rate = qps / reqs_per_user;
  Rng rng(seed);

  // Requests are grouped by user in generation order; each user gets one
  // session start, and the user's requests trickle in from there.
  double session_start = 0.0;
  double t = 0.0;
  int64_t current_user = -1;
  for (auto& r : dataset.requests) {
    if (r.user_id != current_user) {
      current_user = r.user_id;
      session_start += rng.NextExponential(user_rate);
      t = session_start;
    } else if (intra_burst_gap_s > 0.0) {
      t += rng.NextExponential(1.0 / intra_burst_gap_s);
    }
    r.arrival_time = t;
  }
}

}  // namespace prefillonly
