// Synthetic workloads matching the paper's Table 1.
//
// The paper evaluates on two simulated datasets (the authors note that
// public LLM datasets test model accuracy, not engine performance):
//
//  * Post recommendation — 20 users; per user one profile of
//    N(14000, 3000^2) tokens clamped to [11k, 17k] (months of browsing
//    history), and 50 candidate posts of 150 tokens each. The 50 requests
//    of a user share the profile as a prefix: heavy prefix-cache reuse,
//    ~14M tokens total.
//  * Credit verification — 60 users; one request each of Uniform[40k, 60k]
//    tokens (ten months of credit history, 4k-6k tokens per month), no
//    sharing: the long-context stress test, ~3M tokens total.
//
// Requests carry their block hash chain (for prefix caching in the
// simulator) and optionally the raw token ids (for the real CPU engine,
// which actually runs them — used with scaled-down lengths).
#ifndef SRC_WORKLOAD_DATASET_H_
#define SRC_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prefillonly {

struct SimRequest {
  int64_t id = 0;
  int64_t user_id = 0;
  double arrival_time = 0.0;
  int64_t n_tokens = 0;
  // Chain hashes of the complete token blocks (see common/hash.h).
  std::vector<uint64_t> block_hashes;
  // Raw token ids; populated only when the generator keeps them.
  std::vector<int32_t> tokens;
};

struct Dataset {
  std::string name;
  int block_size = 256;
  std::vector<SimRequest> requests;

  int64_t TotalTokens() const;
  int64_t MaxTokens() const;
  int64_t UserCount() const;
  double RequestsPerUser() const;
};

struct PostRecommendationConfig {
  int n_users = 20;
  int posts_per_user = 50;
  double profile_mean_tokens = 14000;
  double profile_std_tokens = 3000;
  int64_t profile_min_tokens = 11000;
  int64_t profile_max_tokens = 17000;
  int64_t post_tokens = 150;
  int block_size = 256;
  int32_t vocab = 32000;  // only matters when tokens are kept
  bool keep_tokens = false;
  uint64_t seed = 1;
};

struct CreditVerificationConfig {
  int n_users = 60;
  int64_t min_tokens = 40000;
  int64_t max_tokens = 60000;
  int block_size = 256;
  int32_t vocab = 32000;
  bool keep_tokens = false;
  uint64_t seed = 2;
};

Dataset MakePostRecommendationDataset(const PostRecommendationConfig& config);
Dataset MakeCreditVerificationDataset(const CreditVerificationConfig& config);

// Scaled-down Table-1 workloads for driving the REAL CPU engine (the load
// generator, ISSUE 10): same shape — post recommendation keeps the
// shared-profile prefix reuse, credit verification stays the no-sharing
// long-context stress — but token counts ~100x smaller so a sweep finishes
// in CI time, raw tokens kept (keep_tokens), and ids drawn from a vocabulary
// that fits every model preset (tiny's 256).
PostRecommendationConfig ScaledPostRecommendationConfig(uint64_t seed = 1);
CreditVerificationConfig ScaledCreditVerificationConfig(uint64_t seed = 2);

// Arrival processes. All sort/keep requests in nondecreasing arrival order.
//
// All requests at t=0: the paper's way of measuring the saturated
// throughput x that anchors the QPS sweep {x/4, x/2, x, 2x, 3x, 4x}.
void AssignAllAtOnce(Dataset& dataset);
// Independent Poisson arrivals per request at `qps` requests/second.
void AssignPoissonArrivals(Dataset& dataset, double qps, uint64_t seed);
// User-session arrivals: users arrive as a Poisson process such that the
// aggregate request rate is `qps`; a user's requests are fanned out from
// that instant with exponential gaps of mean `intra_burst_gap_s` (the
// recommendation frontend issues its 50 candidate posts through a bounded
// connection pool, so they spread over a few seconds). At high QPS the
// bursts of different users therefore interleave in arrival order — the
// condition under which FIFO baselines thrash the prefix cache (Fig. 9).
void AssignUserBurstArrivals(Dataset& dataset, double qps, uint64_t seed,
                             double intra_burst_gap_s = 0.08);

}  // namespace prefillonly

#endif  // SRC_WORKLOAD_DATASET_H_
