// User-id based routing across engine instances (paper §7.1 "Routing").
//
// Non-parallelized engines (PrefillOnly, PagedAttention, chunked prefill)
// run one instance per GPU; requests from the same user must land on the
// same instance so that the user's profile prefix can be reused from that
// instance's cache. Users are assigned to instances round-robin in order
// of first appearance.
#ifndef SRC_WORKLOAD_ROUTER_H_
#define SRC_WORKLOAD_ROUTER_H_

#include <cstdint>
#include <unordered_map>

namespace prefillonly {

class UserRoundRobinRouter {
 public:
  explicit UserRoundRobinRouter(int n_instances) : n_instances_(n_instances) {}

  // Instance index in [0, n_instances) for this user; sticky per user.
  int Route(int64_t user_id) {
    auto [it, inserted] = assignment_.try_emplace(user_id, next_);
    if (inserted) {
      next_ = (next_ + 1) % n_instances_;
    }
    return it->second;
  }

  int n_instances() const { return n_instances_; }

 private:
  int n_instances_;
  int next_ = 0;
  std::unordered_map<int64_t, int> assignment_;
};

}  // namespace prefillonly

#endif  // SRC_WORKLOAD_ROUTER_H_
