// User-id based routing across engine instances (paper §7.1 "Routing").
//
// Non-parallelized engines (PrefillOnly, PagedAttention, chunked prefill)
// run one instance per GPU; requests from the same user must land on the
// same instance so that the user's profile prefix can be reused from that
// instance's cache. Users are assigned to instances round-robin in order
// of first appearance.
//
// The assignment table is BOUNDED (ISSUE 8): a long-running router sees an
// unbounded stream of distinct user ids, and the sticky map must not grow
// with it. Beyond `max_tracked_users` the least-recently-routed user is
// forgotten; if it ever comes back it is simply re-assigned round-robin —
// the cost is a possible cold cache on its next request, never unbounded
// memory.
#ifndef SRC_WORKLOAD_ROUTER_H_
#define SRC_WORKLOAD_ROUTER_H_

#include <cstdint>
#include <cstddef>
#include <list>
#include <unordered_map>

namespace prefillonly {

class UserRoundRobinRouter {
 public:
  // `max_tracked_users` bounds the sticky-assignment table (>= 1; the
  // default comfortably covers the paper's multi-tenant traces while
  // keeping worst-case memory fixed).
  explicit UserRoundRobinRouter(int n_instances,
                                size_t max_tracked_users = 65536)
      : n_instances_(n_instances),
        max_tracked_users_(max_tracked_users > 0 ? max_tracked_users : 1) {}

  // Instance index in [0, n_instances) for this user; sticky per user while
  // the user stays among the `max_tracked_users` most recently routed.
  int Route(int64_t user_id) {
    auto it = assignment_.find(user_id);
    if (it != assignment_.end()) {
      // Refresh recency: this user is now the hardest to evict.
      lru_.splice(lru_.end(), lru_, it->second.lru_pos);
      return it->second.instance;
    }
    if (assignment_.size() >= max_tracked_users_) {
      // Evict the least-recently-routed user; its next request (if any)
      // re-enters round-robin like a brand-new user.
      assignment_.erase(lru_.front());
      lru_.pop_front();
    }
    const int instance = next_;
    next_ = (next_ + 1) % n_instances_;
    lru_.push_back(user_id);
    assignment_.emplace(user_id, Entry{instance, std::prev(lru_.end())});
    return instance;
  }

  int n_instances() const { return n_instances_; }
  // Current sticky-table occupancy (never exceeds max_tracked_users).
  size_t tracked_users() const { return assignment_.size(); }
  size_t max_tracked_users() const { return max_tracked_users_; }

 private:
  struct Entry {
    int instance;
    std::list<int64_t>::iterator lru_pos;
  };

  int n_instances_;
  size_t max_tracked_users_;
  int next_ = 0;
  std::list<int64_t> lru_;  // front = least recently routed
  std::unordered_map<int64_t, Entry> assignment_;
};

}  // namespace prefillonly

#endif  // SRC_WORKLOAD_ROUTER_H_
