// Deterministic hash-based word tokenizer.
//
// The paper's requests are text prompts ("Here is the user profile: ...").
// This tokenizer maps text to stable token ids without a trained vocab:
// words (and standalone punctuation) hash into a fixed id range. Two
// prompts sharing a textual prefix therefore share a token-id prefix, which
// is all prefix caching needs. It is NOT a linguistic tokenizer — it exists
// so examples and applications can feed text end-to-end through the engine.
#ifndef SRC_WORKLOAD_TOKENIZER_H_
#define SRC_WORKLOAD_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prefillonly {

class HashTokenizer {
 public:
  // Ids are produced in [reserved, vocab_size): ids below `reserved` are
  // left for control/answer tokens the application defines (e.g. Yes/No).
  explicit HashTokenizer(int32_t vocab_size, int32_t reserved = 32);

  // Splits on whitespace; runs of alphanumerics and each punctuation
  // character become separate tokens. Lowercases ASCII so "Yes" == "yes".
  std::vector<int32_t> Encode(std::string_view text) const;

  // Stable id for a single word (e.g. to build an allowed-token list).
  int32_t TokenFor(std::string_view word) const;

  int32_t vocab_size() const { return vocab_size_; }
  int32_t reserved() const { return reserved_; }

 private:
  int32_t vocab_size_;
  int32_t reserved_;
};

}  // namespace prefillonly

#endif  // SRC_WORKLOAD_TOKENIZER_H_
