#include "src/workload/tokenizer.h"

#include <cassert>
#include <cctype>

#include "src/common/hash.h"

namespace prefillonly {

HashTokenizer::HashTokenizer(int32_t vocab_size, int32_t reserved)
    : vocab_size_(vocab_size), reserved_(reserved) {
  assert(vocab_size > reserved);
  assert(reserved >= 0);
}

int32_t HashTokenizer::TokenFor(std::string_view word) const {
  std::string lowered(word);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  const uint64_t hash = Fnv1a64(lowered.data(), lowered.size());
  const auto range = static_cast<uint64_t>(vocab_size_ - reserved_);
  return reserved_ + static_cast<int32_t>(hash % range);
}

std::vector<int32_t> HashTokenizer::Encode(std::string_view text) const {
  std::vector<int32_t> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (std::isalnum(c)) {
      size_t j = i;
      while (j < text.size() &&
             std::isalnum(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      tokens.push_back(TokenFor(text.substr(i, j - i)));
      i = j;
    } else {
      tokens.push_back(TokenFor(text.substr(i, 1)));
      ++i;
    }
  }
  return tokens;
}

}  // namespace prefillonly
