#include "src/tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "src/common/thread_pool.h"
#include "src/tensor/ops_ref.h"

namespace prefillonly {

namespace {

// k-panel height: a [kKc, N] panel of b (kKc * N * 4 bytes; 64KB at N=256)
// is swept once per row of the thread's range and stays in L1/L2 instead of
// streaming the whole of b per row.
constexpr int64_t kKc = 64;

// Computes rows [r0, r1) of c. The per-element accumulation order is
// strictly ascending in k (panels ascending, k ascending inside each panel,
// and the 4-way unroll issues its adds in k order), and depends only on
// (k, kKc) — never on r0/r1 or m — which is what makes row-chunked,
// threaded, and full executions bitwise identical. The unroll exists so the
// compiler keeps the c row in vector registers across four b rows instead
// of doing a load/store round trip per k step.
void MatMulRows(const float* __restrict a, const float* __restrict b,
                float* __restrict c, int64_t r0, int64_t r1, int64_t k, int64_t n) {
  for (int64_t i = r0; i < r1; ++i) {
    std::memset(c + i * n, 0, static_cast<size_t>(n) * sizeof(float));
  }
  for (int64_t k0 = 0; k0 < k; k0 += kKc) {
    const int64_t k1 = std::min(k0 + kKc, k);
    for (int64_t i = r0; i < r1; ++i) {
      const float* __restrict a_row = a + i * k;
      float* __restrict c_row = c + i * n;
      int64_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const float a0 = a_row[kk];
        const float a1 = a_row[kk + 1];
        const float a2 = a_row[kk + 2];
        const float a3 = a_row[kk + 3];
        const float* __restrict b0 = b + kk * n;
        const float* __restrict b1 = b0 + n;
        const float* __restrict b2 = b1 + n;
        const float* __restrict b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          float acc = c_row[j];
          acc += a0 * b0[j];
          acc += a1 * b1[j];
          acc += a2 * b2[j];
          acc += a3 * b3[j];
          c_row[j] = acc;
        }
      }
      for (; kk < k1; ++kk) {
        const float a_val = a_row[kk];
        const float* __restrict b_row = b + kk * n;
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += a_val * b_row[j];
        }
      }
    }
  }
}

// Columns [j0, j1) of the single-row product c[1,N] = a[1,K] * b[K,N].
// Same k-panel order and 4-way unroll as MatMulRows restricted to a column
// range: each c[j] is element-owned with strictly ascending k-adds, so any
// column partition is bitwise identical to the full serial call.
void MatMulRowColRange(const float* __restrict a, const float* __restrict b,
                       float* __restrict c, int64_t k, int64_t n, int64_t j0,
                       int64_t j1) {
  std::memset(c + j0, 0, static_cast<size_t>(j1 - j0) * sizeof(float));
  for (int64_t k0 = 0; k0 < k; k0 += kKc) {
    const int64_t k1 = std::min(k0 + kKc, k);
    int64_t kk = k0;
    for (; kk + 4 <= k1; kk += 4) {
      const float a0 = a[kk];
      const float a1 = a[kk + 1];
      const float a2 = a[kk + 2];
      const float a3 = a[kk + 3];
      const float* __restrict b0 = b + kk * n;
      const float* __restrict b1 = b0 + n;
      const float* __restrict b2 = b1 + n;
      const float* __restrict b3 = b2 + n;
      for (int64_t j = j0; j < j1; ++j) {
        float acc = c[j];
        acc += a0 * b0[j];
        acc += a1 * b1[j];
        acc += a2 * b2[j];
        acc += a3 * b3[j];
        c[j] = acc;
      }
    }
    for (; kk < k1; ++kk) {
      const float a_val = a[kk];
      const float* __restrict b_row = b + kk * n;
      for (int64_t j = j0; j < j1; ++j) {
        c[j] += a_val * b_row[j];
      }
    }
  }
}

}  // namespace

void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            ThreadPool* pool) {
  if (pool == nullptr) {
    MatMulRows(a, b, c, 0, m, k, n);
    return;
  }
  if (m == 1) {
    // Row-parallelism has nothing to split for a single row (the LM-head
    // GEMV — the largest per-request m=1 matrix); shard columns instead.
    pool->ParallelFor(n, /*grain=*/512, [&](int64_t j0, int64_t j1, int /*worker*/) {
      MatMulRowColRange(a, b, c, k, n, j0, j1);
    });
    return;
  }
  pool->ParallelFor(m, /*grain=*/1, [&](int64_t r0, int64_t r1, int /*worker*/) {
    MatMulRows(a, b, c, r0, r1, k, n);
  });
}

void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps, ThreadPool* pool) {
  const auto body = [&](int64_t r0, int64_t r1, int /*worker*/) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* __restrict row = x + i * h;
      const float* __restrict w = weight;
      float* __restrict out = y + i * h;
      float ssq = 0.0f;
      for (int64_t j = 0; j < h; ++j) {
        ssq += row[j] * row[j];
      }
      const float scale = 1.0f / std::sqrt(ssq / static_cast<float>(h) + eps);
      for (int64_t j = 0; j < h; ++j) {
        out[j] = row[j] * scale * w[j];
      }
    }
  };
  if (pool == nullptr) {
    body(0, m, 0);
  } else {
    pool->ParallelFor(m, /*grain=*/4, body);
  }
}

void SiluMul(const float* gate, const float* up, float* out, int64_t count) {
  const float* __restrict g_ = gate;
  const float* __restrict u_ = up;
  float* __restrict o_ = out;
  for (int64_t i = 0; i < count; ++i) {
    const float g = g_[i];
    const float silu = g / (1.0f + std::exp(-g));
    o_[i] = silu * u_[i];
  }
}

void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i,
                ThreadPool* pool) {
  const auto body = [&](int64_t r0, int64_t r1, int /*worker*/) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* gate = gate_up + r * 2 * i;
      const float* up = gate + i;
      float* out_row = out + r * i;
      SiluMul(gate, up, out_row, i);
    }
  };
  if (pool == nullptr) {
    body(0, m, 0);
  } else {
    pool->ParallelFor(m, /*grain=*/2, body);
  }
}

void SoftmaxRow(float* x, int64_t n) {
  assert(n > 0);
  float max_val = x[0];
  for (int64_t i = 1; i < n; ++i) {
    max_val = std::max(max_val, x[i]);
  }
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max_val);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int64_t i = 0; i < n; ++i) {
    x[i] *= inv;
  }
}

void AddInPlace(float* a, const float* b, int64_t count, ThreadPool* pool) {
  const auto body = [&](int64_t i0, int64_t i1, int /*worker*/) {
    float* __restrict a_ = a;
    const float* __restrict b_ = b;
    for (int64_t i = i0; i < i1; ++i) {
      a_[i] += b_[i];
    }
  };
  if (pool == nullptr) {
    body(0, count, 0);
  } else {
    pool->ParallelFor(count, /*grain=*/1 << 14, body);
  }
}

void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta) {
  // Single implementation of the recomputing path: the retained reference.
  ref::ApplyRope(x, rows, n_heads, head_dim, positions, theta);
}

void EmbeddingLookup(const float* table, std::span<const int32_t> tokens, float* out,
                     int64_t h) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::memcpy(out + static_cast<int64_t>(i) * h, table + tokens[i] * h,
                static_cast<size_t>(h) * sizeof(float));
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  const float* __restrict a_ = a;
  const float* __restrict b_ = b;
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    sum += a_[i] * b_[i];
  }
  return sum;
}

void Axpy(float* y, const float* x, float scale, int64_t n) {
  float* __restrict y_ = y;
  const float* __restrict x_ = x;
  for (int64_t i = 0; i < n; ++i) {
    y_[i] += scale * x_[i];
  }
}

}  // namespace prefillonly
