// Public kernel API: backend-independent partitioning over the serial inner
// kernels of a KernelOps table (src/tensor/ops_dispatch.h). Threading
// policy (grains, row-vs-column sharding) lives here ONCE; backends only
// provide the range kernels, which is what keeps the within-backend
// determinism contract a property of this file plus the per-element
// discipline of each backend.
#include "src/tensor/ops.h"

#include <cstring>

#include "src/common/thread_pool.h"
#include "src/tensor/ops_ref.h"
#include "src/tensor/prepack.h"

namespace prefillonly {

namespace {

inline const KernelOps* Resolve(const KernelOps* ops) {
  return ops != nullptr ? ops : DefaultKernelOps();
}

}  // namespace

void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            ThreadPool* pool, const KernelOps* ops) {
  ops = Resolve(ops);
  if (pool == nullptr) {
    ops->matmul_rows(a, b, c, 0, m, k, n);
    return;
  }
  if (m == 1) {
    // Row-parallelism has nothing to split for a single row (the LM-head
    // GEMV — the largest per-request m=1 matrix); shard columns instead.
    pool->ParallelFor(n, /*grain=*/512, [&](int64_t j0, int64_t j1, int /*worker*/) {
      ops->matmul_col_range(a, b, c, k, n, j0, j1);
    });
    return;
  }
  pool->ParallelFor(m, /*grain=*/1, [&](int64_t r0, int64_t r1, int /*worker*/) {
    ops->matmul_rows(a, b, c, r0, r1, k, n);
  });
}

void MatMulPacked(const float* a, const PackedMatrix& b, float* c, int64_t m,
                  ThreadPool* pool, const KernelOps* ops) {
  ops = Resolve(ops);
  if (pool == nullptr) {
    ops->matmul_rows_packed(a, b, c, 0, m);
    return;
  }
  if (m == 1) {
    // Shard whole panels: a partition can then never split the lane group
    // of one panel, so bits don't depend on the worker count.
    pool->ParallelFor(b.n_panels(), /*grain=*/32,
                      [&](int64_t p0, int64_t p1, int /*worker*/) {
                        ops->matmul_panels_packed(a, b, c, p0, p1);
                      });
    return;
  }
  pool->ParallelFor(m, /*grain=*/1, [&](int64_t r0, int64_t r1, int /*worker*/) {
    ops->matmul_rows_packed(a, b, c, r0, r1);
  });
}

void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps, ThreadPool* pool, const KernelOps* ops) {
  ops = Resolve(ops);
  if (pool == nullptr) {
    ops->rmsnorm_rows(x, weight, y, 0, m, h, eps);
    return;
  }
  pool->ParallelFor(m, /*grain=*/4, [&](int64_t r0, int64_t r1, int /*worker*/) {
    ops->rmsnorm_rows(x, weight, y, r0, r1, h, eps);
  });
}

void SiluMul(const float* gate, const float* up, float* out, int64_t count,
             const KernelOps* ops) {
  Resolve(ops)->silu_mul(gate, up, out, count);
}

void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i,
                ThreadPool* pool, const KernelOps* ops) {
  ops = Resolve(ops);
  const auto body = [&](int64_t r0, int64_t r1, int /*worker*/) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* gate = gate_up + r * 2 * i;
      const float* up = gate + i;
      ops->silu_mul(gate, up, out + r * i, i);
    }
  };
  if (pool == nullptr) {
    body(0, m, 0);
  } else {
    pool->ParallelFor(m, /*grain=*/2, body);
  }
}

void SoftmaxRow(float* x, int64_t n, const KernelOps* ops) {
  Resolve(ops)->softmax_row(x, n);
}

void AddInPlace(float* a, const float* b, int64_t count, ThreadPool* pool,
                const KernelOps* ops) {
  ops = Resolve(ops);
  if (pool == nullptr) {
    ops->add_range(a, b, 0, count);
    return;
  }
  pool->ParallelFor(count, /*grain=*/1 << 14,
                    [&](int64_t i0, int64_t i1, int /*worker*/) {
                      ops->add_range(a, b, i0, i1);
                    });
}

void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta) {
  // Single implementation of the recomputing path: the retained reference.
  ref::ApplyRope(x, rows, n_heads, head_dim, positions, theta);
}

void EmbeddingLookup(const float* table, std::span<const int32_t> tokens, float* out,
                     int64_t h) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::memcpy(out + static_cast<int64_t>(i) * h, table + tokens[i] * h,
                static_cast<size_t>(h) * sizeof(float));
  }
}

float Dot(const float* a, const float* b, int64_t n, const KernelOps* ops) {
  return Resolve(ops)->dot(a, b, n);
}

void Axpy(float* y, const float* x, float scale, int64_t n, const KernelOps* ops) {
  Resolve(ops)->axpy(y, x, scale, n);
}

}  // namespace prefillonly
