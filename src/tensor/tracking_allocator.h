// Byte-accounting allocator for tensors.
//
// The paper's Fig. 3 profiles the PyTorch GPU allocator while prefilling
// 32,768 tokens and shows that the periodic spikes — the intermediate
// tensors of the MLP's linear layers — dominate peak memory, not the KV
// cache. TrackingAllocator reproduces that measurement on CPU: every tensor
// allocation/free is recorded with a tag and a running total, so benchmarks
// can dump the same memory-vs-time trace and tests can assert on the peak.
//
// An optional budget turns the allocator into a stand-in for a fixed-size
// GPU: exceeding it fails the allocation (Status-reporting path) so failure
// injection tests can exercise out-of-memory handling.
#ifndef SRC_TENSOR_TRACKING_ALLOCATOR_H_
#define SRC_TENSOR_TRACKING_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace prefillonly {

class TrackingAllocator {
 public:
  struct Event {
    uint64_t seq;         // monotonically increasing event index
    std::string tag;      // e.g. "mlp.intermediate1", "kv.layer3"
    int64_t delta_bytes;  // positive for alloc, negative for free
    size_t current_bytes;
  };

  TrackingAllocator() = default;
  explicit TrackingAllocator(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  TrackingAllocator(const TrackingAllocator&) = delete;
  TrackingAllocator& operator=(const TrackingAllocator&) = delete;
  ~TrackingAllocator();

  // Returns nullptr when a budget is set and would be exceeded.
  // Alignment suits float/double vector loads.
  void* Allocate(size_t bytes, const std::string& tag);
  void Deallocate(void* ptr);

  // Names this allocator as a fault-injection site (src/common/fault.h):
  // when the site fires, Allocate fails as if the budget were exceeded.
  // Empty (the default) opts out entirely; the process-wide Default()
  // allocator is never instrumented.
  void SetFaultSite(const char* site) { fault_site_ = site; }

  size_t current_bytes() const { return current_bytes_; }
  size_t peak_bytes() const { return peak_bytes_; }
  size_t budget_bytes() const { return budget_bytes_; }
  size_t live_allocations() const { return sizes_.size(); }
  uint64_t total_allocations() const { return total_allocs_; }

  // Event recording is off by default (cheap accounting only).
  void EnableTimeline(bool enable) { record_timeline_ = enable; }
  const std::vector<Event>& timeline() const { return timeline_; }
  void ClearTimeline() { timeline_.clear(); }

  void ResetPeak() { peak_bytes_ = current_bytes_; }

  // Default process-wide allocator for tensors created without an explicit
  // allocator. Accounting still works; no budget.
  static TrackingAllocator& Default();

 private:
  struct Allocation {
    size_t bytes;
    std::string tag;
  };

  const char* fault_site_ = nullptr;
  size_t budget_bytes_ = 0;  // 0 = unlimited
  size_t current_bytes_ = 0;
  size_t peak_bytes_ = 0;
  uint64_t total_allocs_ = 0;
  uint64_t seq_ = 0;
  bool record_timeline_ = false;
  std::vector<Event> timeline_;
  std::unordered_map<void*, Allocation> sizes_;
};

}  // namespace prefillonly

#endif  // SRC_TENSOR_TRACKING_ALLOCATOR_H_
