#include "src/tensor/ops_dispatch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/tensor/prepack.h"

namespace prefillonly {

namespace {

// ------------------------------------------------------------------ scalar
// The PR 1 blocked kernels, verbatim — the parity tests assert these are
// bitwise equal to the seed reference (src/tensor/ops_ref.h) at every
// thread count, so their loop structure must not change casually.

// k-panel height: a [kKc, N] panel of b (kKc * N * 4 bytes; 64KB at N=256)
// is swept once per row of the thread's range and stays in L1/L2 instead of
// streaming the whole of b per row.
constexpr int64_t kKc = 64;

// Computes rows [r0, r1) of c. The per-element accumulation order is
// strictly ascending in k (panels ascending, k ascending inside each panel,
// and the 4-way unroll issues its adds in k order), and depends only on
// (k, kKc) — never on r0/r1 or m — which is what makes row-chunked,
// threaded, and full executions bitwise identical. The unroll exists so the
// compiler keeps the c row in vector registers across four b rows instead
// of doing a load/store round trip per k step.
void ScalarMatMulRows(const float* __restrict a, const float* __restrict b,
                      float* __restrict c, int64_t r0, int64_t r1, int64_t k,
                      int64_t n) {
  for (int64_t i = r0; i < r1; ++i) {
    std::memset(c + i * n, 0, static_cast<size_t>(n) * sizeof(float));
  }
  for (int64_t k0 = 0; k0 < k; k0 += kKc) {
    const int64_t k1 = std::min(k0 + kKc, k);
    for (int64_t i = r0; i < r1; ++i) {
      const float* __restrict a_row = a + i * k;
      float* __restrict c_row = c + i * n;
      int64_t kk = k0;
      for (; kk + 4 <= k1; kk += 4) {
        const float a0 = a_row[kk];
        const float a1 = a_row[kk + 1];
        const float a2 = a_row[kk + 2];
        const float a3 = a_row[kk + 3];
        const float* __restrict b0 = b + kk * n;
        const float* __restrict b1 = b0 + n;
        const float* __restrict b2 = b1 + n;
        const float* __restrict b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          float acc = c_row[j];
          acc += a0 * b0[j];
          acc += a1 * b1[j];
          acc += a2 * b2[j];
          acc += a3 * b3[j];
          c_row[j] = acc;
        }
      }
      for (; kk < k1; ++kk) {
        const float a_val = a_row[kk];
        const float* __restrict b_row = b + kk * n;
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += a_val * b_row[j];
        }
      }
    }
  }
}

// Columns [j0, j1) of the single-row product c[1,N] = a[1,K] * b[K,N].
// Same k-panel order and 4-way unroll as ScalarMatMulRows restricted to a
// column range: each c[j] is element-owned with strictly ascending k-adds,
// so any column partition is bitwise identical to the full serial call.
void ScalarMatMulColRange(const float* __restrict a, const float* __restrict b,
                          float* __restrict c, int64_t k, int64_t n, int64_t j0,
                          int64_t j1) {
  std::memset(c + j0, 0, static_cast<size_t>(j1 - j0) * sizeof(float));
  for (int64_t k0 = 0; k0 < k; k0 += kKc) {
    const int64_t k1 = std::min(k0 + kKc, k);
    int64_t kk = k0;
    for (; kk + 4 <= k1; kk += 4) {
      const float a0 = a[kk];
      const float a1 = a[kk + 1];
      const float a2 = a[kk + 2];
      const float a3 = a[kk + 3];
      const float* __restrict b0 = b + kk * n;
      const float* __restrict b1 = b0 + n;
      const float* __restrict b2 = b1 + n;
      const float* __restrict b3 = b2 + n;
      for (int64_t j = j0; j < j1; ++j) {
        float acc = c[j];
        acc += a0 * b0[j];
        acc += a1 * b1[j];
        acc += a2 * b2[j];
        acc += a3 * b3[j];
        c[j] = acc;
      }
    }
    for (; kk < k1; ++kk) {
      const float a_val = a[kk];
      const float* __restrict b_row = b + kk * n;
      for (int64_t j = j0; j < j1; ++j) {
        c[j] += a_val * b_row[j];
      }
    }
  }
}

// Packed-layout scalar GEMM: one panel at a time, k strictly ascending per
// element. The scalar backend's layout policy is kDense (the panel-major
// layout defeats its cache blocking: 3.8 vs 23 GFLOP/s, BENCH_kernels.json)
// — these exist so MatMulPacked is total over every backend (the benchmarks
// compare packed-vs-dense per backend).
void ScalarMatMulRowsPacked(const float* __restrict a, const PackedMatrix& bp,
                            float* __restrict c, int64_t r0, int64_t r1) {
  const int64_t k = bp.k;
  const int64_t n = bp.n;
  for (int64_t p = 0; p < bp.n_panels(); ++p) {
    const float* __restrict panel = bp.panel(p);
    const int64_t j0 = p * kPackPanelWidth;
    const int64_t width = std::min(kPackPanelWidth, n - j0);
    for (int64_t i = r0; i < r1; ++i) {
      const float* __restrict a_row = a + i * k;
      float* __restrict c_row = c + i * n + j0;
      float acc[kPackPanelWidth] = {};
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a_val = a_row[kk];
        const float* __restrict b_row = panel + kk * kPackPanelWidth;
        for (int64_t lane = 0; lane < kPackPanelWidth; ++lane) {
          acc[lane] += a_val * b_row[lane];
        }
      }
      for (int64_t lane = 0; lane < width; ++lane) {
        c_row[lane] = acc[lane];
      }
    }
  }
}

void ScalarMatMulPanelsPacked(const float* a, const PackedMatrix& bp, float* c,
                              int64_t p0, int64_t p1) {
  const int64_t k = bp.k;
  const int64_t n = bp.n;
  for (int64_t p = p0; p < p1; ++p) {
    const float* __restrict panel = bp.panel(p);
    const int64_t j0 = p * kPackPanelWidth;
    const int64_t width = std::min(kPackPanelWidth, n - j0);
    float acc[kPackPanelWidth] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a_val = a[kk];
      const float* __restrict b_row = panel + kk * kPackPanelWidth;
      for (int64_t lane = 0; lane < kPackPanelWidth; ++lane) {
        acc[lane] += a_val * b_row[lane];
      }
    }
    for (int64_t lane = 0; lane < width; ++lane) {
      c[j0 + lane] = acc[lane];
    }
  }
}

void ScalarRmsNormRows(const float* x, const float* weight, float* y,
                       int64_t r0, int64_t r1, int64_t h, float eps) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict row = x + i * h;
    const float* __restrict w = weight;
    float* __restrict out = y + i * h;
    float ssq = 0.0f;
    for (int64_t j = 0; j < h; ++j) {
      ssq += row[j] * row[j];
    }
    const float scale = 1.0f / std::sqrt(ssq / static_cast<float>(h) + eps);
    for (int64_t j = 0; j < h; ++j) {
      out[j] = row[j] * scale * w[j];
    }
  }
}

void ScalarSiluMul(const float* gate, const float* up, float* out,
                   int64_t count) {
  const float* __restrict g_ = gate;
  const float* __restrict u_ = up;
  float* __restrict o_ = out;
  for (int64_t i = 0; i < count; ++i) {
    const float g = g_[i];
    const float silu = g / (1.0f + std::exp(-g));
    o_[i] = silu * u_[i];
  }
}

void ScalarSoftmaxRow(float* x, int64_t n) {
  assert(n > 0);
  float max_val = x[0];
  for (int64_t i = 1; i < n; ++i) {
    max_val = std::max(max_val, x[i]);
  }
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max_val);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int64_t i = 0; i < n; ++i) {
    x[i] *= inv;
  }
}

void ScalarAddRange(float* a, const float* b, int64_t i0, int64_t i1) {
  float* __restrict a_ = a;
  const float* __restrict b_ = b;
  for (int64_t i = i0; i < i1; ++i) {
    a_[i] += b_[i];
  }
}

float ScalarDot(const float* a, const float* b, int64_t n) {
  const float* __restrict a_ = a;
  const float* __restrict b_ = b;
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    sum += a_[i] * b_[i];
  }
  return sum;
}

void ScalarAxpy(float* y, const float* x, float scale, int64_t n) {
  float* __restrict y_ = y;
  const float* __restrict x_ = x;
  for (int64_t i = 0; i < n; ++i) {
    y_[i] += scale * x_[i];
  }
}

constexpr KernelOps kScalarOps = {
    /*backend=*/KernelBackend::kScalar,
    /*name=*/"scalar",
    /*gemm_layout=*/GemmLayout::kDense,
    /*matmul_rows=*/ScalarMatMulRows,
    /*matmul_col_range=*/ScalarMatMulColRange,
    /*matmul_rows_packed=*/ScalarMatMulRowsPacked,
    /*matmul_panels_packed=*/ScalarMatMulPanelsPacked,
    /*rmsnorm_rows=*/ScalarRmsNormRows,
    /*silu_mul=*/ScalarSiluMul,
    /*softmax_row=*/ScalarSoftmaxRow,
    /*add_range=*/ScalarAddRange,
    /*dot=*/ScalarDot,
    /*axpy=*/ScalarAxpy,
};

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

bool Avx2Available() {
  return GetAvx2KernelOps() != nullptr && CpuSupportsAvx2Fma();
}

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
      return "auto";
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<KernelBackend> ParseKernelBackend(std::string_view name) {
  if (name == "auto") {
    return KernelBackend::kAuto;
  }
  if (name == "scalar") {
    return KernelBackend::kScalar;
  }
  if (name == "avx2") {
    return KernelBackend::kAvx2;
  }
  return std::nullopt;
}

KernelBackend ResolveKernelBackend(KernelBackend requested) {
  if (requested == KernelBackend::kAuto) {
    if (const char* env = std::getenv("PREFILLONLY_KERNEL_BACKEND")) {
      const auto parsed = ParseKernelBackend(env);
      if (parsed.has_value()) {
        requested = *parsed;
      } else {
        PO_LOG_WARNING << "unrecognized PREFILLONLY_KERNEL_BACKEND='" << env
                       << "' (want auto|scalar|avx2); using auto";
      }
    }
  }
  if (requested == KernelBackend::kAuto) {
    return Avx2Available() ? KernelBackend::kAvx2 : KernelBackend::kScalar;
  }
  if (requested == KernelBackend::kAvx2 && !Avx2Available()) {
    PO_LOG_WARNING << "kernel backend avx2 requested but unavailable on this "
                      "host; falling back to scalar";
    return KernelBackend::kScalar;
  }
  return requested;
}

const KernelOps* GetKernelOps(KernelBackend backend) {
  switch (ResolveKernelBackend(backend)) {
    case KernelBackend::kAvx2: {
      const KernelOps* avx2 = GetAvx2KernelOps();
      assert(avx2 != nullptr);  // ResolveKernelBackend guaranteed availability
      return avx2;
    }
    case KernelBackend::kScalar:
    case KernelBackend::kAuto:  // unreachable: Resolve never returns kAuto
      break;
  }
  return &kScalarOps;
}

const KernelOps* DefaultKernelOps() {
  static const KernelOps* const ops = GetKernelOps(KernelBackend::kAuto);
  return ops;
}

}  // namespace prefillonly
