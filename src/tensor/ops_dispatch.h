// Runtime kernel-backend dispatch (ISSUE 3).
//
// The tensor layer has one public API (src/tensor/ops.h) and several
// implementations of the serial inner kernels behind it:
//
//   * kScalar — the PR 1 cache-blocked scalar loops, bit-identical to the
//     seed reference (src/tensor/ops_ref.h). Always available.
//   * kAvx2   — explicit AVX2+FMA intrinsics (src/tensor/ops_avx2.cc,
//     compiled in its own TU with -mavx2 -mfma), plus packed-weight GEMM
//     kernels over the panel-major layout of src/tensor/prepack.h.
//     Available when the TU was built with AVX2 support AND the CPU
//     reports AVX2+FMA at runtime.
//
// A backend is a table of function pointers over SERIAL range kernels; all
// threading/partitioning stays in ops.cc, shared by every backend. That is
// what keeps the determinism contract two-tier (docs/PERFORMANCE.md):
//
//   * WITHIN a backend, results are bitwise identical across thread counts,
//     row chunkings, partition widths and prefill modes — every backend's
//     per-element computation (including the AVX2 kernels' FMA chains)
//     depends only on the element's coordinates, with k strictly ascending,
//     never on range boundaries.
//   * ACROSS backends, parity is tolerance-based: 8-lane FMA accumulation
//     legitimately reorders (and fuses) float operations, so kAvx2 output
//     is close to — not bit-equal with — kScalar output.
//
// Selection: EngineOptions::kernel_backend / EngineConfig::kernel_backend,
// or the PREFILLONLY_KERNEL_BACKEND environment variable ("auto", "scalar",
// "avx2") for the process default; kAuto resolves env first, then picks the
// best available backend. Forcing kAvx2 on a host without AVX2 falls back
// to kScalar with a logged warning.
#ifndef SRC_TENSOR_OPS_DISPATCH_H_
#define SRC_TENSOR_OPS_DISPATCH_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace prefillonly {

struct PackedMatrix;

enum class KernelBackend {
  kAuto,    // env override, else best available
  kScalar,  // PR 1 blocked scalar kernels (reference-exact)
  kAvx2,    // AVX2+FMA intrinsics + prepacked weights
};

// Which weight layout a backend's GEMM wants. This is a PER-BACKEND policy,
// not a global switch: the panel-major prepack is what lets the AVX2
// kernels stream weights at unit stride (66 vs 51 GFLOP/s in
// BENCH_kernels.json), but the same layout defeats the scalar backend's
// cache blocking (3.8 vs 23 GFLOP/s — 6x slower). LlamaModel keeps each
// weight matrix in exactly the layout its backend's policy names, so the
// slow combination is unreachable by construction.
enum class GemmLayout {
  kDense,   // row-major, read in place (scalar's blocked loops)
  kPacked,  // panel-major prepack of src/tensor/prepack.h (AVX2 kernels)
};

// Serial inner kernels of one backend. Range arguments ([r0, r1), [j0, j1),
// [i0, i1), [p0, p1)) come from the partitioning wrappers in ops.cc; every
// implementation must compute each output element identically for every
// possible range split (the within-backend determinism contract above).
struct KernelOps {
  KernelBackend backend;
  const char* name;
  // Dense-vs-packed weight layout for MatMul over this backend (see
  // GemmLayout above; LlamaModel packs each weight matrix at load time iff
  // the policy says kPacked).
  GemmLayout gemm_layout;

  // c rows [r0, r1) of c[M,N] = a[M,K] * b[K,N], b row-major.
  void (*matmul_rows)(const float* a, const float* b, float* c, int64_t r0,
                      int64_t r1, int64_t k, int64_t n);
  // Columns [j0, j1) of the single-row product c[1,N] = a[1,K] * b[K,N].
  void (*matmul_col_range)(const float* a, const float* b, float* c, int64_t k,
                           int64_t n, int64_t j0, int64_t j1);
  // c rows [r0, r1) with b in prepacked panel-major layout.
  void (*matmul_rows_packed)(const float* a, const PackedMatrix& b, float* c,
                             int64_t r0, int64_t r1);
  // Column panels [p0, p1) of the single-row product, b prepacked (the
  // GEMV path: parallelism shards panels, never splits one).
  void (*matmul_panels_packed)(const float* a, const PackedMatrix& b, float* c,
                               int64_t p0, int64_t p1);
  // RMSNorm of rows [r0, r1): y = x / sqrt(mean(x^2) + eps) * weight.
  void (*rmsnorm_rows)(const float* x, const float* weight, float* y,
                       int64_t r0, int64_t r1, int64_t h, float eps);
  // out = silu(gate) * up elementwise over count values.
  void (*silu_mul)(const float* gate, const float* up, float* out,
                   int64_t count);
  // Numerically stable in-place softmax of one row of n values.
  void (*softmax_row)(float* x, int64_t n);
  // a[i] += b[i] for i in [i0, i1).
  void (*add_range)(float* a, const float* b, int64_t i0, int64_t i1);
  // Dot product of two length-n vectors.
  float (*dot)(const float* a, const float* b, int64_t n);
  // y += scale * x over n values.
  void (*axpy)(float* y, const float* x, float scale, int64_t n);
};

// True when the AVX2 backend can run here: the TU was compiled with AVX2
// support and the CPU reports AVX2 + FMA. Tests use this to skip
// avx2-forced cases with a clear message on older hosts.
bool Avx2Available();

// Resolves kAuto (env override, then best available) and downgrades an
// unavailable explicit choice to kScalar with a logged warning. Never
// returns kAuto.
KernelBackend ResolveKernelBackend(KernelBackend requested);

// Table for a (possibly unresolved) backend choice; never null.
const KernelOps* GetKernelOps(KernelBackend backend);

// Process-default table: GetKernelOps(kAuto), resolved once and cached.
// Kernel calls that pass ops == nullptr use this.
const KernelOps* DefaultKernelOps();

// "auto" / "scalar" / "avx2".
const char* KernelBackendName(KernelBackend backend);
std::optional<KernelBackend> ParseKernelBackend(std::string_view name);

// Implemented in ops_avx2.cc; null when that TU was built without AVX2
// support (non-x86 target or compiler lacking -mavx2/-mfma).
const KernelOps* GetAvx2KernelOps();

}  // namespace prefillonly

#endif  // SRC_TENSOR_OPS_DISPATCH_H_
