#include "src/tensor/ops_ref.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace prefillonly::ref {

void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m) * n * sizeof(float));
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a_val = a_row[kk];
      const float* b_row = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps) {
  for (int64_t i = 0; i < m; ++i) {
    const float* row = x + i * h;
    float* out = y + i * h;
    float ssq = 0.0f;
    for (int64_t j = 0; j < h; ++j) {
      ssq += row[j] * row[j];
    }
    const float scale = 1.0f / std::sqrt(ssq / static_cast<float>(h) + eps);
    for (int64_t j = 0; j < h; ++j) {
      out[j] = row[j] * scale * weight[j];
    }
  }
}

void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i) {
  for (int64_t r = 0; r < m; ++r) {
    const float* gate = gate_up + r * 2 * i;
    const float* up = gate + i;
    float* out_row = out + r * i;
    for (int64_t j = 0; j < i; ++j) {
      const float g = gate[j];
      const float silu = g / (1.0f + std::exp(-g));
      out_row[j] = silu * up[j];
    }
  }
}

void AddInPlace(float* a, const float* b, int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    a[i] += b[i];
  }
}

void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta) {
  assert(static_cast<int64_t>(positions.size()) == rows);
  assert(head_dim % 2 == 0);
  const int64_t half = head_dim / 2;
  for (int64_t r = 0; r < rows; ++r) {
    const auto pos = static_cast<float>(positions[r]);
    for (int64_t head = 0; head < n_heads; ++head) {
      float* v = x + r * n_heads * head_dim + head * head_dim;
      for (int64_t j = 0; j < half; ++j) {
        const float freq =
            std::pow(theta, -2.0f * static_cast<float>(j) / static_cast<float>(head_dim));
        const float angle = pos * freq;
        const float c = std::cos(angle);
        const float s = std::sin(angle);
        const float x0 = v[j];
        const float x1 = v[j + half];
        v[j] = x0 * c - x1 * s;
        v[j + half] = x0 * s + x1 * c;
      }
    }
  }
}

}  // namespace prefillonly::ref
