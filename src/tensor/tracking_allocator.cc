#include "src/tensor/tracking_allocator.h"

#include <cstdlib>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace prefillonly {

TrackingAllocator::~TrackingAllocator() {
  if (!sizes_.empty()) {
    PO_LOG_WARNING << "TrackingAllocator destroyed with " << sizes_.size()
                   << " live allocations (" << current_bytes_ << " bytes)";
    for (auto& [ptr, info] : sizes_) {
      std::free(ptr);
    }
  }
}

void* TrackingAllocator::Allocate(size_t bytes, const std::string& tag) {
  // Zero-byte requests still get one cache line of real memory below;
  // account for what is actually allocated or peak/current would
  // undercount by a line per empty tensor.
  const size_t charged = bytes == 0 ? 64 : bytes;
  if (budget_bytes_ != 0 && current_bytes_ + charged > budget_bytes_) {
    return nullptr;
  }
  if (fault_site_ != nullptr && FaultInjector::Global().Fire(fault_site_)) {
    return nullptr;
  }
  void* ptr = nullptr;
  // 64-byte alignment to keep matmul kernels on cache-line boundaries.
  if (posix_memalign(&ptr, 64, charged) != 0) {
    return nullptr;
  }
  sizes_[ptr] = Allocation{charged, tag};
  current_bytes_ += charged;
  peak_bytes_ = std::max(peak_bytes_, current_bytes_);
  ++total_allocs_;
  if (record_timeline_) {
    timeline_.push_back(
        Event{seq_++, tag, static_cast<int64_t>(charged), current_bytes_});
  }
  return ptr;
}

void TrackingAllocator::Deallocate(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  auto it = sizes_.find(ptr);
  if (it == sizes_.end()) {
    PO_LOG_ERROR << "Deallocate of unknown pointer";
    return;
  }
  current_bytes_ -= it->second.bytes;
  if (record_timeline_) {
    timeline_.push_back(Event{seq_++, it->second.tag,
                              -static_cast<int64_t>(it->second.bytes), current_bytes_});
  }
  sizes_.erase(it);
  std::free(ptr);
}

TrackingAllocator& TrackingAllocator::Default() {
  static TrackingAllocator* instance = new TrackingAllocator();
  return *instance;
}

}  // namespace prefillonly
