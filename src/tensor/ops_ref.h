// Scalar reference kernels: the seed's naive single-threaded loops, kept
// verbatim as the ground truth for the optimized kernels in ops.h.
//
// The parity tests (tests/kernel_parity_test.cc) assert EXACT bitwise
// equality between these and the blocked/threaded kernels at every thread
// count. That is only possible because the optimized kernels preserve the
// reference per-element accumulation order (k strictly ascending for MatMul,
// the same single-pass formulas elsewhere); these functions pin that order
// down so a future kernel change that breaks it fails loudly.
//
// The benchmarks also use them as the "seed scalar" baseline when reporting
// speedups (bench/ubench_kernels.cc).
#ifndef SRC_TENSOR_OPS_REF_H_
#define SRC_TENSOR_OPS_REF_H_

#include <cstdint>
#include <span>

namespace prefillonly::ref {

// c[M,N] = a[M,K] * b[K,N], plain i-k-j order. Unlike the seed kernel this
// carries no `a_val == 0` skip: the skip silently changed the FLOP count
// with input sparsity and pessimized dense inputs (ISSUE 1); dropping it
// here keeps the reference the exact dense computation the fast kernel does.
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

// RMSNorm per row: y = x / sqrt(mean(x^2) + eps) * weight.
void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps = 1e-5f);

// SwiGLU over a fused [m, 2*i] gate-up matrix into [m, i].
void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i);

// a += b over count values.
void AddInPlace(float* a, const float* b, int64_t count);

// RoPE with per-element pow/cos/sin recomputation (the seed path the
// precomputed RopeTable replaces).
void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta);

}  // namespace prefillonly::ref

#endif  // SRC_TENSOR_OPS_REF_H_
