// Row-major float32 tensor with explicit allocator-backed ownership.
//
// Deliberately minimal: the transformer in src/model only needs 1-D and 2-D
// float tensors. Tensors are move-only (copies are explicit via Clone) so
// every allocation visible in a TrackingAllocator trace corresponds to a
// deliberate buffer, mirroring how the paper reasons about GPU tensors.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/tracking_allocator.h"

namespace prefillonly {

class Tensor {
 public:
  Tensor() = default;

  // Uninitialized contents. Asserts on budget exhaustion; use TryCreate for
  // the Status-reporting path.
  static Tensor Uninit(TrackingAllocator& alloc, std::vector<int64_t> shape,
                       const std::string& tag);
  static Tensor Zeros(TrackingAllocator& alloc, std::vector<int64_t> shape,
                      const std::string& tag);
  // Returns an empty tensor (data() == nullptr) when the allocator budget
  // would be exceeded.
  static Tensor TryCreate(TrackingAllocator& alloc, std::vector<int64_t> shape,
                          const std::string& tag);

  ~Tensor() { Release(); }

  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  Tensor(Tensor&& other) noexcept { MoveFrom(other); }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  Tensor Clone(const std::string& tag) const;

  bool empty() const { return data_ == nullptr; }
  float* data() { return data_; }
  const float* data() const { return data_; }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t i) const { return shape_[i]; }
  int64_t numel() const { return numel_; }
  size_t bytes() const { return static_cast<size_t>(numel_) * sizeof(float); }

  // 2-D accessors.
  int64_t rows() const {
    assert(shape_.size() == 2);
    return shape_[0];
  }
  int64_t cols() const {
    assert(shape_.size() == 2);
    return shape_[1];
  }
  float* row(int64_t r) {
    assert(shape_.size() == 2 && r >= 0 && r < shape_[0]);
    return data_ + r * shape_[1];
  }
  const float* row(int64_t r) const {
    assert(shape_.size() == 2 && r >= 0 && r < shape_[0]);
    return data_ + r * shape_[1];
  }

  std::span<float> span() { return {data_, static_cast<size_t>(numel_)}; }
  std::span<const float> span() const { return {data_, static_cast<size_t>(numel_)}; }

  void FillZero();

 private:
  Tensor(TrackingAllocator* alloc, float* data, std::vector<int64_t> shape);

  void Release();
  void MoveFrom(Tensor& other);
  static int64_t Numel(const std::vector<int64_t>& shape);

  TrackingAllocator* alloc_ = nullptr;
  float* data_ = nullptr;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
};

}  // namespace prefillonly

#endif  // SRC_TENSOR_TENSOR_H_
