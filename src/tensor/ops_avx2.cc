// AVX2+FMA kernel backend (ISSUE 3).
//
// Compiled in its own translation unit with -mavx2 -mfma (CMakeLists.txt
// sets the per-file flags); everything else in the library stays baseline
// so the binary still runs on pre-AVX2 hosts — the dispatch layer
// (ops_dispatch.cc) consults cpuid before ever handing out this table.
//
// Determinism discipline, the reason these kernels can honor the
// within-backend bitwise contract (docs/PERFORMANCE.md): every output
// element's value is produced by a fixed op sequence that depends only on
// the element's coordinates and the call shape — never on thread-range or
// row-chunk boundaries. Concretely:
//
//  * GEMM accumulation is one FMA per k step, k strictly ascending, whether
//    the element sits in a 16-wide vector block, an 8-wide block, a scalar
//    tail (__builtin_fmaf — the same fused op, one lane), an MR=4 row
//    micro-kernel or the MR=1 remainder. A row that falls in the MR=4 block
//    of one partition and the MR=1 remainder of another gets identical bits.
//  * Reductions (dot, rmsnorm's sum of squares, softmax's sum) have a fixed
//    lane-striped order determined by the vector length alone.
//  * exp is a single polynomial (Exp256); tails run the same polynomial on
//    a zero-padded vector, so no element ever sees a different exp.
//
// Cross-backend, FMA fuses what the scalar backend rounds twice and the
// reductions reassociate — so AVX2 output is tolerance-close to scalar,
// not bit-equal. That trade is the whole point of the two-tier contract.
#include "src/tensor/ops_dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "src/tensor/prepack.h"

namespace prefillonly {

namespace {

// One fused multiply-add on one lane: the scalar-tail twin of
// _mm256_fmadd_ps, so vector blocks and tails build identical per-element
// chains.
inline float Fma1(float a, float b, float c) { return __builtin_fmaf(a, b, c); }

// Fixed-order horizontal sum: (lane i + lane i+4) pairs, then 2+2, then 1+1.
inline float Hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

inline float Hmax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// 8-lane expf: range reduction x = n*ln2 + r (Cody-Waite two-part ln2),
// degree-6 polynomial on r, scale by 2^n via exponent-field construction.
// ~1 ulp over the clamped range; the clamp keeps 2^n finite.
inline __m256 Exp256(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647949f);
  const __m256 kLo = _mm256_set1_ps(-88.3762626647949f);
  x = _mm256_max_ps(_mm256_min_ps(x, kHi), kLo);

  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  __m256 fx = _mm256_fmadd_ps(x, kLog2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);

  const __m256 kLn2Hi = _mm256_set1_ps(0.693359375f);
  const __m256 kLn2Lo = _mm256_set1_ps(-2.12194440e-4f);
  x = _mm256_fnmadd_ps(fx, kLn2Hi, x);
  x = _mm256_fnmadd_ps(fx, kLn2Lo, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  const __m256 x2 = _mm256_mul_ps(x, x);
  y = _mm256_fmadd_ps(y, x2, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));

  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// --------------------------------------------------------------- dense GEMM

// Columns [j0, j1) of one output row: accumulators live in registers across
// the whole k sweep (no c load/store round trip per k step, unlike the
// scalar kernel). Vector blocks and the scalar tail all run one FMA per k,
// ascending — any [j0, j1) split of the same row reproduces the same bits.
void MatMulRowColsAvx2(const float* __restrict a, const float* __restrict b,
                       float* __restrict c, int64_t k, int64_t n, int64_t j0,
                       int64_t j1) {
  int64_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    const float* __restrict bj = b + j;
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 av = _mm256_broadcast_ss(a + kk);
      const float* __restrict brow = bj + kk * n;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
    }
    _mm256_storeu_ps(c + j, acc0);
    _mm256_storeu_ps(c + j + 8, acc1);
  }
  for (; j + 8 <= j1; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    const float* __restrict bj = b + j;
    for (int64_t kk = 0; kk < k; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a + kk),
                            _mm256_loadu_ps(bj + kk * n), acc);
    }
    _mm256_storeu_ps(c + j, acc);
  }
  for (; j < j1; ++j) {
    float acc = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      acc = Fma1(a[kk], b[kk * n + j], acc);
    }
    c[j] = acc;
  }
}

// MR=4 row blocking amortizes each (strided) b row load over four output
// rows; the remainder rows and the n % 16 column tail reuse
// MatMulRowColsAvx2, whose 16-wide block and tails issue the identical
// per-element FMA chain — so MR grouping is invisible in the bits.
void Avx2MatMulRows(const float* a, const float* b, float* c, int64_t r0,
                    int64_t r1, int64_t k, int64_t n) {
  const int64_t n16 = n - n % 16;
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* __restrict a0 = a + i * k;
    const float* __restrict a1 = a0 + k;
    const float* __restrict a2 = a1 + k;
    const float* __restrict a3 = a2 + k;
    for (int64_t j = 0; j < n16; j += 16) {
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      const float* __restrict bj = b + j;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* __restrict brow = bj + kk * n;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_broadcast_ss(a0 + kk);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_broadcast_ss(a1 + kk);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_broadcast_ss(a2 + kk);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_broadcast_ss(a3 + kk);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
      }
      float* __restrict crow = c + i * n + j;
      _mm256_storeu_ps(crow, c00);
      _mm256_storeu_ps(crow + 8, c01);
      _mm256_storeu_ps(crow + n, c10);
      _mm256_storeu_ps(crow + n + 8, c11);
      _mm256_storeu_ps(crow + 2 * n, c20);
      _mm256_storeu_ps(crow + 2 * n + 8, c21);
      _mm256_storeu_ps(crow + 3 * n, c30);
      _mm256_storeu_ps(crow + 3 * n + 8, c31);
    }
    if (n16 < n) {
      for (int64_t r = i; r < i + 4; ++r) {
        MatMulRowColsAvx2(a + r * k, b, c + r * n, k, n, n16, n);
      }
    }
  }
  for (; i < r1; ++i) {
    MatMulRowColsAvx2(a + i * k, b, c + i * n, k, n, 0, n);
  }
}

void Avx2MatMulColRange(const float* a, const float* b, float* c, int64_t k,
                        int64_t n, int64_t j0, int64_t j1) {
  MatMulRowColsAvx2(a, b, c, k, n, j0, j1);
}

// -------------------------------------------------------------- packed GEMM

// Stores a full 16-float panel row, or the first `width` floats of it for
// the zero-padded last panel.
inline void StorePanelRow(float* dst, __m256 v0, __m256 v1, int64_t width) {
  if (width == kPackPanelWidth) {
    _mm256_storeu_ps(dst, v0);
    _mm256_storeu_ps(dst + 8, v1);
    return;
  }
  alignas(32) float tmp[kPackPanelWidth];
  _mm256_store_ps(tmp, v0);
  _mm256_store_ps(tmp + 8, v1);
  std::memcpy(dst, tmp, static_cast<size_t>(width) * sizeof(float));
}

// One row x one panel: the MR=1 micro-kernel. Aligned loads — the packed
// layout makes every k step two consecutive 32-byte loads of one cache
// line.
inline void PackedPanelRow1(const float* __restrict a_row,
                            const float* __restrict panel, float* __restrict c,
                            int64_t k, int64_t width) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* __restrict brow = panel + kk * kPackPanelWidth;
    const __m256 av = _mm256_broadcast_ss(a_row + kk);
    acc0 = _mm256_fmadd_ps(av, _mm256_load_ps(brow), acc0);
    acc1 = _mm256_fmadd_ps(av, _mm256_load_ps(brow + 8), acc1);
  }
  StorePanelRow(c, acc0, acc1, width);
}

// Rows [r0, r1) over a prepacked B. Panel-outer so the k*64-byte panel
// stays hot across all rows; MR=4 register tile amortizes each panel load
// over four rows (8 accumulators + 2 panel vectors in 16 ymm registers).
// The MR=1 remainder issues the exact same per-element FMA chain, so where
// a row lands relative to the r0 + 4*t grid cannot change its bits.
void Avx2MatMulRowsPacked(const float* a, const PackedMatrix& bp, float* c,
                          int64_t r0, int64_t r1) {
  const int64_t k = bp.k;
  const int64_t n = bp.n;
  for (int64_t p = 0; p < bp.n_panels(); ++p) {
    const float* __restrict panel = bp.panel(p);
    const int64_t j0 = p * kPackPanelWidth;
    const int64_t width = std::min(kPackPanelWidth, n - j0);
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) {
      const float* __restrict a0 = a + i * k;
      const float* __restrict a1 = a0 + k;
      const float* __restrict a2 = a1 + k;
      const float* __restrict a3 = a2 + k;
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
      __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* __restrict brow = panel + kk * kPackPanelWidth;
        const __m256 b0 = _mm256_load_ps(brow);
        const __m256 b1 = _mm256_load_ps(brow + 8);
        __m256 av = _mm256_broadcast_ss(a0 + kk);
        c00 = _mm256_fmadd_ps(av, b0, c00);
        c01 = _mm256_fmadd_ps(av, b1, c01);
        av = _mm256_broadcast_ss(a1 + kk);
        c10 = _mm256_fmadd_ps(av, b0, c10);
        c11 = _mm256_fmadd_ps(av, b1, c11);
        av = _mm256_broadcast_ss(a2 + kk);
        c20 = _mm256_fmadd_ps(av, b0, c20);
        c21 = _mm256_fmadd_ps(av, b1, c21);
        av = _mm256_broadcast_ss(a3 + kk);
        c30 = _mm256_fmadd_ps(av, b0, c30);
        c31 = _mm256_fmadd_ps(av, b1, c31);
      }
      StorePanelRow(c + (i + 0) * n + j0, c00, c01, width);
      StorePanelRow(c + (i + 1) * n + j0, c10, c11, width);
      StorePanelRow(c + (i + 2) * n + j0, c20, c21, width);
      StorePanelRow(c + (i + 3) * n + j0, c30, c31, width);
    }
    for (; i < r1; ++i) {
      PackedPanelRow1(a + i * k, panel, c + i * n + j0, k, width);
    }
  }
}

// Column panels [p0, p1) of the single-row product: the GEMV path.
// Parallelism shards whole panels, so lane grouping is partition-invariant
// by construction.
void Avx2MatMulPanelsPacked(const float* a, const PackedMatrix& bp, float* c,
                            int64_t p0, int64_t p1) {
  const int64_t k = bp.k;
  const int64_t n = bp.n;
  for (int64_t p = p0; p < p1; ++p) {
    const int64_t j0 = p * kPackPanelWidth;
    PackedPanelRow1(a, bp.panel(p), c + j0, k,
                    std::min(kPackPanelWidth, n - j0));
  }
}

// -------------------------------------------------------------- row kernels

void Avx2RmsNormRows(const float* x, const float* weight, float* y, int64_t r0,
                     int64_t r1, int64_t h, float eps) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict row = x + i * h;
    float* __restrict out = y + i * h;
    __m256 acc = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j + 8 <= h; j += 8) {
      const __m256 v = _mm256_loadu_ps(row + j);
      acc = _mm256_fmadd_ps(v, v, acc);
    }
    float ssq = Hsum8(acc);
    for (; j < h; ++j) {
      ssq = Fma1(row[j], row[j], ssq);
    }
    const float scale = 1.0f / std::sqrt(ssq / static_cast<float>(h) + eps);
    const __m256 vscale = _mm256_set1_ps(scale);
    j = 0;
    for (; j + 8 <= h; j += 8) {
      const __m256 scaled = _mm256_mul_ps(_mm256_loadu_ps(row + j), vscale);
      _mm256_storeu_ps(out + j,
                       _mm256_mul_ps(scaled, _mm256_loadu_ps(weight + j)));
    }
    for (; j < h; ++j) {
      out[j] = row[j] * scale * weight[j];
    }
  }
}

inline __m256 SiluVec(__m256 g) {
  const __m256 neg = _mm256_sub_ps(_mm256_setzero_ps(), g);
  const __m256 denom = _mm256_add_ps(_mm256_set1_ps(1.0f), Exp256(neg));
  return _mm256_div_ps(g, denom);
}

void Avx2SiluMul(const float* gate, const float* up, float* out,
                 int64_t count) {
  int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 s = SiluVec(_mm256_loadu_ps(gate + i));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(s, _mm256_loadu_ps(up + i)));
  }
  if (i < count) {
    // Padded tail: the same vector math on a stack buffer, so tail elements
    // see the identical exp/div sequence as full blocks.
    const size_t rest = static_cast<size_t>(count - i);
    alignas(32) float gbuf[8] = {0};
    alignas(32) float ubuf[8] = {0};
    alignas(32) float obuf[8];
    std::memcpy(gbuf, gate + i, rest * sizeof(float));
    std::memcpy(ubuf, up + i, rest * sizeof(float));
    const __m256 s = SiluVec(_mm256_load_ps(gbuf));
    _mm256_store_ps(obuf, _mm256_mul_ps(s, _mm256_load_ps(ubuf)));
    std::memcpy(out + i, obuf, rest * sizeof(float));
  }
}

void Avx2SoftmaxRow(float* x, int64_t n) {
  assert(n > 0);
  // Max: exact under any evaluation order, so mixing vector and scalar
  // steps is safe even bitwise.
  float max_val;
  int64_t i;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
    }
    max_val = Hmax8(vmax);
  } else {
    max_val = x[0];
    i = 1;
  }
  for (; i < n; ++i) {
    max_val = std::max(max_val, x[i]);
  }

  const __m256 vmaxb = _mm256_set1_ps(max_val);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmaxb)));
  }
  if (i < n) {
    const size_t rest = static_cast<size_t>(n - i);
    alignas(32) float buf[8];
    _mm256_store_ps(buf, vmaxb);  // padding exps to 1.0f; never stored back
    std::memcpy(buf, x + i, rest * sizeof(float));
    _mm256_store_ps(buf, Exp256(_mm256_sub_ps(_mm256_load_ps(buf), vmaxb)));
    std::memcpy(x + i, buf, rest * sizeof(float));
  }

  __m256 vsum = _mm256_setzero_ps();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(x + i));
  }
  float sum = Hsum8(vsum);
  for (; i < n; ++i) {
    sum += x[i];
  }

  const float inv = 1.0f / sum;
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
  }
  for (; i < n; ++i) {
    x[i] *= inv;
  }
}

void Avx2AddRange(float* a, const float* b, int64_t i0, int64_t i1) {
  int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    _mm256_storeu_ps(a + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < i1; ++i) {
    a[i] += b[i];
  }
}

float Avx2Dot(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float sum = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    sum = Fma1(a[i], b[i], sum);
  }
  return sum;
}

void Avx2Axpy(float* y, const float* x, float scale, int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(vs, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    y[i] = Fma1(scale, x[i], y[i]);
  }
}

constexpr KernelOps kAvx2Ops = {
    /*backend=*/KernelBackend::kAvx2,
    /*name=*/"avx2",
    /*gemm_layout=*/GemmLayout::kPacked,
    /*matmul_rows=*/Avx2MatMulRows,
    /*matmul_col_range=*/Avx2MatMulColRange,
    /*matmul_rows_packed=*/Avx2MatMulRowsPacked,
    /*matmul_panels_packed=*/Avx2MatMulPanelsPacked,
    /*rmsnorm_rows=*/Avx2RmsNormRows,
    /*silu_mul=*/Avx2SiluMul,
    /*softmax_row=*/Avx2SoftmaxRow,
    /*add_range=*/Avx2AddRange,
    /*dot=*/Avx2Dot,
    /*axpy=*/Avx2Axpy,
};

}  // namespace

const KernelOps* GetAvx2KernelOps() { return &kAvx2Ops; }

}  // namespace prefillonly

#else  // !(__AVX2__ && __FMA__)

namespace prefillonly {

// TU built without AVX2 support (non-x86 target or missing -mavx2/-mfma):
// the backend simply does not exist; dispatch falls back to scalar.
const KernelOps* GetAvx2KernelOps() { return nullptr; }

}  // namespace prefillonly

#endif
