#include "src/tensor/prepack.h"

#include <algorithm>

namespace prefillonly {

PackedMatrix PackWeights(TrackingAllocator& alloc, const float* b, int64_t k,
                         int64_t n, const std::string& tag) {
  PackedMatrix packed;
  packed.k = k;
  packed.n = n;
  const int64_t n_panels = packed.n_panels();
  packed.data = Tensor::Uninit(alloc, {n_panels * k, kPackPanelWidth}, tag);
  float* out = packed.data.data();
  for (int64_t p = 0; p < n_panels; ++p) {
    const int64_t j0 = p * kPackPanelWidth;
    for (int64_t kk = 0; kk < k; ++kk) {
      float* row = out + (p * k + kk) * kPackPanelWidth;
      for (int64_t lane = 0; lane < kPackPanelWidth; ++lane) {
        const int64_t j = j0 + lane;
        row[lane] = (j < n) ? b[kk * n + j] : 0.0f;
      }
    }
  }
  return packed;
}

void UnpackWeights(const PackedMatrix& packed, float* out) {
  const int64_t k = packed.k;
  const int64_t n = packed.n;
  for (int64_t p = 0; p < packed.n_panels(); ++p) {
    const float* panel = packed.panel(p);
    const int64_t j0 = p * kPackPanelWidth;
    const int64_t width = std::min(kPackPanelWidth, n - j0);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* row = panel + kk * kPackPanelWidth;
      for (int64_t lane = 0; lane < width; ++lane) {
        out[kk * n + j0 + lane] = row[lane];
      }
    }
  }
}

}  // namespace prefillonly
