#include "src/tensor/tensor.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prefillonly {

int64_t Tensor::Numel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    assert(d >= 0);
    n *= d;
  }
  return n;
}

Tensor::Tensor(TrackingAllocator* alloc, float* data, std::vector<int64_t> shape)
    : alloc_(alloc), data_(data), shape_(std::move(shape)), numel_(Numel(shape_)) {}

Tensor Tensor::Uninit(TrackingAllocator& alloc, std::vector<int64_t> shape,
                      const std::string& tag) {
  const size_t bytes = static_cast<size_t>(Numel(shape)) * sizeof(float);
  Tensor t = TryCreate(alloc, std::move(shape), tag);
  if (t.empty()) {
    // Uninit is the infallible path — fail loudly in every build type. The
    // assert this replaces compiled out under -DNDEBUG, so a Release build
    // would hand back an empty tensor and the next kernel would write
    // through nullptr.
    std::fprintf(stderr,
                 "Tensor::Uninit: allocation '%s' of %zu bytes failed "
                 "(allocator: %zu in use, %zu budget)\n",
                 tag.c_str(), bytes, alloc.current_bytes(), alloc.budget_bytes());
    std::abort();
  }
  return t;
}

Tensor Tensor::TryCreate(TrackingAllocator& alloc, std::vector<int64_t> shape,
                         const std::string& tag) {
  const int64_t numel = Numel(shape);
  auto* data = static_cast<float*>(
      alloc.Allocate(static_cast<size_t>(numel) * sizeof(float), tag));
  if (data == nullptr) {
    return Tensor();
  }
  return Tensor(&alloc, data, std::move(shape));
}

Tensor Tensor::Zeros(TrackingAllocator& alloc, std::vector<int64_t> shape,
                     const std::string& tag) {
  Tensor t = Uninit(alloc, std::move(shape), tag);
  t.FillZero();
  return t;
}

Tensor Tensor::Clone(const std::string& tag) const {
  if (empty()) {
    return Tensor();
  }
  Tensor copy = Uninit(*alloc_, shape_, tag);
  std::memcpy(copy.data_, data_, bytes());
  return copy;
}

void Tensor::FillZero() {
  if (data_ != nullptr) {
    std::memset(data_, 0, bytes());
  }
}

void Tensor::Release() {
  if (data_ != nullptr && alloc_ != nullptr) {
    alloc_->Deallocate(data_);
  }
  data_ = nullptr;
  alloc_ = nullptr;
  shape_.clear();
  numel_ = 0;
}

void Tensor::MoveFrom(Tensor& other) {
  alloc_ = other.alloc_;
  data_ = other.data_;
  shape_ = std::move(other.shape_);
  numel_ = other.numel_;
  other.alloc_ = nullptr;
  other.data_ = nullptr;
  other.shape_.clear();
  other.numel_ = 0;
}

}  // namespace prefillonly
