// Math kernels used by the transformer.
//
// All kernels are plain row-major float32 routines. Their key property for
// this reproduction: every kernel computes each output ROW independently and
// with a fixed inner summation order. Row-independence is what makes hybrid
// prefilling exact — running a linear layer on row-chunks produces bitwise
// identical results to running it on the full matrix (§4.2 of the paper),
// and the equivalence tests in tests/model_test.cc assert exactly that.
//
// Determinism contract (ISSUE 1): kernels that accept a ThreadPool partition
// work so each output element is OWNED by exactly one thread, and the
// per-element computation (including the k-accumulation order of MatMul)
// depends only on the element's coordinates — never on the row-chunk or
// thread-range boundaries. Results are therefore bitwise identical across
// num_threads ∈ {1, 2, ...}, across row chunk sizes, and equal to the
// scalar reference kernels in ops_ref.h. tests/kernel_parity_test.cc
// asserts exact equality.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <span>

namespace prefillonly {

class ThreadPool;

// c[M,N] = a[M,K] * b[K,N]; c is overwritten. Cache-blocked over k so a
// [Kc, N] panel of b stays hot across the rows of a thread's range, with a
// register-blocked inner kernel; k-accumulation is strictly ascending per
// output element, so row-chunked and threaded calls are bitwise identical
// to one full serial call. Rows are split across `pool` when given.
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            ThreadPool* pool = nullptr);

// RMSNorm per row: y = x / sqrt(mean(x^2) + eps) * weight. Row-parallel.
void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps = 1e-5f, ThreadPool* pool = nullptr);

// SwiGLU combine: out = silu(gate) * up, elementwise over count values.
void SiluMul(const float* gate, const float* up, float* out, int64_t count);

// SwiGLU over a fused gate-up matrix: gate_up is [m, 2*i] with the gate in
// columns [0, i) and the up-projection in columns [i, 2i); out is [m, i].
// This fused layout matches the single gate_up_proj matmul in production
// engines and is what makes the paper's "intermediate 1" tensor 2x the MLP
// width (28672 floats/token for Llama-3.1-8B, Fig. 4). Row-parallel.
void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i,
                ThreadPool* pool = nullptr);

// Numerically stable in-place softmax of one row of n values.
void SoftmaxRow(float* x, int64_t n);

// a += b over count values; each element is touched by exactly one thread.
void AddInPlace(float* a, const float* b, int64_t count, ThreadPool* pool = nullptr);

// Rotary position embedding applied in place to a [rows, n_heads*head_dim]
// matrix; positions[i] is the absolute position of row i. Pairs are the
// (x_j, x_{j+d/2}) convention used by Llama. This is the recomputing
// variant kept for callers without a model; the engine's hot path uses the
// precomputed table (src/model/rope_table.h), which is bitwise identical.
void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta);

// out[i,:] = table[tokens[i],:] for an [vocab, h] embedding table.
void EmbeddingLookup(const float* table, std::span<const int32_t> tokens, float* out,
                     int64_t h);

// dot product of two length-n vectors.
float Dot(const float* a, const float* b, int64_t n);

// y += scale * x over n values.
void Axpy(float* y, const float* x, float scale, int64_t n);

}  // namespace prefillonly

#endif  // SRC_TENSOR_OPS_H_
