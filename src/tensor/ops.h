// Math kernels used by the transformer.
//
// All kernels are plain row-major float32 routines. Their key property for
// this reproduction: every kernel computes each output ROW independently and
// with a fixed inner summation order. Row-independence is what makes hybrid
// prefilling exact — running a linear layer on row-chunks produces bitwise
// identical results to running it on the full matrix (§4.2 of the paper),
// and the equivalence tests in tests/model_test.cc assert exactly that.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <span>

namespace prefillonly {

// c[M,N] = a[M,K] * b[K,N]. Blocked i-k-j loop; c is overwritten.
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n);

// RMSNorm per row: y = x / sqrt(mean(x^2) + eps) * weight.
void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps = 1e-5f);

// SwiGLU combine: out = silu(gate) * up, elementwise over m*n values.
void SiluMul(const float* gate, const float* up, float* out, int64_t count);

// SwiGLU over a fused gate-up matrix: gate_up is [m, 2*i] with the gate in
// columns [0, i) and the up-projection in columns [i, 2i); out is [m, i].
// This fused layout matches the single gate_up_proj matmul in production
// engines and is what makes the paper's "intermediate 1" tensor 2x the MLP
// width (28672 floats/token for Llama-3.1-8B, Fig. 4).
void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i);

// Numerically stable in-place softmax of one row of n values.
void SoftmaxRow(float* x, int64_t n);

// a += b over count values.
void AddInPlace(float* a, const float* b, int64_t count);

// Rotary position embedding applied in place to a [rows, n_heads*head_dim]
// matrix; positions[i] is the absolute position of row i. Pairs are the
// (x_j, x_{j+d/2}) convention used by Llama.
void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta);

// out[i,:] = table[tokens[i],:] for an [vocab, h] embedding table.
void EmbeddingLookup(const float* table, std::span<const int32_t> tokens, float* out,
                     int64_t h);

// dot product of two length-n vectors.
float Dot(const float* a, const float* b, int64_t n);

// y += scale * x over n values.
void Axpy(float* y, const float* x, float scale, int64_t n);

}  // namespace prefillonly

#endif  // SRC_TENSOR_OPS_H_
