// Math kernels used by the transformer.
//
// All kernels are plain row-major float32 routines. Their key property for
// this reproduction: every kernel computes each output ROW independently and
// with a fixed inner summation order. Row-independence is what makes hybrid
// prefilling exact — running a linear layer on row-chunks produces bitwise
// identical results to running it on the full matrix (§4.2 of the paper),
// and the equivalence tests in tests/model_test.cc assert exactly that.
//
// Determinism contract (ISSUE 1, extended by ISSUE 3): kernels that accept
// a ThreadPool partition work so each output element is OWNED by exactly
// one thread, and the per-element computation (including the k-accumulation
// order of MatMul) depends only on the element's coordinates — never on the
// row-chunk or thread-range boundaries. Results are therefore bitwise
// identical across num_threads ∈ {1, 2, ...} and across row chunk sizes
// WITHIN a kernel backend. The `ops` parameter selects the backend table
// (src/tensor/ops_dispatch.h): nullptr means the process default
// (PREFILLONLY_KERNEL_BACKEND env, else best available). The kScalar
// backend is additionally bitwise equal to the scalar reference kernels in
// ops_ref.h (tests/kernel_parity_test.cc); kAvx2 is tolerance-close to it
// (tests/dispatch_test.cc).
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>
#include <span>

#include "src/tensor/ops_dispatch.h"

namespace prefillonly {

class ThreadPool;
struct PackedMatrix;

// c[M,N] = a[M,K] * b[K,N]; c is overwritten. k-accumulation is strictly
// ascending per output element, so row-chunked and threaded calls are
// bitwise identical to one full serial call (within a backend). Rows are
// split across `pool` when given; the m == 1 GEMV shards columns instead.
void MatMul(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            ThreadPool* pool = nullptr, const KernelOps* ops = nullptr);

// MatMul with B in the panel-major prepacked layout (src/tensor/prepack.h):
// the inner loop does contiguous aligned loads instead of strided
// `b + kk * n` row hops. The m == 1 GEMV shards whole column panels so the
// partition can never split a panel.
void MatMulPacked(const float* a, const PackedMatrix& b, float* c, int64_t m,
                  ThreadPool* pool = nullptr, const KernelOps* ops = nullptr);

// RMSNorm per row: y = x / sqrt(mean(x^2) + eps) * weight. Row-parallel.
void RmsNormRows(const float* x, const float* weight, float* y, int64_t m, int64_t h,
                 float eps = 1e-5f, ThreadPool* pool = nullptr,
                 const KernelOps* ops = nullptr);

// SwiGLU combine: out = silu(gate) * up, elementwise over count values.
void SiluMul(const float* gate, const float* up, float* out, int64_t count,
             const KernelOps* ops = nullptr);

// SwiGLU over a fused gate-up matrix: gate_up is [m, 2*i] with the gate in
// columns [0, i) and the up-projection in columns [i, 2i); out is [m, i].
// This fused layout matches the single gate_up_proj matmul in production
// engines and is what makes the paper's "intermediate 1" tensor 2x the MLP
// width (28672 floats/token for Llama-3.1-8B, Fig. 4). Row-parallel.
void SwiGluRows(const float* gate_up, float* out, int64_t m, int64_t i,
                ThreadPool* pool = nullptr, const KernelOps* ops = nullptr);

// Numerically stable in-place softmax of one row of n values.
void SoftmaxRow(float* x, int64_t n, const KernelOps* ops = nullptr);

// a += b over count values; each element is touched by exactly one thread.
void AddInPlace(float* a, const float* b, int64_t count, ThreadPool* pool = nullptr,
                const KernelOps* ops = nullptr);

// Rotary position embedding applied in place to a [rows, n_heads*head_dim]
// matrix; positions[i] is the absolute position of row i. Pairs are the
// (x_j, x_{j+d/2}) convention used by Llama. This is the recomputing
// variant kept for callers without a model; the engine's hot path uses the
// precomputed table (src/model/rope_table.h), which is bitwise identical.
// RoPE is NOT backend-dispatched: both backends share one implementation,
// so rotated inputs are bit-equal across backends.
void ApplyRope(float* x, int64_t rows, int64_t n_heads, int64_t head_dim,
               std::span<const int32_t> positions, float theta);

// out[i,:] = table[tokens[i],:] for an [vocab, h] embedding table.
void EmbeddingLookup(const float* table, std::span<const int32_t> tokens, float* out,
                     int64_t h);

// dot product of two length-n vectors.
float Dot(const float* a, const float* b, int64_t n, const KernelOps* ops = nullptr);

// y += scale * x over n values.
void Axpy(float* y, const float* x, float scale, int64_t n,
          const KernelOps* ops = nullptr);

}  // namespace prefillonly

#endif  // SRC_TENSOR_OPS_H_
