// Panel-major weight prepacking for the SIMD GEMM (ISSUE 3).
//
// The blocked kernels sweep a weight matrix B[K,N] column-panel by
// column-panel. In row-major storage each k-step of a panel is a strided
// `b + kk * n` row hop, so the AVX2 inner loop would spend its time in the
// load unit, not the FMA pipe. PackWeights repacks B once at model load into
// the exact order the kernel reads it:
//
//   panel p (columns [p*16, p*16+16)) is stored contiguously as K rows of
//   16 floats: packed[(p*K + kk) * 16 + lane] = B[kk][p*16 + lane]
//
// Each 16-float row is 64 bytes — exactly one cache line — and the backing
// Tensor is 64-byte aligned (TrackingAllocator), so every k-step of the
// AVX2 kernel is two aligned 32-byte loads from consecutive addresses.
// Columns past N in the last panel are zero-filled: a broadcast-FMA against
// them accumulates exactly 0.0f, so kernels may compute full panels and
// store only the first N columns.
//
// Packing is pure data movement — UnpackWeights inverts it bit-exactly
// (tests/dispatch_test.cc asserts the round trip).
#ifndef SRC_TENSOR_PREPACK_H_
#define SRC_TENSOR_PREPACK_H_

#include <cstdint>
#include <string>

#include "src/tensor/tensor.h"

namespace prefillonly {

// Columns per packed panel. 16 floats = one cache line = two AVX2 lanes.
inline constexpr int64_t kPackPanelWidth = 16;

// A weight matrix in panel-major layout. Move-only (owns a Tensor).
struct PackedMatrix {
  Tensor data;  // [n_panels * k, kPackPanelWidth]
  int64_t k = 0;
  int64_t n = 0;

  bool empty() const { return data.empty(); }
  int64_t n_panels() const {
    return (n + kPackPanelWidth - 1) / kPackPanelWidth;
  }
  // First float of panel p; rows of kPackPanelWidth floats, one per k.
  const float* panel(int64_t p) const {
    return data.data() + p * k * kPackPanelWidth;
  }
};

// Packs row-major b[k, n] into panel-major layout, zero-filling the padded
// columns of the last panel. Allocates from `alloc` under `tag`.
PackedMatrix PackWeights(TrackingAllocator& alloc, const float* b, int64_t k,
                         int64_t n, const std::string& tag);

// Inverse of PackWeights: writes the row-major [k, n] matrix into `out`.
// Bit-exact (packing only moves floats).
void UnpackWeights(const PackedMatrix& packed, float* out);

}  // namespace prefillonly

#endif  // SRC_TENSOR_PREPACK_H_
