#include "src/server/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prefillonly {

namespace {

void SerializeString(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    auto value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }
  Result<Json> Fail(const std::string& message) const { return Error(message); }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) {
        return s.status();
      }
      return Json(s.take());
    }
    if (ConsumeLiteral("true")) {
      return Json(true);
    }
    if (ConsumeLiteral("false")) {
      return Json(false);
    }
    if (ConsumeLiteral("null")) {
      return Json(nullptr);
    }
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      return Json(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' in object");
      }
      auto value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      object.emplace(key.take(), value.take());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Json(std::move(object));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      return Json(std::move(array));
    }
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      array.push_back(value.take());
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Json(std::move(array));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status::InvalidArgument("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_) {
      return Fail("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string_view Json::TypeName() const {
  if (is_null()) return "null";
  if (is_bool()) return "boolean";
  if (is_number()) return "number";
  if (is_string()) return "string";
  if (is_array()) return "array";
  return "object";
}

const Json* Json::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const auto& object = AsObject();
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string Json::Serialize() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = AsBool() ? "true" : "false";
  } else if (is_number()) {
    const double d = AsDouble();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      out = std::to_string(static_cast<int64_t>(d));
    } else {
      // Shortest representation that parses back to the exact same double:
      // scores crossing the HTTP boundary must stay bitwise comparable to
      // their in-process counterparts (the remote/in-process parity
      // contract, ISSUE 10). %.10g stays the common case so existing output
      // is unchanged wherever 10 significant digits already round-trip.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", d);
      if (std::strtod(buf, nullptr) != d) {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out = buf;
    }
  } else if (is_string()) {
    SerializeString(AsString(), out);
  } else if (is_array()) {
    out = "[";
    const auto& array = AsArray();
    for (size_t i = 0; i < array.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += array[i].Serialize();
    }
    out += "]";
  } else {
    out = "{";
    bool first = true;
    for (const auto& [key, value] : AsObject()) {
      if (!first) {
        out += ",";
      }
      first = false;
      SerializeString(key, out);
      out += ":";
      out += value.Serialize();
    }
    out += "}";
  }
  return out;
}

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace prefillonly
