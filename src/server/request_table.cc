#include "src/server/request_table.h"

#include <chrono>

namespace prefillonly {

std::string_view RequestTable::StateName(State state) {
  switch (state) {
    case State::kQueued:
      return "queued";
    case State::kRunning:
      return "running";
    case State::kDone:
      return "done";
    case State::kFailed:
      return "failed";
    case State::kCancelled:
      return "cancelled";
  }
  return "?";
}

RequestTable::RequestTable(ReplicaSet& set, size_t completed_capacity)
    : set_(set), completed_capacity_(completed_capacity) {}

Status RequestTable::Reserve(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(id) > 0) {
    return Status::FailedPrecondition("request id '" + id + "' already exists");
  }
  entries_.emplace(id, Entry{});
  return Status::Ok();
}

void RequestTable::Commit(const std::string& id,
                          std::vector<ReplicaSet::Submission> submissions,
                          int32_t priority) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  entry.priority = priority;
  entry.items.reserve(submissions.size());
  for (ReplicaSet::Submission& submission : submissions) {
    Item item;
    item.cluster_id = submission.id;
    item.future = std::move(submission.future);
    entry.items.push_back(std::move(item));
  }
}

void RequestTable::Abandon(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.terminal) {
    completed_by_priority_.erase({it->second.priority, it->second.completed_seq, id});
  }
  entries_.erase(it);
}

void RequestTable::RefreshLocked(const std::string& id, Entry& entry) {
  if (entry.terminal || entry.items.empty()) {
    // Terminal entries are frozen; an empty one is a reservation whose
    // Commit hasn't landed yet — it polls as queued, never as (vacuously)
    // done.
    return;
  }
  bool all_resolved = true;
  for (Item& item : entry.items) {
    if (item.result.has_value()) {
      continue;
    }
    if (item.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      item.result = item.future.get();
    } else {
      all_resolved = false;
    }
  }
  if (!all_resolved) {
    return;
  }
  // Transition to terminal: enter the bounded completed-result table.
  // Beyond capacity, the lowest-priority terminal entry is forgotten first
  // (oldest first within a priority class) — its id polls as 404 from now
  // on. Note the freshly terminal entry itself is the victim when every
  // retained entry outranks it.
  entry.terminal = true;
  entry.completed_seq = ++completed_seq_;
  completed_by_priority_.insert({entry.priority, entry.completed_seq, id});
  while (completed_by_priority_.size() > completed_capacity_) {
    auto victim = completed_by_priority_.begin();
    entries_.erase(std::get<2>(*victim));
    completed_by_priority_.erase(victim);
  }
}

RequestTable::Snapshot RequestTable::SnapshotLocked(const Entry& entry) const {
  Snapshot snapshot;
  snapshot.results.reserve(entry.items.size());
  for (const Item& item : entry.items) {
    snapshot.results.push_back(item.result);
  }
  if (entry.terminal) {
    snapshot.state = State::kDone;
    for (const Item& item : entry.items) {
      if (item.result->ok()) {
        continue;
      }
      if (item.result->status().code() == StatusCode::kCancelled) {
        snapshot.state = State::kCancelled;
        break;  // cancellation outranks any other failure
      }
      snapshot.state = State::kFailed;
    }
    return snapshot;
  }
  snapshot.state = State::kQueued;
  for (const Item& item : entry.items) {
    if (item.result.has_value()) {
      // A resolved item among unresolved ones means execution has begun.
      snapshot.state = State::kRunning;
      break;
    }
    const Engine::RequestPhase phase = set_.Phase(item.cluster_id);
    if (phase != Engine::RequestPhase::kQueued) {
      // kRunning, or kUnknown because it finished between the future check
      // and now — either way it has left the queue.
      snapshot.state = State::kRunning;
      break;
    }
  }
  return snapshot;
}

Result<RequestTable::Snapshot> RequestTable::Poll(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request id '" + id +
                            "' (never submitted, or evicted from the "
                            "completed-result table)");
  }
  RefreshLocked(id, it->second);
  // RefreshLocked may have evicted ids — including the one it was handed,
  // when that entry is outranked by everything retained (or capacity is 0);
  // re-find to stay correct.
  it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("request id '" + id +
                            "' evicted from the completed-result table");
  }
  return SnapshotLocked(it->second);
}

Result<RequestTable::Snapshot> RequestTable::Cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request id '" + id +
                            "' (never submitted, or evicted from the "
                            "completed-result table)");
  }
  RefreshLocked(id, it->second);
  it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound("request id '" + id +
                            "' evicted from the completed-result table");
  }
  Entry& entry = it->second;
  if (!entry.terminal) {
    for (Item& item : entry.items) {
      if (!item.result.has_value()) {
        // Queued items resolve synchronously with kCancelled; in-flight
        // ones are marked and resolve at their finalize. kNotFound (raced
        // to completion) is fine — the next refresh harvests the result.
        (void)set_.Cancel(item.cluster_id);
      }
    }
    RefreshLocked(id, entry);
    it = entries_.find(id);
    if (it == entries_.end()) {
      return Status::NotFound("request id '" + id +
                              "' evicted from the completed-result table");
    }
  }
  return SnapshotLocked(it->second);
}

}  // namespace prefillonly
