// Client-visible request lifecycle state (ISSUE 5).
//
// The async routes (POST/GET/DELETE /v1/requests...) need a place where a
// client-visible request id maps to the engine-side submissions behind it,
// where polls can observe queued/running/done/failed/cancelled without
// blocking, and where finished results stay readable for a while after
// completion. That place is this table:
//
//  * one entry per client request, holding the (cluster id, future) pair of
//    every item of the submission (multi-item /v1/score bodies fan out to
//    several engine requests under one client id). Since ISSUE 8 the table
//    fronts a ReplicaSet, not a bare Engine: ids are CLUSTER ids, stable
//    across breaker-driven failover re-submits, so a poll or cancel follows
//    a request wherever it moves;
//  * Poll() harvests ready futures non-blockingly and classifies the entry:
//    all items terminal -> done/failed/cancelled (any kCancelled outranks
//    any other failure, any failure outranks done); otherwise running if
//    any item has left the queue, else queued;
//  * completed entries enter a bounded retention table with PRIORITY-AWARE
//    eviction (ISSUE 6): when more than `completed_capacity` terminal
//    entries are retained, the lowest-priority one is evicted first, oldest
//    first within a priority class — so a burst of low-priority traffic
//    cannot flush a high-priority client's result before it polls. Evicted
//    ids poll as 404. Pending entries are never evicted.
//
// Thread-safe; every method may be called from concurrent connection
// threads.
#ifndef SRC_SERVER_REQUEST_TABLE_H_
#define SRC_SERVER_REQUEST_TABLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/cluster/replica_set.h"
#include "src/core/engine.h"

namespace prefillonly {

class RequestTable {
 public:
  enum class State { kQueued, kRunning, kDone, kFailed, kCancelled };
  static std::string_view StateName(State state);

  struct Snapshot {
    State state = State::kQueued;
    // Index-aligned with the submission's items; engaged once the item has
    // resolved (all of them once `state` is terminal).
    std::vector<std::optional<Result<ScoringResponse>>> results;
  };

  // `set` must outlive the table. `completed_capacity` bounds how many
  // terminal entries are retained for polling.
  RequestTable(ReplicaSet& set, size_t completed_capacity);

  // Three-step registration, so the duplicate-id check happens BEFORE the
  // engine admits any work (a duplicate must cost a 409, not a prefill):
  // Reserve() claims the id (kFailedPrecondition if present — HTTP 409; the
  // placeholder polls as "queued"), Commit() attaches the submitted engine
  // requests, Abandon() releases a reservation whose submission failed.
  // `priority` is the submission's scheduling class (higher = more
  // important); it decides eviction order once the entry is terminal.
  Status Reserve(const std::string& id);
  void Commit(const std::string& id, std::vector<ReplicaSet::Submission> submissions,
              int32_t priority = 0);
  void Abandon(const std::string& id);

  // Non-blocking state read; kNotFound for unknown or evicted ids.
  Result<Snapshot> Poll(const std::string& id);

  // Cancels every unresolved item (ReplicaSet::Cancel: dequeue if queued,
  // mark-and-ignore if in flight, no failover re-submit) and returns the
  // resulting snapshot.
  // Idempotent on terminal entries: cancelling a done/failed/cancelled
  // request just returns its current state. kNotFound for unknown ids.
  Result<Snapshot> Cancel(const std::string& id);

  size_t completed_capacity() const { return completed_capacity_; }

 private:
  struct Item {
    int64_t cluster_id = 0;
    Engine::ResponseFuture future;  // valid until resolved
    std::optional<Result<ScoringResponse>> result;
  };
  struct Entry {
    std::vector<Item> items;
    bool terminal = false;
    int32_t priority = 0;
    uint64_t completed_seq = 0;  // assigned on the transition to terminal
  };

  // Harvests ready futures; on the transition to terminal, enters the entry
  // into the bounded retention table (evicting lowest-priority/oldest
  // first). Requires mu_.
  void RefreshLocked(const std::string& id, Entry& entry);
  Snapshot SnapshotLocked(const Entry& entry) const;

  ReplicaSet& set_;
  const size_t completed_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // Terminal entries ordered by eviction preference: (priority, completion
  // seq, id) ascending, so *begin() is always the lowest-priority, oldest
  // victim.
  std::set<std::tuple<int32_t, uint64_t, std::string>> completed_by_priority_;
  uint64_t completed_seq_ = 0;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_REQUEST_TABLE_H_
