#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <optional>

#include "src/common/fault.h"
#include "src/common/logging.h"

namespace prefillonly {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

// EINTR-safe read: a signal interrupting the syscall is NOT end-of-stream
// (the pre-ISSUE-6 loop treated any n <= 0 as EOF and silently dropped the
// connection mid-request). The socket.recv fault site simulates exactly
// that interrupted attempt.
ssize_t RecvSome(int fd, char* buffer, size_t size) {
  while (true) {
    if (FaultInjector::Global().Fire(fault::kSocketRecv)) {
      continue;  // as if read() returned -1/EINTR
    }
    const ssize_t n = ::read(fd, buffer, size);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return n;
  }
}

// Writes the whole buffer: retries interrupted attempts, continues after
// short writes. False once the peer is gone (EPIPE/reset) or on any hard
// error. Fault sites: socket.send simulates an EINTR'd attempt;
// socket.short_write clamps one attempt to a single byte so the
// continuation path runs with real data (the response stays intact).
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    if (FaultInjector::Global().Fire(fault::kSocketSend)) {
      continue;  // as if send() returned -1/EINTR
    }
    size_t len = size - sent;
    if (len > 1 && FaultInjector::Global().Fire(fault::kSocketShortWrite)) {
      len = 1;
    }
    // MSG_NOSIGNAL: a client (or Stop()) tearing the socket down must yield
    // EPIPE here, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<HttpRequest> HttpServer::ParseRequest(const std::string& raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("incomplete HTTP header");
  }
  HttpRequest request;
  size_t line_start = 0;
  size_t line_end = raw.find("\r\n");
  {
    const std::string line = raw.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return Status::InvalidArgument("malformed request line");
    }
    request.method = line.substr(0, sp1);
    request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = raw.find("\r\n", line_start);
    const std::string line = raw.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      request.headers[key] = line.substr(value_start);
    }
    line_start = line_end + 2;
  }
  request.body = raw.substr(header_end + 4);
  return request;
}

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed");
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PO_LOG_INFO << "HTTP server listening on 127.0.0.1:" << port_;
  return Status::Ok();
}

void HttpServer::Stop() {
  // Hold stop_mu_ for the whole teardown so a racing second caller blocks
  // until every server thread is joined, then sees running_ == false.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.exchange(false)) {
    return;
  }
  // Shutting the listener down unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // The accept thread is gone, so no new connections can appear. Unblock
  // any connection thread stuck in read() on an idle client, then drain.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& connection : connections_) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
  connections_.clear();
}

void HttpServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load()) {
        PO_LOG_WARNING << "accept() failed";
      }
      break;
    }
    // One thread per connection: parsing, handling and writing happen off
    // the accept path, so concurrent clients overlap inside the engine.
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, fd, raw] {
      ServeConnection(fd);
      // FIN to the client (close-delimited responses); the fd itself is
      // closed after join so Stop() can never shutdown() a reused fd.
      ::shutdown(fd, SHUT_RDWR);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

// Strict, non-throwing Content-Length parse. nullopt on anything that is
// not a plain decimal number within `max` — std::stoul here would THROW on
// garbage and take the whole process down with std::terminate.
std::optional<size_t> ParseContentLength(const std::string& value, size_t max) {
  if (value.empty() || value.size() > 19) {
    return std::nullopt;
  }
  size_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    parsed = parsed * 10 + static_cast<size_t>(c - '0');
  }
  if (parsed > max) {
    return std::nullopt;
  }
  return parsed;
}

void HttpServer::ServeConnection(int fd) {
  // Bounds the buffered request body; a declared length beyond it is a 400,
  // not an allocation.
  constexpr size_t kMaxBodyBytes = 64u << 20;
  std::string raw;
  char buffer[4096];
  // Serve request after request on this socket for as long as the client
  // asks for keep-alive (ISSUE 5); every response is Content-Length-framed
  // so the client can find the next response boundary without an EOF.
  while (true) {
    // Frame exactly one request: headers, then the declared body length.
    size_t content_length = 0;
    size_t header_end = raw.find("\r\n\r\n");
    bool eof = false;
    bool framing_error = false;
    while (true) {
      if (header_end != std::string::npos) {
        auto parsed = ParseRequest(raw.substr(0, header_end + 4));
        if (parsed.ok()) {
          auto it = parsed.value().headers.find("content-length");
          if (it != parsed.value().headers.end()) {
            if (auto length = ParseContentLength(it->second, kMaxBodyBytes)) {
              content_length = *length;
            } else {
              framing_error = true;
            }
          }
        }
      }
      if (framing_error) {
        break;
      }
      if (header_end != std::string::npos &&
          raw.size() >= header_end + 4 + content_length) {
        break;
      }
      const ssize_t n = RecvSome(fd, buffer, sizeof(buffer));
      if (n <= 0) {
        eof = true;
        break;
      }
      raw.append(buffer, static_cast<size_t>(n));
      if (header_end == std::string::npos) {
        header_end = raw.find("\r\n\r\n");
      }
    }
    if (eof) {
      if (raw.empty() || header_end == std::string::npos) {
        // Clean shutdown between requests (or nothing ever arrived).
        return;
      }
      // Truncated request: fall through and let parsing produce the 400.
    }
    const size_t frame = header_end == std::string::npos
                             ? raw.size()
                             : std::min(raw.size(), header_end + 4 + content_length);
    const std::string one = raw.substr(0, frame);
    raw.erase(0, frame);

    HttpResponse response;
    bool keep_alive = false;
    auto request = ParseRequest(one);
    if (framing_error) {
      // The body boundary is unknowable — answer 400 and drop the
      // connection (no keep-alive) since resynchronization is impossible.
      response.status = 400;
      response.body =
          R"({"error":{"code":"invalid_argument","type":"invalid_request_error","message":"invalid Content-Length"}})";
    } else if (!request.ok()) {
      response.status = 400;
      response.body =
          R"({"error":{"code":"invalid_argument","type":"invalid_request_error","message":"malformed request"}})";
    } else {
      // Opt-in persistence only: legacy clients read until EOF, so the
      // close-delimited default must survive.
      auto it = request.value().headers.find("connection");
      keep_alive = it != request.value().headers.end() &&
                   ToLower(it->second) == "keep-alive" && !eof;
      response = handler_(request.value());
    }

    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      StatusText(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    for (const auto& [key, value] : response.headers) {
      out += key + ": " + value + "\r\n";
    }
    out += keep_alive ? "Connection: keep-alive\r\n\r\n" : "Connection: close\r\n\r\n";
    out += response.body;
    if (!SendAll(fd, out.data(), out.size())) {
      return;
    }
    if (!keep_alive) {
      return;
    }
  }
}

}  // namespace prefillonly
