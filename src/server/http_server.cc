#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/common/logging.h"

namespace prefillonly {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

}  // namespace

Result<HttpRequest> HttpServer::ParseRequest(const std::string& raw) {
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("incomplete HTTP header");
  }
  HttpRequest request;
  size_t line_start = 0;
  size_t line_end = raw.find("\r\n");
  {
    const std::string line = raw.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return Status::InvalidArgument("malformed request line");
    }
    request.method = line.substr(0, sp1);
    request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = raw.find("\r\n", line_start);
    const std::string line = raw.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = ToLower(line.substr(0, colon));
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      request.headers[key] = line.substr(value_start);
    }
    line_start = line_end + 2;
  }
  request.body = raw.substr(header_end + 4);
  return request;
}

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed");
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PO_LOG_INFO << "HTTP server listening on 127.0.0.1:" << port_;
  return Status::Ok();
}

void HttpServer::Stop() {
  // Hold stop_mu_ for the whole teardown so a racing second caller blocks
  // until every server thread is joined, then sees running_ == false.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.exchange(false)) {
    return;
  }
  // Shutting the listener down unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // The accept thread is gone, so no new connections can appear. Unblock
  // any connection thread stuck in read() on an idle client, then drain.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& connection : connections_) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
  connections_.clear();
}

void HttpServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load()) {
        PO_LOG_WARNING << "accept() failed";
      }
      break;
    }
    // One thread per connection: parsing, handling and writing happen off
    // the accept path, so concurrent clients overlap inside the engine.
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, fd, raw] {
      ServeConnection(fd);
      // FIN to the client (close-delimited responses); the fd itself is
      // closed after join so Stop() can never shutdown() a reused fd.
      ::shutdown(fd, SHUT_RDWR);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string raw;
  char buffer[4096];
  size_t content_length = 0;
  size_t header_end = std::string::npos;
  // Read headers, then the declared body length.
  while (true) {
    if (header_end != std::string::npos &&
        raw.size() >= header_end + 4 + content_length) {
      break;
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    raw.append(buffer, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        auto parsed = ParseRequest(raw.substr(0, header_end + 4));
        if (parsed.ok()) {
          auto it = parsed.value().headers.find("content-length");
          if (it != parsed.value().headers.end()) {
            content_length = static_cast<size_t>(std::stoul(it->second));
          }
        }
      }
    }
  }

  HttpResponse response;
  auto request = ParseRequest(raw);
  if (!request.ok()) {
    response.status = 400;
    response.body = R"({"error":"malformed request"})";
  } else {
    response = handler_(request.value());
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a client (or Stop()) tearing the socket down must yield
    // EPIPE here, not a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace prefillonly
