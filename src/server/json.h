// Minimal JSON value with parsing and serialization.
//
// Supports the subset the scoring API needs: objects, arrays, strings,
// doubles, booleans, null; UTF-8 passthrough with standard escape handling.
// Written in-repo to keep the build dependency-free.
#ifndef SRC_SERVER_JSON_H_
#define SRC_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace prefillonly {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}          // NOLINT
  Json(bool b) : value_(b) {}                        // NOLINT
  Json(double d) : value_(d) {}                      // NOLINT
  Json(int i) : value_(static_cast<double>(i)) {}    // NOLINT
  Json(int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}    // NOLINT
  Json(std::string s) : value_(std::move(s)) {}      // NOLINT
  Json(Array a) : value_(std::move(a)) {}            // NOLINT
  Json(Object o) : value_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool AsBool() const { return std::get<bool>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  int64_t AsInt() const { return static_cast<int64_t>(std::get<double>(value_)); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }
  Array& MutableArray() { return std::get<Array>(value_); }
  Object& MutableObject() { return std::get<Object>(value_); }

  // Object field lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  // Human-readable type name ("number", "string", ...) for validation
  // error messages.
  std::string_view TypeName() const;

  std::string Serialize() const;
  static Result<Json> Parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_JSON_H_
