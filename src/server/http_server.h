// Minimal HTTP/1.1 server for the scoring frontend.
//
// The paper's PrefillOnly "opens an HTTP server compatible with the OpenAI
// API protocol for the user to send their prefill-only requests" (§3.1).
// This is that frontend in miniature: a blocking accept loop on its own
// thread, request-line + header + Content-Length body parsing, and a
// handler callback per request. Each accepted connection is served on its
// own thread (ISSUE 2) so slow or concurrent clients never serialize behind
// one in-flight prefill — connection threads enqueue into the engine's
// concurrent runtime and block on the response future, not on each other.
// The handler must therefore be thread-safe. Finished connection threads
// are reaped opportunistically on the accept path and joined on Stop().
//
// Persistent connections (ISSUE 5): a client that sends
// `Connection: keep-alive` gets a Content-Length-framed response on the
// SAME socket and may pipeline its next request there — polling clients
// (GET /v1/requests/{id}) stop paying a TCP connect per poll. Without that
// header the connection stays one-shot and close-delimited, exactly as
// before, so legacy read-until-EOF clients keep working.
#ifndef SRC_SERVER_HTTP_SERVER_H_
#define SRC_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace prefillonly {

struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  // Extra response headers (e.g. Allow on 405, Retry-After on 429).
  // Content-Type, Content-Length and Connection are emitted by the server.
  std::map<std::string, std::string> headers;
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(uint16_t port);
  void Stop();

  // The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  // Parses one HTTP request out of `raw` (exposed for unit tests).
  static Result<HttpRequest> ParseRequest(const std::string& raw);

 private:
  // One serving thread per accepted socket; `done` flags the thread as
  // joinable-without-blocking for the accept loop's reap sweep. The serving
  // thread shuts the socket down when finished (the client's EOF) but never
  // closes it — the fd is closed only after the thread is joined (reap or
  // Stop), so Stop() can safely shutdown() a live fd to unblock a stuck
  // read without ever racing a close/fd-reuse.
  struct Connection {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  void ReapFinishedLocked();

  Handler handler_;
  // Atomic: Stop() invalidates it from another thread while the accept loop
  // reads it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
  // Serializes Stop(): a second concurrent stopper must not return before
  // the first has joined the accept and connection threads.
  std::mutex stop_mu_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_HTTP_SERVER_H_
