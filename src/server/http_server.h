// Minimal HTTP/1.1 server for the scoring frontend.
//
// The paper's PrefillOnly "opens an HTTP server compatible with the OpenAI
// API protocol for the user to send their prefill-only requests" (§3.1).
// This is that frontend in miniature: a blocking accept loop on its own
// thread, request-line + header + Content-Length body parsing, and a
// handler callback per request. Connections are handled one at a time
// (close-delimited), which matches the single-executor engine behind it.
#ifndef SRC_SERVER_HTTP_SERVER_H_
#define SRC_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace prefillonly {

struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(uint16_t port);
  void Stop();

  // The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  // Parses one HTTP request out of `raw` (exposed for unit tests).
  static Result<HttpRequest> ParseRequest(const std::string& raw);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_HTTP_SERVER_H_
