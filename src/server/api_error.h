// The v1 API's structured error model (ISSUE 5).
//
// Every route reports failures with ONE shape:
//
//   { "error": { "code": "deadline_exceeded",
//                "type": "timeout_error",
//                "message": "deadline expired while queued" } }
//
// and ONE Status -> HTTP mapping, so clients can branch on `code` (stable,
// mirrors StatusCode) or on the coarser `type` (OpenAI-style class), and a
// new route can never invent its own ad-hoc error JSON. 429 responses carry
// a Retry-After header.
//
//   StatusCode            HTTP  type
//   kInvalidArgument      400   invalid_request_error
//   kOutOfRange           400   invalid_request_error
//   kNotFound             404   not_found_error
//   kFailedPrecondition   409   conflict_error
//   kCancelled            409   cancelled_error
//   kResourceExhausted    429   rate_limit_error   (+ Retry-After)
//   kUnimplemented        501   invalid_request_error
//   kDeadlineExceeded     504   timeout_error
//   kInternal / other     500   internal_error
#ifndef SRC_SERVER_API_ERROR_H_
#define SRC_SERVER_API_ERROR_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/server/http_server.h"
#include "src/server/json.h"

namespace prefillonly {

// The HTTP status every route uses for this StatusCode (table above).
int HttpStatusFor(StatusCode code);

// Coarse error class ("invalid_request_error", "timeout_error", ...).
std::string_view ApiErrorTypeFor(StatusCode code);

// Stable machine code: the lowercase StatusCode name ("invalid_argument").
std::string ApiErrorCodeFor(StatusCode code);

// The {"error": {...}} value alone, for embedding in per-item results.
Json ApiErrorJson(StatusCode code, const std::string& message);

// A complete HTTP response carrying the structured error body (plus
// Retry-After on 429).
HttpResponse ApiErrorResponse(StatusCode code, const std::string& message);
HttpResponse ApiErrorResponse(const Status& status);

// --- The table in reverse (ISSUE 10) ----------------------------------
// The HTTP client runs the same mapping backwards so a remote engine's
// failures surface through the facade with exactly the in-process codes.

// Inverse of ApiErrorCodeFor: "deadline_exceeded" -> kDeadlineExceeded.
// Unknown codes map to kInternal (a server speaking a newer dialect is a
// server-side problem from this client's point of view).
StatusCode StatusCodeForApiErrorCode(std::string_view code);

// Inverse of HttpStatusFor, for responses whose body carried no parseable
// error.code (e.g. a proxy's bare 503). Ambiguous rows resolve to the
// code the serving stack actually emits for that status: 400 ->
// kInvalidArgument, 409 -> kFailedPrecondition.
StatusCode StatusCodeForHttpStatus(int http_status);

}  // namespace prefillonly

#endif  // SRC_SERVER_API_ERROR_H_
