#include "src/server/api_error.h"

#include <cctype>

namespace prefillonly {

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kCancelled:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string_view ApiErrorTypeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "none";
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
      return "invalid_request_error";
    case StatusCode::kNotFound:
      return "not_found_error";
    case StatusCode::kFailedPrecondition:
      return "conflict_error";
    case StatusCode::kCancelled:
      return "cancelled_error";
    case StatusCode::kResourceExhausted:
      return "rate_limit_error";
    case StatusCode::kDeadlineExceeded:
      return "timeout_error";
    case StatusCode::kUnavailable:
      return "unavailable_error";
    case StatusCode::kInternal:
      return "internal_error";
  }
  return "internal_error";
}

std::string ApiErrorCodeFor(StatusCode code) {
  std::string name(StatusCodeName(code));
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

Json ApiErrorJson(StatusCode code, const std::string& message) {
  Json::Object error;
  error.emplace("code", Json(ApiErrorCodeFor(code)));
  error.emplace("type", Json(std::string(ApiErrorTypeFor(code))));
  error.emplace("message", Json(message));
  Json::Object wrapper;
  wrapper.emplace("error", Json(std::move(error)));
  return Json(std::move(wrapper));
}

HttpResponse ApiErrorResponse(StatusCode code, const std::string& message) {
  HttpResponse response;
  response.status = HttpStatusFor(code);
  response.body = ApiErrorJson(code, message).Serialize();
  if (code == StatusCode::kResourceExhausted || code == StatusCode::kUnavailable) {
    // The engine sheds load transiently (queue admission, activation
    // budget), and a cluster with every replica tripped/draining recovers
    // on the breaker-probe timescale; a one-second backoff is the honest
    // hint for both.
    response.headers.emplace("Retry-After", "1");
  }
  return response;
}

HttpResponse ApiErrorResponse(const Status& status) {
  return ApiErrorResponse(status.code(), status.message());
}

StatusCode StatusCodeForApiErrorCode(std::string_view code) {
  // Every code this table can answer is one ApiErrorCodeFor can produce, so
  // the round trip StatusCode -> code -> StatusCode is the identity
  // (asserted by tests/http_client_test idioms in loadgen_test.cc).
  static constexpr std::pair<std::string_view, StatusCode> kCodes[] = {
      {"ok", StatusCode::kOk},
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"resource_exhausted", StatusCode::kResourceExhausted},
      {"failed_precondition", StatusCode::kFailedPrecondition},
      {"out_of_range", StatusCode::kOutOfRange},
      {"unimplemented", StatusCode::kUnimplemented},
      {"internal", StatusCode::kInternal},
      {"cancelled", StatusCode::kCancelled},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"unavailable", StatusCode::kUnavailable},
  };
  for (const auto& [name, status] : kCodes) {
    if (code == name) {
      return status;
    }
  }
  return StatusCode::kInternal;
}

StatusCode StatusCodeForHttpStatus(int http_status) {
  switch (http_status) {
    case 400:
      return StatusCode::kInvalidArgument;
    case 404:
      return StatusCode::kNotFound;
    case 409:
      return StatusCode::kFailedPrecondition;
    case 429:
      return StatusCode::kResourceExhausted;
    case 501:
      return StatusCode::kUnimplemented;
    case 503:
      return StatusCode::kUnavailable;
    case 504:
      return StatusCode::kDeadlineExceeded;
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace prefillonly
