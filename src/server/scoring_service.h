// The v1 scoring API: binds the PrefillOnly engine to the HTTP server.
//
// Routes (JSON in, JSON out; modeled on the paper's OpenAI-compatible
// frontend, specialized to prefill-only scoring — full reference in
// docs/API.md):
//
//   POST /v1/score            blocking scoring call
//     single item:  { "text"|"tokens": ..., "allowed"|"allowed_tokens": ...,
//                     "user_id": 7, "options": {...} }
//     multi-item:   { "items": [ <item>, ... ], "options": {...} }
//     -> single:    { "score": ..., "probabilities": [...], ... }
//     -> multi:     { "results": [ <result-or-error>, ... ], "n_items": N }
//     Items of one call are submitted as ONE co-batch group: the scheduler
//     deliberately stacks them into the same PrefillBatch when a lane frees
//     (ISSUE 5) instead of hoping they meet probabilistically.
//
//   POST   /v1/requests       async submission; same body as /v1/score
//     -> 202 { "id": "req-3", "status": "queued", "n_items": N }
//   GET    /v1/requests/{id}  non-blocking poll
//     -> { "id", "status": queued|running|done|failed|cancelled,
//          "results": [...] once terminal }
//   DELETE /v1/requests/{id}  cancel (idempotent once terminal)
//     -> { "id", "status" }
//
//   GET /v1/stats             cluster-aggregated engine counters (summed
//                             across replicas; peaks maxed) plus router
//                             counters and a per-replica breakdown (ISSUE 8)
//   GET /v1/health            cluster liveness/degradation probe
//     -> 200 { "status": "ok" | "degraded", "admitting": k, "n_replicas": n }
//        degraded = some replica is impaired (breaker open/half-open,
//        draining, or engine degraded) but at least one still admits
//     -> 503 { "status": "overloaded", ... }   NO replica admits work;
//        clients should back off (Retry-After honored by the facade)
//
//   GET  /v1/replicas               per-replica snapshots (ISSUE 8)
//   POST /v1/replicas/{i}/drain     stop admitting to replica i (its queued
//                                   and in-flight work finishes normally)
//   POST /v1/replicas/{i}/rejoin    resume admitting; resets the breaker
//
// `options` (both submission routes): "priority" (int, strict scheduling
// class), "deadline_ms" (int >= 0; 0 = already expired, rejected with 504
// before dispatch), "request_id" (string, client-chosen async id).
//
// Errors: every route shares the structured shape and Status->HTTP table of
// src/server/api_error.h. Known paths answer wrong methods with 405 plus an
// Allow header. Completed async results are retained in a bounded table
// (RequestTable) and poll as 404 after eviction.
//
// Concurrency (ISSUE 2): the service starts the replica set's concurrent
// runtime at construction. Each HTTP connection runs on its own server
// thread (keep-alive aware, ISSUE 5), and scoring handlers enqueue into the
// ReplicaSet (SubmitGroup) and block on the response futures — so up to
// n_replicas * max_concurrent_requests prefills overlap, scheduled per
// replica by the SRJF dispatcher, while /v1/stats and lifecycle polls stay
// readable mid-flight.
//
// Multi-replica serving (ISSUE 8): the service fronts a ReplicaSet, not a
// bare Engine. Requests route by prefix affinity with health-gated failover
// and per-replica circuit breakers; n_replicas = 1 (the default) behaves
// exactly like the pre-cluster server, including engine shed answering 429.
#ifndef SRC_SERVER_SCORING_SERVICE_H_
#define SRC_SERVER_SCORING_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/replica_set.h"
#include "src/core/engine.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/request_table.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {

struct ScoringServiceOptions {
  // Completed async requests retained for polling before FIFO eviction
  // (the bounded completed-result table of ISSUE 5).
  size_t completed_requests_capacity = 256;
  // Cluster shape and robustness knobs (ISSUE 8). `cluster.engine` is
  // ignored — the constructor's EngineOptions argument is stamped over it,
  // so every replica is built from that one configuration.
  ReplicaSetOptions cluster;
};

class ScoringService {
 public:
  // Starts every replica's concurrent runtime (stopped again in ~ReplicaSet).
  explicit ScoringService(EngineOptions options,
                          ScoringServiceOptions service_options = {});

  // Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(uint16_t port);
  void Stop() { server_->Stop(); }
  uint16_t port() const { return server_->port(); }

  ReplicaSet& replica_set() { return *set_; }
  // Replica 0's engine by default — the pre-cluster accessor every existing
  // test uses; pass an index to reach the others.
  Engine& engine(int index = 0) { return set_->engine(index); }

  // Request handling, exposed for tests (no socket required). Thread-safe:
  // connection threads call this concurrently.
  HttpResponse Handle(const HttpRequest& request);

 private:
  // One parsed submission body: the items (>= 1) plus request-level options
  // already applied to every item.
  struct ParsedSubmission {
    std::vector<ScoringRequest> items;
    bool multi_item = false;
    std::string request_id;  // client-chosen async id; empty = generate
  };

  Result<ScoringRequest> ParseItem(const Json& item) const;
  Result<ParsedSubmission> ParseSubmission(const Json& body) const;

  HttpResponse HandleScore(const HttpRequest& request);
  HttpResponse HandleSubmitRequest(const HttpRequest& request);
  HttpResponse HandlePollRequest(const std::string& id);
  HttpResponse HandleCancelRequest(const std::string& id);
  HttpResponse HandleStats() const;
  HttpResponse HandleHealth() const;
  HttpResponse HandleListReplicas() const;
  // POST /v1/replicas/{index}/drain|rejoin.
  HttpResponse HandleReplicaAdmin(const HttpRequest& request,
                                  const std::string& tail);

  std::unique_ptr<ReplicaSet> set_;
  std::unique_ptr<HashTokenizer> tokenizer_;
  std::unique_ptr<RequestTable> requests_;
  std::atomic<int64_t> next_request_seq_{1};
  std::unique_ptr<HttpServer> server_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_SCORING_SERVICE_H_
