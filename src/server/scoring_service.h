// The scoring HTTP API: binds the PrefillOnly engine to the HTTP server.
//
// Routes (JSON in, JSON out; modeled on the paper's OpenAI-compatible
// frontend, specialized to prefill-only scoring):
//
//   POST /v1/score
//     { "text": "...", "allowed": ["yes", "no"], "user_id": 7 }      or
//     { "tokens": [1,2,3], "allowed_tokens": [10, 20], "user_id": 7 }
//     -> { "score": 0.71, "probabilities": [...], "n_input": 400,
//          "n_cached": 384, "n_cached_offload": 0 }
//
//   GET /v1/stats
//     -> engine counters (completed, cache hit rate, memory, ...)
//
// Concurrency (ISSUE 2): the service starts the engine's concurrent runtime
// at construction. Each HTTP connection runs on its own server thread, and
// HandleScore enqueues into the engine (SubmitAsync) and blocks on the
// response future — so up to EngineOptions::max_concurrent_requests prefills
// overlap, scheduled by the SRJF dispatcher, while /v1/stats stays readable
// mid-flight. The engine underneath still applies hybrid prefilling, prefix
// caching and suffix discarding per request.
#ifndef SRC_SERVER_SCORING_SERVICE_H_
#define SRC_SERVER_SCORING_SERVICE_H_

#include <memory>

#include "src/core/engine.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {

class ScoringService {
 public:
  // Starts the engine's concurrent runtime (stopped again in ~Engine).
  explicit ScoringService(EngineOptions options);

  // Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(uint16_t port);
  void Stop() { server_->Stop(); }
  uint16_t port() const { return server_->port(); }

  Engine& engine() { return *engine_; }

  // Request handling, exposed for tests (no socket required). Thread-safe:
  // connection threads call this concurrently.
  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleScore(const HttpRequest& request);
  HttpResponse HandleStats() const;

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<HashTokenizer> tokenizer_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_SCORING_SERVICE_H_
