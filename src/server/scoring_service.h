// The v1 scoring API: binds the PrefillOnly engine to the HTTP server.
//
// Routes (JSON in, JSON out; modeled on the paper's OpenAI-compatible
// frontend, specialized to prefill-only scoring — full reference in
// docs/API.md):
//
//   POST /v1/score            blocking scoring call
//     single item:  { "text"|"tokens": ..., "allowed"|"allowed_tokens": ...,
//                     "user_id": 7, "options": {...} }
//     multi-item:   { "items": [ <item>, ... ], "options": {...} }
//     -> single:    { "score": ..., "probabilities": [...], ... }
//     -> multi:     { "results": [ <result-or-error>, ... ], "n_items": N }
//     Items of one call are submitted as ONE co-batch group: the scheduler
//     deliberately stacks them into the same PrefillBatch when a lane frees
//     (ISSUE 5) instead of hoping they meet probabilistically.
//
//   POST   /v1/requests       async submission; same body as /v1/score
//     -> 202 { "id": "req-3", "status": "queued", "n_items": N }
//   GET    /v1/requests/{id}  non-blocking poll
//     -> { "id", "status": queued|running|done|failed|cancelled,
//          "results": [...] once terminal }
//   DELETE /v1/requests/{id}  cancel (idempotent once terminal)
//     -> { "id", "status" }
//
//   GET /v1/stats             engine counters (incl. robustness counters:
//                             aborts, retries, sheds, watchdog, faults)
//   GET /v1/health            liveness/degradation probe (ISSUE 6)
//     -> 200 { "status": "ok" | "degraded" }   degraded = a watchdog has
//        ever fired (delivery guarantee was exercised)
//     -> 503 { "status": "overloaded" }        load shedding is active;
//        clients should back off (Retry-After honored by the facade)
//
// `options` (both submission routes): "priority" (int, strict scheduling
// class), "deadline_ms" (int >= 0; 0 = already expired, rejected with 504
// before dispatch), "request_id" (string, client-chosen async id).
//
// Errors: every route shares the structured shape and Status->HTTP table of
// src/server/api_error.h. Known paths answer wrong methods with 405 plus an
// Allow header. Completed async results are retained in a bounded table
// (RequestTable) and poll as 404 after eviction.
//
// Concurrency (ISSUE 2): the service starts the engine's concurrent runtime
// at construction. Each HTTP connection runs on its own server thread
// (keep-alive aware, ISSUE 5), and scoring handlers enqueue into the engine
// (SubmitGroupAsync) and block on the response futures — so up to
// EngineOptions::max_concurrent_requests prefills overlap, scheduled by the
// SRJF dispatcher, while /v1/stats and lifecycle polls stay readable
// mid-flight.
#ifndef SRC_SERVER_SCORING_SERVICE_H_
#define SRC_SERVER_SCORING_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/request_table.h"
#include "src/workload/tokenizer.h"

namespace prefillonly {

struct ScoringServiceOptions {
  // Completed async requests retained for polling before FIFO eviction
  // (the bounded completed-result table of ISSUE 5).
  size_t completed_requests_capacity = 256;
};

class ScoringService {
 public:
  // Starts the engine's concurrent runtime (stopped again in ~Engine).
  explicit ScoringService(EngineOptions options,
                          ScoringServiceOptions service_options = {});

  // Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(uint16_t port);
  void Stop() { server_->Stop(); }
  uint16_t port() const { return server_->port(); }

  Engine& engine() { return *engine_; }

  // Request handling, exposed for tests (no socket required). Thread-safe:
  // connection threads call this concurrently.
  HttpResponse Handle(const HttpRequest& request);

 private:
  // One parsed submission body: the items (>= 1) plus request-level options
  // already applied to every item.
  struct ParsedSubmission {
    std::vector<ScoringRequest> items;
    bool multi_item = false;
    std::string request_id;  // client-chosen async id; empty = generate
  };

  Result<ScoringRequest> ParseItem(const Json& item) const;
  Result<ParsedSubmission> ParseSubmission(const Json& body) const;

  HttpResponse HandleScore(const HttpRequest& request);
  HttpResponse HandleSubmitRequest(const HttpRequest& request);
  HttpResponse HandlePollRequest(const std::string& id);
  HttpResponse HandleCancelRequest(const std::string& id);
  HttpResponse HandleStats() const;
  HttpResponse HandleHealth() const;

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<HashTokenizer> tokenizer_;
  std::unique_ptr<RequestTable> requests_;
  std::atomic<int64_t> next_request_seq_{1};
  std::unique_ptr<HttpServer> server_;
};

}  // namespace prefillonly

#endif  // SRC_SERVER_SCORING_SERVICE_H_
