#include "src/server/scoring_service.h"

#include <cassert>

namespace prefillonly {

namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  Json::Object object;
  object.emplace("error", Json(message));
  HttpResponse response;
  response.status = status;
  response.body = Json(std::move(object)).Serialize();
  return response;
}

}  // namespace

ScoringService::ScoringService(EngineOptions options) {
  tokenizer_ = std::make_unique<HashTokenizer>(
      static_cast<int32_t>(options.model.vocab_size));
  engine_ = std::make_unique<Engine>(std::move(options));
  // Connection threads enqueue and wait on futures; the dispatcher overlaps
  // up to max_concurrent_requests of them. ~Engine stops the runtime.
  Status started = engine_->StartWorker(/*callback=*/nullptr);
  assert(started.ok());
  (void)started;
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
}

Status ScoringService::Start(uint16_t port) { return server_->Start(port); }

HttpResponse ScoringService::Handle(const HttpRequest& request) {
  if (request.path == "/v1/score" && request.method == "POST") {
    return HandleScore(request);
  }
  if (request.path == "/v1/stats" && request.method == "GET") {
    return HandleStats();
  }
  return ErrorResponse(404, "unknown route: " + request.method + " " + request.path);
}

HttpResponse ScoringService::HandleScore(const HttpRequest& request) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(400, parsed.status().message());
  }
  const Json& body = parsed.value();
  if (!body.is_object()) {
    return ErrorResponse(400, "request body must be a JSON object");
  }

  ScoringRequest scoring;
  if (const Json* user = body.Find("user_id"); user != nullptr && user->is_number()) {
    scoring.user_id = user->AsInt();
  }

  // Token input: raw ids, or text through the tokenizer.
  if (const Json* tokens = body.Find("tokens"); tokens != nullptr) {
    if (!tokens->is_array()) {
      return ErrorResponse(400, "'tokens' must be an array of ids");
    }
    for (const Json& t : tokens->AsArray()) {
      if (!t.is_number()) {
        return ErrorResponse(400, "'tokens' must contain numbers");
      }
      scoring.tokens.push_back(static_cast<int32_t>(t.AsInt()));
    }
  } else if (const Json* text = body.Find("text"); text != nullptr && text->is_string()) {
    scoring.tokens = tokenizer_->Encode(text->AsString());
  } else {
    return ErrorResponse(400, "provide 'tokens' (ids) or 'text' (string)");
  }

  // Allowed outputs: ids, or words through the tokenizer.
  if (const Json* allowed = body.Find("allowed_tokens"); allowed != nullptr) {
    if (!allowed->is_array()) {
      return ErrorResponse(400, "'allowed_tokens' must be an array of ids");
    }
    for (const Json& t : allowed->AsArray()) {
      scoring.allowed_tokens.push_back(static_cast<int32_t>(t.AsInt()));
    }
  } else if (const Json* allowed_words = body.Find("allowed"); allowed_words != nullptr &&
                                                               allowed_words->is_array()) {
    for (const Json& word : allowed_words->AsArray()) {
      if (!word.is_string()) {
        return ErrorResponse(400, "'allowed' must contain strings");
      }
      scoring.allowed_tokens.push_back(tokenizer_->TokenFor(word.AsString()));
    }
  } else {
    return ErrorResponse(400, "provide 'allowed_tokens' (ids) or 'allowed' (words)");
  }

  // Non-blocking handoff: enqueue into the concurrent runtime and wait on
  // this request's future. The connection thread blocks, the engine doesn't —
  // other connections' requests run alongside under the SRJF dispatcher.
  auto submitted = engine_->SubmitAsync(std::move(scoring));
  if (!submitted.ok()) {
    const int status =
        submitted.status().code() == StatusCode::kResourceExhausted ? 500 : 400;
    return ErrorResponse(status, submitted.status().ToString());
  }
  Result<ScoringResponse> response = submitted.value().get();
  if (!response.ok()) {
    const int status =
        response.status().code() == StatusCode::kResourceExhausted ? 500 : 400;
    return ErrorResponse(status, response.status().ToString());
  }

  Json::Array probabilities;
  for (const auto& p : response.value().probabilities) {
    Json::Object entry;
    entry.emplace("token", Json(static_cast<int64_t>(p.token)));
    entry.emplace("probability", Json(p.probability));
    probabilities.push_back(Json(std::move(entry)));
  }
  Json::Object out;
  out.emplace("score", Json(response.value().score));
  out.emplace("probabilities", Json(std::move(probabilities)));
  out.emplace("n_input", Json(response.value().n_input));
  out.emplace("n_cached", Json(response.value().n_cached));
  out.emplace("n_cached_offload", Json(response.value().n_cached_offload));
  out.emplace("execute_time_s", Json(response.value().execute_time_s));
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

HttpResponse ScoringService::HandleStats() const {
  const EngineStats stats = engine_->stats();
  Json::Object out;
  out.emplace("submitted", Json(stats.submitted));
  out.emplace("completed", Json(stats.completed));
  out.emplace("failed", Json(stats.failed));
  // Batch occupancy (ISSUE 4): mean requests per dispatched prefill batch;
  // 1.0 = every request ran solo (max_batch_size == 1 or no co-batchable
  // queue depth).
  out.emplace("batches_dispatched", Json(stats.batches_dispatched));
  out.emplace("batched_requests", Json(stats.batched_requests));
  out.emplace("batch_occupancy",
              Json(stats.batches_dispatched > 0
                       ? static_cast<double>(stats.batched_requests) /
                             static_cast<double>(stats.batches_dispatched)
                       : 0.0));
  out.emplace("peak_batch_size", Json(stats.peak_batch_size));
  out.emplace("cache_hit_rate", Json(stats.cache.HitRate()));
  out.emplace("cache_bytes", Json(static_cast<int64_t>(stats.cache_bytes)));
  out.emplace("offload_bytes", Json(static_cast<int64_t>(stats.offload_bytes)));
  out.emplace("peak_activation_bytes",
              Json(static_cast<int64_t>(stats.peak_activation_bytes)));
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

}  // namespace prefillonly
