#include "src/server/scoring_service.h"

#include <cassert>
#include <cmath>

#include "src/server/api_error.h"

namespace prefillonly {

namespace {

// 405 is an HTTP-layer condition with no StatusCode of its own; it still
// wears the shared error shape, plus the Allow header RFC 9110 requires.
HttpResponse MethodNotAllowed(const std::string& method, const std::string& path,
                              const std::string& allow) {
  Json::Object error;
  error.emplace("code", Json("method_not_allowed"));
  error.emplace("type", Json("invalid_request_error"));
  error.emplace("message",
                Json("method " + method + " not allowed on " + path +
                     "; allowed: " + allow));
  Json::Object wrapper;
  wrapper.emplace("error", Json(std::move(error)));
  HttpResponse response;
  response.status = 405;
  response.headers.emplace("Allow", allow);
  response.body = Json(std::move(wrapper)).Serialize();
  return response;
}

// True for a JSON number that is an exact integer within [lo, hi] —
// rejects 1.5 and "1", and bounds the value so the int cast that follows
// can never be an out-of-range (undefined) float-to-int conversion.
bool IsIntegralInRange(const Json& value, double lo, double hi) {
  if (!value.is_number()) {
    return false;
  }
  const double d = value.AsDouble();
  return d == std::floor(d) && d >= lo && d <= hi;
}

// deadline_ms cap: ~31.7 years, exactly representable in a double.
constexpr double kMaxDeadlineMs = 1e12;

Json ScoringResponseJson(const ScoringResponse& response) {
  Json::Array probabilities;
  for (const auto& p : response.probabilities) {
    Json::Object entry;
    entry.emplace("token", Json(static_cast<int64_t>(p.token)));
    entry.emplace("probability", Json(p.probability));
    probabilities.push_back(Json(std::move(entry)));
  }
  Json::Object out;
  out.emplace("score", Json(response.score));
  out.emplace("probabilities", Json(std::move(probabilities)));
  out.emplace("n_input", Json(response.n_input));
  out.emplace("n_cached", Json(response.n_cached));
  out.emplace("n_cached_offload", Json(response.n_cached_offload));
  out.emplace("batch_size", Json(response.batch_size));
  out.emplace("queue_time_s", Json(response.queue_time_s));
  out.emplace("execute_time_s", Json(response.execute_time_s));
  return Json(std::move(out));
}

// Per-item value inside "results": the scoring object, or the shared error
// shape for items that failed individually.
Json ItemResultJson(const Result<ScoringResponse>& result) {
  if (result.ok()) {
    return ScoringResponseJson(result.value());
  }
  return ApiErrorJson(result.status().code(), result.status().message());
}

}  // namespace

ScoringService::ScoringService(EngineOptions options,
                               ScoringServiceOptions service_options) {
  tokenizer_ = std::make_unique<HashTokenizer>(
      static_cast<int32_t>(options.model.vocab_size));
  // One EngineOptions for every replica: identical weights (same seed) make
  // failover bitwise invisible. The ReplicaSet starts each replica's
  // concurrent runtime itself; ~ReplicaSet stops them.
  ReplicaSetOptions cluster = service_options.cluster;
  cluster.engine = std::move(options);
  set_ = std::make_unique<ReplicaSet>(std::move(cluster));
  requests_ = std::make_unique<RequestTable>(
      *set_, service_options.completed_requests_capacity);
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Handle(request); });
}

Status ScoringService::Start(uint16_t port) { return server_->Start(port); }

HttpResponse ScoringService::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/v1/score") {
    if (request.method == "POST") {
      return HandleScore(request);
    }
    return MethodNotAllowed(request.method, path, "POST");
  }
  if (path == "/v1/stats") {
    if (request.method == "GET") {
      return HandleStats();
    }
    return MethodNotAllowed(request.method, path, "GET");
  }
  if (path == "/v1/health") {
    if (request.method == "GET") {
      return HandleHealth();
    }
    return MethodNotAllowed(request.method, path, "GET");
  }
  if (path == "/v1/requests") {
    if (request.method == "POST") {
      return HandleSubmitRequest(request);
    }
    return MethodNotAllowed(request.method, path, "POST");
  }
  if (path == "/v1/replicas") {
    if (request.method == "GET") {
      return HandleListReplicas();
    }
    return MethodNotAllowed(request.method, path, "GET");
  }
  constexpr std::string_view kReplicaPrefix = "/v1/replicas/";
  if (path.rfind(kReplicaPrefix, 0) == 0) {
    return HandleReplicaAdmin(request, path.substr(kReplicaPrefix.size()));
  }
  constexpr std::string_view kRequestPrefix = "/v1/requests/";
  if (path.rfind(kRequestPrefix, 0) == 0) {
    const std::string id = path.substr(kRequestPrefix.size());
    if (id.empty() || id.find('/') != std::string::npos) {
      return ApiErrorResponse(StatusCode::kNotFound, "unknown route: " + path);
    }
    if (request.method == "GET") {
      return HandlePollRequest(id);
    }
    if (request.method == "DELETE") {
      return HandleCancelRequest(id);
    }
    return MethodNotAllowed(request.method, path, "GET, DELETE");
  }
  return ApiErrorResponse(StatusCode::kNotFound,
                          "unknown route: " + request.method + " " + path);
}

Result<ScoringRequest> ScoringService::ParseItem(const Json& item) const {
  if (!item.is_object()) {
    return Status::InvalidArgument(
        std::string("item must be a JSON object, got ") +
        std::string(item.TypeName()));
  }
  ScoringRequest scoring;
  if (const Json* user = item.Find("user_id"); user != nullptr && user->is_number()) {
    scoring.user_id = user->AsInt();
  }

  // Token input: raw ids, or text through the tokenizer.
  if (const Json* tokens = item.Find("tokens"); tokens != nullptr) {
    if (!tokens->is_array()) {
      return Status::InvalidArgument("'tokens' must be an array of ids");
    }
    for (const Json& t : tokens->AsArray()) {
      if (!t.is_number()) {
        return Status::InvalidArgument(
            std::string("'tokens' must contain numbers, got ") +
            std::string(t.TypeName()));
      }
      scoring.tokens.push_back(static_cast<int32_t>(t.AsInt()));
    }
  } else if (const Json* text = item.Find("text"); text != nullptr && text->is_string()) {
    scoring.tokens = tokenizer_->Encode(text->AsString());
  } else {
    return Status::InvalidArgument("provide 'tokens' (ids) or 'text' (string)");
  }

  // Allowed outputs: ids, or words through the tokenizer. Every element is
  // type-checked — a string in 'allowed_tokens' must 400, not crash (the
  // pre-ISSUE-5 handler called AsInt() unchecked here).
  if (const Json* allowed = item.Find("allowed_tokens"); allowed != nullptr) {
    if (!allowed->is_array()) {
      return Status::InvalidArgument("'allowed_tokens' must be an array of ids");
    }
    for (const Json& t : allowed->AsArray()) {
      if (!t.is_number()) {
        return Status::InvalidArgument(
            std::string("'allowed_tokens' must contain numbers, got ") +
            std::string(t.TypeName()));
      }
      scoring.allowed_tokens.push_back(static_cast<int32_t>(t.AsInt()));
    }
  } else if (const Json* allowed_words = item.Find("allowed"); allowed_words != nullptr &&
                                                               allowed_words->is_array()) {
    for (const Json& word : allowed_words->AsArray()) {
      if (!word.is_string()) {
        return Status::InvalidArgument(
            std::string("'allowed' must contain strings, got ") +
            std::string(word.TypeName()));
      }
      scoring.allowed_tokens.push_back(tokenizer_->TokenFor(word.AsString()));
    }
  } else {
    return Status::InvalidArgument(
        "provide 'allowed_tokens' (ids) or 'allowed' (words)");
  }
  return scoring;
}

Result<ScoringService::ParsedSubmission> ScoringService::ParseSubmission(
    const Json& body) const {
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  ParsedSubmission parsed;
  if (const Json* items = body.Find("items"); items != nullptr) {
    if (!items->is_array() || items->AsArray().empty()) {
      return Status::InvalidArgument("'items' must be a non-empty array");
    }
    if (body.Find("tokens") != nullptr || body.Find("text") != nullptr) {
      return Status::InvalidArgument(
          "provide either 'items' or a top-level single item, not both");
    }
    parsed.multi_item = true;
    for (const Json& item : items->AsArray()) {
      auto scoring = ParseItem(item);
      if (!scoring.ok()) {
        return Status::InvalidArgument(
            "items[" + std::to_string(parsed.items.size()) +
            "]: " + scoring.status().message());
      }
      parsed.items.push_back(scoring.take());
    }
  } else {
    auto scoring = ParseItem(body);
    if (!scoring.ok()) {
      return scoring.status();
    }
    parsed.items.push_back(scoring.take());
  }

  // Request-level options apply to every item of the submission.
  if (const Json* options = body.Find("options"); options != nullptr) {
    if (!options->is_object()) {
      return Status::InvalidArgument("'options' must be a JSON object");
    }
    if (const Json* priority = options->Find("priority"); priority != nullptr) {
      if (!IsIntegralInRange(*priority, -2147483648.0, 2147483647.0)) {
        return Status::InvalidArgument(
            "'options.priority' must be a 32-bit integer");
      }
      for (ScoringRequest& item : parsed.items) {
        item.priority = static_cast<int32_t>(priority->AsInt());
      }
    }
    if (const Json* deadline = options->Find("deadline_ms"); deadline != nullptr) {
      if (!IsIntegralInRange(*deadline, 0.0, kMaxDeadlineMs)) {
        return Status::InvalidArgument(
            "'options.deadline_ms' must be an integer in [0, 1e12]");
      }
      for (ScoringRequest& item : parsed.items) {
        item.deadline_ms = deadline->AsInt();
      }
    }
    if (const Json* request_id = options->Find("request_id"); request_id != nullptr) {
      if (!request_id->is_string() || request_id->AsString().empty() ||
          request_id->AsString().size() > 128) {
        return Status::InvalidArgument(
            "'options.request_id' must be a non-empty string of at most 128 "
            "characters");
      }
      // A '/' would make the id unreachable through /v1/requests/{id}; the
      // 'req-' prefix is reserved for server-generated ids so a client can
      // never collide with (or squat on) the generator's sequence.
      if (request_id->AsString().find('/') != std::string::npos) {
        return Status::InvalidArgument("'options.request_id' must not contain '/'");
      }
      if (request_id->AsString().rfind("req-", 0) == 0) {
        return Status::InvalidArgument(
            "'options.request_id' prefix 'req-' is reserved for "
            "server-generated ids");
      }
      parsed.request_id = request_id->AsString();
    }
  }
  return parsed;
}

HttpResponse ScoringService::HandleScore(const HttpRequest& request) {
  auto body = Json::Parse(request.body);
  if (!body.ok()) {
    return ApiErrorResponse(StatusCode::kInvalidArgument, body.status().message());
  }
  auto parsed = ParseSubmission(body.value());
  if (!parsed.ok()) {
    return ApiErrorResponse(parsed.status());
  }
  const bool multi_item = parsed.value().multi_item;

  // Blocking handoff: the whole submission is admitted atomically as one
  // co-batch group on ONE replica (multi-item bodies become deliberate
  // PrefillBatch candidates), then this connection thread waits on every
  // future, in item order — the set doesn't block, other connections'
  // requests run alongside under each replica's SRJF dispatcher.
  auto submitted = set_->SubmitGroup(std::move(parsed.value().items));
  if (!submitted.ok()) {
    return ApiErrorResponse(submitted.status());
  }
  std::vector<Result<ScoringResponse>> results;
  results.reserve(submitted.value().size());
  for (ReplicaSet::Submission& submission : submitted.value()) {
    results.push_back(submission.future.get());
  }

  if (!multi_item) {
    if (!results[0].ok()) {
      return ApiErrorResponse(results[0].status());
    }
    HttpResponse http;
    http.body = ScoringResponseJson(results[0].value()).Serialize();
    return http;
  }
  // Multi-item: per-item results in input order; item-level failures are
  // reported in place so one bad item doesn't mask its siblings' scores.
  Json::Array items;
  for (const auto& result : results) {
    items.push_back(ItemResultJson(result));
  }
  Json::Object out;
  out.emplace("n_items", Json(static_cast<int64_t>(results.size())));
  out.emplace("results", Json(std::move(items)));
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

HttpResponse ScoringService::HandleSubmitRequest(const HttpRequest& request) {
  auto body = Json::Parse(request.body);
  if (!body.ok()) {
    return ApiErrorResponse(StatusCode::kInvalidArgument, body.status().message());
  }
  auto parsed = ParseSubmission(body.value());
  if (!parsed.ok()) {
    return ApiErrorResponse(parsed.status());
  }
  std::string id = parsed.value().request_id;
  if (id.empty()) {
    id = "req-" + std::to_string(next_request_seq_.fetch_add(1));
  }
  const auto n_items = static_cast<int64_t>(parsed.value().items.size());
  // Captured before SubmitGroupAsync consumes the items: the priority
  // decides how long the finished result survives in the retention table.
  const int32_t priority = parsed.value().items.front().priority;

  // Claim the id BEFORE engine admission: a duplicate (e.g. an idempotent
  // client retry) costs a 409 and nothing else — no queue slot, no prefill.
  if (Status reserved = requests_->Reserve(id); !reserved.ok()) {
    return ApiErrorResponse(reserved);
  }
  auto submitted = set_->SubmitGroup(std::move(parsed.value().items));
  if (!submitted.ok()) {
    // Includes the pre-dispatch rejections: an already-expired deadline
    // maps to 504 here, before any queue slot or prefill was spent.
    requests_->Abandon(id);
    return ApiErrorResponse(submitted.status());
  }
  requests_->Commit(id, std::move(submitted.value()), priority);
  Json::Object out;
  out.emplace("id", Json(id));
  out.emplace("status", Json("queued"));
  out.emplace("n_items", Json(n_items));
  HttpResponse http;
  http.status = 202;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

namespace {

HttpResponse LifecycleResponse(const std::string& id,
                               const RequestTable::Snapshot& snapshot) {
  Json::Object out;
  out.emplace("id", Json(id));
  out.emplace("status", Json(std::string(RequestTable::StateName(snapshot.state))));
  const bool terminal = snapshot.state == RequestTable::State::kDone ||
                        snapshot.state == RequestTable::State::kFailed ||
                        snapshot.state == RequestTable::State::kCancelled;
  if (terminal) {
    Json::Array results;
    for (const auto& result : snapshot.results) {
      assert(result.has_value());
      results.push_back(ItemResultJson(*result));
    }
    out.emplace("results", Json(std::move(results)));
  }
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

}  // namespace

HttpResponse ScoringService::HandlePollRequest(const std::string& id) {
  auto snapshot = requests_->Poll(id);
  if (!snapshot.ok()) {
    return ApiErrorResponse(snapshot.status());
  }
  return LifecycleResponse(id, snapshot.value());
}

HttpResponse ScoringService::HandleCancelRequest(const std::string& id) {
  auto snapshot = requests_->Cancel(id);
  if (!snapshot.ok()) {
    return ApiErrorResponse(snapshot.status());
  }
  return LifecycleResponse(id, snapshot.value());
}

namespace {

// One replica's /v1/stats | /v1/replicas entry: router-side state and
// counters. The engine's own counters ride along under "engine" only in the
// stats payload (the admin list stays terse).
Json ReplicaSnapshotJson(const ReplicaSnapshot& replica) {
  Json::Object out;
  out.emplace("index", Json(static_cast<int64_t>(replica.index)));
  out.emplace("breaker", Json(std::string(BreakerStateName(replica.breaker))));
  out.emplace("admitting", Json(replica.admitting));
  out.emplace("draining", Json(replica.draining));
  out.emplace("drained", Json(replica.drained));
  out.emplace("outstanding", Json(replica.outstanding));
  switch (replica.engine_health) {
    case Engine::HealthStatus::kOk:
      out.emplace("engine_health", Json("ok"));
      break;
    case Engine::HealthStatus::kDegraded:
      out.emplace("engine_health", Json("degraded"));
      break;
    case Engine::HealthStatus::kOverloaded:
      out.emplace("engine_health", Json("overloaded"));
      break;
  }
  const ReplicaCounters& c = replica.counters;
  out.emplace("routed_affinity", Json(c.routed_affinity));
  out.emplace("routed_spill", Json(c.routed_spill));
  out.emplace("admit_failures", Json(c.admit_failures));
  out.emplace("breaker_trips", Json(c.breaker_trips));
  out.emplace("half_open_probes", Json(c.half_open_probes));
  out.emplace("failed_over_out", Json(c.failed_over_out));
  out.emplace("failed_over_in", Json(c.failed_over_in));
  // The per-replica engine counters that matter for balance checks; the
  // full aggregate lives at the payload's top level.
  out.emplace("submitted", Json(replica.engine.submitted));
  out.emplace("completed", Json(replica.engine.completed));
  out.emplace("failed", Json(replica.engine.failed));
  out.emplace("cancelled", Json(replica.engine.cancelled));
  out.emplace("shed", Json(replica.engine.shed));
  out.emplace("cache_hit_rate", Json(replica.engine.cache.HitRate()));
  return Json(std::move(out));
}

}  // namespace

HttpResponse ScoringService::HandleStats() const {
  const ClusterStats cluster_stats = set_->Stats();
  const EngineStats& stats = cluster_stats.totals;
  Json::Object out;
  out.emplace("submitted", Json(stats.submitted));
  out.emplace("completed", Json(stats.completed));
  out.emplace("failed", Json(stats.failed));
  // Request-lifecycle counters (ISSUE 5).
  out.emplace("cancelled", Json(stats.cancelled));
  out.emplace("cancelled_in_flight", Json(stats.cancelled_in_flight));
  out.emplace("deadline_expired", Json(stats.deadline_expired));
  // Robustness counters (ISSUE 6): mid-prefill aborts, degradation ladder
  // activity, and fault-injection visibility.
  out.emplace("deadline_expired_in_flight", Json(stats.deadline_expired_in_flight));
  out.emplace("abort_checks", Json(stats.abort_checks));
  out.emplace("alloc_retries", Json(stats.alloc_retries));
  out.emplace("alloc_retry_successes", Json(stats.alloc_retry_successes));
  out.emplace("shed", Json(stats.shed));
  out.emplace("watchdog_stalls", Json(stats.watchdog_stalls));
  out.emplace("faults_injected", Json(stats.faults_injected));
  // Batch occupancy (ISSUE 4): mean requests per dispatched prefill batch;
  // 1.0 = every request ran solo (max_batch_size == 1 or no co-batchable
  // queue depth).
  out.emplace("batches_dispatched", Json(stats.batches_dispatched));
  out.emplace("batched_requests", Json(stats.batched_requests));
  out.emplace("batch_occupancy",
              Json(stats.batches_dispatched > 0
                       ? static_cast<double>(stats.batched_requests) /
                             static_cast<double>(stats.batches_dispatched)
                       : 0.0));
  out.emplace("peak_batch_size", Json(stats.peak_batch_size));
  // Lane occupancy under length-aware packing (ISSUE 9): admitted miss
  // tokens per dispatched batch, plus candidates skipped because admitting
  // them would have exceeded the activation budget.
  out.emplace("batched_miss_tokens", Json(stats.batched_miss_tokens));
  out.emplace("packing_skips", Json(stats.packing_skips));
  out.emplace("miss_tokens_per_batch",
              Json(stats.batches_dispatched > 0
                       ? static_cast<double>(stats.batched_miss_tokens) /
                             static_cast<double>(stats.batches_dispatched)
                       : 0.0));
  // Two-tier prefix cache (ISSUE 7): token-accurate GPU-tier hit/miss plus
  // the offload tier's demote/reload/evict traffic.
  out.emplace("cache_hit_rate", Json(stats.cache.HitRate()));
  out.emplace("cache_lookups", Json(stats.cache.lookups));
  out.emplace("cache_hit_tokens", Json(stats.cache.hit_tokens));
  out.emplace("cache_lookup_tokens", Json(stats.cache.lookup_tokens));
  out.emplace("cache_insertions", Json(stats.cache.insertions));
  out.emplace("cache_evictions", Json(stats.cache.evictions));
  out.emplace("cache_failed_acquires", Json(stats.cache.failed_acquires));
  out.emplace("cache_bytes", Json(static_cast<int64_t>(stats.cache_bytes)));
  out.emplace("offload_bytes", Json(static_cast<int64_t>(stats.offload_bytes)));
  out.emplace("offload_hit_tokens", Json(stats.offload_hit_tokens));
  out.emplace("offload_demotions", Json(stats.offload_demotions));
  out.emplace("offload_promotions", Json(stats.offload_promotions));
  out.emplace("offload_evictions", Json(stats.offload_evictions));
  out.emplace("offload_read_hits", Json(stats.offload_read_hits));
  out.emplace("offload_read_misses", Json(stats.offload_read_misses));
  out.emplace("peak_activation_bytes",
              Json(static_cast<int64_t>(stats.peak_activation_bytes)));
  // Cluster routing layer (ISSUE 8): router counters plus the per-replica
  // breakdown behind the aggregated totals above.
  out.emplace("n_replicas", Json(static_cast<int64_t>(set_->n_replicas())));
  const ClusterCounters& cc = cluster_stats.cluster;
  Json::Object cluster;
  cluster.emplace("routed_affinity", Json(cc.routed_affinity));
  cluster.emplace("routed_spill", Json(cc.routed_spill));
  cluster.emplace("failovers", Json(cc.failovers));
  cluster.emplace("breaker_trips", Json(cc.breaker_trips));
  cluster.emplace("half_open_probes", Json(cc.half_open_probes));
  cluster.emplace("unavailable_rejections", Json(cc.unavailable_rejections));
  out.emplace("cluster", Json(std::move(cluster)));
  Json::Array replicas;
  for (const ReplicaSnapshot& replica : cluster_stats.replicas) {
    replicas.push_back(ReplicaSnapshotJson(replica));
  }
  out.emplace("replicas", Json(std::move(replicas)));
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

HttpResponse ScoringService::HandleHealth() const {
  const Engine::HealthStatus health = set_->Health();
  const std::vector<ReplicaSnapshot> replicas = set_->Replicas();
  int64_t admitting = 0;
  for (const ReplicaSnapshot& replica : replicas) {
    if (replica.admitting) {
      ++admitting;
    }
  }
  Json::Object out;
  HttpResponse http;
  switch (health) {
    case Engine::HealthStatus::kOk:
      out.emplace("status", Json("ok"));
      break;
    case Engine::HealthStatus::kDegraded:
      // Still serving (200) — but some replica is impaired (breaker open or
      // probing, draining, or an engine degraded/overloaded), so an operator
      // should look before trusting latency SLOs.
      out.emplace("status", Json("degraded"));
      break;
    case Engine::HealthStatus::kOverloaded:
      // NO replica admits work (every breaker open/probing, draining, or
      // engine shedding): new submissions are being rejected, so the health
      // probe itself answers 503 for LB draining.
      out.emplace("status", Json("overloaded"));
      http.status = 503;
      http.headers.emplace("Retry-After", "1");
      break;
  }
  out.emplace("admitting", Json(admitting));
  out.emplace("n_replicas", Json(static_cast<int64_t>(set_->n_replicas())));
  http.body = Json(std::move(out)).Serialize();
  return http;
}

HttpResponse ScoringService::HandleListReplicas() const {
  Json::Array replicas;
  for (const ReplicaSnapshot& replica : set_->Replicas()) {
    replicas.push_back(ReplicaSnapshotJson(replica));
  }
  Json::Object out;
  out.emplace("n_replicas", Json(static_cast<int64_t>(set_->n_replicas())));
  out.emplace("replicas", Json(std::move(replicas)));
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

HttpResponse ScoringService::HandleReplicaAdmin(const HttpRequest& request,
                                                const std::string& tail) {
  // tail is "{index}/drain" or "{index}/rejoin".
  const size_t slash = tail.find('/');
  const std::string index_text = tail.substr(0, slash);
  const std::string action =
      slash == std::string::npos ? "" : tail.substr(slash + 1);
  // The index must be a short run of digits — anything else (empty, signed,
  // non-numeric, absurdly long) is an unknown route, not a 500.
  if (index_text.empty() || index_text.size() > 6 ||
      index_text.find_first_not_of("0123456789") != std::string::npos ||
      (action != "drain" && action != "rejoin")) {
    return ApiErrorResponse(StatusCode::kNotFound,
                            "unknown route: /v1/replicas/" + tail);
  }
  if (request.method != "POST") {
    return MethodNotAllowed(request.method, request.path, "POST");
  }
  const int index = std::stoi(index_text);
  const Status status =
      action == "drain" ? set_->Drain(index) : set_->Rejoin(index);
  if (!status.ok()) {
    // Out-of-range index: kInvalidArgument -> 400.
    return ApiErrorResponse(status);
  }
  Json::Object out;
  out.emplace("index", Json(static_cast<int64_t>(index)));
  out.emplace("action", Json(action));
  // The post-action snapshot, so the operator sees the new state without a
  // second round trip.
  const std::vector<ReplicaSnapshot> replicas = set_->Replicas();
  if (index < static_cast<int>(replicas.size())) {
    out.emplace("replica", ReplicaSnapshotJson(replicas[static_cast<size_t>(index)]));
  }
  HttpResponse http;
  http.body = Json(std::move(out)).Serialize();
  return http;
}

}  // namespace prefillonly
