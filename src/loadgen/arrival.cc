#include "src/loadgen/arrival.h"

#include <algorithm>

#include "src/common/rng.h"

namespace prefillonly {

std::vector<double> MakeArrivalSchedule(size_t n, const ArrivalOptions& options) {
  const double qps = options.qps > 0.0 ? options.qps : 1.0;
  std::vector<double> schedule;
  schedule.reserve(n);
  if (options.kind == ArrivalKind::kFixedRate) {
    for (size_t i = 0; i < n; ++i) {
      schedule.push_back(static_cast<double>(i) / qps);
    }
    return schedule;
  }
  Rng rng(options.seed);
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    schedule.push_back(t);
    t += rng.NextExponential(qps);
  }
  return schedule;
}

std::vector<double> TraceSchedule(const Dataset& dataset, double target_qps) {
  std::vector<double> schedule;
  schedule.reserve(dataset.requests.size());
  for (const SimRequest& request : dataset.requests) {
    schedule.push_back(request.arrival_time);
  }
  std::sort(schedule.begin(), schedule.end());
  if (schedule.empty()) {
    return schedule;
  }
  const double t0 = schedule.front();
  for (double& t : schedule) {
    t -= t0;
  }
  const double span = schedule.back();
  if (target_qps > 0.0 && span > 0.0) {
    // n requests over `span` seconds arrive at n/span QPS; scale every
    // offset by the ratio that makes the aggregate rate target_qps.
    const double actual_qps = static_cast<double>(schedule.size()) / span;
    const double scale = actual_qps / target_qps;
    for (double& t : schedule) {
      t *= scale;
    }
  }
  return schedule;
}

}  // namespace prefillonly
