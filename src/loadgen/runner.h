// Open-loop load runner and QPS-sweep driver (ISSUE 10).
//
// RunLoad() fires one workload through one LoadTarget on one precomputed
// arrival schedule and measures it the open-loop way:
//
//   * A pool of workers pulls request indices from a shared counter and
//     sleeps until each request's SCHEDULED send time. Latency is measured
//     from the scheduled time, not the actual send — if every worker is
//     stuck waiting on a saturated server, the requests piling up behind
//     them get charged that delay (coordinated-omission-free, wrk2-style).
//     The worker-pool size bounds in-flight requests, not the offered rate.
//   * Requests scheduled inside the warmup window execute normally but are
//     excluded from the histogram and rate accounting, so cold caches and
//     first-touch page faults don't pollute the tail.
//   * Every dispatched request must come back with a terminal result, and
//     the engine-side stats delta must balance (submitted == sum of
//     terminal buckets) — the runner carries both checks in its report and
//     the po_loadgen gate fails the run otherwise.
//
// RunSweep() repeats RunLoad() across a rate grid and reduces the points to
// the SLO-attainment curve: the highest offered rate whose measured p99 is
// within the target (the paper's "max QPS sustaining p99 <= D ms" framing,
// Fig. 6/7 turned into a pass/fail capacity number).
#ifndef SRC_LOADGEN_RUNNER_H_
#define SRC_LOADGEN_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/loadgen/arrival.h"
#include "src/loadgen/histogram.h"
#include "src/loadgen/target.h"
#include "src/server/json.h"

namespace prefillonly {

// One request of the workload under test (tokens + originating user for
// affinity routing); `allowed` and per-request options are shared run-wide.
struct LoadItem {
  std::vector<int32_t> tokens;
  int64_t user_id = 0;
};

struct RunOptions {
  // Requests scheduled before this offset are excluded from measurement.
  // Capped at half the schedule span so a short schedule still measures.
  double warmup_s = 0.0;
  // Worker threads = max in-flight requests (the open-loop schedule still
  // sets the offered rate).
  int concurrency = 8;
  int histogram_bits = 6;
  std::vector<int32_t> allowed;  // shared allowed-token list
  int32_t priority = 0;
  int64_t deadline_ms = -1;
};

struct RunReport {
  double offered_qps = 0.0;   // from the schedule's measured-window span
  double achieved_qps = 0.0;  // terminal results / measured span
  double goodput_qps = 0.0;   // successful results / measured span
  int64_t dispatched = 0;     // total requests sent (warmup included)
  int64_t measured = 0;       // results in the measured window
  int64_t ok = 0;             // successful, measured window
  int64_t errors = 0;         // failed, measured window
  int64_t shed = 0;           // subset of errors with code resource_exhausted
  // dispatched - (terminal results over the whole run); the zero-lost gate.
  int64_t lost = 0;
  double error_rate = 0.0;    // errors / measured
  LatencyHistogram latency{6};  // measured window only
  double first_error_at_s = -1.0;  // -1 = no errors
  std::string first_error;    // code: message of the first failure
  // Engine-side counter snapshots bracketing the run.
  ClientStats stats_before;
  ClientStats stats_after;

  // Engine-side balance: delta submitted == delta of the six terminal
  // buckets (completed/failed/cancelled/cancelled_in_flight/
  // deadline_expired/deadline_expired_in_flight).
  bool BalanceOk() const;
};

RunReport RunLoad(LoadTarget& target, const std::vector<LoadItem>& items,
                  const std::vector<double>& schedule, const RunOptions& options);

struct SweepOptions {
  std::vector<double> rates;  // offered QPS per point
  ArrivalKind arrival = ArrivalKind::kPoisson;
  uint64_t seed = 1;
  double slo_p99_ms = 0.0;  // <= 0: no SLO reduction
  RunOptions run;
};

struct RatePoint {
  double rate = 0.0;
  RunReport report;
};

struct SweepReport {
  std::string workload;
  std::string target;
  int n_replicas = 1;
  double slo_p99_ms = 0.0;
  std::vector<RatePoint> points;
  // Highest offered rate with p99 within the SLO, zero lost requests, and a
  // balanced ledger; 0 when no point qualifies (or no SLO was set).
  double max_qps_slo = 0.0;

  // Zero lost requests and a balanced engine ledger at EVERY rate — the
  // po_loadgen acceptance gate.
  bool GatePassed() const;
  Json ToJson() const;
};

SweepReport RunSweep(LoadTarget& target, const std::string& workload,
                     const std::vector<LoadItem>& items,
                     const SweepOptions& options);

}  // namespace prefillonly

#endif  // SRC_LOADGEN_RUNNER_H_
