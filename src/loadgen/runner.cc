#include "src/loadgen/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace prefillonly {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Per-worker measurement shard: merged under a lock only at the end, so the
// hot path touches nothing shared but the dispatch counter.
struct WorkerShard {
  explicit WorkerShard(int histogram_bits) : latency(histogram_bits) {}
  LatencyHistogram latency;
  int64_t dispatched = 0;
  int64_t measured = 0;
  int64_t ok = 0;
  int64_t errors = 0;
  int64_t shed = 0;
  int64_t terminal = 0;  // all results observed, warmup included
  double first_error_at_s = -1.0;
  std::string first_error;
};

int64_t TerminalDelta(const ClientStats& before, const ClientStats& after) {
  return (after.completed - before.completed) + (after.failed - before.failed) +
         (after.cancelled - before.cancelled) +
         (after.cancelled_in_flight - before.cancelled_in_flight) +
         (after.deadline_expired - before.deadline_expired) +
         (after.deadline_expired_in_flight - before.deadline_expired_in_flight);
}

}  // namespace

bool RunReport::BalanceOk() const {
  return stats_after.submitted - stats_before.submitted ==
         TerminalDelta(stats_before, stats_after);
}

RunReport RunLoad(LoadTarget& target, const std::vector<LoadItem>& items,
                  const std::vector<double>& schedule, const RunOptions& options) {
  RunReport report;
  report.latency = LatencyHistogram(options.histogram_bits);
  report.stats_before = target.Stats();
  const size_t n = std::min(items.size(), schedule.size());
  if (n == 0) {
    report.stats_after = report.stats_before;
    return report;
  }

  const int concurrency =
      std::max(1, std::min<int>(options.concurrency, static_cast<int>(n)));
  std::atomic<size_t> next{0};
  std::vector<WorkerShard> shards;
  shards.reserve(static_cast<size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) {
    shards.emplace_back(options.histogram_bits);
  }

  // Cap the warmup window at half the schedule span: with a short schedule
  // (few items at a high rate) a fixed wall-clock warmup would otherwise
  // swallow every request and leave nothing measured.
  const double warmup_s = std::min(options.warmup_s, 0.5 * schedule.back());

  const Clock::time_point t0 = Clock::now();
  auto worker = [&](WorkerShard& shard) {
    ScoreOptions score_options;
    score_options.priority = options.priority;
    score_options.deadline_ms = options.deadline_ms;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      const double scheduled = schedule[i];
      const auto send_at = t0 + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(scheduled));
      std::this_thread::sleep_until(send_at);
      const LoadItem& item = items[i];
      score_options.user_id = item.user_id;
      ++shard.dispatched;
      ScoreResult result = target.Score(item.tokens, options.allowed, score_options);
      // Open-loop latency: completion minus SCHEDULED send. If this worker
      // was late to fire (all workers busy), that lateness is server-induced
      // queueing and belongs in the number.
      const double latency_s = SecondsSince(t0) - scheduled;
      ++shard.terminal;
      if (scheduled >= warmup_s) {
        ++shard.measured;
        shard.latency.Record(latency_s);
        if (result.ok) {
          ++shard.ok;
        } else {
          ++shard.errors;
          if (result.error_code == "resource_exhausted") {
            ++shard.shed;
          }
          if (shard.first_error_at_s < 0.0) {
            shard.first_error_at_s = scheduled;
            shard.first_error = result.error_code + ": " + result.error_message;
          }
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(concurrency));
  for (int i = 0; i < concurrency; ++i) {
    threads.emplace_back(worker, std::ref(shards[static_cast<size_t>(i)]));
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  report.stats_after = target.Stats();

  int64_t terminal = 0;
  for (WorkerShard& shard : shards) {
    report.dispatched += shard.dispatched;
    report.measured += shard.measured;
    report.ok += shard.ok;
    report.errors += shard.errors;
    report.shed += shard.shed;
    terminal += shard.terminal;
    (void)report.latency.Merge(shard.latency);
    if (shard.first_error_at_s >= 0.0 &&
        (report.first_error_at_s < 0.0 ||
         shard.first_error_at_s < report.first_error_at_s)) {
      report.first_error_at_s = shard.first_error_at_s;
      report.first_error = shard.first_error;
    }
  }
  // Every dispatched request must have produced a terminal result on the
  // calling side; a nonzero difference means a request vanished.
  report.lost = report.dispatched - terminal;

  // Rates over the measured schedule window (scheduled span, so the offered
  // rate reflects the arrival process, not server-side stretching).
  const double window_start = std::max(warmup_s, schedule.front());
  const double window = std::max(schedule.back() - window_start, 1e-9);
  report.offered_qps = static_cast<double>(report.measured) / window;
  report.achieved_qps = report.offered_qps;  // open loop: all requests return
  report.goodput_qps = static_cast<double>(report.ok) / window;
  report.error_rate =
      report.measured > 0
          ? static_cast<double>(report.errors) / static_cast<double>(report.measured)
          : 0.0;
  return report;
}

bool SweepReport::GatePassed() const {
  for (const RatePoint& point : points) {
    if (point.report.lost != 0 || !point.report.BalanceOk()) {
      return false;
    }
  }
  return !points.empty();
}

Json SweepReport::ToJson() const {
  Json::Object out;
  out.emplace("workload", workload);
  out.emplace("target", target);
  out.emplace("n_replicas", static_cast<int64_t>(n_replicas));
  out.emplace("slo_p99_ms", slo_p99_ms);
  Json::Array rows;
  rows.reserve(points.size());
  for (const RatePoint& point : points) {
    const RunReport& r = point.report;
    Json::Object row;
    row.emplace("rate_qps", point.rate);
    row.emplace("offered_qps", r.offered_qps);
    row.emplace("goodput_qps", r.goodput_qps);
    row.emplace("dispatched", r.dispatched);
    row.emplace("measured", r.measured);
    row.emplace("ok", r.ok);
    row.emplace("errors", r.errors);
    row.emplace("shed", r.shed);
    row.emplace("lost", r.lost);
    row.emplace("error_rate", r.error_rate);
    row.emplace("mean_ms", r.latency.Mean() * 1e3);
    row.emplace("p50_ms", r.latency.Percentile(0.50) * 1e3);
    row.emplace("p90_ms", r.latency.Percentile(0.90) * 1e3);
    row.emplace("p99_ms", r.latency.Percentile(0.99) * 1e3);
    row.emplace("p999_ms", r.latency.Percentile(0.999) * 1e3);
    row.emplace("max_ms", r.latency.Max() * 1e3);
    row.emplace("balance_ok", r.BalanceOk());
    rows.push_back(Json(std::move(row)));
  }
  out.emplace("points", Json(std::move(rows)));
  out.emplace("max_qps_slo", max_qps_slo);
  out.emplace("gate_passed", GatePassed());
  return Json(std::move(out));
}

SweepReport RunSweep(LoadTarget& target, const std::string& workload,
                     const std::vector<LoadItem>& items,
                     const SweepOptions& options) {
  SweepReport sweep;
  sweep.workload = workload;
  sweep.target = target.name();
  sweep.slo_p99_ms = options.slo_p99_ms;
  for (size_t rate_index = 0; rate_index < options.rates.size(); ++rate_index) {
    const double rate = options.rates[rate_index];
    ArrivalOptions arrival;
    arrival.kind = options.arrival;
    arrival.qps = rate;
    // Distinct deterministic stream per point: the same sweep always replays
    // the same schedules, but points don't share one arrival pattern.
    arrival.seed = options.seed + rate_index;
    const std::vector<double> schedule = MakeArrivalSchedule(items.size(), arrival);
    RatePoint point;
    point.rate = rate;
    point.report = RunLoad(target, items, schedule, options.run);
    sweep.points.push_back(std::move(point));
  }
  if (options.slo_p99_ms > 0.0) {
    for (const RatePoint& point : sweep.points) {
      const double p99_ms = point.report.latency.Percentile(0.99) * 1e3;
      if (point.report.measured > 0 && p99_ms <= options.slo_p99_ms &&
          point.report.lost == 0 && point.report.BalanceOk()) {
        sweep.max_qps_slo = std::max(sweep.max_qps_slo, point.rate);
      }
    }
  }
  return sweep;
}

}  // namespace prefillonly
