#include "src/loadgen/target.h"

#include <utility>

namespace prefillonly {

namespace {

// Both targets are the facade under a different configuration; the
// subclass only contributes its display name.
class ClientTarget : public LoadTarget {
 public:
  ClientTarget(std::string name, const ClientOptions& options)
      : name_(std::move(name)), client_(options) {}

  const std::string& name() const override { return name_; }

  ScoreResult Score(const std::vector<int32_t>& tokens,
                    const std::vector<int32_t>& allowed,
                    const ScoreOptions& options) override {
    return client_.Score(tokens, allowed, options);
  }

  ClientStats Stats() override { return client_.Stats(); }

 private:
  std::string name_;
  Client client_;
};

}  // namespace

std::unique_ptr<LoadTarget> MakeInProcessTarget(const ClientOptions& options) {
  ClientOptions local = options;
  local.endpoint.clear();
  return std::make_unique<ClientTarget>("inprocess", local);
}

std::unique_ptr<LoadTarget> MakeRemoteTarget(const std::string& endpoint,
                                             ClientOptions options) {
  options.endpoint = endpoint;
  return std::make_unique<ClientTarget>("remote", options);
}

}  // namespace prefillonly
