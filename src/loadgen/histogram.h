// HDR-style log-bucketed latency histogram (ISSUE 10).
//
// The loadgen's latency recorder: fixed memory, O(1) record, mergeable
// across worker threads, and percentiles with a BOUNDED RELATIVE error —
// the property a sorted-vector reservoir cannot give without unbounded
// memory. The layout is the classic HdrHistogram bucketing, restated:
//
//   * Values are recorded as non-negative integer microseconds.
//   * Values below 2^b (b = sub_bucket_bits, default 6) are EXACT: one
//     bucket per value.
//   * Every further power-of-two range [2^k, 2^(k+1)) is split into
//     2^(b-1) equal sub-buckets — so a bucket spanning [v, v + 2^e) always
//     has width 2^e <= v / 2^(b-1), and reporting the bucket MIDPOINT makes
//     the worst-case relative error
//
//         |reported - true| / true  <=  2^-b       (1.5625% at b = 6)
//
//     which is the bound the unit test checks against an exact
//     sorted-vector reference (tests/loadgen_test.cc).
//
// Mean/min/max are tracked exactly on the side (the sum is exact integer
// micros), so only the percentile read-out pays the bucketing error.
//
// Thread model: Record() is NOT thread-safe; each loadgen worker owns a
// private histogram and the runner Merge()s them after the run — the
// standard sharded-counter pattern, zero contention on the hot path.
#ifndef SRC_LOADGEN_HISTOGRAM_H_
#define SRC_LOADGEN_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace prefillonly {

class LatencyHistogram {
 public:
  // `sub_bucket_bits` in [1, 20]: relative error bound is 2^-bits.
  explicit LatencyHistogram(int sub_bucket_bits = 6);

  void Record(double seconds) { RecordMicros(ToMicros(seconds)); }
  void RecordMicros(int64_t micros);

  // Element-wise sum; `other` must use the same sub_bucket_bits.
  Status Merge(const LatencyHistogram& other);

  // Quantile in [0, 1] -> representative latency in SECONDS (bucket
  // midpoint; exact below 2^bits micros). 0 when empty.
  double Percentile(double q) const;
  double Mean() const;  // exact (from the integer sum), in seconds
  double Min() const;   // exact, in seconds; 0 when empty
  double Max() const;   // exact, in seconds; 0 when empty

  int64_t count() const { return count_; }
  int sub_bucket_bits() const { return bits_; }
  // The documented worst-case relative error of Percentile(): 2^-bits.
  double MaxRelativeError() const;

 private:
  static int64_t ToMicros(double seconds);
  size_t BucketIndex(int64_t micros) const;
  int64_t BucketMidpointMicros(size_t index) const;

  int bits_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t sum_micros_ = 0;
  int64_t min_micros_ = 0;
  int64_t max_micros_ = 0;
};

}  // namespace prefillonly

#endif  // SRC_LOADGEN_HISTOGRAM_H_
