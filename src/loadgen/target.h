// Pluggable load-test targets (ISSUE 10).
//
// A LoadTarget is where the generator's requests land: the same workload,
// schedule, and measurement code drives either the engine linked into this
// process or a live server across the network, so a remote-vs-in-process
// run differs ONLY in transport — which is exactly what makes the parity
// test meaningful (same workload + seed => bitwise identical scores) and
// the latency delta attributable to the HTTP hop.
//
// Both concrete targets wrap prefillonly::Client — the in-process one with
// a local engine behind the facade, the remote one with
// ClientOptions::endpoint set — so error codes, retry behavior, and the
// stats surface are identical by construction.
//
// Targets are thread-compatible: Score() may be called from many loadgen
// workers at once (the facade is internally synchronized in both modes).
#ifndef SRC_LOADGEN_TARGET_H_
#define SRC_LOADGEN_TARGET_H_

#include <memory>
#include <string>
#include <vector>

#include "prefillonly/client.h"

namespace prefillonly {

class LoadTarget {
 public:
  virtual ~LoadTarget() = default;

  // "inprocess" or "remote" — used in reports and JSON output.
  virtual const std::string& name() const = 0;

  // Blocking score of one request; safe to call concurrently.
  virtual ScoreResult Score(const std::vector<int32_t>& tokens,
                            const std::vector<int32_t>& allowed,
                            const ScoreOptions& options) = 0;

  // Engine-side counters (local stats, or GET /v1/stats for remote). The
  // runner diffs snapshots taken before/after a run to check the balance
  // invariant per rate point.
  virtual ClientStats Stats() = 0;
};

// Engine in this process, configured by `options` (options.endpoint must be
// empty).
std::unique_ptr<LoadTarget> MakeInProcessTarget(const ClientOptions& options);

// Live server at "host:port", driven through keep-alive HTTP/1.1
// connections. `options.endpoint` is overwritten with `endpoint`; the other
// fields keep their usual remote-mode meaning (model selects the tokenizer,
// retry applies to transient failures).
std::unique_ptr<LoadTarget> MakeRemoteTarget(const std::string& endpoint,
                                             ClientOptions options = {});

}  // namespace prefillonly

#endif  // SRC_LOADGEN_TARGET_H_
