#include "src/loadgen/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace prefillonly {

namespace {

// Values are capped at 2^kMaxValueBits - 1 micros (~36 years): keeps the
// bucket array finite without ever clamping a latency a load test could
// plausibly observe.
constexpr int kMaxValueBits = 50;

}  // namespace

LatencyHistogram::LatencyHistogram(int sub_bucket_bits)
    : bits_(std::clamp(sub_bucket_bits, 1, 20)) {
  // One exact bucket per value below 2^b, then 2^(b-1) sub-buckets per
  // additional power-of-two range up to 2^kMaxValueBits.
  const size_t exact = size_t{1} << bits_;
  const size_t per_range = size_t{1} << (bits_ - 1);
  counts_.assign(exact + per_range * static_cast<size_t>(kMaxValueBits - bits_), 0);
}

int64_t LatencyHistogram::ToMicros(double seconds) {
  if (!(seconds > 0.0)) {  // negative, zero, or NaN
    return 0;
  }
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

size_t LatencyHistogram::BucketIndex(int64_t micros) const {
  uint64_t v = static_cast<uint64_t>(std::max<int64_t>(micros, 0));
  v = std::min(v, (uint64_t{1} << kMaxValueBits) - 1);
  if (v < (uint64_t{1} << bits_)) {
    return static_cast<size_t>(v);  // exact region
  }
  // v has bit_width(v) significant bits; keep the top `bits_` of them. The
  // shift e >= 1 is the log2 of the bucket width, and the kept prefix
  // (v >> e) lies in [2^(b-1), 2^b) — 2^(b-1) sub-buckets per range.
  const int e = std::bit_width(v) - bits_;
  const uint64_t sub = v >> e;
  const size_t per_range = size_t{1} << (bits_ - 1);
  return (size_t{1} << bits_) + static_cast<size_t>(e - 1) * per_range +
         static_cast<size_t>(sub - per_range);
}

int64_t LatencyHistogram::BucketMidpointMicros(size_t index) const {
  const size_t exact = size_t{1} << bits_;
  if (index < exact) {
    return static_cast<int64_t>(index);
  }
  const size_t per_range = size_t{1} << (bits_ - 1);
  const int e = static_cast<int>((index - exact) / per_range) + 1;
  const uint64_t sub = per_range + (index - exact) % per_range;
  // Bucket covers [sub << e, (sub + 1) << e); report its midpoint.
  return static_cast<int64_t>((sub << e) + (uint64_t{1} << (e - 1)));
}

void LatencyHistogram::RecordMicros(int64_t micros) {
  micros = std::max<int64_t>(micros, 0);
  ++counts_[BucketIndex(micros)];
  sum_micros_ += micros;
  if (count_ == 0 || micros < min_micros_) {
    min_micros_ = micros;
  }
  max_micros_ = std::max(max_micros_, micros);
  ++count_;
}

Status LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.bits_ != bits_) {
    return Status::InvalidArgument(
        "histogram merge requires matching sub_bucket_bits (" +
        std::to_string(bits_) + " vs " + std::to_string(other.bits_) + ")");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_micros_ < min_micros_) {
      min_micros_ = other.min_micros_;
    }
    max_micros_ = std::max(max_micros_, other.max_micros_);
  }
  sum_micros_ += other.sum_micros_;
  count_ += other.count_;
  return Status::Ok();
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank convention (SampleSet interpolates between ranks instead;
  // the unit test therefore checks against its own nearest-rank reference).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return static_cast<double>(BucketMidpointMicros(i)) * 1e-6;
    }
  }
  return static_cast<double>(max_micros_) * 1e-6;  // unreachable
}

double LatencyHistogram::Mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_micros_) / static_cast<double>(count_) * 1e-6;
}

double LatencyHistogram::Min() const {
  return static_cast<double>(min_micros_) * 1e-6;
}

double LatencyHistogram::Max() const {
  return static_cast<double>(max_micros_) * 1e-6;
}

double LatencyHistogram::MaxRelativeError() const {
  return std::ldexp(1.0, -bits_);
}

}  // namespace prefillonly
