// Open-loop arrival processes for the load generator (ISSUE 10).
//
// An OPEN-LOOP generator decides every request's send time BEFORE the run
// from an arrival process, then fires on that schedule no matter how the
// target is coping — unlike a closed loop (fixed worker count, next request
// when the previous answers), which silently backs off exactly when the
// server struggles and so hides the queueing the test exists to measure
// (the coordinated-omission problem; cf. wrk2). The runner charges each
// request's latency from its SCHEDULED time, so dispatch delay shows up in
// the histogram instead of disappearing.
//
// Three processes, all deterministic from a seed (same seed => the same
// schedule, bit for bit — the replay property the determinism test pins):
//
//   * kFixedRate — request i at i/qps seconds: the metronome.
//   * kPoisson   — exponential inter-arrival gaps with mean 1/qps: the
//     memoryless process real independent traffic approximates, and the
//     arrival model of the paper's QPS sweeps.
//   * trace      — replay a Dataset's assigned arrival times (e.g. the
//     user-burst process of Fig. 9), shifted to start at zero and
//     optionally rescaled to hit a target aggregate rate, preserving the
//     burst structure that synthetic processes lack.
#ifndef SRC_LOADGEN_ARRIVAL_H_
#define SRC_LOADGEN_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/workload/dataset.h"

namespace prefillonly {

enum class ArrivalKind {
  kFixedRate,
  kPoisson,
};

struct ArrivalOptions {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double qps = 1.0;  // > 0
  uint64_t seed = 1;  // drives kPoisson; kFixedRate ignores it
};

// Send offsets (seconds from run start) for `n` requests, nondecreasing,
// starting at 0.
std::vector<double> MakeArrivalSchedule(size_t n, const ArrivalOptions& options);

// Replay schedule from a dataset whose requests carry assigned arrival
// times (AssignPoissonArrivals / AssignUserBurstArrivals): shifted so the
// first request sends at 0. `target_qps` > 0 rescales all gaps uniformly so
// the aggregate rate becomes target_qps — time-warping the trace while
// preserving its relative burst structure; <= 0 replays verbatim.
std::vector<double> TraceSchedule(const Dataset& dataset, double target_qps = 0.0);

}  // namespace prefillonly

#endif  // SRC_LOADGEN_ARRIVAL_H_
