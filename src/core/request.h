// Public request/response types of the real PrefillOnly engine.
//
// A scoring request is the paper's §2.3 pattern: a long prompt (user
// profile + candidate item, or a credit history) plus a list of acceptable
// output tokens. The engine prefills the prompt and returns the constrained
// probability distribution over the allowed tokens — e.g. P(Yes) as a
// recommendation score. No decoding loop ever runs.
#ifndef SRC_CORE_REQUEST_H_
#define SRC_CORE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "src/model/sampler.h"

namespace prefillonly {

struct ScoringRequest {
  // Sentinel for deadline_ms: the request never expires.
  static constexpr int64_t kNoDeadline = -1;

  int64_t user_id = 0;
  std::vector<int32_t> tokens;
  // Output restricted to these token ids; probabilities[i] corresponds to
  // allowed_tokens[i].
  std::vector<int32_t> allowed_tokens;

  // --- Request-lifecycle options (ISSUE 5) ----------------------------
  // Strict scheduling class: among waiting requests the scheduler always
  // prefers the highest priority, and applies its policy (SRJF score,
  // starvation aging) only WITHIN a class. Default 0; negative values
  // deprioritize.
  int32_t priority = 0;
  // Time budget in milliseconds, counted from submission, covering queueing
  // AND execution start. kNoDeadline (< 0) = none. 0 = already expired: the
  // engine rejects it at submission with kDeadlineExceeded. A positive
  // deadline that lapses while the request waits fails it with
  // kDeadlineExceeded at the next scheduling decision, before any prefill
  // work is spent on it.
  int64_t deadline_ms = kNoDeadline;
};

struct ScoringResponse {
  int64_t request_id = 0;
  int64_t user_id = 0;
  std::vector<TokenProbability> probabilities;
  // Convenience: probability of allowed_tokens[0] (e.g. P(Yes)).
  double score = 0.0;

  int64_t n_input = 0;
  int64_t n_cached = 0;          // prefix tokens served from any cache tier
  int64_t n_cached_offload = 0;  // subset reloaded from the CPU offload tier
  // Requests co-executed in the same stacked prefill batch (ISSUE 4),
  // including this one; 1 = solo execution. Logits never depend on it.
  int64_t batch_size = 1;
  double queue_time_s = 0.0;     // arrival -> execution start
  double execute_time_s = 0.0;   // wall time of the prefill pass (for a
                                 // batched request: of the whole batch)
};

}  // namespace prefillonly

#endif  // SRC_CORE_REQUEST_H_
