#include "src/core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/fault.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/sched/batch_cost.h"

namespace prefillonly {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      profile_activations_(options_.activation_budget_bytes),
      epoch_(std::chrono::steady_clock::now()) {
  assert(options_.model.Valid());
  options_.max_concurrent_requests = std::max(options_.max_concurrent_requests, 1);
  options_.max_batch_size = std::max(options_.max_batch_size, 1);
  options_.alloc_retry_max = std::max(options_.alloc_retry_max, 0);
  options_.alloc_retry_backoff_ms = std::max<int64_t>(options_.alloc_retry_backoff_ms, 1);
  if (options_.shed_high_watermark > 0 && options_.shed_low_watermark <= 0) {
    options_.shed_low_watermark = options_.shed_high_watermark / 2;
  }
  options_.shed_low_watermark =
      std::min(options_.shed_low_watermark, options_.shed_high_watermark);
  if (!options_.fault_schedule.empty()) {
    // Process-global by design: a fault schedule models the process's
    // environment (a failing disk, a flaky NIC), not one engine instance.
    if (Status s = FaultInjector::Global().LoadSchedule(options_.fault_schedule);
        !s.ok()) {
      PO_LOG_WARNING << "fault_schedule ignored: " << s.message();
    }
  }
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  model_ = std::make_unique<LlamaModel>(options_.model, options_.weight_seed,
                                        options_.kernel_backend);
  model_->SetThreadPool(pool_.get());
  const int64_t pool_blocks =
      options_.cache_budget_tokens / std::max(options_.block_size, 1);
  cache_ = std::make_unique<PrefixCache>(options_.block_size, pool_blocks);
  store_ = std::make_unique<KvBlockStore>(options_.model, options_.block_size,
                                          cache_memory_);
  offload_dir_ = std::make_unique<OffloadDirectory>(
      options_.cpu_offload_budget_tokens / std::max(options_.block_size, 1));
  // The listener fires from cache_ operations, which the engine only invokes
  // with cache_mu_ held — it may touch every cache-tier member.
  cache_->SetEvictionListener([this](uint64_t hash, BlockId block, int64_t depth) {
    if (offload_dir_->capacity_blocks() <= 0) {
      store_->Drop(block);
      return;
    }
    // Demote instead of discard (§9): copy the payload to the CPU tier. An
    // injected write error loses the demotion — the block degrades to a
    // plain discard and a later request recomputes it.
    KvBlock payload = store_->Take(block);
    if (payload.empty()) {
      return;
    }
    if (FaultInjector::Global().Fire(fault::kOffloadWrite)) {
      return;
    }
    offload_payloads_[hash] = CloneBlock(payload, offload_memory_);
    ++offload_demotions_;
    // Insert reports the displaced hash as an optional: 0 is a valid chain
    // hash, so "nothing evicted" must not be encoded in-band.
    if (const auto displaced = offload_dir_->Insert(hash, depth)) {
      offload_payloads_.erase(*displaced);
    }
  });
  estimator_ = std::make_unique<CacheMissProxyEstimator>();
  scheduler_ = std::make_unique<Scheduler>(options_.policy, options_.lambda,
                                           estimator_.get(), options_.batch_packing);
  batch_budget_ = MakeBatchBudget(options_.model, options_.mode,
                                  options_.activation_budget_bytes,
                                  options_.block_size);
}

Engine::~Engine() { StopWorker(); }

double Engine::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Status Engine::Validate(const ScoringRequest& request) const {
  if (request.tokens.empty()) {
    return Status::InvalidArgument("request has no tokens");
  }
  if (static_cast<int64_t>(request.tokens.size()) > options_.max_input_length) {
    return Status::OutOfRange("request exceeds the maximum input length");
  }
  if (request.allowed_tokens.empty()) {
    return Status::InvalidArgument("allowed token list is empty");
  }
  for (int32_t t : request.tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary range");
    }
  }
  for (int32_t t : request.allowed_tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("allowed token out of vocabulary range");
    }
  }
  return Status::Ok();
}

Result<Engine::Pending> Engine::MakePending(
    ScoringRequest request,
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise) const {
  if (Status s = Validate(request); !s.ok()) {
    return s;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.arrival_s = NowSeconds();
  if (pending.request.deadline_ms == 0) {
    // Reject at the door: a request whose budget is already spent must not
    // cost a queue slot, let alone a prefill (ISSUE 5).
    return Status::DeadlineExceeded("deadline expired before submission");
  }
  if (pending.request.deadline_ms > 0) {
    pending.deadline_s =
        pending.arrival_s + static_cast<double>(pending.request.deadline_ms) / 1e3;
  }
  pending.chain = std::make_shared<const std::vector<uint64_t>>(
      BlockHashChain(pending.request.tokens, options_.block_size));
  pending.promise = std::move(promise);
  if (pending.promise != nullptr) {
    pending.fulfilled = std::make_shared<std::atomic<bool>>(false);
  }
  return pending;
}

void Engine::Fulfill(
    const std::shared_ptr<std::promise<Result<ScoringResponse>>>& promise,
    const std::shared_ptr<std::atomic<bool>>& fulfilled,
    const std::shared_ptr<const GroupCallback>& on_done, size_t on_done_index,
    Result<ScoringResponse> result) {
  const bool has_hook = on_done != nullptr && *on_done != nullptr;
  if (promise == nullptr && !has_hook) {
    return;
  }
  if (fulfilled != nullptr && fulfilled->exchange(true)) {
    return;  // the watchdog (or the finalizer) already delivered
  }
  // Hook before promise: a waiter woken by the future must observe whatever
  // bookkeeping the hook's owner (e.g. a ReplicaSet) did for this item.
  if (has_hook) {
    (*on_done)(on_done_index, result);
  }
  if (promise != nullptr) {
    promise->set_value(std::move(result));
  }
}

Status Engine::AbortStatus(const Pending& pending) {
  if (pending.deadline_s >= 0.0 && NowSeconds() >= pending.deadline_s) {
    return Status::DeadlineExceeded(
        "deadline expired mid-prefill; remaining chunks skipped");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_in_flight_.count(pending.id) > 0) {
    return Status::Cancelled("request cancelled mid-prefill; remaining chunks skipped");
  }
  ++stats_.abort_checks;
  return Status::Ok();
}

void Engine::MarkRunningLocked(const Pending& pending) {
  auto [it, inserted] = running_.try_emplace(pending.id);
  if (inserted) {
    it->second.started_s = NowSeconds();
    it->second.promise = pending.promise;
    it->second.fulfilled = pending.fulfilled;
    it->second.on_done = pending.on_done;
    it->second.on_done_index = pending.on_done_index;
  }
}

void Engine::UpdateShedLocked() {
  if (options_.shed_high_watermark <= 0) {
    return;
  }
  const auto depth = static_cast<int64_t>(waiting_.size());
  if (!shedding_ && depth >= options_.shed_high_watermark) {
    shedding_ = true;
  } else if (shedding_ && depth <= options_.shed_low_watermark) {
    shedding_ = false;
  }
}

Result<std::vector<int64_t>> Engine::AdmitPendings(std::vector<Pending> pendings) {
  std::vector<int64_t> ids;
  ids.reserve(pendings.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return Status::FailedPrecondition("engine is stopping; request rejected");
    }
    // Overload shedding (ISSUE 6): while above the high watermark, reject
    // instead of admitting — the 429 + Retry-After path. All-or-nothing for
    // groups, like every other admission failure; shed requests never count
    // as submitted, so the terminal-accounting balance is unaffected.
    UpdateShedLocked();
    if (shedding_) {
      stats_.shed += static_cast<int64_t>(pendings.size());
      return Status::ResourceExhausted(
          "engine overloaded: " + std::to_string(waiting_.size()) +
          " requests queued; retry later");
    }
    for (Pending& pending : pendings) {
      pending.id = next_id_++;
      ++stats_.submitted;
      ids.push_back(pending.id);
      waiting_.push_back(std::move(pending));
    }
    UpdateShedLocked();
  }
  dispatch_cv_.notify_all();
  return ids;
}

Result<int64_t> Engine::Enqueue(
    ScoringRequest request,
    std::shared_ptr<std::promise<Result<ScoringResponse>>> promise) {
  auto pending = MakePending(std::move(request), std::move(promise));
  if (!pending.ok()) {
    return pending.status();
  }
  std::vector<Pending> pendings;
  pendings.push_back(pending.take());
  auto ids = AdmitPendings(std::move(pendings));
  if (!ids.ok()) {
    return ids.status();
  }
  return ids.value()[0];
}

Result<int64_t> Engine::Submit(ScoringRequest request) {
  return Enqueue(std::move(request), nullptr);
}

Result<Engine::ResponseFuture> Engine::SubmitAsync(ScoringRequest request) {
  auto submission = SubmitAsyncHandle(std::move(request));
  if (!submission.ok()) {
    return submission.status();
  }
  return std::move(submission.value().future);
}

Result<Engine::AsyncSubmission> Engine::SubmitAsyncHandle(ScoringRequest request) {
  auto promise = std::make_shared<std::promise<Result<ScoringResponse>>>();
  ResponseFuture future = promise->get_future();
  auto id = Enqueue(std::move(request), std::move(promise));
  if (!id.ok()) {
    return id.status();
  }
  AsyncSubmission submission;
  submission.id = id.value();
  submission.future = std::move(future);
  return submission;
}

Result<std::vector<Engine::AsyncSubmission>> Engine::SubmitGroupAsync(
    std::vector<ScoringRequest> requests, GroupCallback on_done) {
  if (requests.empty()) {
    return Status::InvalidArgument("request group is empty");
  }
  // All-or-nothing admission: every request is validated (and its chain
  // hashed) before any of them becomes visible to the scheduler. The
  // completion hook never fires for a rejected group — nothing was admitted.
  std::shared_ptr<const GroupCallback> hook;
  if (on_done != nullptr) {
    hook = std::make_shared<const GroupCallback>(std::move(on_done));
  }
  std::vector<Pending> pendings;
  std::vector<ResponseFuture> futures;
  pendings.reserve(requests.size());
  futures.reserve(requests.size());
  for (ScoringRequest& request : requests) {
    auto promise = std::make_shared<std::promise<Result<ScoringResponse>>>();
    futures.push_back(promise->get_future());
    auto pending = MakePending(std::move(request), std::move(promise));
    if (!pending.ok()) {
      return pending.status();
    }
    pending.value().on_done = hook;
    pending.value().on_done_index = pendings.size();
    pendings.push_back(pending.take());
  }
  if (pendings.size() >= 2) {
    int64_t group = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      group = next_group_++;
    }
    for (Pending& pending : pendings) {
      pending.group = group;
    }
  }
  auto ids = AdmitPendings(std::move(pendings));
  if (!ids.ok()) {
    return ids.status();
  }
  std::vector<AsyncSubmission> submissions(ids.value().size());
  for (size_t i = 0; i < submissions.size(); ++i) {
    submissions[i].id = ids.value()[i];
    submissions[i].future = std::move(futures[i]);
  }
  return submissions;
}

Status Engine::Cancel(int64_t id) {
  std::optional<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if ((taken = TakeWaitingLocked(id))) {
      // Dequeued before any dispatch decision claimed it: it never executes.
      ++stats_.cancelled;
      UpdateShedLocked();
    } else if (running_.count(id) > 0) {
      // Mark-and-ignore: the prefill is already burning; its result is
      // discarded at finalization and the waiter sees kCancelled.
      cancelled_in_flight_.insert(id);
      return Status::Ok();
    } else {
      return Status::NotFound("request " + std::to_string(id) +
                              " is not queued or in flight");
    }
  }
  Fulfill(*taken,
          Result<ScoringResponse>(Status::Cancelled("request cancelled while queued")));
  return Status::Ok();
}

Status Engine::CancelIfQueued(int64_t id) {
  std::optional<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if ((taken = TakeWaitingLocked(id))) {
      // Still waiting: dequeue it. From here on nothing in this engine can
      // execute it, which is what makes a re-submit elsewhere at-most-once.
      ++stats_.cancelled;
      UpdateShedLocked();
    } else if (running_.count(id) > 0) {
      // Already left the queue — a dispatch decision owns it. Unlike
      // Cancel(), do NOT mark-and-ignore: the caller wants to re-route the
      // request, and a mark here plus a re-submit there would be a second
      // execution path for the same work.
      return Status::FailedPrecondition(
          "request " + std::to_string(id) + " already dispatched; not re-routable");
    } else {
      return Status::NotFound("request " + std::to_string(id) +
                              " is not queued or in flight");
    }
  }
  Fulfill(*taken, Result<ScoringResponse>(Status::Cancelled(
                      "request cancelled while queued (replica failover)")));
  return Status::Ok();
}

Engine::RequestPhase Engine::Phase(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Pending& pending : waiting_) {
    if (pending.id == id) {
      return RequestPhase::kQueued;
    }
  }
  if (running_.count(id) > 0) {
    return RequestPhase::kRunning;
  }
  return RequestPhase::kUnknown;
}

std::vector<Engine::Pending> Engine::TakeExpiredLocked(double now) {
  std::vector<Pending> expired;
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (it->deadline_s >= 0.0 && now >= it->deadline_s) {
      expired.push_back(std::move(*it));
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.deadline_expired += static_cast<int64_t>(expired.size());
  return expired;
}

std::vector<Engine::Candidate> Engine::SnapshotQueueLocked() const {
  std::vector<Candidate> candidates;
  candidates.reserve(waiting_.size());
  for (const Pending& p : waiting_) {
    Candidate c;
    c.id = p.id;
    c.arrival_s = p.arrival_s;
    c.n_input = static_cast<int64_t>(p.request.tokens.size());
    c.priority = p.request.priority;
    c.group = p.group;
    c.chain = p.chain;
    candidates.push_back(std::move(c));
  }
  return candidates;
}

Engine::BatchDecision Engine::PickBatchIds(const std::vector<Candidate>& candidates,
                                           const Scheduler* scheduler) const {
  assert(!candidates.empty());
  std::vector<SchedEntry> entries;
  entries.reserve(candidates.size());
  const bool calibrate = options_.policy == SchedPolicy::kSrjfCalibrated;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    for (const Candidate& c : candidates) {
      SchedEntry entry;
      entry.arrival_time = c.arrival_s;
      entry.n_input = c.n_input;
      entry.priority = c.priority;
      entry.group = c.group;
      // Continuous JCT calibration: the hit length is refreshed against the
      // live cache on every decision. Offloaded blocks count as cached:
      // their reload is far cheaper than recomputation.
      const int64_t gpu_match = cache_->MatchTokens(*c.chain);
      const int64_t offload_match =
          offload_dir_->PeekContinuation(*c.chain, gpu_match / options_.block_size) *
          options_.block_size;
      const int64_t match = std::min(gpu_match + offload_match, entry.n_input - 1);
      entry.n_cached_at_arrival = match;  // static policies are approximated
      entry.n_cached_now = calibrate ? match : entry.n_cached_at_arrival;
      entries.push_back(entry);
    }
  }
  // Admission — packing policy, activation budget, cost model — happens
  // inside the scheduler (ISSUE 9): oversized candidates are skipped, not a
  // reason to truncate the tail, and the seed always dispatches. The lane's
  // TrackingAllocator stays the hard guarantee: the projection is asserted
  // conservative by test, but blocks can still be evicted between this
  // decision and AcquirePrefix, and an overshooting stacked pass falls back
  // to solo execution.
  const BatchPick pick = scheduler->PickBatch(entries, NowSeconds(),
                                              options_.max_batch_size, batch_budget_);
  BatchDecision decision;
  decision.ids.reserve(pick.picked.size());
  for (const size_t index : pick.picked) {
    decision.ids.push_back(candidates[index].id);
  }
  decision.projected_bytes = pick.projected_bytes;
  decision.miss_tokens = pick.miss_tokens;
  decision.budget_skips = pick.budget_skips;
  return decision;
}

std::optional<Engine::Pending> Engine::TakeWaitingLocked(int64_t id) {
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->id == id) {
      Pending pending = std::move(*it);
      waiting_.erase(it);
      return pending;
    }
  }
  return std::nullopt;
}

Result<ScoringResponse> Engine::Execute(Pending pending) {
  // Per-request activation arena (ISSUE 2): concurrent requests never share
  // an allocator, so tracking stays exact per lane and the budget is the
  // per-request GPU-memory analogue. Every tensor allocated below dies
  // before the arena does (end of ExecuteOnArena).
  TrackingAllocator activations(options_.activation_budget_bytes);
  activations.SetFaultSite(fault::kAllocActivation);
  auto response = ExecuteOnArena(activations, std::move(pending));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.peak_activation_bytes =
      std::max(stats_.peak_activation_bytes, activations.peak_bytes());
  return response;
}

Status Engine::AcquirePrefix(const Pending& pending, TrackingAllocator& activations,
                             PrefixAcq& out) {
  const auto n_tokens = static_cast<int64_t>(pending.request.tokens.size());

  // Suffix KV cache discarding, decided up front: only the prefix that fits
  // the cache budget is ever granted blocks.
  out.budget_blocks = std::min<int64_t>(static_cast<int64_t>(pending.chain->size()),
                                        cache_->capacity_blocks());
  std::span<const uint64_t> chain(*pending.chain);
  out.chain = chain.subspan(0, static_cast<size_t>(out.budget_blocks));

  // --- Cache acquire + prefix assembly, atomic under cache_mu_ ---------
  // Token-accurate hit-rate accounting: the request presents every token up
  // to the cache budget, including a trailing partial block that can never
  // hit — counting whole chain blocks instead would deflate the denominator
  // and let HitRate() exceed 1.0.
  const int64_t lookup_tokens =
      out.budget_blocks < static_cast<int64_t>(pending.chain->size())
          ? out.budget_blocks * options_.block_size
          : n_tokens;
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  auto acquired = cache_->Acquire(out.chain, out.budget_blocks, lookup_tokens);
  if (!acquired.ok()) {
    return acquired.status();
  }
  out.acq = acquired.take();

  // Block-aligned prefix reuse; the final token is always recomputed. The
  // GPU-tier match may continue into the offload tier (§9).
  const int64_t gpu_matched = out.acq.matched_blocks;
  const int64_t offload_matched = offload_dir_->MatchContinuation(out.chain, gpu_matched);
  const int64_t max_prefix_blocks = (n_tokens - 1) / options_.block_size;
  out.prefix_blocks = std::min(gpu_matched + offload_matched, max_prefix_blocks);
  out.gpu_prefix_blocks = std::min(gpu_matched, out.prefix_blocks);
  out.n_cached = out.prefix_blocks * options_.block_size;

  if (out.prefix_blocks > 0) {
    // GPU-resident blocks first, then offloaded payloads "reloaded" into
    // the contiguous prefix (the copy is the simulated H2D transfer).
    // Matched blocks are pinned (refcounted), so the payloads cannot be
    // evicted while we copy; the copies happen under cache_mu_ so the
    // offload tier cannot mutate between the match above and the reads.
    out.prefix.n_tokens = out.n_cached;
    out.prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
    for (auto& layer : out.prefix.layers) {
      layer.k = Tensor::TryCreate(activations, {out.n_cached, options_.model.kv_size()},
                                  "kvstore.prefix.k");
      layer.v = Tensor::TryCreate(activations, {out.n_cached, options_.model.kv_size()},
                                  "kvstore.prefix.v");
      if (layer.k.empty() || layer.v.empty()) {
        // Roll back: unpin and free the partial copy so the caller can
        // retry solo (batched path) or fail cleanly with a Status instead
        // of aborting the process on arena exhaustion.
        out.prefix = KvCacheData();
        cache_->Release(out.acq, 0);
        out.acq = Acquisition();
        return Status::ResourceExhausted(
            "activation allocation failed: kvstore.prefix");
      }
    }
    if (out.gpu_prefix_blocks > 0) {
      const KvCacheData gpu_part =
          store_->AssemblePrefix(out.acq.blocks, out.gpu_prefix_blocks);
      for (size_t l = 0; l < out.prefix.layers.size(); ++l) {
        std::memcpy(out.prefix.layers[l].k.data(), gpu_part.layers[l].k.data(),
                    gpu_part.layers[l].k.bytes());
        std::memcpy(out.prefix.layers[l].v.data(), gpu_part.layers[l].v.data(),
                    gpu_part.layers[l].v.bytes());
      }
    }
    for (int64_t b = out.gpu_prefix_blocks; b < out.prefix_blocks; ++b) {
      auto payload = offload_payloads_.find(out.chain[static_cast<size_t>(b)]);
      assert(payload != offload_payloads_.end());
      CopyBlockInto(payload->second, out.prefix, b, options_.block_size);
      offload_hit_tokens_ += options_.block_size;
    }
  }
  return Status::Ok();
}

void Engine::PublishKv(PrefixAcq& pa, const PrefillResult* pass) {
  // --- Cache release + KV publication, atomic under cache_mu_ ----------
  // Hand the retained fresh prefix blocks to the cache + payload store.
  // Blocks served from the offload tier are PROMOTED: their payload moves
  // back to the GPU tier instead of being recomputed or duplicated.
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  if (pass == nullptr) {
    cache_->Release(pa.acq, 0);
    return;
  }
  const auto inserted = cache_->Release(pa.acq, pa.budget_blocks);
  for (const auto& [block_index, block_id] : inserted) {
    const uint64_t hash = pa.chain[static_cast<size_t>(block_index)];
    if (block_index < pa.prefix_blocks) {
      auto payload = offload_payloads_.find(hash);
      if (payload != offload_payloads_.end()) {
        store_->PutBlock(block_id, CloneBlock(payload->second, cache_memory_));
        offload_payloads_.erase(payload);
        offload_dir_->Erase(hash);
        ++offload_promotions_;
      } else {
        // A concurrent request promoted (and possibly re-evicted) this
        // offload payload between our acquire and release. The rows are
        // still at hand in the assembled prefix — publish from there;
        // pass->kv starts at n_cached and cannot serve this block.
        store_->Put(block_id, pa.prefix, /*source_start=*/0, block_index);
      }
    } else {
      store_->Put(block_id, pass->kv, pass->kv_start, block_index);
    }
  }
}

Result<ScoringResponse> Engine::ExecuteOnArena(TrackingAllocator& activations,
                                               Pending pending) {
  const auto& tokens = pending.request.tokens;
  const auto n_tokens = static_cast<int64_t>(tokens.size());
  const double start_s = NowSeconds();

  // First rung of the degradation ladder (ISSUE 6): transient acquisition
  // failures — the block pool momentarily pinned by batchmates, an injected
  // allocation fault — retry with exponential backoff before the request
  // fails, unless the backoff would land past the deadline.
  PrefixAcq pa;
  Status acquired = AcquirePrefix(pending, activations, pa);
  for (int attempt = 1; acquired.code() == StatusCode::kResourceExhausted &&
                        attempt <= options_.alloc_retry_max;
       ++attempt) {
    const int64_t backoff_ms = options_.alloc_retry_backoff_ms << (attempt - 1);
    if (pending.deadline_s >= 0.0 &&
        NowSeconds() + static_cast<double>(backoff_ms) / 1e3 >= pending.deadline_s) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.alloc_retries;
    }
    pa = PrefixAcq();
    acquired = AcquirePrefix(pending, activations, pa);
    if (acquired.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.alloc_retry_successes;
    }
  }
  if (!acquired.ok()) {
    return acquired;
  }

  PrefillOptions prefill;
  prefill.mode = options_.mode;
  prefill.chunk_size = options_.chunk_size;
  prefill.preallocate_outputs = options_.preallocate_outputs;
  prefill.in_place = options_.in_place;
  prefill.retention = KvRetention::kPrefixBudget;
  prefill.prefix_budget_tokens = pa.budget_blocks * options_.block_size;
  // Cooperative in-flight abort (ISSUE 6): the model polls this between
  // chunks; an expired or cancelled request stops at the next boundary
  // instead of burning its remaining compute.
  prefill.abort_check = [this, &pending] { return AbortStatus(pending); };

  // The prefill pass runs without any engine lock: the model is immutable,
  // the prefix is a private copy, and intra-op workers come from this
  // thread's elastic ThreadPool partition.
  auto result = model_->Prefill(tokens, pa.prefix.empty() ? nullptr : &pa.prefix,
                                prefill, activations);
  if (!result.ok()) {
    PublishKv(pa, nullptr);
    return result.status();
  }
  PrefillResult& pass = result.value();
  PublishKv(pa, &pass);

  auto probabilities =
      ConstrainedProbabilities(pass.last_logits, pending.request.allowed_tokens);
  if (!probabilities.ok()) {
    return probabilities.status();
  }

  ScoringResponse response;
  response.request_id = pending.id;
  response.user_id = pending.request.user_id;
  response.probabilities = probabilities.take();
  response.score = response.probabilities[0].probability;
  response.n_input = n_tokens;
  response.n_cached = pa.n_cached;
  response.n_cached_offload =
      (pa.prefix_blocks - pa.gpu_prefix_blocks) * options_.block_size;
  response.queue_time_s = start_s - pending.arrival_s;
  response.execute_time_s = NowSeconds() - start_s;
  return response;
}

std::vector<Result<ScoringResponse>> Engine::ExecuteBatchOnArena(
    TrackingAllocator& activations, std::vector<Pending>& pendings) {
  const size_t n_requests = pendings.size();
  const double start_s = NowSeconds();
  std::vector<Result<ScoringResponse>> results(
      n_requests,
      Result<ScoringResponse>(Status::Internal("batch member not executed")));

  // Per-request cache acquire: a member whose acquisition fails (the pool
  // or the lane arena cannot hold one more prefix alongside its
  // batchmates') is deferred to the solo-retry list below — after the
  // batch releases its pins and prefix copies, the member gets the same
  // chance it would have had running alone.
  std::vector<PrefixAcq> acqs(n_requests);
  std::vector<size_t> live;
  std::vector<size_t> solo_retry;
  live.reserve(n_requests);
  for (size_t i = 0; i < n_requests; ++i) {
    // Member-boundary abort poll (ISSUE 6): a batchmate whose deadline
    // lapsed (or that was cancelled) while the batch rode the exec queue is
    // dropped here, before its acquisition pins any blocks.
    if (Status abort = AbortStatus(pendings[i]); !abort.ok()) {
      results[i] = abort;
      continue;
    }
    if (Status s = AcquirePrefix(pendings[i], activations, acqs[i]); s.ok()) {
      live.push_back(i);
    } else {
      solo_retry.push_back(i);
    }
  }

  if (!live.empty()) {
    PrefillOptions prefill;
    prefill.mode = options_.mode;
    prefill.chunk_size = options_.chunk_size;
    prefill.preallocate_outputs = options_.preallocate_outputs;
    prefill.in_place = options_.in_place;

    std::vector<PrefillSequence> sequences;
    sequences.reserve(live.size());
    for (const size_t i : live) {
      PrefillSequence seq;
      seq.tokens = pendings[i].request.tokens;
      seq.cached_prefix = acqs[i].prefix.empty() ? nullptr : &acqs[i].prefix;
      seq.retention = KvRetention::kPrefixBudget;
      seq.prefix_budget_tokens = acqs[i].budget_blocks * options_.block_size;
      sequences.push_back(seq);
    }

    // One stacked prefill for the whole batch, lock-free like the solo pass.
    auto passes = model_->PrefillBatch(sequences, prefill, activations);
    if (!passes.ok()) {
      // Batch-level failure — in practice the stacked pass exceeding this
      // lane's activation budget. Release every pin, free the prefix
      // copies, and fall back to solo execution so co-batching never fails
      // a request that fits alone (the determinism contract makes the
      // results identical either way).
      for (const size_t i : live) {
        PublishKv(acqs[i], nullptr);
        acqs[i].prefix = KvCacheData();  // return the arena bytes before retrying
      }
      solo_retry.insert(solo_retry.end(), live.begin(), live.end());
      std::sort(solo_retry.begin(), solo_retry.end());
    } else {
      for (size_t j = 0; j < live.size(); ++j) {
        const size_t i = live[j];
        PrefillResult& pass = passes.value()[j];
        PublishKv(acqs[i], &pass);
        acqs[i].prefix = KvCacheData();  // dead after publication

        auto probabilities = ConstrainedProbabilities(
            pass.last_logits, pendings[i].request.allowed_tokens);
        if (!probabilities.ok()) {
          results[i] = probabilities.status();
          continue;
        }
        ScoringResponse response;
        response.request_id = pendings[i].id;
        response.user_id = pendings[i].request.user_id;
        response.probabilities = probabilities.take();
        response.score = response.probabilities[0].probability;
        response.n_input = static_cast<int64_t>(pendings[i].request.tokens.size());
        response.n_cached = acqs[i].n_cached;
        response.n_cached_offload =
            (acqs[i].prefix_blocks - acqs[i].gpu_prefix_blocks) * options_.block_size;
        response.batch_size = static_cast<int64_t>(live.size());
        response.queue_time_s = start_s - pendings[i].arrival_s;
        response.execute_time_s = NowSeconds() - start_s;
        results[i] = std::move(response);
      }
    }
  }

  // Solo retries run after the batch has released its pins and arena bytes:
  // acquisition-failed members and batch-OOM members alike execute here
  // with the lane to themselves, one at a time — each behind its own
  // member-boundary abort poll, so a deadline that lapsed during the
  // stacked pass skips the retry entirely.
  for (const size_t i : solo_retry) {
    if (Status abort = AbortStatus(pendings[i]); !abort.ok()) {
      results[i] = abort;
      continue;
    }
    results[i] = ExecuteOnArena(activations, std::move(pendings[i]));
  }
  return results;
}

std::vector<Result<ScoringResponse>> Engine::ExecuteBatchAndFinalize(
    PrefillBatchPending batch) {
  const auto batch_size = static_cast<int64_t>(batch.requests.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches_dispatched;
    stats_.batched_requests += batch_size;
    stats_.peak_batch_size = std::max(stats_.peak_batch_size, batch_size);
  }
  if (batch_size == 1) {
    // Exact legacy behavior: one request, the solo prefill path.
    std::vector<Result<ScoringResponse>> results;
    results.push_back(ExecuteAndFinalize(std::move(batch.requests[0])));
    return results;
  }

  // Promise handles are copied out first: the solo fallback inside
  // ExecuteBatchOnArena consumes the Pendings (ExecuteOnArena never
  // fulfills), and delivery must happen exactly once, here — or in the
  // watchdog, whichever wins the `fulfilled` exchange.
  std::vector<std::shared_ptr<std::promise<Result<ScoringResponse>>>> promises;
  std::vector<std::shared_ptr<std::atomic<bool>>> fulfilled;
  std::vector<std::shared_ptr<const GroupCallback>> on_dones;
  std::vector<size_t> on_done_indices;
  std::vector<int64_t> ids;
  promises.reserve(batch.requests.size());
  fulfilled.reserve(batch.requests.size());
  on_dones.reserve(batch.requests.size());
  on_done_indices.reserve(batch.requests.size());
  ids.reserve(batch.requests.size());
  for (Pending& pending : batch.requests) {
    promises.push_back(pending.promise);
    fulfilled.push_back(pending.fulfilled);
    on_dones.push_back(pending.on_done);
    on_done_indices.push_back(pending.on_done_index);
    ids.push_back(pending.id);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++executing_;
    for (const Pending& pending : batch.requests) {
      MarkRunningLocked(pending);
    }
    stats_.peak_in_flight = std::max<int64_t>(stats_.peak_in_flight, executing_);
  }
  // One arena for the whole lane: the activation budget bounds the stacked
  // pass, the per-lane analogue of the per-request budget.
  TrackingAllocator activations(options_.activation_budget_bytes);
  activations.SetFaultSite(fault::kAllocActivation);
  auto results = ExecuteBatchOnArena(activations, batch.requests);
  std::vector<bool> ignored(results.size(), false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --executing_;
    stats_.peak_activation_bytes =
        std::max(stats_.peak_activation_bytes, activations.peak_bytes());
    for (size_t i = 0; i < results.size(); ++i) {
      running_.erase(ids[i]);
      // Mark-and-ignore (ISSUE 5): per-member, like the solo path.
      if (cancelled_in_flight_.erase(ids[i]) > 0) {
        ignored[i] = true;
        ++stats_.cancelled_in_flight;
      } else if (results[i].ok()) {
        ++stats_.completed;
        stats_.total_execute_s += results[i].value().execute_time_s;
      } else if (results[i].status().code() == StatusCode::kDeadlineExceeded) {
        // Cooperative abort between chunks/members (ISSUE 6): its own
        // terminal bucket, disjoint from failed and from the pre-dispatch
        // deadline_expired.
        ++stats_.deadline_expired_in_flight;
      } else {
        ++stats_.failed;
      }
    }
  }
  for (size_t i = 0; i < results.size(); ++i) {
    if (ignored[i]) {
      results[i] = Result<ScoringResponse>(
          Status::Cancelled("request cancelled while in flight; result discarded"));
    }
    Fulfill(promises[i], fulfilled[i], on_dones[i], on_done_indices[i], results[i]);
  }
  return results;
}

Result<ScoringResponse> Engine::ExecuteAndFinalize(Pending pending) {
  const int64_t id = pending.id;
  auto promise = pending.promise;  // registry keeps its own handle
  auto fulfilled = pending.fulfilled;
  auto on_done = pending.on_done;
  const size_t on_done_index = pending.on_done_index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++executing_;
    MarkRunningLocked(pending);
    stats_.peak_in_flight =
        std::max<int64_t>(stats_.peak_in_flight, executing_);
  }
  auto response = Execute(std::move(pending));
  bool ignore = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --executing_;
    running_.erase(id);
    // Mark-and-ignore (ISSUE 5): a Cancel() that raced the execution wins —
    // the computed result is discarded, the waiter sees kCancelled. With
    // cooperative abort the prefill may ALSO have stopped early with
    // kCancelled; either way the id is still marked, so this stays the
    // single counting point.
    ignore = cancelled_in_flight_.erase(id) > 0;
    if (ignore) {
      ++stats_.cancelled_in_flight;
    } else if (response.ok()) {
      ++stats_.completed;
      stats_.total_execute_s += response.value().execute_time_s;
    } else if (response.status().code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_expired_in_flight;
    } else {
      ++stats_.failed;
    }
  }
  if (ignore) {
    response = Result<ScoringResponse>(
        Status::Cancelled("request cancelled while in flight; result discarded"));
  }
  Fulfill(promise, fulfilled, on_done, on_done_index, response);
  return response;
}

Result<std::vector<ScoringResponse>> Engine::RunPending() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_running_) {
      // Checked misuse (ISSUE 2): while the concurrent runtime owns the
      // queue, a second scheduling loop would double-dispatch requests.
      // Checked once, on entry: results of requests already executed are
      // never thrown away mid-drain.
      return Status::FailedPrecondition(
          "RunPending() while the concurrent runtime is active; "
          "use SubmitAsync()/StopWorker() instead");
    }
    if (profiling_) {
      return Status::FailedPrecondition(
          "RunPending() while ProfileJct() is in progress; retry after it returns");
    }
  }
  std::vector<ScoringResponse> responses;
  while (true) {
    std::vector<Candidate> candidates;
    std::vector<Pending> expired;
    const Scheduler* scheduler = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Same pre-dispatch deadline enforcement as the concurrent
      // dispatcher: lapsed requests never cost a prefill.
      expired = TakeExpiredLocked(NowSeconds());
      UpdateShedLocked();
      if (waiting_.empty() && expired.empty()) {
        break;
      }
      candidates = SnapshotQueueLocked();
      scheduler = scheduler_.get();
    }
    for (Pending& pending : expired) {
      Fulfill(pending, Result<ScoringResponse>(
                           Status::DeadlineExceeded("deadline expired while queued")));
    }
    if (candidates.empty()) {
      continue;
    }
    const BatchDecision decision = PickBatchIds(candidates, scheduler);
    PrefillBatchPending batch;
    batch.requests.reserve(decision.ids.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int64_t id : decision.ids) {
        if (std::optional<Pending> pending = TakeWaitingLocked(id)) {
          // Same no-blind-window rule as the dispatcher: "running" from the
          // moment the id leaves the queue.
          MarkRunningLocked(*pending);
          batch.requests.push_back(std::move(*pending));
        }
      }
      if (!batch.requests.empty()) {
        stats_.batched_miss_tokens += decision.miss_tokens;
        stats_.packing_skips += decision.budget_skips;
      }
      UpdateShedLocked();
    }
    if (batch.requests.empty()) {
      // A StartWorker() racing mid-drain handed these requests to the
      // dispatcher (they complete there), or a Cancel() withdrew them;
      // either way we just stop claiming them.
      continue;
    }
    auto batch_responses = ExecuteBatchAndFinalize(std::move(batch));
    for (auto& response : batch_responses) {
      if (response.ok()) {
        responses.push_back(response.take());
      } else {
        PO_LOG_WARNING << "request failed: " << response.status().ToString();
      }
    }
  }
  return responses;
}

Result<ScoringResponse> Engine::ScoreSync(ScoringRequest request) {
  // Through MakePending like every other frontend, so the lifecycle options
  // keep their contract here too: an already-expired deadline is rejected
  // before the prefill (a positive one is trivially met — execution starts
  // immediately on the calling thread).
  auto pending = MakePending(std::move(request), nullptr);
  if (!pending.ok()) {
    return pending.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.value().id = next_id_++;
    ++stats_.submitted;
  }
  return ExecuteAndFinalize(pending.take());
}

Status Engine::StartWorker(ResponseCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  if (runtime_running_) {
    return Status::FailedPrecondition("concurrent runtime is already running");
  }
  if (profiling_) {
    return Status::FailedPrecondition(
        "ProfileJct() is in progress; start the runtime after it returns");
  }
  runtime_running_ = true;
  draining_ = false;
  exec_queue_ = std::make_unique<BlockingQueue<PrefillBatchPending>>();
  executors_.clear();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  for (int i = 0; i < options_.max_concurrent_requests; ++i) {
    executors_.emplace_back(
        [this, callback]() mutable { ExecutorLoop(std::move(callback)); });
  }
  if (options_.watchdog_timeout_ms > 0) {
    watchdog_stop_ = false;
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  return Status::Ok();
}

bool Engine::worker_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runtime_running_;
}

void Engine::StopWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!runtime_running_) {
    return;
  }
  if (draining_) {
    // Another thread is already stopping; wait for it to finish so the
    // post-condition (runtime fully joined) holds for every caller.
    dispatch_cv_.wait(lock, [this] { return !runtime_running_; });
    return;
  }
  draining_ = true;
  lock.unlock();
  dispatch_cv_.notify_all();
  dispatcher_.join();
  for (std::thread& executor : executors_) {
    executor.join();
  }
  lock.lock();
  // The watchdog goes last: with dispatcher and executors joined nothing is
  // in flight anymore, so it can't have work left to deliver.
  watchdog_stop_ = true;
  lock.unlock();
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
  lock.lock();
  executors_.clear();
  runtime_running_ = false;
  draining_ = false;
  lock.unlock();
  dispatch_cv_.notify_all();
}

void Engine::DispatcherLoop() {
  const int max_slots = options_.max_concurrent_requests;
  // Guaranteed floor share per in-flight request; elastic growth beyond it
  // comes from ParallelFor borrowing idle workers (ThreadPool::Lease).
  const int reserve_workers = std::max(1, pool_->num_threads() / max_slots) - 1;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    dispatch_cv_.wait(lock, [&] {
      return (draining_ && waiting_.empty() && in_flight_ == 0) ||
             (!waiting_.empty() && in_flight_ < max_slots);
    });
    // Deadline enforcement happens at the scheduling decision (ISSUE 5):
    // lapsed requests are failed with kDeadlineExceeded here, before any
    // prefill is spent on them, and never reach an executor.
    if (std::vector<Pending> expired = TakeExpiredLocked(NowSeconds());
        !expired.empty()) {
      UpdateShedLocked();
      lock.unlock();
      for (Pending& pending : expired) {
        Fulfill(pending, Result<ScoringResponse>(
                             Status::DeadlineExceeded("deadline expired while queued")));
      }
      lock.lock();
      continue;
    }
    if (waiting_.empty() || in_flight_ >= max_slots) {
      if (draining_ && waiting_.empty() && in_flight_ == 0) {
        break;
      }
      continue;
    }
    // The scheduling decision: snapshot the queue, then consult cache +
    // scheduler with mu_ RELEASED, so Submit/stats never convoy behind an
    // in-flight prefix copy holding cache_mu_. n_cached_now is refreshed
    // against the live cache at the moment an executor slot frees —
    // continuous JCT calibration (§6.3). Besides this thread only Cancel()
    // removes entries while the runtime runs (requests that arrive between
    // snapshot and relock just wait for the next decision).
    std::vector<Candidate> candidates = SnapshotQueueLocked();
    const Scheduler* scheduler = scheduler_.get();
    lock.unlock();
    // A batched decision (ISSUE 4/5/9): the SRJF winner plus riders — the
    // seed's co-batch group-mates first, then budget-packed any-length
    // entries (or the legacy same-bucket tier under kBucket). A pick
    // cancelled between snapshot and relock simply drops out of the batch
    // (TakeWaitingLocked returns nullopt).
    const BatchDecision decision = PickBatchIds(candidates, scheduler);
    lock.lock();
    PrefillBatchPending batch;
    batch.requests.reserve(decision.ids.size());
    for (const int64_t id : decision.ids) {
      if (std::optional<Pending> pending = TakeWaitingLocked(id)) {
        // The id becomes "running" the moment it leaves the queue, under
        // the SAME mu_ hold — a Cancel() landing while the batch rides the
        // exec_queue_ must find it in the running registry
        // (mark-and-ignore), not fall into a blind window where the
        // cancellation is lost. The watchdog clock also starts here: time
        // spent riding the exec queue counts toward a stall.
        MarkRunningLocked(*pending);
        batch.requests.push_back(std::move(*pending));
      }
    }
    if (!batch.requests.empty()) {
      stats_.batched_miss_tokens += decision.miss_tokens;
      stats_.packing_skips += decision.budget_skips;
    }
    UpdateShedLocked();
    if (batch.requests.empty()) {
      continue;
    }
    ++in_flight_;
    batch.reserve_workers = reserve_workers;
    lock.unlock();
    exec_queue_->Push(std::move(batch));
    lock.lock();
  }
  lock.unlock();
  exec_queue_->Close();
}

void Engine::ExecutorLoop(ResponseCallback callback) {
  while (auto item = exec_queue_->Pop()) {
    PrefillBatchPending batch = std::move(*item);
    const int reserve = batch.reserve_workers;
    // Injected lane stall (exec.stall): the dispatched work sits wedged on
    // this executor for stall_ms — what the watchdog exists to detect.
    if (FaultInjector::Global().Fire(fault::kExecStall)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(FaultInjector::Global().stall_ms()));
    }
    std::vector<Result<ScoringResponse>> responses = [&] {
      // The lease is this lane's worker partition: `reserve` workers held
      // exclusively for the whole execution (one stacked pass for the whole
      // batch), plus per-kernel borrowing of whatever is idle. Destroyed
      // (workers returned) before completion is announced, so a waiting
      // dispatchee can inherit them immediately.
      ThreadPool::Lease lease(*pool_, reserve);
      return ExecuteBatchAndFinalize(std::move(batch));
    }();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    dispatch_cv_.notify_all();
    if (callback) {
      for (auto& response : responses) {
        callback(std::move(response));
      }
    }
  }
}

void Engine::WatchdogLoop() {
  const double timeout_s = static_cast<double>(options_.watchdog_timeout_ms) / 1e3;
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(options_.watchdog_timeout_ms / 4, 1));
  std::unique_lock<std::mutex> lock(mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, poll);
    if (watchdog_stop_) {
      break;
    }
    const double now = NowSeconds();
    std::vector<std::pair<RunningEntry, int64_t>> stuck;
    for (auto& [id, entry] : running_) {
      if (entry.watchdog_fired || entry.promise == nullptr ||
          now - entry.started_s < timeout_s) {
        continue;
      }
      // Fail the waiter, not the work: the lane keeps running (there is no
      // safe way to preempt it) and its eventual result counts in the
      // terminal stats as usual — only the delivery is taken over here, so
      // the client gets a structured error instead of a hang.
      entry.watchdog_fired = true;
      ++stats_.watchdog_stalls;
      watchdog_ever_fired_ = true;
      stuck.emplace_back(entry, id);
    }
    if (stuck.empty()) {
      continue;
    }
    lock.unlock();
    for (auto& [entry, id] : stuck) {
      Fulfill(entry.promise, entry.fulfilled, entry.on_done, entry.on_done_index,
              Result<ScoringResponse>(Status::Internal(
                  "watchdog: request " + std::to_string(id) +
                  " stuck in an executor for over " +
                  std::to_string(options_.watchdog_timeout_ms) + " ms")));
    }
    lock.lock();
  }
}

Engine::HealthStatus Engine::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shedding_) {
    return HealthStatus::kOverloaded;
  }
  if (watchdog_ever_fired_) {
    return HealthStatus::kDegraded;
  }
  return HealthStatus::kOk;
}

Result<double> Engine::ProfileJct(int64_t max_input_len, int64_t granularity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (runtime_running_ || profiling_) {
      // The estimator/scheduler swap below would race with in-flight
      // scheduling decisions (and profiling wants the machine to itself).
      // profiling_ stays set until the swap is done; StartWorker and
      // RunPending refuse to begin while it is.
      return Status::FailedPrecondition(
          "ProfileJct() while the concurrent runtime is active; "
          "profile before StartWorker()");
    }
    profiling_ = true;
  }
  // Time real prefill passes; a zero-filled fake prefix of n_cached tokens
  // reproduces the exact computation shape of a cache hit.
  auto measure = [&](int64_t n_input, int64_t n_cached) -> double {
    std::vector<int32_t> tokens(static_cast<size_t>(n_input), 1);
    KvCacheData prefix;
    if (n_cached > 0) {
      prefix.n_tokens = n_cached;
      prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
      for (auto& layer : prefix.layers) {
        layer.k = Tensor::Zeros(profile_activations_,
                                {n_cached, options_.model.kv_size()}, "profile.k");
        layer.v = Tensor::Zeros(profile_activations_,
                                {n_cached, options_.model.kv_size()}, "profile.v");
      }
    }
    PrefillOptions prefill;
    prefill.mode = options_.mode;
    prefill.chunk_size = options_.chunk_size;
    const double t0 = NowSeconds();
    auto result = model_->Prefill(tokens, n_cached > 0 ? &prefix : nullptr, prefill,
                                  profile_activations_);
    (void)result;
    return NowSeconds() - t0;
  };
  auto profiled = ProfiledJctEstimator::Profile(measure, max_input_len, granularity);
  std::lock_guard<std::mutex> lock(mu_);
  profiling_ = false;
  if (!profiled.ok()) {
    return profiled.status();
  }
  const double r2 = profiled.value().r_squared();
  estimator_ = std::make_unique<ProfiledJctEstimator>(profiled.take());
  scheduler_ = std::make_unique<Scheduler>(options_.policy, options_.lambda,
                                           estimator_.get(), options_.batch_packing);
  return r2;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats out = stats_;
  out.peak_activation_bytes =
      std::max(out.peak_activation_bytes, profile_activations_.peak_bytes());
  out.faults_injected = FaultInjector::Global().total_fires();
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  out.cache_bytes = cache_memory_.current_bytes();
  out.cache = cache_->stats();
  out.offload_bytes = offload_memory_.current_bytes();
  out.offload_hit_tokens = offload_hit_tokens_;
  out.offload_demotions = offload_demotions_;
  out.offload_promotions = offload_promotions_;
  out.offload_evictions = offload_dir_->evictions();
  out.offload_read_hits = offload_dir_->read_hits();
  out.offload_read_misses = offload_dir_->read_misses();
  return out;
}

}  // namespace prefillonly
