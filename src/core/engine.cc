#include "src/core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace prefillonly {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      activations_(options_.activation_budget_bytes),
      epoch_(std::chrono::steady_clock::now()) {
  assert(options_.model.Valid());
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  model_ = std::make_unique<LlamaModel>(options_.model, options_.weight_seed);
  model_->SetThreadPool(pool_.get());
  const int64_t pool_blocks =
      options_.cache_budget_tokens / std::max(options_.block_size, 1);
  cache_ = std::make_unique<PrefixCache>(options_.block_size, pool_blocks);
  store_ = std::make_unique<KvBlockStore>(options_.model, options_.block_size,
                                          cache_memory_);
  offload_dir_ = std::make_unique<OffloadDirectory>(
      options_.cpu_offload_budget_tokens / std::max(options_.block_size, 1));
  cache_->SetEvictionListener([this](uint64_t hash, BlockId block, int64_t depth) {
    if (offload_dir_->capacity_blocks() <= 0) {
      store_->Drop(block);
      return;
    }
    // Demote instead of discard (§9): copy the payload to the CPU tier.
    KvBlock payload = store_->Take(block);
    if (payload.empty()) {
      return;
    }
    offload_payloads_[hash] = CloneBlock(payload, offload_memory_);
    ++offload_demotions_;
    const uint64_t displaced = offload_dir_->Insert(hash, depth);
    if (displaced != 0) {
      offload_payloads_.erase(displaced);
    }
  });
  estimator_ = std::make_unique<CacheMissProxyEstimator>();
  scheduler_ =
      std::make_unique<Scheduler>(options_.policy, options_.lambda, estimator_.get());
}

Engine::~Engine() { StopWorker(); }

double Engine::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Status Engine::Validate(const ScoringRequest& request) const {
  if (request.tokens.empty()) {
    return Status::InvalidArgument("request has no tokens");
  }
  if (static_cast<int64_t>(request.tokens.size()) > options_.max_input_length) {
    return Status::OutOfRange("request exceeds the maximum input length");
  }
  if (request.allowed_tokens.empty()) {
    return Status::InvalidArgument("allowed token list is empty");
  }
  for (int32_t t : request.tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("token id out of vocabulary range");
    }
  }
  for (int32_t t : request.allowed_tokens) {
    if (t < 0 || t >= options_.model.vocab_size) {
      return Status::InvalidArgument("allowed token out of vocabulary range");
    }
  }
  return Status::Ok();
}

Result<int64_t> Engine::Submit(ScoringRequest request) {
  if (Status s = Validate(request); !s.ok()) {
    return s;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.arrival_s = NowSeconds();
  pending.chain = BlockHashChain(pending.request.tokens, options_.block_size);

  std::lock_guard<std::mutex> lock(mu_);
  pending.id = next_id_++;
  ++stats_.submitted;
  const int64_t id = pending.id;
  if (worker_running_) {
    inbox_.Push(std::move(pending));
  } else {
    waiting_.push_back(std::move(pending));
  }
  return id;
}

size_t Engine::PickIndex() {
  assert(!waiting_.empty());
  std::vector<SchedEntry> entries;
  entries.reserve(waiting_.size());
  const bool calibrate = options_.policy == SchedPolicy::kSrjfCalibrated;
  for (const Pending& p : waiting_) {
    SchedEntry entry;
    entry.arrival_time = p.arrival_s;
    entry.n_input = static_cast<int64_t>(p.request.tokens.size());
    // Continuous JCT calibration: the hit length is refreshed against the
    // live cache on every decision. Offloaded blocks count as cached: their
    // reload is far cheaper than recomputation.
    const int64_t gpu_match = cache_->MatchTokens(p.chain);
    const int64_t offload_match =
        offload_dir_->PeekContinuation(p.chain, gpu_match / options_.block_size) *
        options_.block_size;
    const int64_t match = std::min(gpu_match + offload_match, entry.n_input - 1);
    entry.n_cached_at_arrival = match;  // static policies are approximated
    entry.n_cached_now = calibrate ? match : entry.n_cached_at_arrival;
    entries.push_back(entry);
  }
  return scheduler_->PickNext(entries, NowSeconds());
}

Result<ScoringResponse> Engine::Execute(Pending pending) {
  const auto& tokens = pending.request.tokens;
  const auto n_tokens = static_cast<int64_t>(tokens.size());
  const double start_s = NowSeconds();

  // Suffix KV cache discarding, decided up front: only the prefix that fits
  // the cache budget is ever granted blocks.
  const int64_t budget_blocks =
      std::min<int64_t>(static_cast<int64_t>(pending.chain.size()),
                        cache_->capacity_blocks());
  std::span<const uint64_t> chain(pending.chain);
  chain = chain.subspan(0, static_cast<size_t>(budget_blocks));

  auto acquired = cache_->Acquire(chain, budget_blocks);
  if (!acquired.ok()) {
    return acquired.status();
  }
  Acquisition acq = acquired.take();

  // Block-aligned prefix reuse; the final token is always recomputed. The
  // GPU-tier match may continue into the offload tier (§9).
  const int64_t gpu_matched = acq.matched_blocks;
  const int64_t offload_matched = offload_dir_->MatchContinuation(chain, gpu_matched);
  const int64_t max_prefix_blocks = (n_tokens - 1) / options_.block_size;
  const int64_t prefix_blocks =
      std::min(gpu_matched + offload_matched, max_prefix_blocks);
  const int64_t gpu_prefix_blocks = std::min(gpu_matched, prefix_blocks);
  const int64_t n_cached = prefix_blocks * options_.block_size;

  KvCacheData prefix;
  if (prefix_blocks > 0) {
    // GPU-resident blocks first, then offloaded payloads "reloaded" into
    // the contiguous prefix (the copy is the simulated H2D transfer).
    prefix.n_tokens = n_cached;
    prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
    for (auto& layer : prefix.layers) {
      layer.k = Tensor::Uninit(activations_, {n_cached, options_.model.kv_size()},
                               "kvstore.prefix.k");
      layer.v = Tensor::Uninit(activations_, {n_cached, options_.model.kv_size()},
                               "kvstore.prefix.v");
    }
    if (gpu_prefix_blocks > 0) {
      const KvCacheData gpu_part = store_->AssemblePrefix(acq.blocks, gpu_prefix_blocks);
      for (size_t l = 0; l < prefix.layers.size(); ++l) {
        std::memcpy(prefix.layers[l].k.data(), gpu_part.layers[l].k.data(),
                    gpu_part.layers[l].k.bytes());
        std::memcpy(prefix.layers[l].v.data(), gpu_part.layers[l].v.data(),
                    gpu_part.layers[l].v.bytes());
      }
    }
    for (int64_t b = gpu_prefix_blocks; b < prefix_blocks; ++b) {
      auto payload = offload_payloads_.find(chain[static_cast<size_t>(b)]);
      assert(payload != offload_payloads_.end());
      CopyBlockInto(payload->second, prefix, b, options_.block_size);
      offload_hit_tokens_ += options_.block_size;
    }
  }

  PrefillOptions prefill;
  prefill.mode = options_.mode;
  prefill.chunk_size = options_.chunk_size;
  prefill.preallocate_outputs = options_.preallocate_outputs;
  prefill.in_place = options_.in_place;
  prefill.retention = KvRetention::kPrefixBudget;
  prefill.prefix_budget_tokens = budget_blocks * options_.block_size;

  auto result = model_->Prefill(tokens, prefix.empty() ? nullptr : &prefix, prefill,
                                activations_);
  if (!result.ok()) {
    cache_->Release(acq, 0);
    return result.status();
  }
  PrefillResult& pass = result.value();

  // Hand the retained fresh prefix blocks to the cache + payload store.
  // Blocks served from the offload tier are PROMOTED: their payload moves
  // back to the GPU tier instead of being recomputed or duplicated.
  const auto inserted = cache_->Release(acq, budget_blocks);
  for (const auto& [block_index, block_id] : inserted) {
    const uint64_t hash = chain[static_cast<size_t>(block_index)];
    auto payload = offload_payloads_.find(hash);
    if (block_index < prefix_blocks && payload != offload_payloads_.end()) {
      store_->PutBlock(block_id, CloneBlock(payload->second, cache_memory_));
      offload_payloads_.erase(payload);
      offload_dir_->Erase(hash);
      ++offload_promotions_;
    } else {
      store_->Put(block_id, pass.kv, pass.kv_start, block_index);
    }
  }

  auto probabilities =
      ConstrainedProbabilities(pass.last_logits, pending.request.allowed_tokens);
  if (!probabilities.ok()) {
    return probabilities.status();
  }

  ScoringResponse response;
  response.request_id = pending.id;
  response.user_id = pending.request.user_id;
  response.probabilities = probabilities.take();
  response.score = response.probabilities[0].probability;
  response.n_input = n_tokens;
  response.n_cached = n_cached;
  response.n_cached_offload =
      (prefix_blocks - gpu_prefix_blocks) * options_.block_size;
  response.queue_time_s = start_s - pending.arrival_s;
  response.execute_time_s = NowSeconds() - start_s;
  return response;
}

std::vector<ScoringResponse> Engine::RunPending() {
  std::vector<ScoringResponse> responses;
  while (true) {
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (waiting_.empty()) {
        break;
      }
      const size_t index = PickIndex();
      pending = std::move(waiting_[index]);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
    }
    auto response = Execute(std::move(pending));
    std::lock_guard<std::mutex> lock(mu_);
    if (response.ok()) {
      ++stats_.completed;
      stats_.total_execute_s += response.value().execute_time_s;
      responses.push_back(response.take());
    } else {
      ++stats_.failed;
      PO_LOG_WARNING << "request failed: " << response.status().ToString();
    }
  }
  return responses;
}

Result<ScoringResponse> Engine::ScoreSync(ScoringRequest request) {
  if (Status s = Validate(request); !s.ok()) {
    return s;
  }
  Pending pending;
  pending.request = std::move(request);
  pending.arrival_s = NowSeconds();
  pending.chain = BlockHashChain(pending.request.tokens, options_.block_size);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.id = next_id_++;
    ++stats_.submitted;
  }
  auto response = Execute(std::move(pending));
  std::lock_guard<std::mutex> lock(mu_);
  if (response.ok()) {
    ++stats_.completed;
    stats_.total_execute_s += response.value().execute_time_s;
  } else {
    ++stats_.failed;
  }
  return response;
}

void Engine::StartWorker(ResponseCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(!worker_running_);
  worker_running_ = true;
  worker_ = std::thread([this, callback = std::move(callback)] { WorkerLoop(callback); });
}

void Engine::StopWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_running_) {
      return;
    }
  }
  inbox_.Close();
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  worker_running_ = false;
}

void Engine::WorkerLoop(ResponseCallback callback) {
  while (true) {
    if (waiting_.empty()) {
      auto item = inbox_.Pop();  // blocks; nullopt on Close
      if (!item.has_value()) {
        break;
      }
      waiting_.push_back(std::move(*item));
    }
    // Drain whatever else arrived so the scheduler sees the whole queue.
    while (auto more = inbox_.TryPop()) {
      waiting_.push_back(std::move(*more));
    }
    const size_t index = PickIndex();
    Pending pending = std::move(waiting_[index]);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
    auto response = Execute(std::move(pending));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (response.ok()) {
        ++stats_.completed;
        stats_.total_execute_s += response.value().execute_time_s;
      } else {
        ++stats_.failed;
      }
    }
    callback(std::move(response));
  }
  // Serve anything left in the waiting list before shutting down.
  while (!waiting_.empty()) {
    const size_t index = PickIndex();
    Pending pending = std::move(waiting_[index]);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
    auto response = Execute(std::move(pending));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (response.ok()) {
        ++stats_.completed;
        stats_.total_execute_s += response.value().execute_time_s;
      } else {
        ++stats_.failed;
      }
    }
    callback(std::move(response));
  }
}

Result<double> Engine::ProfileJct(int64_t max_input_len, int64_t granularity) {
  // Time real prefill passes; a zero-filled fake prefix of n_cached tokens
  // reproduces the exact computation shape of a cache hit.
  auto measure = [&](int64_t n_input, int64_t n_cached) -> double {
    std::vector<int32_t> tokens(static_cast<size_t>(n_input), 1);
    KvCacheData prefix;
    if (n_cached > 0) {
      prefix.n_tokens = n_cached;
      prefix.layers.resize(static_cast<size_t>(options_.model.n_layers));
      for (auto& layer : prefix.layers) {
        layer.k = Tensor::Zeros(activations_, {n_cached, options_.model.kv_size()},
                                "profile.k");
        layer.v = Tensor::Zeros(activations_, {n_cached, options_.model.kv_size()},
                                "profile.v");
      }
    }
    PrefillOptions prefill;
    prefill.mode = options_.mode;
    prefill.chunk_size = options_.chunk_size;
    const double t0 = NowSeconds();
    auto result = model_->Prefill(tokens, n_cached > 0 ? &prefix : nullptr, prefill,
                                  activations_);
    (void)result;
    return NowSeconds() - t0;
  };
  auto profiled = ProfiledJctEstimator::Profile(measure, max_input_len, granularity);
  if (!profiled.ok()) {
    return profiled.status();
  }
  const double r2 = profiled.value().r_squared();
  {
    std::lock_guard<std::mutex> lock(mu_);
    estimator_ = std::make_unique<ProfiledJctEstimator>(profiled.take());
    scheduler_ = std::make_unique<Scheduler>(options_.policy, options_.lambda,
                                             estimator_.get());
  }
  return r2;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats out = stats_;
  out.peak_activation_bytes = activations_.peak_bytes();
  out.cache_bytes = cache_memory_.current_bytes();
  out.cache = cache_->stats();
  out.offload_bytes = offload_memory_.current_bytes();
  out.offload_hit_tokens = offload_hit_tokens_;
  out.offload_demotions = offload_demotions_;
  out.offload_promotions = offload_promotions_;
  return out;
}

}  // namespace prefillonly
